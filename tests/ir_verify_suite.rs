//! IR-verifier sweep: every function of every WABench program, lowered
//! and run through both optimizing JIT pipelines, must verify cleanly —
//! no dangling targets, no use-before-def, no effect-trace changes.
//!
//! Debug builds additionally run the verifier after *every individual
//! pass* inside `optimize` (so a violation would panic mid-pipeline with
//! the offending pass named); this test asserts the end state explicitly
//! so the guarantee also holds under `--release` without `verify-ir`.

use std::rc::Rc;

use engines::jit::{self, Tier};

#[test]
fn every_suite_program_verifies_through_both_jit_tiers() {
    let mut checked_funcs = 0usize;
    for b in suite::all() {
        let bytes = b.compile(wacc::OptLevel::O2).expect("compile");
        let module = wasm_core::decode::decode(&bytes).expect("decode");
        wasm_core::validate::validate(&module).expect("validate");
        let module = Rc::new(module);
        for tier in [Tier::Cranelift, Tier::Llvm] {
            let config = tier.pass_config();
            for f in &module.funcs {
                let mut rf = jit::lower::lower(&module, f).expect("lower");
                let violations = jit::verify::verify_rfunc(&rf);
                assert!(
                    violations.is_empty(),
                    "{}: lowered code has violations: {violations:?}",
                    b.name
                );
                jit::opt::optimize(&mut rf, &config);
                let violations = jit::verify::verify_rfunc(&rf);
                assert!(
                    violations.is_empty(),
                    "{} ({tier}): optimized code has violations: {violations:?}",
                    b.name
                );
                checked_funcs += 1;
            }
        }
    }
    assert!(checked_funcs > 100, "sweep looks too small: {checked_funcs} functions");
}

#[test]
fn verifier_time_is_accounted_outside_compile_work() {
    let b = suite::by_name("crc32").expect("registered");
    let bytes = b.compile(wacc::OptLevel::O2).expect("compile");
    let module = wasm_core::decode::decode(&bytes).expect("decode");
    wasm_core::validate::validate(&module).expect("validate");
    let (_, stats) = jit::compile_module(Rc::new(module), Tier::Llvm).expect("compile");
    if jit::verify::enabled() {
        assert!(stats.passes.verify_ns > 0, "verification ran but recorded no time");
    }
    // Modeled compile work must not move with verification overhead.
    assert_eq!(
        stats.total_work(),
        stats.lowered_ops as u64 + stats.passes.op_visits
    );
}
