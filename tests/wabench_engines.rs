//! WABench × engines: every benchmark must produce its native checksum on
//! every engine (test scale, -O2), and across optimization levels on the
//! default engine of each family.

use engines::{Engine, EngineKind};
use wasi_rt::WasiCtx;
use wasm_core::types::Value;

fn run_on(kind: EngineKind, bytes: &[u8], n: i32) -> i32 {
    let compiled = Engine::new(kind).compile(bytes).expect("compile");
    let mut inst = compiled
        .instantiate(&wasi_rt::imports(), Box::new(WasiCtx::new()))
        .expect("instantiate");
    match inst.invoke("run", &[Value::I32(n)]) {
        Ok(Some(Value::I32(v))) => v,
        other => panic!("{kind}: run({n}) -> {other:?}"),
    }
}

#[test]
fn all_benchmarks_on_all_engines() {
    for b in suite::all() {
        let expected = (b.native)(b.sizes.test);
        let bytes = b.compile(wacc::OptLevel::O2).expect("compile");
        for kind in EngineKind::all() {
            let got = run_on(kind, &bytes, b.sizes.test);
            assert_eq!(got, expected, "{} on {kind}", b.name);
        }
    }
}

#[test]
fn optimization_levels_preserve_semantics() {
    // A representative subset across groups, all levels, two engines.
    for name in ["crc32", "gemm", "quicksort", "gnuchess", "mnist"] {
        let b = suite::by_name(name).expect("registered");
        let expected = (b.native)(b.sizes.test);
        for level in wacc::OptLevel::all() {
            let bytes = b.compile(level).expect("compile");
            for kind in [EngineKind::Wavm, EngineKind::Wasm3] {
                let got = run_on(kind, &bytes, b.sizes.test);
                assert_eq!(got, expected, "{name} at {level} on {kind}");
            }
        }
    }
}

#[test]
fn aot_artifacts_preserve_semantics() {
    for name in ["sha", "atax", "whitedb"] {
        let b = suite::by_name(name).expect("registered");
        let expected = (b.native)(b.sizes.test);
        let bytes = b.compile(wacc::OptLevel::O2).expect("compile");
        for kind in [
            EngineKind::Wasmtime,
            EngineKind::Wavm,
            EngineKind::Wasmer(engines::Backend::Cranelift),
        ] {
            let engine = Engine::new(kind);
            let artifact = engine.precompile(&bytes).expect("precompile");
            let compiled = engine.load_artifact(&artifact).expect("load");
            let mut inst = compiled
                .instantiate(&wasi_rt::imports(), Box::new(WasiCtx::new()))
                .expect("instantiate");
            let got = match inst.invoke("run", &[Value::I32(b.sizes.test)]) {
                Ok(Some(Value::I32(v))) => v,
                other => panic!("{other:?}"),
            };
            assert_eq!(got, expected, "{name} AOT on {kind}");
        }
    }
}
