//! Tests that pin the *characterization shapes* the paper reports — if a
//! refactor breaks one of these, the reproduction no longer tells the
//! paper's story.

use engines::{Backend, Engine, EngineKind};
use harness::runner;
use wacc::OptLevel;

fn counters(kind: EngineKind, name: &str) -> archsim::Counters {
    let b = suite::by_name(name).expect("registered");
    let bytes = runner::wasm_bytes(b, OptLevel::O2);
    runner::run_profiled(kind, &bytes, b.sizes.test)
}

fn native_counters(name: &str) -> archsim::Counters {
    let b = suite::by_name(name).expect("registered");
    let bytes = runner::wasm_bytes(b, OptLevel::O2);
    runner::run_native_profiled(&bytes, b.sizes.test)
}

/// Finding 1/6 shape: instruction counts order as
/// native < compiled tiers < Wasm3 < WAMR.
#[test]
fn instruction_count_ordering() {
    for name in ["crc32", "gemm", "quicksort"] {
        let native = native_counters(name).instructions;
        let wasmtime = counters(EngineKind::Wasmtime, name).instructions;
        let wasm3 = counters(EngineKind::Wasm3, name).instructions;
        let wamr = counters(EngineKind::Wamr, name).instructions;
        assert!(native < wasmtime, "{name}: native {native} < wasmtime {wasmtime}");
        assert!(wasmtime < wasm3, "{name}: wasmtime {wasmtime} < wasm3 {wasm3}");
        assert!(wasm3 < wamr, "{name}: wasm3 {wasm3} < wamr {wamr}");
    }
}

/// Finding 7 shape: interpreters take more branch-prediction misses than
/// the compiled tiers, but their miss *ratios* stay within the same order
/// of magnitude as native (the dispatch branch is largely predictable).
#[test]
fn branch_prediction_shape() {
    for name in ["crc32", "sha"] {
        let native = native_counters(name);
        let wasmtime = counters(EngineKind::Wasmtime, name);
        let wasm3 = counters(EngineKind::Wasm3, name);
        assert!(
            wasm3.branch_misses > wasmtime.branch_misses,
            "{name}: interpreter misses {} > compiled {}",
            wasm3.branch_misses,
            wasmtime.branch_misses
        );
        // The paper's Table 5 finding: ITTAGE-class history predictors make
        // the dispatch branch nearly free — interpreter miss *ratios* stay
        // in the low single digits, comparable to (often below) native.
        assert!(
            wasm3.branch_miss_ratio() < 0.05,
            "{name}: wasm3 dispatch should be nearly fully predictable, got {:.1}%",
            wasm3.branch_miss_ratio() * 100.0
        );
        assert!(native.branch_miss_ratio() < 0.10, "{name}");
    }
}

/// Interpreter code personality: an interpreter fetches its bytecode as
/// *data* (large D-side traffic, small hot I-side loop); compiled code is
/// fetched on the I-side.
#[test]
fn icache_vs_dcache_personality() {
    let name = "crc32";
    let wamr = counters(EngineKind::Wamr, name);
    let wasmtime = counters(EngineKind::Wasmtime, name);
    // The interpreter's D-side accesses dwarf the compiled tier's.
    assert!(
        wamr.l1d_accesses > 2 * wasmtime.l1d_accesses,
        "interpreter D-side {} vs compiled {}",
        wamr.l1d_accesses,
        wasmtime.l1d_accesses
    );
}

/// Finding 2 shape: on compute kernels the optimizing backends beat
/// SinglePass in executed work.
#[test]
fn backend_quality_ordering() {
    let b = suite::by_name("gemm").expect("registered");
    let bytes = runner::wasm_bytes(b, OptLevel::O2);
    let n = b.sizes.test;
    let sp = runner::run_profiled(EngineKind::Wasmer(Backend::Singlepass), &bytes, n);
    let cl = runner::run_profiled(EngineKind::Wasmer(Backend::Cranelift), &bytes, n);
    assert!(
        cl.instructions < sp.instructions,
        "cranelift {} should retire less than singlepass {}",
        cl.instructions,
        sp.instructions
    );
}

/// Finding 3 shape: AOT removes compile work, and the LLVM-analogue tier
/// has the most to remove.
#[test]
fn aot_compile_cost_ordering() {
    let b = suite::by_name("gnuchess").expect("registered");
    let bytes = runner::wasm_bytes(b, OptLevel::O2);
    let wavm = Engine::new(EngineKind::Wavm);
    let wasmtime = Engine::new(EngineKind::Wasmtime);
    let stats_wavm = wavm.compile(&bytes).expect("compile").compile_stats();
    let stats_wasmtime = wasmtime.compile(&bytes).expect("compile").compile_stats();
    assert!(
        stats_wavm.total_work() > 2 * stats_wasmtime.total_work(),
        "LLVM-analogue compile work {} should far exceed Cranelift-analogue {}",
        stats_wavm.total_work(),
        stats_wasmtime.total_work()
    );
    // Loading an artifact does no compile work at all.
    let artifact = wavm.precompile(&bytes).expect("precompile");
    let loaded = wavm.load_artifact(&artifact).expect("load");
    assert_eq!(loaded.compile_stats().total_work(), 0);
}

/// Finding 5 shape: memory overhead orders WAVM > Wasmtime/Wasmer > the
/// interpreters, and every engine exceeds the guest's own footprint.
#[test]
fn memory_overhead_ordering() {
    let b = suite::by_name("whitedb").expect("registered");
    let bytes = runner::wasm_bytes(b, OptLevel::O2);
    let n = b.sizes.test;
    let overhead = |kind| runner::run_memory(kind, &bytes, n).runtime_overhead();
    let wavm = overhead(EngineKind::Wavm);
    let wasmtime = overhead(EngineKind::Wasmtime);
    let wasm3 = overhead(EngineKind::Wasm3);
    let wamr = overhead(EngineKind::Wamr);
    assert!(wavm > wasmtime, "WAVM {wavm} > Wasmtime {wasmtime}");
    assert!(wasmtime > wasm3, "Wasmtime {wasmtime} > Wasm3 {wasm3}");
    assert!(wasmtime > wamr, "Wasmtime {wasmtime} > WAMR {wamr}");
}

/// Finding 4 shape: interpreters benefit more from `-O2` input than the
/// optimizing tiers (which re-optimize anyway).
#[test]
fn opt_level_sensitivity_shape() {
    let b = suite::by_name("gemm").expect("registered");
    let n = b.sizes.test;
    let o0 = runner::wasm_bytes(b, OptLevel::O0);
    let o2 = runner::wasm_bytes(b, OptLevel::O2);
    let gain = |kind| {
        let c0 = runner::run_profiled(kind, &o0, n).instructions as f64;
        let c2 = runner::run_profiled(kind, &o2, n).instructions as f64;
        c0 / c2
    };
    let interp_gain = gain(EngineKind::Wasm3);
    let jit_gain = gain(EngineKind::Wavm);
    assert!(
        interp_gain > jit_gain,
        "interpreter gain {interp_gain:.2} should exceed optimizing-tier gain {jit_gain:.2}"
    );
    assert!(interp_gain > 1.2, "O2 should help interpreters: {interp_gain:.2}");
}
