//! Guard against linear-memory layout collisions at the largest workload
//! scale: every benchmark must still match its native checksum at the
//! `timing` size. Expensive; run with `cargo test --release -- --ignored`.

use engines::{Engine, EngineKind};
use wasi_rt::WasiCtx;
use wasm_core::types::Value;

#[test]
#[ignore = "several minutes; run explicitly before timing experiments"]
fn all_benchmarks_at_timing_scale() {
    for b in suite::all() {
        let n = b.sizes.timing;
        let expected = (b.native)(n);
        let bytes = b.compile(wacc::OptLevel::O2).expect("compile");
        let compiled = Engine::new(EngineKind::Wasmtime)
            .compile(&bytes)
            .expect("engine compile");
        let mut inst = compiled
            .instantiate(&wasi_rt::imports(), Box::new(WasiCtx::new()))
            .expect("instantiate");
        let got = inst.invoke("run", &[Value::I32(n)]).expect("run");
        assert_eq!(got, Some(Value::I32(expected)), "{} at timing scale", b.name);
    }
}

#[test]
fn all_benchmarks_at_profile_scale() {
    for b in suite::all() {
        let n = b.sizes.profile;
        let expected = (b.native)(n);
        let bytes = b.compile(wacc::OptLevel::O2).expect("compile");
        let compiled = Engine::new(EngineKind::Wasmtime)
            .compile(&bytes)
            .expect("engine compile");
        let mut inst = compiled
            .instantiate(&wasi_rt::imports(), Box::new(WasiCtx::new()))
            .expect("instantiate");
        let got = inst.invoke("run", &[Value::I32(n)]).expect("run");
        assert_eq!(got, Some(Value::I32(expected)), "{} at profile scale", b.name);
    }
}
