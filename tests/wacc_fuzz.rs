//! Differential fuzzing of the compiler pipeline: random WaCC programs,
//! evaluated by the reference evaluator and executed by all five engines
//! at every optimization level — everything must agree.

use engines::{Engine, EngineKind};
use wasi_rt::WasiCtx;
use proptest::prelude::*;
use wasm_core::types::Value;

/// Generates a random arithmetic expression over `a`, `b`, `t` (i32).
fn next(rng: &mut u64, m: u64) -> u64 {
    *rng ^= *rng << 13;
    *rng ^= *rng >> 7;
    *rng ^= *rng << 17;
    *rng % m
}

fn gen_expr_with(rng: &mut u64, depth: u32, allow_t: bool) -> String {
    if depth == 0 || next(rng, 4) == 0 {
        return match next(rng, 5) {
            0 => "a".to_string(),
            1 => "b".to_string(),
            2 if allow_t => "t".to_string(),
            2 => "b".to_string(),
            3 => format!("{}", next(rng, 100) as i64 - 50),
            _ => format!("{}", next(rng, 1 << 20) as i64),
        };
    }
    let l = gen_expr_with(rng, depth - 1, allow_t);
    let r = gen_expr_with(rng, depth - 1, allow_t);
    match next(rng, 11) {
        0 => format!("({l} + {r})"),
        1 => format!("({l} - {r})"),
        2 => format!("({l} * {r})"),
        // Shield division from traps: |r| + 1 cannot be zero.
        3 => format!("({l} / (abs({r}) + 1))"),
        4 => format!("remu({l}, abs({r}) + 1)"),
        5 => format!("({l} & {r})"),
        6 => format!("({l} | {r})"),
        7 => format!("({l} ^ {r})"),
        8 => format!("({l} << ({r} & 31))"),
        9 => format!("({l} >>> ({r} & 31))"),
        _ => format!("(({l} < {r}) + rotl({l}, {r} & 31))"),
    }
}

fn gen_program(seed: u64) -> String {
    let mut rng = seed | 1;
    let e1 = gen_expr_with(&mut rng, 4, true);
    let e2 = gen_expr_with(&mut rng, 4, true);
    // `t`'s initializer cannot reference `t` itself.
    let e3 = gen_expr_with(&mut rng, 3, false);
    format!(
        "export fn test(a: i32, b: i32) -> i32 {{
             let t: i32 = {e3};
             let x: i32 = {e1};
             for (let i: i32 = 0; i < 4; i += 1) {{
                 t = t + {e2};
                 if (t > 1000000) {{ t = t - x; }}
             }}
             return mix_result(x, t);
         }}
         fn mix_result(x: i32, t: i32) -> i32 {{
             return (x ^ t) * 16777619;
         }}"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_programs_agree_everywhere(seed in any::<u64>(), a in any::<i32>(), b in any::<i32>()) {
        let src = gen_program(seed);
        // Reference: the evaluator on the unoptimized AST.
        let program = wacc::frontend(&src, wacc::OptLevel::O0).expect("frontend");
        let mut ev = wacc::eval::Evaluator::new(&program);
        let expected = match ev
            .call("test", &[wacc::eval::V::I32(a), wacc::eval::V::I32(b)])
            .expect("eval")
        {
            Some(wacc::eval::V::I32(v)) => v,
            other => panic!("{other:?}"),
        };
        for level in wacc::OptLevel::all() {
            // Optimized AST still agrees.
            let opt_program = wacc::frontend(&src, level).expect("frontend");
            let mut ev = wacc::eval::Evaluator::new(&opt_program);
            let got = ev
                .call("test", &[wacc::eval::V::I32(a), wacc::eval::V::I32(b)])
                .expect("eval");
            prop_assert_eq!(got, Some(wacc::eval::V::I32(expected)), "evaluator at {}", level);

            // And all engines agree.
            let bytes = wacc::compile_to_bytes(&src, level).expect("compile");
            for kind in EngineKind::all() {
                let compiled = Engine::new(kind).compile(&bytes).expect("engine compile");
                let mut inst = compiled
                    .instantiate(&wasi_rt::imports(), Box::new(WasiCtx::new()))
                    .expect("instantiate");
                let got = inst
                    .invoke("test", &[Value::I32(a), Value::I32(b)])
                    .expect("run");
                prop_assert_eq!(got, Some(Value::I32(expected)), "{} at {}", kind, level);
            }
        }
    }
}
