//! Cross-crate differential tests: every WaCC program must produce the
//! same result on the reference evaluator and all five engines, at every
//! optimization level.

use engines::{Engine, EngineKind};
use wasi_rt::WasiCtx;
use wacc::eval::{Evaluator, V};
use wacc::OptLevel;
use wasm_core::types::Value;

/// Compiles and runs `src`'s exported `test()` on every engine at every
/// opt level, asserting all results equal the evaluator's.
fn assert_all_agree(src: &str) {
    let expected = {
        let program = wacc::frontend(src, OptLevel::O0).expect("frontend");
        let mut ev = Evaluator::new(&program);
        ev.call("test", &[]).expect("eval")
    };
    let expected_i32 = match expected {
        Some(V::I32(v)) => v,
        other => panic!("test() should return i32, got {other:?}"),
    };

    for level in OptLevel::all() {
        // The evaluator must agree with itself at every level.
        let program = wacc::frontend(src, level).expect("frontend");
        let mut ev = Evaluator::new(&program);
        assert_eq!(
            ev.call("test", &[]).expect("eval"),
            Some(V::I32(expected_i32)),
            "evaluator at {level}"
        );

        let bytes = wacc::compile_to_bytes(src, level).expect("compile");
        for kind in EngineKind::all() {
            let engine = Engine::new(kind);
            let compiled = engine.compile(&bytes).unwrap_or_else(|e| {
                panic!("{kind} failed to compile at {level}: {e}")
            });
            let mut inst = compiled
                .instantiate(&wasi_rt::imports(), Box::new(WasiCtx::new()))
                .expect("instantiate");
            let out = inst
                .invoke("test", &[])
                .unwrap_or_else(|e| panic!("{kind} at {level} trapped: {e}"));
            assert_eq!(
                out,
                Some(Value::I32(expected_i32)),
                "{kind} at {level} disagrees with the evaluator"
            );
        }
    }
}

#[test]
fn arithmetic_kernel() {
    assert_all_agree(
        r#"
        export fn test() -> i32 {
            let acc: i32 = 0;
            for (let i: i32 = 1; i <= 100; i += 1) {
                acc = acc + i * i - (i / 3) + (i % 7);
            }
            return acc;
        }
    "#,
    );
}

#[test]
fn memory_matrix_kernel() {
    assert_all_agree(
        r#"
        const BASE = 4096;
        const N = 12;
        export fn test() -> i32 {
            // A[i][j] = i + j; B = A * A (i32 matrices in linear memory)
            for (let i: i32 = 0; i < N; i += 1) {
                for (let j: i32 = 0; j < N; j += 1) {
                    store_i32(BASE + (i * N + j) * 4, i + j);
                }
            }
            let cb: i32 = BASE + N * N * 4;
            for (let i: i32 = 0; i < N; i += 1) {
                for (let j: i32 = 0; j < N; j += 1) {
                    let s: i32 = 0;
                    for (let k: i32 = 0; k < N; k += 1) {
                        s += load_i32(BASE + (i * N + k) * 4) * load_i32(BASE + (k * N + j) * 4);
                    }
                    store_i32(cb + (i * N + j) * 4, s);
                }
            }
            let h: i32 = 0;
            for (let t: i32 = 0; t < N * N; t += 1) {
                h = h * 31 + load_i32(cb + t * 4);
            }
            return h;
        }
    "#,
    );
}

#[test]
fn float_kernel() {
    assert_all_agree(
        r#"
        export fn test() -> i32 {
            let x: f64 = 0.0;
            for (let i: i32 = 1; i < 500; i += 1) {
                x = x + sqrt(i as f64) * 1.5 - floor(x / 10.0);
            }
            // Quantize for exact comparison.
            return (x * 1000.0) as i32;
        }
    "#,
    );
}

#[test]
fn function_calls_and_recursion() {
    assert_all_agree(
        r#"
        fn fib(n: i32) -> i32 {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        fn gcd(a: i32, b: i32) -> i32 {
            while (b != 0) {
                let t: i32 = b;
                b = a % b;
                a = t;
            }
            return a;
        }
        export fn test() -> i32 {
            return fib(18) * 100 + gcd(1071, 462);
        }
    "#,
    );
}

#[test]
fn bit_manipulation() {
    assert_all_agree(
        r#"
        export fn test() -> i32 {
            let h: i32 = 0;
            let x: i32 = 0x12345678;
            for (let i: i32 = 0; i < 64; i += 1) {
                x = rotl(x ^ h, 7) + popcnt(x) + clz(h | 1) - ctz(x | 16);
                h = h * 33 + (x >>> 3) + (x >> 5) + (x << 2);
            }
            return h;
        }
    "#,
    );
}

#[test]
fn i64_arithmetic() {
    assert_all_agree(
        r#"
        export fn test() -> i32 {
            let h: i64 = 1469598103934665603L;
            for (let i: i32 = 0; i < 200; i += 1) {
                h = (h ^ (i as i64)) * 1099511628211L;
                h = h + divu(h, 97L) - remu(h, 31L);
            }
            return (h ^ (h >>> 32)) as i32;
        }
    "#,
    );
}

#[test]
fn logical_and_comparison_edge_cases() {
    assert_all_agree(
        r#"
        fn side(x: i32) -> i32 { return x; }
        export fn test() -> i32 {
            let a: i32 = 0;
            let r: i32 = 0;
            // Short-circuit must not evaluate the second operand.
            if (0 && (1 / a)) { r = 1; } else { r = 2; }
            if (1 || (1 / a)) { r = r + 10; }
            r = r + (ltu(-1, 0) * 100) + ((-1 < 0) as i32) * 1000;
            return r + (side(3) > 2) * 7;
        }
    "#,
    );
}

#[test]
fn string_data_and_io() {
    // I/O goes to WASI; engines need host imports. Run on evaluator and
    // engines with a sink import set; compare stdout checksums.
    let src = r#"
        export fn test() -> i32 {
            let s: i32 = "hello wabench";
            let h: i32 = 0;
            for (let i: i32 = 0; i < 13; i += 1) {
                h = h * 31 + load_u8(s + i);
            }
            print_i32(h);
            return h;
        }
    "#;
    assert_all_agree(src);
}

#[test]
fn globals_persist_across_calls() {
    let src = r#"
        global counter: i32 = 0;
        export fn bump() -> i32 {
            counter = counter + 1;
            return counter;
        }
    "#;
    let bytes = wacc::compile_to_bytes(src, OptLevel::O2).unwrap();
    for kind in EngineKind::all() {
        let compiled = Engine::new(kind).compile(&bytes).unwrap();
        let mut inst = compiled.instantiate(&wasi_rt::imports(), Box::new(WasiCtx::new())).unwrap();
        assert_eq!(inst.invoke("bump", &[]).unwrap(), Some(Value::I32(1)), "{kind}");
        assert_eq!(inst.invoke("bump", &[]).unwrap(), Some(Value::I32(2)), "{kind}");
        assert_eq!(inst.invoke("bump", &[]).unwrap(), Some(Value::I32(3)), "{kind}");
    }
}

#[test]
fn traps_are_uniform() {
    let src = "export fn test() -> i32 { return load_i32(0 - 8); }";
    let bytes = wacc::compile_to_bytes(src, OptLevel::O1).unwrap();
    for kind in EngineKind::all() {
        let compiled = Engine::new(kind).compile(&bytes).unwrap();
        let mut inst = compiled.instantiate(&wasi_rt::imports(), Box::new(WasiCtx::new())).unwrap();
        let err = inst.invoke("test", &[]).unwrap_err();
        assert_eq!(err, engines::Trap::MemoryOutOfBounds, "{kind}");
    }
}

#[test]
fn integer_abs_is_correct_on_every_engine() {
    // Regression for a select-operand-order bug in integer `abs` lowering.
    let src = "export fn f(x: i32) -> i32 { return abs(x); }";
    let bytes = wacc::compile_to_bytes(src, OptLevel::O1).unwrap();
    for kind in EngineKind::all() {
        let compiled = Engine::new(kind).compile(&bytes).unwrap();
        let mut inst = compiled
            .instantiate(&wasi_rt::imports(), Box::new(WasiCtx::new()))
            .unwrap();
        for (x, want) in [(5, 5), (-5, 5), (0, 0), (i32::MIN, i32::MIN)] {
            assert_eq!(
                inst.invoke("f", &[Value::I32(x)]).unwrap(),
                Some(Value::I32(want)),
                "abs({x}) on {kind}"
            );
        }
    }
}
