//! Engine conformance: every numeric instruction, executed on all five
//! engines over a grid of interesting operand values, must agree across
//! engines (and with the shared semantics in `engines::numeric`).

use engines::{Engine, EngineKind, Imports, Trap};
use wasm_core::builder::ModuleBuilder;
use wasm_core::instr::{Instr, MemArg};
use wasm_core::opcode::all_simple;
use wasm_core::types::{FuncType, ValType, Value};

fn binary_sig(op: Instr) -> Option<(ValType, ValType, ValType)> {
    use Instr::*;
    use ValType::*;
    Some(match op {
        I32Eq | I32Ne | I32LtS | I32LtU | I32GtS | I32GtU | I32LeS | I32LeU | I32GeS | I32GeU => {
            (I32, I32, I32)
        }
        I32Add | I32Sub | I32Mul | I32DivS | I32DivU | I32RemS | I32RemU | I32And | I32Or
        | I32Xor | I32Shl | I32ShrS | I32ShrU | I32Rotl | I32Rotr => (I32, I32, I32),
        I64Eq | I64Ne | I64LtS | I64LtU | I64GtS | I64GtU | I64LeS | I64LeU | I64GeS | I64GeU => {
            (I64, I64, I32)
        }
        I64Add | I64Sub | I64Mul | I64DivS | I64DivU | I64RemS | I64RemU | I64And | I64Or
        | I64Xor | I64Shl | I64ShrS | I64ShrU | I64Rotl | I64Rotr => (I64, I64, I64),
        F32Eq | F32Ne | F32Lt | F32Gt | F32Le | F32Ge => (F32, F32, I32),
        F32Add | F32Sub | F32Mul | F32Div | F32Min | F32Max | F32Copysign => (F32, F32, F32),
        F64Eq | F64Ne | F64Lt | F64Gt | F64Le | F64Ge => (F64, F64, I32),
        F64Add | F64Sub | F64Mul | F64Div | F64Min | F64Max | F64Copysign => (F64, F64, F64),
        _ => return None,
    })
}

fn unary_sig(op: Instr) -> Option<(ValType, ValType)> {
    use Instr::*;
    use ValType::*;
    Some(match op {
        I32Eqz => (I32, I32),
        I64Eqz => (I64, I32),
        I32Clz | I32Ctz | I32Popcnt | I32Extend8S | I32Extend16S => (I32, I32),
        I64Clz | I64Ctz | I64Popcnt | I64Extend8S | I64Extend16S | I64Extend32S => (I64, I64),
        F32Abs | F32Neg | F32Ceil | F32Floor | F32Trunc | F32Nearest | F32Sqrt => (F32, F32),
        F64Abs | F64Neg | F64Ceil | F64Floor | F64Trunc | F64Nearest | F64Sqrt => (F64, F64),
        I32WrapI64 => (I64, I32),
        I64ExtendI32S | I64ExtendI32U => (I32, I64),
        I32TruncF32S | I32TruncF32U => (F32, I32),
        I32TruncF64S | I32TruncF64U => (F64, I32),
        I64TruncF32S | I64TruncF32U => (F32, I64),
        I64TruncF64S | I64TruncF64U => (F64, I64),
        F32ConvertI32S | F32ConvertI32U => (I32, F32),
        F32ConvertI64S | F32ConvertI64U => (I64, F32),
        F32DemoteF64 => (F64, F32),
        F64ConvertI32S | F64ConvertI32U => (I32, F64),
        F64ConvertI64S | F64ConvertI64U => (I64, F64),
        F64PromoteF32 => (F32, F64),
        I32ReinterpretF32 => (F32, I32),
        I64ReinterpretF64 => (F64, I64),
        F32ReinterpretI32 => (I32, F32),
        F64ReinterpretI64 => (I64, F64),
        _ => return None,
    })
}

fn values_of(ty: ValType) -> Vec<Value> {
    match ty {
        ValType::I32 => [0i32, 1, -1, 2, 7, 31, 32, 63, i32::MIN, i32::MAX, -1640531527]
            .iter()
            .map(|v| Value::I32(*v))
            .collect(),
        ValType::I64 => [0i64, 1, -1, 63, 64, i64::MIN, i64::MAX, 0x0123_4567_89AB_CDEF]
            .iter()
            .map(|v| Value::I64(*v))
            .collect(),
        ValType::F32 => [0.0f32, -0.0, 1.5, -2.25, f32::INFINITY, f32::NEG_INFINITY, f32::NAN]
            .iter()
            .map(|v| Value::F32(*v))
            .collect(),
        ValType::F64 => [0.0f64, -0.0, 2.5, -3.5, 1e300, f64::INFINITY, f64::NAN]
            .iter()
            .map(|v| Value::F64(*v))
            .collect(),
    }
}

fn unop_module(op: Instr, a: ValType, r: ValType) -> Vec<u8> {
    let mut b = ModuleBuilder::new();
    let f = b.begin_func(FuncType::new(&[a], &[r]));
    b.emit(Instr::LocalGet(0));
    b.emit(op);
    b.finish_func();
    b.export_func("f", f);
    let m = b.build();
    wasm_core::validate::validate(&m).expect("conformance module valid");
    wasm_core::encode::encode(&m)
}

fn binop_module(op: Instr, a: ValType, bt: ValType, r: ValType) -> Vec<u8> {
    let mut b = ModuleBuilder::new();
    let f = b.begin_func(FuncType::new(&[a, bt], &[r]));
    b.emit(Instr::LocalGet(0));
    b.emit(Instr::LocalGet(1));
    b.emit(op);
    b.finish_func();
    b.export_func("f", f);
    let m = b.build();
    wasm_core::validate::validate(&m).expect("conformance module valid");
    wasm_core::encode::encode(&m)
}

/// Normalizes NaN payloads so cross-engine comparison treats any NaN as
/// equal (Wasm permits nondeterministic NaN payloads; our engines share
/// semantics, but the checksum should not depend on it).
fn canon(v: Option<Value>) -> String {
    match v {
        Some(Value::F32(f)) if f.is_nan() => "f32:NaN".into(),
        Some(Value::F64(f)) if f.is_nan() => "f64:NaN".into(),
        Some(Value::F32(f)) => format!("f32:{:08x}", f.to_bits()),
        Some(Value::F64(f)) => format!("f64:{:016x}", f.to_bits()),
        other => format!("{other:?}"),
    }
}

fn run_all_engines(bytes: &[u8], args: &[Value]) -> Vec<Result<String, Trap>> {
    EngineKind::all()
        .iter()
        .map(|kind| {
            let compiled = Engine::new(*kind).compile(bytes).expect("compile");
            let mut inst = compiled
                .instantiate(&Imports::new(), Box::new(()))
                .expect("instantiate");
            inst.invoke("f", args).map(canon)
        })
        .collect()
}

#[test]
fn every_simple_instruction_agrees_across_engines() {
    let mut covered = 0;
    for (_, op) in all_simple() {
        if let Some((a, b, r)) = binary_sig(op) {
            let bytes = binop_module(op, a, b, r);
            for va in values_of(a) {
                for vb in values_of(b) {
                    let results = run_all_engines(&bytes, &[va, vb]);
                    for w in results.windows(2) {
                        assert_eq!(w[0], w[1], "{op:?} with {va:?}, {vb:?}");
                    }
                }
            }
            covered += 1;
        } else if let Some((a, r)) = unary_sig(op) {
            let bytes = unop_module(op, a, r);
            for va in values_of(a) {
                let results = run_all_engines(&bytes, &[va]);
                for w in results.windows(2) {
                    assert_eq!(w[0], w[1], "{op:?} with {va:?}");
                }
            }
            covered += 1;
        }
    }
    // All numeric operators were exercised (the rest are control/memory).
    assert!(covered > 120, "covered {covered} operators");
}

#[test]
fn division_traps_agree_across_engines() {
    for op in [Instr::I32DivS, Instr::I32DivU, Instr::I32RemS, Instr::I32RemU] {
        let bytes = binop_module(op, ValType::I32, ValType::I32, ValType::I32);
        let results = run_all_engines(&bytes, &[Value::I32(5), Value::I32(0)]);
        for r in &results {
            assert_eq!(r.as_ref().unwrap_err(), &Trap::DivisionByZero, "{op:?}");
        }
    }
    let bytes = binop_module(Instr::I32DivS, ValType::I32, ValType::I32, ValType::I32);
    let results = run_all_engines(&bytes, &[Value::I32(i32::MIN), Value::I32(-1)]);
    for r in &results {
        assert_eq!(r.as_ref().unwrap_err(), &Trap::IntegerOverflow);
    }
}

#[test]
fn trunc_traps_agree_across_engines() {
    let bytes = unop_module(Instr::I32TruncF64S, ValType::F64, ValType::I32);
    for bad in [f64::NAN, 1e300, -1e300] {
        let results = run_all_engines(&bytes, &[Value::F64(bad)]);
        for r in &results {
            assert!(r.is_err(), "truncating {bad} must trap");
        }
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }
}

/// Every engine traps identically on out-of-bounds linear-memory accesses,
/// including offset arithmetic that overflows past the end of memory.
#[test]
fn memory_bounds_traps_agree_across_engines() {
    // f(addr) = i32.load(addr) over a single 64 KiB page.
    let mut b = ModuleBuilder::new();
    b.memory(1, Some(1));
    let f = b.begin_func(FuncType::new(&[ValType::I32], &[ValType::I32]));
    b.emit(Instr::LocalGet(0));
    b.emit(Instr::I32Load(MemArg::offset(0, 2)));
    b.finish_func();
    b.export_func("f", f);
    let m = b.build();
    wasm_core::validate::validate(&m).expect("valid");
    let bytes = wasm_core::encode::encode(&m);

    // Last fully in-bounds word succeeds everywhere.
    let ok = run_all_engines(&bytes, &[Value::I32(65532)]);
    for r in &ok {
        assert_eq!(r.as_ref().unwrap(), "Some(I32(0))");
    }
    // One past, far past, and negative (wraps to a huge u32) all trap.
    for bad in [65533, 65536, 1 << 30, -1, i32::MIN] {
        let results = run_all_engines(&bytes, &[Value::I32(bad)]);
        for (kind, r) in EngineKind::all().iter().zip(&results) {
            assert_eq!(
                r.as_ref().unwrap_err(),
                &Trap::MemoryOutOfBounds,
                "{kind:?} loading {bad}"
            );
        }
    }
}

/// A static offset that pushes an otherwise in-bounds address past the end
/// of memory traps on every engine.
#[test]
fn memory_offset_overflow_traps_agree() {
    let mut b = ModuleBuilder::new();
    b.memory(1, Some(1));
    let f = b.begin_func(FuncType::new(&[ValType::I32], &[ValType::I32]));
    b.emit(Instr::LocalGet(0));
    b.emit(Instr::I32Load(MemArg::offset(65535, 2)));
    b.finish_func();
    b.export_func("f", f);
    let m = b.build();
    wasm_core::validate::validate(&m).expect("valid");
    let bytes = wasm_core::encode::encode(&m);
    let results = run_all_engines(&bytes, &[Value::I32(8)]);
    for r in &results {
        assert_eq!(r.as_ref().unwrap_err(), &Trap::MemoryOutOfBounds);
    }
}

/// Out-of-bounds stores trap identically and leave no partial write.
#[test]
fn store_bounds_traps_agree_across_engines() {
    let mut b = ModuleBuilder::new();
    b.memory(1, Some(1));
    let f = b.begin_func(FuncType::new(&[ValType::I32], &[ValType::I32]));
    b.emit(Instr::LocalGet(0));
    b.emit(Instr::I32Const(0x55AA55AA));
    b.emit(Instr::I32Store(MemArg::offset(0, 2)));
    b.emit(Instr::I32Const(7));
    b.finish_func();
    b.export_func("f", f);
    let m = b.build();
    wasm_core::validate::validate(&m).expect("valid");
    let bytes = wasm_core::encode::encode(&m);
    for bad in [65533, -4] {
        let results = run_all_engines(&bytes, &[Value::I32(bad)]);
        for r in &results {
            assert_eq!(r.as_ref().unwrap_err(), &Trap::MemoryOutOfBounds);
        }
    }
}

/// `unreachable` raises the same trap on every engine.
#[test]
fn unreachable_traps_agree_across_engines() {
    let mut b = ModuleBuilder::new();
    let f = b.begin_func(FuncType::new(&[], &[ValType::I32]));
    b.emit(Instr::Unreachable);
    b.finish_func();
    b.export_func("f", f);
    let m = b.build();
    wasm_core::validate::validate(&m).expect("valid");
    let bytes = wasm_core::encode::encode(&m);
    let results = run_all_engines(&bytes, &[]);
    for r in &results {
        assert_eq!(r.as_ref().unwrap_err(), &Trap::Unreachable);
    }
}

/// `call_indirect` failure modes — null element, out-of-bounds element,
/// and signature mismatch — are distinguished identically everywhere.
#[test]
fn call_indirect_traps_agree_across_engines() {
    let mut b = ModuleBuilder::new();
    // A callee of the *wrong* type for the indirect call site.
    let wrong = b.begin_func(FuncType::new(&[], &[ValType::I64]));
    b.emit(Instr::I64Const(1));
    b.finish_func();
    // A callee of the right type.
    let right = b.begin_func(FuncType::new(&[], &[ValType::I32]));
    b.emit(Instr::I32Const(42));
    b.finish_func();
    // Table: [wrong, right, null].
    b.table(3, Some(3));
    b.elems(0, vec![wrong, right]);
    // f(sel) = call_indirect (type () -> i32) table[sel]
    let f = b.begin_func(FuncType::new(&[ValType::I32], &[ValType::I32]));
    b.emit(Instr::LocalGet(0));
    let want_ty = {
        let target = FuncType::new(&[], &[ValType::I32]);
        b.module()
            .types
            .iter()
            .position(|t| *t == target)
            .expect("type interned") as u32
    };
    b.emit(Instr::CallIndirect(want_ty));
    b.finish_func();
    b.export_func("f", f);
    let m = b.build();
    wasm_core::validate::validate(&m).expect("valid");
    let bytes = wasm_core::encode::encode(&m);

    let ok = run_all_engines(&bytes, &[Value::I32(1)]);
    for r in &ok {
        assert_eq!(r.as_ref().unwrap(), "Some(I32(42))");
    }
    let mismatch = run_all_engines(&bytes, &[Value::I32(0)]);
    for r in &mismatch {
        assert_eq!(r.as_ref().unwrap_err(), &Trap::IndirectCallTypeMismatch);
    }
    for sel in [2, 3, 100, -1] {
        let results = run_all_engines(&bytes, &[Value::I32(sel)]);
        for r in &results {
            assert_eq!(r.as_ref().unwrap_err(), &Trap::UndefinedElement, "sel {sel}");
        }
    }
}

/// Unbounded recursion hits the engine's depth limit as a `StackOverflow`
/// trap (not a host stack fault) on every engine.
#[test]
fn stack_overflow_traps_agree_across_engines() {
    // Engines that recurse natively need headroom to reach their own
    // depth limit before the host stack runs out (debug frames are fat),
    // so the body runs on a thread with a generous stack.
    let body = || {
        let mut b = ModuleBuilder::new();
        let f = b.begin_func(FuncType::new(&[ValType::I32], &[ValType::I32]));
        b.emit(Instr::LocalGet(0));
        b.emit(Instr::Call(0));
        b.finish_func();
        b.export_func("f", f);
        let m = b.build();
        wasm_core::validate::validate(&m).expect("valid");
        let bytes = wasm_core::encode::encode(&m);
        let results = run_all_engines(&bytes, &[Value::I32(0)]);
        for (kind, r) in EngineKind::all().iter().zip(&results) {
            assert_eq!(r.as_ref().unwrap_err(), &Trap::StackOverflow, "{kind:?}");
        }
    };
    std::thread::Builder::new()
        .stack_size(256 * 1024 * 1024)
        .spawn(body)
        .expect("spawn")
        .join()
        .expect("stack overflow test thread");
}

/// `memory.grow` past the declared maximum is a `-1` result, not a trap,
/// and the size stays unchanged — on every engine.
#[test]
fn grow_past_max_agrees_across_engines() {
    let mut b = ModuleBuilder::new();
    b.memory(1, Some(2));
    let f = b.begin_func(FuncType::new(&[ValType::I32], &[ValType::I32]));
    b.emit(Instr::LocalGet(0));
    b.emit(Instr::MemoryGrow);
    b.emit(Instr::Drop);
    b.emit(Instr::MemorySize);
    b.finish_func();
    b.export_func("f", f);
    let m = b.build();
    wasm_core::validate::validate(&m).expect("valid");
    let bytes = wasm_core::encode::encode(&m);
    // Growing by 5 exceeds max=2: size stays 1.
    for r in &run_all_engines(&bytes, &[Value::I32(5)]) {
        assert_eq!(r.as_ref().unwrap(), "Some(I32(1))");
    }
    // Growing by 1 fits: size becomes 2.
    for r in &run_all_engines(&bytes, &[Value::I32(1)]) {
        assert_eq!(r.as_ref().unwrap(), "Some(I32(2))");
    }
}
