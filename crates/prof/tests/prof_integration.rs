//! End-to-end profiling tests: the record→diff regression gate on real
//! measurements, folded-stack export against the Chrome exporter, and
//! counter-attribution conservation on a live profiled run.
//!
//! Several tests flip the process-global trace sink, so everything
//! here serializes on one mutex.

use std::sync::Mutex;

use engines::EngineKind;
use prof::baseline::{BaselineRecord, WallStats};
use prof::diff::{diff, DiffRule};
use prof::measure::{measure_cell, CellSpec, Scale};
use prof::workload::WorkloadSpec;
use wacc::OptLevel;

static SINK_GATE: Mutex<()> = Mutex::new(());

fn measure_record(engine: EngineKind, slowdown: f64) -> BaselineRecord {
    let b = suite::by_name("crc32").expect("registered");
    let spec = CellSpec {
        bench: b,
        engine,
        level: OptLevel::O1,
        scale: Scale::Test,
    };
    let reps = 3;
    let m = measure_cell(&spec, reps, slowdown).expect("measure");
    BaselineRecord {
        bench: "crc32".into(),
        engine: engine.name().into(),
        level: "O1".into(),
        scale: "test".into(),
        reps,
        wall: WallStats::from_samples(&m.wall_s),
        counters: m.counters,
    }
}

/// The acceptance loop: record a baseline, re-measure unchanged code —
/// the gate must stay quiet; re-measure under a synthetic slowdown —
/// the gate must fire and name the regressed cell.
#[test]
fn record_then_diff_fires_only_under_slowdown() {
    let base = vec![measure_record(EngineKind::Wasm3, 1.0)];

    // Unchanged tree: counters are deterministic (exactly equal) and
    // wall times come from the same distribution — no regression.
    let same = vec![measure_record(EngineKind::Wasm3, 1.0)];
    let report = diff(&base, &same, &DiffRule::default());
    assert!(report.ok(), "clean re-run flagged: {:?}", report.regressions);
    assert_eq!(report.checked, 1);

    // Synthetic slowdown (the WABENCH_PROF_SLOWDOWN path, passed here
    // as the library parameter): the mean moves 3× with the spread
    // scaling along, so the CIs separate and the gate fires.
    let slow = vec![measure_record(EngineKind::Wasm3, 3.0)];
    let report = diff(&base, &slow, &DiffRule::default());
    assert!(!report.ok(), "3× slowdown not flagged");
    assert!(
        report.regressions.iter().any(|r| r.contains("crc32 × Wasm3")),
        "regression does not name the cell: {:?}",
        report.regressions
    );
}

/// Baseline files survive the disk round trip byte-exactly, including
/// the floating-point wall statistics.
#[test]
fn baseline_file_round_trips_real_measurements() {
    let records = vec![measure_record(EngineKind::Wasm3, 1.0)];
    let dir = std::env::temp_dir().join(format!("wabench-prof-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("baseline.jsonl");
    prof::baseline::write_file(&path, &records).expect("write");
    let back = prof::baseline::read_file(&path).expect("read");
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(back, records);
}

/// Folded export from a real 4-worker scheduler run: the collapsed
/// stacks must parse, and their maximum depth must agree with the
/// Chrome exporter's reconstruction of the same trace — both exporters
/// walk the same ring data, so a depth disagreement means one of them
/// is mis-nesting spans.
#[test]
fn folded_depths_match_chrome_under_workers() {
    let _gate = SINK_GATE.lock().unwrap();
    let spec = WorkloadSpec {
        benches: vec!["crc32".to_string()],
        engines: vec![
            EngineKind::Wasmtime,
            EngineKind::Wasm3,
            EngineKind::Wamr,
            EngineKind::Wavm,
        ],
        level: OptLevel::O1,
        scale: svc::Scale::Test,
        mode: svc::JobMode::Profiled,
        workers: 4,
    };
    let trace = prof::workload::capture_trace(&spec).expect("capture");
    assert!(trace.span_count() > 0);

    let folded = obs::folded::export_string(&trace, obs::folded::Weight::WallNs);
    let summary = obs::folded::parse(&folded).expect("folded output parses");
    assert!(summary.stacks > 0);

    let chrome = obs::chrome::export_string(&trace);
    let chrome_summary = obs::chrome::validate(&chrome).expect("chrome trace validates");
    assert_eq!(
        summary.max_depth, chrome_summary.max_depth,
        "folded and Chrome exporters disagree on stack depth"
    );
    // The scheduler pipeline shows up as frames in the folded output.
    for frame in ["svc.job.run", "engine.compile"] {
        assert!(
            summary.frames.iter().any(|f| f == frame),
            "missing frame {frame:?} in folded export"
        );
    }

    // Profiled jobs attribute counters, so an instruction-weighted
    // flamegraph of the same trace is non-empty.
    let by_instrs = obs::folded::export_string(&trace, obs::folded::Weight::Instructions);
    assert!(
        !by_instrs.is_empty(),
        "profiled run produced no counter-weighted stacks"
    );
}

/// Conservation on a live run: the `prof.cell` span's counter payload
/// is the simulator's total, and the attributed child spans
/// (profiled compile + execute) partition it exactly — the parent's
/// *self* counters must come out zero.
#[test]
fn attribution_conserves_counters_on_live_run() {
    let _gate = SINK_GATE.lock().unwrap();
    obs::trace::install(obs::trace::Sink::Ring);
    let b = suite::by_name("crc32").expect("registered");
    let spec = CellSpec {
        bench: b,
        engine: EngineKind::Wamr,
        level: OptLevel::O1,
        scale: Scale::Test,
    };
    let m = measure_cell(&spec, 1, 1.0).expect("measure");
    let trace = obs::trace::drain();
    obs::trace::install(obs::trace::Sink::Null);

    let thread = trace
        .threads
        .iter()
        .find(|t| t.events.iter().any(|e| e.name == "prof.cell"))
        .expect("prof.cell thread recorded");
    let nodes = obs::prof::aggregate(&thread.events);
    let parent = nodes.get(&vec!["prof.cell"]).expect("parent node");
    assert_eq!(
        parent.total.instructions, m.counters.instructions,
        "parent payload is not the simulator total"
    );
    assert!(parent.has_counters);
    assert_eq!(
        parent.self_counters.instructions, 0,
        "children do not partition the parent's instructions"
    );
    assert_eq!(parent.self_counters.cycles, 0);

    let child_sum: u64 = nodes
        .iter()
        .filter(|(path, _)| path.len() == 2 && path[0] == "prof.cell")
        .map(|(_, n)| n.total.instructions)
        .sum();
    assert_eq!(child_sum, parent.total.instructions);
}
