//! Scheduler-driven trace capture for `wabench-prof fold`.
//!
//! Flamegraphs are most interesting when the process is actually
//! concurrent, so the fold path runs a real job matrix through the
//! [`svc`] worker pool with the ring sink installed and drains the
//! per-thread rings into one [`obs::trace::Trace`].
//!
//! Capturing flips the process-global trace sink; callers running
//! inside `cargo test` must serialize on their own gate.

use std::time::Duration;

use engines::EngineKind;
use svc::scheduler::{Config, Scheduler};
use svc::{JobMode, JobSpec, Scale};
use wacc::OptLevel;

/// What to run while the ring sink records.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Benchmarks to submit (each runs on every engine).
    pub benches: Vec<String>,
    /// Engines to submit each benchmark on.
    pub engines: Vec<EngineKind>,
    /// Opt level for every job.
    pub level: OptLevel,
    /// Workload scale for every job.
    pub scale: Scale,
    /// Job mode; `Profiled` makes engine spans carry counter payloads.
    pub mode: JobMode,
    /// Worker threads in the pool.
    pub workers: usize,
}

impl Default for WorkloadSpec {
    fn default() -> WorkloadSpec {
        WorkloadSpec {
            benches: vec!["crc32".to_string()],
            engines: EngineKind::all().to_vec(),
            level: OptLevel::O2,
            scale: Scale::Test,
            mode: JobMode::Profiled,
            workers: 4,
        }
    }
}

/// Runs the matrix under the ring sink and returns the drained trace.
/// The sink is restored to `Null` before returning, success or not.
///
/// # Errors
///
/// Scheduler start failures and failed jobs (by cell name).
pub fn capture_trace(spec: &WorkloadSpec) -> Result<obs::trace::Trace, String> {
    for b in &spec.benches {
        if suite::by_name(b).is_none() {
            return Err(format!("unknown benchmark {b:?}"));
        }
    }
    obs::trace::install(obs::trace::Sink::Ring);
    let result = run_matrix(spec);
    let trace = obs::trace::drain();
    obs::trace::install(obs::trace::Sink::Null);
    result.map(|()| trace)
}

fn run_matrix(spec: &WorkloadSpec) -> Result<(), String> {
    let sched = Scheduler::start(Config {
        workers: spec.workers.max(1),
        timeout: Duration::from_secs(300),
        store_dir: None,
        store_cap_bytes: 0,
        ..Config::default()
    })
    .map_err(|e| format!("start scheduler: {e}"))?;
    for bench in &spec.benches {
        for kind in &spec.engines {
            sched.submit(JobSpec {
                benchmark: bench.clone(),
                engine: *kind,
                level: spec.level,
                scale: spec.scale,
                mode: spec.mode,
                warm: false,
            });
        }
    }
    let results = sched.drain_sorted();
    sched.shutdown();
    let failed: Vec<String> = results
        .iter()
        .filter(|r| !r.ok())
        .map(|r| format!("{} × {}", r.spec.benchmark, r.spec.engine.name()))
        .collect();
    if failed.is_empty() {
        Ok(())
    } else {
        Err(format!("jobs failed: {}", failed.join(", ")))
    }
}
