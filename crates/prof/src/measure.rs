//! The repetition driver behind `wabench-prof record` and `diff`.
//!
//! Each repetition is a cold profiled run: fresh engine, fresh
//! simulator, compile + execute under [`archsim`]. Wall-clock time
//! varies between repetitions (and machines); the simulated counters
//! do not — the simulator is deterministic, so a single repetition's
//! counters characterize the cell exactly.

use archsim::{ArchSim, Counters};
use engines::{Engine, EngineKind};
use suite::Benchmark;
use wacc::OptLevel;
use wasi_rt::WasiCtx;
use wasm_core::types::Value;

pub use harness::runner::Scale;

/// One benchmark × engine × opt-level × scale cell.
#[derive(Debug, Clone, Copy)]
pub struct CellSpec<'a> {
    /// The benchmark to run.
    pub bench: &'a Benchmark,
    /// The engine under test.
    pub engine: EngineKind,
    /// Source optimization level.
    pub level: OptLevel,
    /// Workload scale.
    pub scale: Scale,
}

/// What [`measure_cell`] collected.
#[derive(Debug, Clone)]
pub struct CellMeasurement {
    /// Wall-clock seconds per repetition (already scaled by the
    /// slowdown multiplier).
    pub wall_s: Vec<f64>,
    /// Simulated counters for the cell (identical across repetitions).
    pub counters: Counters,
}

/// Runs `spec` for `reps` repetitions, verifying the checksum each
/// time. `slowdown` multiplies the recorded wall times — it exists so
/// the regression detector can be exercised end-to-end (a synthetic
/// 2× slowdown must trip the diff); production callers pass `1.0`.
///
/// Each repetition emits a `prof.cell` span carrying the cell's full
/// counter totals, so a ring-sink capture of a measurement session
/// yields an attributed profile for free.
///
/// # Errors
///
/// A message naming the cell on compile failure, trap, or checksum
/// mismatch.
pub fn measure_cell(
    spec: &CellSpec<'_>,
    reps: u32,
    slowdown: f64,
) -> Result<CellMeasurement, String> {
    let n = spec.scale.arg(spec.bench);
    let expected = (spec.bench.native)(n);
    let bytes = harness::runner::wasm_bytes(spec.bench, spec.level);
    let cell = format!("{} × {}", spec.bench.name, spec.engine.name());
    let mut wall_s = Vec::with_capacity(reps as usize);
    let mut counters = Counters::default();
    for _ in 0..reps.max(1) {
        let mut span = obs::span!("prof.cell", engine = spec.engine.name(), n = n);
        let t0 = std::time::Instant::now();
        let mut sim = ArchSim::new();
        let engine = Engine::new(spec.engine);
        let compiled = engine
            .compile_profiled(&bytes, &mut sim)
            .map_err(|e| format!("{cell}: compile: {e}"))?;
        let mut inst = compiled
            .instantiate(&wasi_rt::imports(), Box::new(WasiCtx::new()))
            .map_err(|e| format!("{cell}: instantiate: {e}"))?;
        let out = inst
            .invoke_profiled("run", &[Value::I32(n)], &mut sim)
            .map_err(|e| format!("{cell}: run: {e}"))?;
        wall_s.push(t0.elapsed().as_secs_f64() * slowdown);
        if out != Some(Value::I32(expected)) {
            return Err(format!("{cell}: checksum mismatch: {out:?} != {expected}"));
        }
        counters = sim.counters();
        span.set_counters(counters.into());
    }
    Ok(CellMeasurement { wall_s, counters })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_is_deterministic_and_scaled() {
        let b = suite::by_name("crc32").expect("registered");
        let spec = CellSpec {
            bench: b,
            engine: EngineKind::Wasm3,
            level: OptLevel::O1,
            scale: Scale::Test,
        };
        let a = measure_cell(&spec, 2, 1.0).expect("measure");
        let b2 = measure_cell(&spec, 1, 1.0).expect("measure");
        assert_eq!(a.wall_s.len(), 2);
        assert!(a.wall_s.iter().all(|w| *w > 0.0));
        // Deterministic simulation: counters agree across sessions.
        assert_eq!(a.counters, b2.counters);
        assert!(a.counters.instructions > 0);
    }

    #[test]
    fn bad_checksum_is_reported_not_panicked() {
        // `reps.max(1)` also means reps=0 still measures once.
        let b = suite::by_name("crc32").expect("registered");
        let spec = CellSpec {
            bench: b,
            engine: EngineKind::Wasm3,
            level: OptLevel::O0,
            scale: Scale::Test,
        };
        let m = measure_cell(&spec, 0, 1.0).expect("measure");
        assert_eq!(m.wall_s.len(), 1);
    }
}
