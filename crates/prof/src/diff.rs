//! Baseline comparison: the regression rules behind `wabench-prof diff`.
//!
//! Wall-clock time is noisy, so a wall regression needs two things at
//! once: the mean moved past a relative threshold AND the ~95%
//! confidence intervals of the two runs do not overlap. Simulated
//! counters are deterministic — any drift there is a real code-path
//! change — so they use a bare relative threshold, kept loose enough
//! (10% by default) that intentional small tuning does not page anyone.

use crate::baseline::BaselineRecord;

/// Thresholds for [`diff`].
#[derive(Debug, Clone, Copy)]
pub struct DiffRule {
    /// Relative wall-time increase required (0.25 = +25%).
    pub wall_rel: f64,
    /// Relative counter increase required (0.10 = +10%).
    pub counter_rel: f64,
}

impl Default for DiffRule {
    fn default() -> DiffRule {
        DiffRule {
            wall_rel: 0.25,
            counter_rel: 0.10,
        }
    }
}

/// Counters worth gating on: the totals and the miss events the
/// paper's figures track. Access counters (branches, L1 accesses)
/// move with instruction count and would double-report.
const GATED_COUNTERS: [&str; 5] = [
    "instructions",
    "cycles",
    "branch_misses",
    "l1d_misses",
    "cache_misses",
];

fn gated(c: &archsim::Counters, field: &str) -> u64 {
    match field {
        "instructions" => c.instructions,
        "cycles" => c.cycles,
        "branch_misses" => c.branch_misses,
        "l1d_misses" => c.l1d_misses,
        "cache_misses" => c.cache_misses,
        _ => unreachable!("unknown gated counter {field}"),
    }
}

/// What a diff found.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Cells present in both runs and compared.
    pub checked: usize,
    /// Human-readable regression messages; empty means pass.
    pub regressions: Vec<String>,
    /// Non-fatal observations: new cells, cells missing from the
    /// current run, improvements.
    pub notes: Vec<String>,
}

impl DiffReport {
    /// True when no regression fired.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Renders the report for terminal output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for n in &self.notes {
            out.push_str("note: ");
            out.push_str(n);
            out.push('\n');
        }
        for r in &self.regressions {
            out.push_str("REGRESSION: ");
            out.push_str(r);
            out.push('\n');
        }
        out.push_str(&format!(
            "{} cells checked, {} regressions\n",
            self.checked,
            self.regressions.len()
        ));
        out
    }
}

fn pct(base: f64, cur: f64) -> f64 {
    if base <= 0.0 {
        return 0.0;
    }
    (cur / base - 1.0) * 100.0
}

/// Compares `cur` against `base` under `rule`.
pub fn diff(base: &[BaselineRecord], cur: &[BaselineRecord], rule: &DiffRule) -> DiffReport {
    let mut report = DiffReport::default();
    for c in cur {
        let Some(b) = base.iter().find(|b| b.key() == c.key()) else {
            report.notes.push(format!("{}: new cell (no baseline)", c.cell()));
            continue;
        };
        report.checked += 1;
        check_wall(b, c, rule, &mut report);
        check_counters(b, c, rule, &mut report);
    }
    for b in base {
        if !cur.iter().any(|c| c.key() == b.key()) {
            report
                .notes
                .push(format!("{}: in baseline but not in current run", b.cell()));
        }
    }
    report
}

fn check_wall(b: &BaselineRecord, c: &BaselineRecord, rule: &DiffRule, report: &mut DiffReport) {
    let (bm, cm) = (b.wall.mean_s, c.wall.mean_s);
    let (ci_b, ci_c) = (b.wall.ci95_half_width(b.reps), c.wall.ci95_half_width(c.reps));
    if cm > bm * (1.0 + rule.wall_rel) && cm - ci_c > bm + ci_b {
        report.regressions.push(format!(
            "{}: wall mean {:.3}ms → {:.3}ms ({:+.1}%, CIs disjoint)",
            c.cell(),
            bm * 1e3,
            cm * 1e3,
            pct(bm, cm)
        ));
    } else if bm > cm * (1.0 + rule.wall_rel) && cm + ci_c < bm - ci_b {
        // Improvements are worth a note: the baseline is stale.
        report.notes.push(format!(
            "{}: wall improved {:.3}ms → {:.3}ms ({:+.1}%) — consider re-recording",
            c.cell(),
            bm * 1e3,
            cm * 1e3,
            pct(bm, cm)
        ));
    }
}

fn check_counters(
    b: &BaselineRecord,
    c: &BaselineRecord,
    rule: &DiffRule,
    report: &mut DiffReport,
) {
    for field in GATED_COUNTERS {
        let (bv, cv) = (gated(&b.counters, field), gated(&c.counters, field));
        if bv > 0 && cv as f64 > bv as f64 * (1.0 + rule.counter_rel) {
            report.regressions.push(format!(
                "{}: {field} {bv} → {cv} ({:+.1}%)",
                c.cell(),
                pct(bv as f64, cv as f64)
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::WallStats;

    fn record(mean_s: f64, stddev_s: f64, instructions: u64) -> BaselineRecord {
        BaselineRecord {
            bench: "crc32".into(),
            engine: "wasmtime".into(),
            level: "O2".into(),
            scale: "test".into(),
            reps: 5,
            wall: WallStats {
                mean_s,
                min_s: mean_s,
                max_s: mean_s,
                stddev_s,
            },
            counters: archsim::Counters {
                instructions,
                cycles: 2 * instructions,
                ..Default::default()
            },
        }
    }

    #[test]
    fn identical_runs_pass() {
        let base = vec![record(0.001, 0.000_01, 1_000)];
        let report = diff(&base, &base.clone(), &DiffRule::default());
        assert!(report.ok());
        assert_eq!(report.checked, 1);
    }

    #[test]
    fn separated_slowdown_regresses_and_names_the_cell() {
        let base = vec![record(0.001, 0.000_01, 1_000)];
        let cur = vec![record(0.002, 0.000_01, 1_000)];
        let report = diff(&base, &cur, &DiffRule::default());
        assert!(!report.ok());
        assert!(
            report.regressions[0].contains("crc32 × wasmtime (O2, test)"),
            "{:?}",
            report.regressions
        );
        assert!(report.regressions[0].contains("wall"));
    }

    #[test]
    fn noisy_slowdown_with_overlapping_cis_passes() {
        // Mean doubled, but the spread is so wide the intervals overlap:
        // statistically indistinguishable, so no regression.
        let base = vec![record(0.001, 0.002, 1_000)];
        let cur = vec![record(0.002, 0.002, 1_000)];
        let report = diff(&base, &cur, &DiffRule::default());
        assert!(report.ok(), "{:?}", report.regressions);
    }

    #[test]
    fn counter_drift_regresses_without_any_wall_change() {
        let base = vec![record(0.001, 0.000_01, 1_000)];
        let cur = vec![record(0.001, 0.000_01, 1_200)];
        let report = diff(&base, &cur, &DiffRule::default());
        assert!(!report.ok());
        assert!(report.regressions.iter().any(|r| r.contains("instructions 1000 → 1200")));
    }

    #[test]
    fn disjoint_cells_become_notes() {
        let base = vec![record(0.001, 0.0, 1_000)];
        let mut other = record(0.001, 0.0, 1_000);
        other.bench = "aes".into();
        let report = diff(&base, &[other], &DiffRule::default());
        assert!(report.ok());
        assert_eq!(report.checked, 0);
        assert_eq!(report.notes.len(), 2, "{:?}", report.notes);
    }
}
