//! Profiling and regression-detection toolkit for the benchmark suite.
//!
//! The crate ties the observability layer ([`obs`]) and the
//! architectural simulator ([`archsim`]) into a workflow the paper's
//! own methodology section describes: profile a benchmark matrix,
//! attribute hardware-counter figures to execution phases, and keep
//! the numbers honest over time by diffing fresh runs against a
//! recorded baseline.
//!
//! - [`measure`] drives repeated profiled runs of one benchmark ×
//!   engine × opt-level cell and collects wall-time samples plus the
//!   deterministic simulator counters.
//! - [`baseline`] persists those measurements as versioned JSON lines
//!   and reads them back without any external serialization crate.
//! - [`diff`] compares a current run against a baseline, flagging
//!   wall-time regressions only when confidence intervals separate,
//!   and counter regressions on a relative threshold (the simulator
//!   is deterministic, so drift there is always a real code change).
//! - [`loadgate`] gates BENCH trajectory artifacts from `wabench-load`:
//!   sustained QPS, per engine×level p99 SLOs, and failure counts.
//! - [`workload`] captures a ring-buffer trace of a scheduler-driven
//!   job matrix for flamegraph export.
//! - [`collapse`] converts an exported Chrome trace back into folded
//!   stacks for `flamegraph.pl`-style tooling.
//!
//! The `wabench-prof` binary exposes all of this as `record`, `diff`,
//! `fold`, `collapse`, and `report` subcommands; `diff` sniffs whether
//! its inputs are baselines or BENCH artifacts and applies the matching
//! rules.

pub mod baseline;
pub mod collapse;
pub mod diff;
pub mod loadgate;
pub mod measure;
pub mod workload;

pub use baseline::BaselineRecord;
pub use diff::{DiffReport, DiffRule};
pub use loadgate::{diff_load, LoadRule};
pub use measure::{measure_cell, CellMeasurement, CellSpec};
