//! `wabench-prof` — profiling, flamegraph export, and regression gates.
//!
//! ```text
//! wabench-prof record   --out FILE [--bench B]... [--engine E]... [--level O2] [--scale test] [--reps 5]
//! wabench-prof diff     --base FILE [--cur FILE] [--wall-rel 0.25] [--counter-rel 0.10]
//! wabench-prof fold     --out FILE [--weight wall-ns] [--workers 4] [--bench B]... [--level O2] [--scale test] [--chrome FILE]
//! wabench-prof collapse --trace FILE [--out FILE]
//! wabench-prof report   [--bench B]... [--engine E]... [--level O2] [--scale test]
//! wabench-prof windows  --socket PATH
//! wabench-prof wdiff    --socket PATH [--from SEQ] [--to SEQ]
//! ```
//!
//! `record` writes a JSON-lines baseline; `diff` re-measures the same
//! cells (or reads `--cur`) and exits non-zero on a regression, naming
//! each regressed benchmark × engine cell. When `--base` is a BENCH
//! trajectory artifact from `wabench-load` (sniffed by its schema tag),
//! `diff` instead gates sustained QPS, per-cell p99 SLOs, and failure
//! counts against a second artifact — `--cur` is required there, since
//! a load run cannot be re-measured in-process. `fold` runs a job matrix
//! through the scheduler and writes folded stacks for
//! `flamegraph.pl`; `collapse` does the same offline from a saved
//! Chrome trace. `report` prints the counter-attributed phase table.
//!
//! `windows` and `wdiff` speak protocol v8 to a live `wabench-served`
//! running with `--profile-ms`: `windows` lists the continuous
//! profiler's recent windows with their hottest phases, and `wdiff`
//! diffs two windows' collapsed stacks (by `--from`/`--to` seq, or the
//! last two) and names the most-regressed phase — the live-service
//! analogue of `diff` for in-process baselines.
//!
//! `WABENCH_PROF_SLOWDOWN` (a float, default 1) multiplies measured
//! wall times in `record` and `diff`. It is a test hook: setting it to
//! 2 on an unchanged tree must make `diff` fail, proving the gate can
//! actually fire. It is read once here in `main` — the library never
//! touches the environment.

use std::path::PathBuf;
use std::process::exit;

use engines::EngineKind;
use prof::baseline::{self, BaselineRecord, WallStats};
use prof::diff::{diff, DiffRule};
use prof::loadgate::{diff_load, LoadRule};
use prof::measure::{measure_cell, CellSpec, Scale};
use prof::workload::WorkloadSpec;
use wacc::OptLevel;

fn usage() -> ! {
    obs::error!(
        "usage: wabench-prof <record|diff|fold|collapse|report|windows|wdiff> [options]\n\
         \n\
         record   --out FILE [--bench B]... [--engine E]... [--level O2] [--scale test] [--reps 5]\n\
         diff     --base FILE [--cur FILE] [--wall-rel 0.25] [--counter-rel 0.10]\n\
         fold     --out FILE [--weight wall-ns] [--workers 4] [--bench B]... [--level O2] [--scale test] [--chrome FILE]\n\
         collapse --trace FILE [--out FILE]\n\
         report   [--bench B]... [--engine E]... [--level O2] [--scale test]\n\
         windows  --socket PATH\n\
         wdiff    --socket PATH [--from SEQ] [--to SEQ]"
    );
    exit(2);
}

fn take_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    match args.get(*i) {
        Some(v) => v.clone(),
        None => {
            obs::error!("missing value for {flag}");
            usage();
        }
    }
}

struct Opts {
    out: Option<PathBuf>,
    base: Option<PathBuf>,
    cur: Option<PathBuf>,
    trace: Option<PathBuf>,
    chrome: Option<PathBuf>,
    benches: Vec<String>,
    engines: Vec<EngineKind>,
    level: OptLevel,
    scale_name: String,
    reps: u32,
    wall_rel: f64,
    counter_rel: f64,
    weight: obs::folded::Weight,
    workers: usize,
    socket: Option<PathBuf>,
    from_seq: Option<u64>,
    to_seq: Option<u64>,
}

impl Opts {
    fn base() -> Opts {
        Opts {
            out: None,
            base: None,
            cur: None,
            trace: None,
            chrome: None,
            benches: Vec::new(),
            engines: Vec::new(),
            level: OptLevel::O2,
            scale_name: "test".to_string(),
            reps: 5,
            wall_rel: 0.25,
            counter_rel: 0.10,
            weight: obs::folded::Weight::WallNs,
            workers: 4,
            socket: None,
            from_seq: None,
            to_seq: None,
        }
    }
}

fn parse_f64(args: &[String], i: &mut usize, flag: &str) -> f64 {
    take_value(args, i, flag).parse().unwrap_or_else(|_| {
        obs::error!("{flag} needs a number");
        usage();
    })
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts::base();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => o.out = Some(PathBuf::from(take_value(args, &mut i, "--out"))),
            "--base" => o.base = Some(PathBuf::from(take_value(args, &mut i, "--base"))),
            "--cur" => o.cur = Some(PathBuf::from(take_value(args, &mut i, "--cur"))),
            "--trace" => o.trace = Some(PathBuf::from(take_value(args, &mut i, "--trace"))),
            "--chrome" => o.chrome = Some(PathBuf::from(take_value(args, &mut i, "--chrome"))),
            "--bench" => o.benches.push(take_value(args, &mut i, "--bench")),
            "--engine" => {
                let v = take_value(args, &mut i, "--engine");
                o.engines.push(EngineKind::parse(&v).unwrap_or_else(|| {
                    obs::error!("unknown engine {v:?}");
                    usage();
                }));
            }
            "--level" => {
                let v = take_value(args, &mut i, "--level");
                o.level = parse_level(&v).unwrap_or_else(|| {
                    obs::error!("unknown level {v:?} (use O0..O3)");
                    usage();
                });
            }
            "--scale" => {
                let v = take_value(args, &mut i, "--scale");
                if parse_scale(&v).is_none() {
                    obs::error!("unknown scale {v:?} (use test|profile|timing)");
                    usage();
                }
                o.scale_name = v;
            }
            "--reps" => {
                o.reps = take_value(args, &mut i, "--reps")
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| {
                        obs::error!("--reps needs a positive integer");
                        usage();
                    });
            }
            "--wall-rel" => o.wall_rel = parse_f64(args, &mut i, "--wall-rel"),
            "--counter-rel" => o.counter_rel = parse_f64(args, &mut i, "--counter-rel"),
            "--weight" => {
                let v = take_value(args, &mut i, "--weight");
                o.weight = obs::folded::Weight::parse(&v).unwrap_or_else(|| {
                    obs::error!("unknown weight {v:?}");
                    usage();
                });
            }
            "--socket" => o.socket = Some(PathBuf::from(take_value(args, &mut i, "--socket"))),
            "--from" => {
                o.from_seq = Some(take_value(args, &mut i, "--from").parse().unwrap_or_else(
                    |_| {
                        obs::error!("--from needs a window seq (see `windows`)");
                        usage();
                    },
                ))
            }
            "--to" => {
                o.to_seq = Some(take_value(args, &mut i, "--to").parse().unwrap_or_else(|_| {
                    obs::error!("--to needs a window seq (see `windows`)");
                    usage();
                }))
            }
            "--workers" => {
                o.workers = take_value(args, &mut i, "--workers")
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| {
                        obs::error!("--workers needs a positive integer");
                        usage();
                    });
            }
            other => {
                obs::error!("unknown option {other:?}");
                usage();
            }
        }
        i += 1;
    }
    if o.benches.is_empty() {
        o.benches.push("crc32".to_string());
    }
    if o.engines.is_empty() {
        o.engines = EngineKind::all().to_vec();
    }
    o
}

fn parse_level(s: &str) -> Option<OptLevel> {
    match s.trim_start_matches('-') {
        "O0" => Some(OptLevel::O0),
        "O1" => Some(OptLevel::O1),
        "O2" => Some(OptLevel::O2),
        "O3" => Some(OptLevel::O3),
        _ => None,
    }
}

fn parse_scale(s: &str) -> Option<Scale> {
    match s {
        "test" => Some(Scale::Test),
        "profile" => Some(Scale::Profile),
        "timing" => Some(Scale::Timing),
        _ => None,
    }
}

fn need(path: &Option<PathBuf>, flag: &str) -> PathBuf {
    path.clone().unwrap_or_else(|| {
        obs::error!("{flag} is required");
        usage();
    })
}

/// Measures one cell into a baseline record; the strings are the
/// file-format spellings so `diff` can re-measure from a parsed record.
fn record_cell(
    bench: &str,
    engine: EngineKind,
    level: OptLevel,
    scale_name: &str,
    reps: u32,
    slowdown: f64,
) -> Result<BaselineRecord, String> {
    let b = suite::by_name(bench).ok_or_else(|| format!("unknown benchmark {bench:?}"))?;
    let scale = parse_scale(scale_name).ok_or_else(|| format!("unknown scale {scale_name:?}"))?;
    let spec = CellSpec {
        bench: b,
        engine,
        level,
        scale,
    };
    let m = measure_cell(&spec, reps, slowdown)?;
    Ok(BaselineRecord {
        bench: bench.to_string(),
        engine: engine.name().to_string(),
        level: format!("{level:?}"),
        scale: scale_name.to_string(),
        reps,
        wall: WallStats::from_samples(&m.wall_s),
        counters: m.counters,
    })
}

fn cmd_record(o: &Opts, slowdown: f64) {
    let out = need(&o.out, "--out");
    let mut records = Vec::new();
    for bench in &o.benches {
        for kind in &o.engines {
            match record_cell(bench, *kind, o.level, &o.scale_name, o.reps, slowdown) {
                Ok(r) => {
                    obs::info!(
                        "recorded {}: wall mean {:.3}ms, {} instrs, ipc {:.3}",
                        r.cell(),
                        r.wall.mean_s * 1e3,
                        r.counters.instructions,
                        r.counters.ipc()
                    );
                    records.push(r);
                }
                Err(e) => {
                    obs::error!("{e}");
                    exit(2);
                }
            }
        }
    }
    if let Err(e) = baseline::write_file(&out, &records) {
        obs::error!("{}: {e}", out.display());
        exit(2);
    }
    println!("wrote {} ({} cells)", out.display(), records.len());
}

fn cmd_diff(o: &Opts, slowdown: f64) {
    let base_path = need(&o.base, "--base");
    let doc = std::fs::read_to_string(&base_path).unwrap_or_else(|e| {
        obs::error!("{}: {e}", base_path.display());
        exit(2);
    });
    if load::bench::BenchArtifact::sniff(&doc) {
        cmd_diff_bench(o, &doc);
    }
    let base = baseline::read_file(&base_path).unwrap_or_else(|e| {
        obs::error!("{e}");
        exit(2);
    });
    let cur = match &o.cur {
        Some(path) => baseline::read_file(path).unwrap_or_else(|e| {
            obs::error!("{e}");
            exit(2);
        }),
        // No --cur: re-measure every baseline cell right now.
        None => base
            .iter()
            .map(|r| {
                let engine = EngineKind::parse(&r.engine)
                    .ok_or_else(|| format!("{}: unknown engine in baseline", r.cell()))?;
                let level = parse_level(&r.level)
                    .ok_or_else(|| format!("{}: unknown level in baseline", r.cell()))?;
                record_cell(&r.bench, engine, level, &r.scale, r.reps, slowdown)
            })
            .collect::<Result<Vec<_>, _>>()
            .unwrap_or_else(|e| {
                obs::error!("{e}");
                exit(2);
            }),
    };
    let rule = DiffRule {
        wall_rel: o.wall_rel,
        counter_rel: o.counter_rel,
    };
    let report = diff(&base, &cur, &rule);
    print!("{}", report.render());
    exit(i32::from(!report.ok()));
}

/// The BENCH-artifact arm of `diff`: gate a current load run against a
/// baseline one. Never returns.
fn cmd_diff_bench(o: &Opts, base_doc: &str) -> ! {
    let base = load::bench::BenchArtifact::parse(base_doc).unwrap_or_else(|e| {
        obs::error!("--base: {e}");
        exit(2);
    });
    let Some(cur_path) = &o.cur else {
        obs::error!(
            "--base is a BENCH trajectory artifact; load runs cannot be re-measured \
             in-process, so --cur must name a second BENCH_*.json"
        );
        exit(2);
    };
    let cur = load::bench::BenchArtifact::read_file(cur_path).unwrap_or_else(|e| {
        obs::error!("--cur: {e}");
        exit(2);
    });
    let report = diff_load(&base, &cur, &LoadRule::default());
    print!("{}", report.render());
    exit(i32::from(!report.ok()));
}

fn cmd_fold(o: &Opts) {
    let out = need(&o.out, "--out");
    let spec = WorkloadSpec {
        benches: o.benches.clone(),
        engines: o.engines.clone(),
        level: o.level,
        scale: svc::Scale::parse(&o.scale_name).expect("scale validated at parse"),
        mode: svc::JobMode::Profiled,
        workers: o.workers,
    };
    let trace = prof::workload::capture_trace(&spec).unwrap_or_else(|e| {
        obs::error!("{e}");
        exit(2);
    });
    if let Err(e) = obs::folded::export_file(&trace, o.weight, &out) {
        obs::error!("{}: {e}", out.display());
        exit(2);
    }
    println!(
        "wrote {} ({} spans, weight {})",
        out.display(),
        trace.span_count(),
        o.weight.name()
    );
    if let Some(chrome) = &o.chrome {
        if let Err(e) = obs::chrome::export_file(&trace, chrome) {
            obs::error!("{}: {e}", chrome.display());
            exit(2);
        }
        println!("wrote {}", chrome.display());
    }
}

fn cmd_collapse(o: &Opts) {
    let trace = need(&o.trace, "--trace");
    let doc = std::fs::read_to_string(&trace).unwrap_or_else(|e| {
        obs::error!("{}: {e}", trace.display());
        exit(2);
    });
    let folded = prof::collapse::chrome_to_folded(&doc).unwrap_or_else(|e| {
        obs::error!("{}: {e}", trace.display());
        exit(1);
    });
    match &o.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &folded) {
                obs::error!("{}: {e}", path.display());
                exit(2);
            }
            println!("wrote {}", path.display());
        }
        None => print!("{folded}"),
    }
}

fn cmd_report(o: &Opts, slowdown: f64) {
    obs::trace::install(obs::trace::Sink::Ring);
    for bench in &o.benches {
        for kind in &o.engines {
            if let Err(e) = record_cell(bench, *kind, o.level, &o.scale_name, 1, slowdown) {
                obs::trace::install(obs::trace::Sink::Null);
                obs::error!("{e}");
                exit(2);
            }
        }
    }
    let trace = obs::trace::drain();
    obs::trace::install(obs::trace::Sink::Null);
    print!("{}", obs::prof::render(&trace));
}

/// Per-stack share movement between two profile windows: the union of
/// stacks with `(stack, from_share, to_share)`, largest share increase
/// first — the head row is the most-regressed phase.
fn window_share_diff(
    from: &obs::contprof::ProfileWindow,
    to: &obs::contprof::ProfileWindow,
) -> Vec<(String, f64, f64)> {
    let from_shares: std::collections::BTreeMap<String, f64> = from.shares().into_iter().collect();
    let to_shares: std::collections::BTreeMap<String, f64> = to.shares().into_iter().collect();
    let mut stacks: Vec<&String> = from_shares.keys().chain(to_shares.keys()).collect();
    stacks.sort();
    stacks.dedup();
    let mut rows: Vec<(String, f64, f64)> = stacks
        .into_iter()
        .map(|s| {
            (
                s.clone(),
                from_shares.get(s).copied().unwrap_or(0.0),
                to_shares.get(s).copied().unwrap_or(0.0),
            )
        })
        .collect();
    rows.sort_by(|a, b| (b.2 - b.1).total_cmp(&(a.2 - a.1)));
    rows
}

fn fetch_profile(o: &Opts) -> svc::telemetry::ProfileReport {
    let socket = need(&o.socket, "--socket");
    let mut client = svc::server::Client::connect(&socket).unwrap_or_else(|e| {
        obs::error!("connect {}: {e}", socket.display());
        exit(2);
    });
    let rep = client.profile_dump().unwrap_or_else(|e| {
        obs::error!("profile-dump: {e} (server too old for protocol v8?)");
        exit(2);
    });
    if rep.window_ns == 0 {
        obs::error!("continuous profiler is off — serve with --profile-ms N");
        exit(1);
    }
    rep
}

fn cmd_windows(o: &Opts) {
    let rep = fetch_profile(o);
    println!(
        "profiler: {} window(s) of {:.0}ms",
        rep.windows.len(),
        rep.window_ns as f64 / 1e6
    );
    for w in &rep.windows {
        let mut shares = w.shares();
        shares.sort_by(|a, b| b.1.total_cmp(&a.1));
        let top: Vec<String> = shares
            .iter()
            .take(3)
            .map(|(s, sh)| format!("{s} {:.1}%", sh * 100.0))
            .collect();
        println!(
            "window #{:<4} [{:8.2}s .. {:8.2}s]  self {:9.3}ms  {}",
            w.seq,
            w.start_ns as f64 / 1e9,
            w.end_ns as f64 / 1e9,
            w.total_self_ns() as f64 / 1e6,
            if top.is_empty() {
                "(no samples)".to_string()
            } else {
                top.join(", ")
            }
        );
    }
}

fn cmd_wdiff(o: &Opts) {
    let rep = fetch_profile(o);
    let by_seq = |seq: u64| {
        rep.windows.iter().find(|w| w.seq == seq).unwrap_or_else(|| {
            obs::error!("no window with seq {seq} (see `windows`)");
            exit(1);
        })
    };
    let (from, to) = match (o.from_seq, o.to_seq) {
        (Some(f), Some(t)) => (by_seq(f), by_seq(t)),
        (None, None) if rep.windows.len() >= 2 => {
            (&rep.windows[rep.windows.len() - 2], &rep.windows[rep.windows.len() - 1])
        }
        (None, None) => {
            obs::error!(
                "need at least two buffered windows to diff (have {})",
                rep.windows.len()
            );
            exit(1);
        }
        _ => {
            obs::error!("--from and --to must be given together (or neither)");
            usage();
        }
    };
    println!(
        "wdiff: window #{} ({:.2}s) -> #{} ({:.2}s), {:.0}ms windows",
        from.seq,
        from.start_ns as f64 / 1e9,
        to.seq,
        to.start_ns as f64 / 1e9,
        rep.window_ns as f64 / 1e6
    );
    let rows = window_share_diff(from, to);
    if rows.is_empty() {
        println!("no samples in either window");
        return;
    }
    for (stack, f, t) in &rows {
        println!(
            "phase {stack}: share {:.1}% -> {:.1}% ({:+.1}pt)",
            f * 100.0,
            t * 100.0,
            (t - f) * 100.0
        );
    }
    let (stack, f, t) = &rows[0];
    if t > f {
        println!("most regressed: {stack} ({:+.1}pt)", (t - f) * 100.0);
    } else {
        println!("no phase grew its share");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let opts = parse_opts(&args[1..]);
    // The test hook lives here, not in the library: measured wall
    // times are multiplied so the regression gate can be exercised.
    let slowdown = std::env::var("WABENCH_PROF_SLOWDOWN")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(1.0);
    match cmd.as_str() {
        "record" => cmd_record(&opts, slowdown),
        "diff" => cmd_diff(&opts, slowdown),
        "fold" => cmd_fold(&opts),
        "collapse" => cmd_collapse(&opts),
        "report" => cmd_report(&opts, slowdown),
        "windows" => cmd_windows(&opts),
        "wdiff" => cmd_wdiff(&opts),
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::contprof::ContProf;
    use std::time::Duration;

    const MS: u64 = 1_000_000;

    /// Two windows where `exec` grows from a third to three quarters of
    /// self-time: the diff must rank it first and compute both shares.
    #[test]
    fn wdiff_names_the_phase_that_grew() {
        let mut p = ContProf::new(Duration::from_millis(10), 8);
        p.record(MS, "wasm3", "compile", 2 * MS, 0, 0);
        p.record(2 * MS, "wasm3", "exec", MS, 0, 0);
        p.record(11 * MS, "wasm3", "compile", MS, 0, 0);
        p.record(12 * MS, "wasm3", "exec", 3 * MS, 0, 0);
        p.record(21 * MS, "wasm3", "exec", 1, 0, 0); // seals window 2
        let windows = p.windows();
        assert!(windows.len() >= 2);
        let rows = window_share_diff(&windows[0], &windows[1]);
        assert_eq!(rows[0].0, "wasm3;exec");
        assert!((rows[0].1 - 1.0 / 3.0).abs() < 1e-9);
        assert!((rows[0].2 - 0.75).abs() < 1e-9);
        assert_eq!(rows[1].0, "wasm3;compile");
        assert!(rows[1].2 < rows[1].1, "compile's share shrank");
    }

    /// A phase present in only one window still appears, with a zero
    /// share on the missing side.
    #[test]
    fn wdiff_handles_phases_missing_from_one_window() {
        let mut p = ContProf::new(Duration::from_millis(10), 8);
        p.record(MS, "wasm3", "exec", MS, 0, 0);
        p.record(11 * MS, "wavm", "compile", MS, 0, 0);
        p.record(21 * MS, "wavm", "compile", 1, 0, 0);
        let windows = p.windows();
        let rows = window_share_diff(&windows[0], &windows[1]);
        assert_eq!(rows[0], ("wavm;compile".to_string(), 0.0, 1.0));
        assert_eq!(rows[1], ("wasm3;exec".to_string(), 1.0, 0.0));
    }
}
