//! The on-disk baseline store: one JSON object per line, one line per
//! benchmark × engine × opt-level × scale cell.
//!
//! The workspace builds offline with no serialization framework, so
//! records are written by hand and read back through [`obs::json`].
//! Every line carries a `"v"` field; readers reject versions they do
//! not understand instead of guessing at the layout.

use std::collections::BTreeMap;
use std::path::Path;

use archsim::Counters;
use obs::json::{self, Value};

/// Baseline record layout version this build writes. v2 added the
/// `checks_skipped` counter; v1 lines are still read, with the missing
/// counter defaulting to zero.
pub const BASELINE_VERSION: u64 = 2;

/// The eleven simulated counters, in canonical serialization order.
const COUNTER_FIELDS: [&str; 11] = [
    "instructions",
    "cycles",
    "branches",
    "branch_misses",
    "cache_references",
    "cache_misses",
    "l1d_accesses",
    "l1d_misses",
    "l1i_accesses",
    "l1i_misses",
    "checks_skipped",
];

fn counter_get(c: &Counters, field: &str) -> u64 {
    match field {
        "instructions" => c.instructions,
        "cycles" => c.cycles,
        "branches" => c.branches,
        "branch_misses" => c.branch_misses,
        "cache_references" => c.cache_references,
        "cache_misses" => c.cache_misses,
        "l1d_accesses" => c.l1d_accesses,
        "l1d_misses" => c.l1d_misses,
        "l1i_accesses" => c.l1i_accesses,
        "l1i_misses" => c.l1i_misses,
        "checks_skipped" => c.checks_skipped,
        _ => unreachable!("unknown counter field {field}"),
    }
}

fn counter_set(c: &mut Counters, field: &str, v: u64) {
    match field {
        "instructions" => c.instructions = v,
        "cycles" => c.cycles = v,
        "branches" => c.branches = v,
        "branch_misses" => c.branch_misses = v,
        "cache_references" => c.cache_references = v,
        "cache_misses" => c.cache_misses = v,
        "l1d_accesses" => c.l1d_accesses = v,
        "l1d_misses" => c.l1d_misses = v,
        "l1i_accesses" => c.l1i_accesses = v,
        "l1i_misses" => c.l1i_misses = v,
        "checks_skipped" => c.checks_skipped = v,
        _ => unreachable!("unknown counter field {field}"),
    }
}

/// Wall-clock statistics over a cell's repetitions, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WallStats {
    /// Arithmetic mean.
    pub mean_s: f64,
    /// Fastest repetition.
    pub min_s: f64,
    /// Slowest repetition.
    pub max_s: f64,
    /// Sample standard deviation (n−1).
    pub stddev_s: f64,
}

impl WallStats {
    /// Summarizes raw repetition times.
    pub fn from_samples(samples: &[f64]) -> WallStats {
        WallStats {
            mean_s: harness::stats::mean(samples),
            min_s: harness::stats::min(samples),
            max_s: harness::stats::max(samples),
            stddev_s: harness::stats::stddev(samples),
        }
    }

    /// Half-width of the ~95% confidence interval on the mean
    /// (`2·s/√n`), given how many repetitions produced these stats.
    pub fn ci95_half_width(&self, reps: u32) -> f64 {
        if reps < 2 {
            return 0.0;
        }
        2.0 * self.stddev_s / f64::from(reps).sqrt()
    }
}

/// One recorded cell.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRecord {
    /// Benchmark name.
    pub bench: String,
    /// Engine name (as [`engines::EngineKind::name`] spells it).
    pub engine: String,
    /// Opt level, `"O0"`..`"O3"`.
    pub level: String,
    /// Workload scale, `"test"`/`"profile"`/`"timing"`.
    pub scale: String,
    /// How many repetitions produced the wall statistics.
    pub reps: u32,
    /// Wall-clock statistics.
    pub wall: WallStats,
    /// Simulated counters (deterministic per cell).
    pub counters: Counters,
}

impl BaselineRecord {
    /// The cell's display name, as diff messages spell it.
    pub fn cell(&self) -> String {
        format!(
            "{} × {} ({}, {})",
            self.bench, self.engine, self.level, self.scale
        )
    }

    /// The lookup key a diff joins on.
    pub fn key(&self) -> (&str, &str, &str, &str) {
        (&self.bench, &self.engine, &self.level, &self.scale)
    }

    /// Serializes as one JSON line (no trailing newline). `{}` on f64
    /// prints the shortest representation that round-trips, so reading
    /// the line back reproduces the stats exactly.
    pub fn to_json_line(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "{{\"v\":{BASELINE_VERSION},\"bench\":\"{}\",\"engine\":\"{}\",\"level\":\"{}\",\"scale\":\"{}\",\"reps\":{},",
            json::escape(&self.bench),
            json::escape(&self.engine),
            json::escape(&self.level),
            json::escape(&self.scale),
            self.reps,
        );
        let _ = write!(
            s,
            "\"wall\":{{\"mean_s\":{},\"min_s\":{},\"max_s\":{},\"stddev_s\":{}}},",
            self.wall.mean_s, self.wall.min_s, self.wall.max_s, self.wall.stddev_s
        );
        s.push_str("\"counters\":{");
        for (i, field) in COUNTER_FIELDS.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{field}\":{}", counter_get(&self.counters, field));
        }
        s.push_str("}}");
        s
    }

    fn from_json(v: &Value) -> Result<BaselineRecord, String> {
        let version = num(v, "v")? as u64;
        if version == 0 || version > BASELINE_VERSION {
            return Err(format!(
                "unsupported baseline version {version} (this build reads up to v{BASELINE_VERSION})"
            ));
        }
        let wall = v.get("wall").ok_or("missing wall object")?;
        let counters_obj = v.get("counters").ok_or("missing counters object")?;
        let mut counters = Counters::default();
        for field in COUNTER_FIELDS {
            // v1 lines predate `checks_skipped`; absent means zero.
            let value = match counters_obj.get(field).and_then(Value::as_num) {
                Some(n) => n as u64,
                None if version < 2 && field == "checks_skipped" => 0,
                None => return Err(format!("missing numeric field {field:?}")),
            };
            counter_set(&mut counters, field, value);
        }
        Ok(BaselineRecord {
            bench: str_field(v, "bench")?,
            engine: str_field(v, "engine")?,
            level: str_field(v, "level")?,
            scale: str_field(v, "scale")?,
            reps: num(v, "reps")? as u32,
            wall: WallStats {
                mean_s: num(wall, "mean_s")?,
                min_s: num(wall, "min_s")?,
                max_s: num(wall, "max_s")?,
                stddev_s: num(wall, "stddev_s")?,
            },
            counters,
        })
    }
}

fn num(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_num)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    Ok(v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing string field {key:?}"))?
        .to_string())
}

/// Serializes records as a JSON-lines document, sorted by key so the
/// file diffs cleanly under version control.
pub fn to_string(records: &[BaselineRecord]) -> String {
    let mut sorted: BTreeMap<(String, String, String, String), &BaselineRecord> = BTreeMap::new();
    for r in records {
        sorted.insert(
            (
                r.bench.clone(),
                r.engine.clone(),
                r.level.clone(),
                r.scale.clone(),
            ),
            r,
        );
    }
    let mut out = String::new();
    for r in sorted.values() {
        out.push_str(&r.to_json_line());
        out.push('\n');
    }
    out
}

/// Parses a JSON-lines baseline document.
///
/// # Errors
///
/// A message with the 1-based line number on malformed JSON, an
/// unsupported version, or a missing field.
pub fn parse(doc: &str) -> Result<Vec<BaselineRecord>, String> {
    let mut records = Vec::new();
    for (i, line) in doc.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        records.push(BaselineRecord::from_json(&v).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(records)
}

/// Writes records to `path`.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_file(path: &Path, records: &[BaselineRecord]) -> std::io::Result<()> {
    std::fs::write(path, to_string(records))
}

/// Reads a baseline file.
///
/// # Errors
///
/// I/O failures and parse errors, both prefixed with the path.
pub fn read_file(path: &Path) -> Result<Vec<BaselineRecord>, String> {
    let doc =
        std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse(&doc).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BaselineRecord {
        BaselineRecord {
            bench: "crc32".into(),
            engine: "wasmtime".into(),
            level: "O2".into(),
            scale: "test".into(),
            reps: 5,
            wall: WallStats {
                mean_s: 0.001_25,
                min_s: 0.001,
                max_s: 0.002,
                stddev_s: 0.000_37,
            },
            counters: Counters {
                instructions: 123_456_789,
                cycles: 222_222,
                branches: 300,
                branch_misses: 7,
                l1d_accesses: 40_000,
                l1d_misses: 12,
                ..Default::default()
            },
        }
    }

    #[test]
    fn records_round_trip_exactly() {
        let records = vec![sample()];
        let doc = to_string(&records);
        assert_eq!(parse(&doc).expect("parses"), records);
    }

    #[test]
    fn output_is_sorted_and_deduped_by_key() {
        let mut b = sample();
        b.bench = "aes".into();
        let doc = to_string(&[sample(), b.clone(), sample()]);
        let back = parse(&doc).expect("parses");
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].bench, "aes");
        assert_eq!(back[1].bench, "crc32");
    }

    #[test]
    fn unknown_version_is_rejected_with_line() {
        let mut doc = to_string(&[sample()]);
        doc = doc.replace("\"v\":2", "\"v\":99");
        let err = parse(&doc).expect_err("must reject");
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains("version 99"), "{err}");
    }

    #[test]
    fn v1_lines_without_checks_skipped_still_parse() {
        let mut doc = to_string(&[sample()]);
        doc = doc
            .replace("\"v\":2", "\"v\":1")
            .replace(",\"checks_skipped\":0", "");
        assert!(!doc.contains("checks_skipped"), "test setup: {doc}");
        let back = parse(&doc).expect("v1 parses");
        assert_eq!(back, vec![sample()]);
    }

    #[test]
    fn v2_lines_missing_checks_skipped_are_rejected() {
        let doc = to_string(&[sample()]).replace(",\"checks_skipped\":0", "");
        let err = parse(&doc).expect_err("must reject");
        assert!(err.contains("checks_skipped"), "{err}");
    }

    #[test]
    fn malformed_line_is_located() {
        let doc = format!("{}\nnot json\n", sample().to_json_line());
        let err = parse(&doc).expect_err("must reject");
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn ci_half_width_guards_small_n() {
        let w = WallStats {
            stddev_s: 1.0,
            ..Default::default()
        };
        assert_eq!(w.ci95_half_width(1), 0.0);
        assert!((w.ci95_half_width(4) - 1.0).abs() < 1e-12);
    }
}
