//! The throughput/SLO regression gate behind `wabench-prof diff` for
//! BENCH trajectory artifacts.
//!
//! Baselines gate single-execution cells; BENCH artifacts gate the
//! *serving* behavior: sustained QPS, per engine×level tail latency,
//! and failure/protocol-error counts from an open-loop `wabench-load`
//! run. Latency under load is noisy, so the p99 rule needs both a
//! relative increase and an absolute floor before it fires — a 2×
//! slowdown on a 40µs cell is scheduler jitter, on a 4ms cell it is a
//! regression. Failures and protocol errors are exact counts and gate
//! on any increase.

use load::bench::BenchArtifact;

use crate::diff::DiffReport;

/// Thresholds for [`diff_load`].
#[derive(Debug, Clone, Copy)]
pub struct LoadRule {
    /// Relative sustained-QPS drop required to fire (0.20 = −20%).
    pub qps_drop_rel: f64,
    /// Relative per-cell p99 increase required to fire (1.0 = 2×).
    pub p99_rel: f64,
    /// Absolute p99 increase floor in ns — both must hold.
    pub p99_abs_ns: u64,
}

impl Default for LoadRule {
    fn default() -> LoadRule {
        LoadRule {
            qps_drop_rel: 0.20,
            p99_rel: 0.75,
            p99_abs_ns: 250_000,
        }
    }
}

/// Compares a current BENCH artifact against a baseline one.
///
/// Comparing runs with different configs (seed, mix, scale, rate,
/// driver) is meaningless, so config drift is a hard regression, not a
/// note.
pub fn diff_load(base: &BenchArtifact, cur: &BenchArtifact, rule: &LoadRule) -> DiffReport {
    let mut report = DiffReport::default();

    // The trajectory is only comparable point-to-point under one config.
    let (bc, cc) = (&base.config, &cur.config);
    for (what, b, c) in [
        ("mix", &bc.mix, &cc.mix),
        ("scale", &bc.scale, &cc.scale),
        ("driver", &bc.driver, &cc.driver),
        ("phases", &bc.phases, &cc.phases),
    ] {
        if b != c {
            report.regressions.push(format!(
                "config mismatch: {what} {b:?} (baseline) vs {c:?} (current) — runs are not comparable"
            ));
        }
    }
    if bc.seed != cc.seed || bc.jobs != cc.jobs || (bc.qps - cc.qps).abs() > f64::EPSILON {
        report.regressions.push(format!(
            "config mismatch: seed/jobs/qps {}:{}:{} (baseline) vs {}:{}:{} (current) — runs are not comparable",
            bc.seed, bc.jobs, bc.qps, cc.seed, cc.jobs, cc.qps
        ));
    }
    if !report.regressions.is_empty() {
        return report;
    }

    let (bt, ct) = (&base.totals, &cur.totals);
    if bt.qps > 0.0 && ct.qps < bt.qps * (1.0 - rule.qps_drop_rel) {
        report.regressions.push(format!(
            "sustained QPS {:.1} → {:.1} ({:+.1}%)",
            bt.qps,
            ct.qps,
            (ct.qps / bt.qps - 1.0) * 100.0
        ));
    }
    if ct.failed > bt.failed {
        report.regressions.push(format!(
            "failed jobs {} → {} (same seed: every job is the same job)",
            bt.failed, ct.failed
        ));
    }
    if ct.protocol_errors > bt.protocol_errors {
        report.regressions.push(format!(
            "protocol errors {} → {}",
            bt.protocol_errors, ct.protocol_errors
        ));
    }
    if ct.degraded > bt.degraded {
        report.notes.push(format!(
            "degraded jobs {} → {} (correct but measured through fallback)",
            bt.degraded, ct.degraded
        ));
    }

    for c in &cur.cells {
        let Some(b) = base.cell(&c.cell) else {
            report.notes.push(format!("{}: new cell (no baseline)", c.cell));
            continue;
        };
        report.checked += 1;
        let threshold =
            (b.p99_ns as f64 * (1.0 + rule.p99_rel)).max(b.p99_ns as f64 + rule.p99_abs_ns as f64);
        if (c.p99_ns as f64) > threshold {
            report.regressions.push(format!(
                "{}: p99 {} → {} ({:+.1}%)",
                c.cell,
                obs::metrics::fmt_ns(b.p99_ns),
                obs::metrics::fmt_ns(c.p99_ns),
                (c.p99_ns as f64 / b.p99_ns.max(1) as f64 - 1.0) * 100.0
            ));
        }
    }
    for b in &base.cells {
        if cur.cell(&b.cell).is_none() {
            report
                .notes
                .push(format!("{}: in baseline but not in current run", b.cell));
        }
    }
    // Live-telemetry context (protocol v7): a run against a sampling
    // server embeds its series window. Purely informational — the
    // gate's signal stays the end-of-run quantiles — but the note makes
    // a flagged regression attributable to a burst vs. a level shift.
    if !cur.series.is_empty() {
        let peak_p99 = cur.series.iter().map(|p| p.p99_ns).max().unwrap_or(0);
        let peak_queue = cur.series.iter().map(|p| p.queue_depth).max().unwrap_or(0);
        report.notes.push(format!(
            "live series: {} intervals, peak interval p99 {}, peak sampled queue {}",
            cur.series.len(),
            obs::metrics::fmt_ns(peak_p99),
            peak_queue
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use load::bench::{BenchCell, BenchConfig, BenchTotals};

    fn artifact() -> BenchArtifact {
        BenchArtifact {
            config: BenchConfig {
                seed: 7,
                mix: "fig1".into(),
                scale: "test".into(),
                qps: 200.0,
                jobs: 40,
                driver: "socket".into(),
                workers: 4,
                faults: String::new(),
                phases: "cold,warm".into(),
            },
            totals: BenchTotals {
                submitted: 80,
                completed: 80,
                ok: 80,
                degraded: 0,
                failed: 0,
                protocol_errors: 0,
                shed: 0,
                wall_s: 0.4,
                qps: 200.0,
                peak_queue_depth: 5,
            },
            cells: vec![
                BenchCell {
                    cell: "Wasmtime/-O2".into(),
                    count: 40,
                    mean_ns: 1_000_000,
                    p50_ns: 800_000,
                    p95_ns: 2_000_000,
                    p99_ns: 3_000_000,
                    max_ns: 3_500_000,
                },
                BenchCell {
                    cell: "Wasm3/-O2".into(),
                    count: 40,
                    mean_ns: 2_000_000,
                    p50_ns: 1_500_000,
                    p95_ns: 4_000_000,
                    p99_ns: 6_000_000,
                    max_ns: 7_000_000,
                },
            ],
            series: Vec::new(),
            backends: Vec::new(),
        }
    }

    #[test]
    fn clean_vs_clean_passes() {
        let a = artifact();
        let report = diff_load(&a, &a.clone(), &LoadRule::default());
        assert!(report.ok(), "{:?}", report.regressions);
        assert_eq!(report.checked, 2);
    }

    #[test]
    fn synthetic_2x_slowdown_of_one_cell_fails_and_names_it() {
        let base = artifact();
        let mut cur = artifact();
        cur.cells[0].p99_ns *= 2;
        let report = diff_load(&base, &cur, &LoadRule::default());
        assert!(!report.ok());
        assert_eq!(report.regressions.len(), 1, "{:?}", report.regressions);
        assert!(
            report.regressions[0].contains("Wasmtime/-O2"),
            "{:?}",
            report.regressions
        );
    }

    #[test]
    fn tiny_absolute_increases_do_not_fire() {
        // 2× relative but under the absolute floor: jitter, not signal.
        let mut base = artifact();
        base.cells[0].p99_ns = 40_000;
        let mut cur = base.clone();
        cur.cells[0].p99_ns = 80_000;
        let report = diff_load(&base, &cur, &LoadRule::default());
        assert!(report.ok(), "{:?}", report.regressions);
    }

    #[test]
    fn qps_drop_and_new_failures_fail() {
        let base = artifact();
        let mut cur = artifact();
        cur.totals.qps = 120.0;
        cur.totals.failed = 2;
        cur.totals.protocol_errors = 1;
        let report = diff_load(&base, &cur, &LoadRule::default());
        let all = report.regressions.join("\n");
        assert!(all.contains("QPS"), "{all}");
        assert!(all.contains("failed jobs"), "{all}");
        assert!(all.contains("protocol errors"), "{all}");
    }

    #[test]
    fn config_drift_is_a_hard_error() {
        let base = artifact();
        let mut cur = artifact();
        cur.config.seed = 8;
        let report = diff_load(&base, &cur, &LoadRule::default());
        assert!(!report.ok());
        assert!(report.regressions[0].contains("not comparable"));
        // Config errors short-circuit: no cells were compared.
        assert_eq!(report.checked, 0);
    }

    #[test]
    fn series_window_is_a_note_not_a_gate() {
        use load::bench::BenchSeriesPoint;
        let base = artifact();
        let mut cur = artifact();
        cur.series = vec![BenchSeriesPoint {
            seq: 1,
            t_ns: 0,
            interval_ns: 250_000_000,
            completed: 40,
            failed: 0,
            queue_depth: 9,
            p50_ns: 800_000,
            p99_ns: 4_000_000,
        }];
        let report = diff_load(&base, &cur, &LoadRule::default());
        assert!(report.ok(), "{:?}", report.regressions);
        let all = report.notes.join("\n");
        assert!(all.contains("live series: 1 intervals"), "{all}");
        assert!(all.contains("peak sampled queue 9"), "{all}");
    }

    #[test]
    fn missing_and_new_cells_are_notes() {
        let base = artifact();
        let mut cur = artifact();
        cur.cells[1].cell = "WAVM/-O2".into();
        let report = diff_load(&base, &cur, &LoadRule::default());
        assert!(report.ok(), "{:?}", report.regressions);
        assert_eq!(report.notes.len(), 2, "{:?}", report.notes);
    }
}
