//! Chrome trace → folded stacks (`wabench-prof collapse`).
//!
//! The live path folds straight from ring data
//! ([`obs::folded::export_string`]); this module covers the offline
//! case — a `trace.json` saved earlier (e.g. by `wabench-served
//! --trace-out`) that should become a flamegraph without re-running
//! anything. Weights are wall nanoseconds of *self* time, matching the
//! live exporter's `wall-ns` weight; counter args on `B` events are
//! span totals, not self deltas, so they are not folded here.

use std::collections::BTreeMap;

use obs::json::{self, Value};

/// One open frame on a thread's reconstruction stack.
struct Frame {
    name: String,
    start_us: f64,
    child_us: f64,
}

/// Converts a Chrome trace-event JSON document into folded stacks.
/// Stacks are rooted at the thread name (from `thread_name` metadata,
/// falling back to `tid-N`), one line per distinct stack, weights in
/// nanoseconds of self time, zero-weight stacks omitted.
///
/// # Errors
///
/// Malformed JSON (with the parser's line/column) or trace documents
/// that violate B/E nesting.
pub fn chrome_to_folded(doc: &str) -> Result<String, String> {
    let root = json::parse(doc)?;
    let events = root
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("missing traceEvents array")?;

    let mut thread_names: BTreeMap<u64, String> = BTreeMap::new();
    let mut stacks: BTreeMap<u64, Vec<Frame>> = BTreeMap::new();
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();

    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let tid = ev
            .get("tid")
            .and_then(Value::as_num)
            .ok_or_else(|| format!("event {i}: missing tid"))? as u64;
        let name = ev.get("name").and_then(Value::as_str).unwrap_or("");
        match ph {
            "M" if name == "thread_name" => {
                if let Some(n) = ev.get("args").and_then(|a| a.get("name")).and_then(Value::as_str) {
                    thread_names.insert(tid, sanitize(n));
                }
            }
            "B" => {
                let ts = ev
                    .get("ts")
                    .and_then(Value::as_num)
                    .ok_or_else(|| format!("event {i}: missing ts"))?;
                stacks.entry(tid).or_default().push(Frame {
                    name: sanitize(name),
                    start_us: ts,
                    child_us: 0.0,
                });
            }
            "E" => {
                let ts = ev
                    .get("ts")
                    .and_then(Value::as_num)
                    .ok_or_else(|| format!("event {i}: missing ts"))?;
                let stack = stacks.entry(tid).or_default();
                let frame = stack
                    .pop()
                    .ok_or_else(|| format!("event {i}: E {name:?} with nothing open on tid {tid}"))?;
                if frame.name != sanitize(name) {
                    return Err(format!(
                        "event {i}: E {name:?} closes open span {:?} on tid {tid}",
                        frame.name
                    ));
                }
                let dur_us = (ts - frame.start_us).max(0.0);
                let self_us = (dur_us - frame.child_us).max(0.0);
                if let Some(parent) = stack.last_mut() {
                    parent.child_us += dur_us;
                }
                let self_ns = (self_us * 1e3).round() as u64;
                if self_ns > 0 {
                    let thread = thread_names
                        .get(&tid)
                        .cloned()
                        .unwrap_or_else(|| format!("tid-{tid}"));
                    let mut path = thread;
                    for f in stack.iter() {
                        path.push(';');
                        path.push_str(&f.name);
                    }
                    path.push(';');
                    path.push_str(&frame.name);
                    *folded.entry(path).or_insert(0) += self_ns;
                }
            }
            _ => {}
        }
    }
    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("span {:?} never closed on tid {tid}", open.name));
        }
    }

    let mut out = String::new();
    for (path, w) in &folded {
        out.push_str(path);
        out.push(' ');
        out.push_str(&w.to_string());
        out.push('\n');
    }
    Ok(out)
}

/// Frame-name sanitization matching [`obs::folded`]'s: the folded
/// format reserves `;` (separator) and space (weight delimiter).
fn sanitize(name: &str) -> String {
    name.replace([';', ' ', '\n'], "_")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collapses_nested_spans_with_self_weights() {
        // outer [0, 100µs] with inner [10µs, 50µs]: outer self = 60µs.
        let doc = r#"{"traceEvents":[
            {"ph":"M","pid":1,"tid":7,"name":"thread_name","args":{"name":"worker-0"}},
            {"ph":"B","pid":1,"tid":7,"name":"outer","ts":0.0},
            {"ph":"B","pid":1,"tid":7,"name":"inner","ts":10.0},
            {"ph":"E","pid":1,"tid":7,"name":"inner","ts":50.0},
            {"ph":"E","pid":1,"tid":7,"name":"outer","ts":100.0}
        ]}"#;
        let folded = chrome_to_folded(doc).expect("collapses");
        let summary = obs::folded::parse(&folded).expect("valid folded output");
        assert_eq!(summary.stacks, 2);
        assert_eq!(summary.max_depth, 2);
        assert!(folded.contains("worker-0;outer 60000\n"), "{folded}");
        assert!(folded.contains("worker-0;outer;inner 40000\n"), "{folded}");
    }

    #[test]
    fn unbalanced_documents_are_rejected() {
        let open = r#"{"traceEvents":[{"ph":"B","pid":1,"tid":1,"name":"a","ts":1.0}]}"#;
        assert!(chrome_to_folded(open).unwrap_err().contains("never closed"));
        let stray = r#"{"traceEvents":[{"ph":"E","pid":1,"tid":1,"name":"a","ts":1.0}]}"#;
        assert!(chrome_to_folded(stray).unwrap_err().contains("nothing open"));
    }

    #[test]
    fn unnamed_threads_get_tid_roots() {
        let doc = r#"{"traceEvents":[
            {"ph":"B","pid":1,"tid":3,"name":"a","ts":0.0},
            {"ph":"E","pid":1,"tid":3,"name":"a","ts":5.0}
        ]}"#;
        let folded = chrome_to_folded(doc).expect("collapses");
        assert_eq!(folded, "tid-3;a 5000\n");
    }
}
