//! An in-memory virtual filesystem with POSIX-ish file descriptors.

use std::collections::HashMap;

/// An open file's state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WasiFile {
    /// File contents.
    pub bytes: Vec<u8>,
    /// Current seek position.
    pub pos: usize,
    /// Whether writes are permitted.
    pub writable: bool,
}

/// The in-memory filesystem: named files plus an fd table.
///
/// Descriptors 0/1/2 are stdio (handled by [`crate::WasiCtx`]); file
/// descriptors start at 4 (3 is the conventional preopened directory).
#[derive(Debug, Default)]
pub struct Vfs {
    files: HashMap<String, Vec<u8>>,
    open: HashMap<i32, (String, WasiFile)>,
    next_fd: i32,
}

impl Vfs {
    /// Creates an empty filesystem.
    pub fn new() -> Self {
        Vfs {
            files: HashMap::new(),
            open: HashMap::new(),
            next_fd: 4,
        }
    }

    /// Creates or replaces a file.
    pub fn put(&mut self, path: &str, bytes: Vec<u8>) {
        self.files.insert(path.to_string(), bytes);
    }

    /// Reads back a file's current contents (flushing any open handle's
    /// written bytes requires [`close`](Self::close) first).
    pub fn get(&self, path: &str) -> Option<&[u8]> {
        self.files.get(path).map(|v| v.as_slice())
    }

    /// Opens a file, returning a new descriptor. With `create`, missing
    /// files are created empty and opened writable.
    pub fn open(&mut self, path: &str, create: bool) -> Option<i32> {
        let bytes = match self.files.get(path) {
            Some(b) => b.clone(),
            None if create => {
                self.files.insert(path.to_string(), Vec::new());
                Vec::new()
            }
            None => return None,
        };
        let fd = self.next_fd;
        self.next_fd += 1;
        self.open.insert(
            fd,
            (
                path.to_string(),
                WasiFile {
                    bytes,
                    pos: 0,
                    writable: create,
                },
            ),
        );
        Some(fd)
    }

    /// The open file behind `fd`, if any.
    pub fn file_mut(&mut self, fd: i32) -> Option<&mut WasiFile> {
        self.open.get_mut(&fd).map(|(_, f)| f)
    }

    /// Closes `fd`, writing back its contents.
    pub fn close(&mut self, fd: i32) -> bool {
        match self.open.remove(&fd) {
            Some((path, file)) => {
                if file.writable {
                    self.files.insert(path, file.bytes);
                }
                true
            }
            None => false,
        }
    }

    /// Number of currently open descriptors.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }
}

impl WasiFile {
    /// Reads up to `len` bytes from the current position.
    pub fn read(&mut self, len: usize) -> &[u8] {
        let n = len.min(self.bytes.len().saturating_sub(self.pos));
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    /// Writes at the current position, extending the file as needed.
    pub fn write(&mut self, data: &[u8]) -> usize {
        if !self.writable {
            return 0;
        }
        let end = self.pos + data.len();
        if end > self.bytes.len() {
            self.bytes.resize(end, 0);
        }
        self.bytes[self.pos..end].copy_from_slice(data);
        self.pos = end;
        data.len()
    }

    /// Seeks to an absolute position (clamped to file size for reads).
    pub fn seek(&mut self, pos: usize) {
        self.pos = pos;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_read_close() {
        let mut fs = Vfs::new();
        fs.put("data.txt", b"hello".to_vec());
        let fd = fs.open("data.txt", false).unwrap();
        assert_eq!(fs.file_mut(fd).unwrap().read(3), b"hel");
        assert_eq!(fs.file_mut(fd).unwrap().read(10), b"lo");
        assert_eq!(fs.file_mut(fd).unwrap().read(10), b"");
        assert!(fs.close(fd));
        assert!(!fs.close(fd));
    }

    #[test]
    fn missing_file() {
        let mut fs = Vfs::new();
        assert_eq!(fs.open("nope", false), None);
        assert!(fs.open("nope", true).is_some());
        assert_eq!(fs.get("nope").unwrap(), b"");
    }

    #[test]
    fn write_back_on_close() {
        let mut fs = Vfs::new();
        let fd = fs.open("out.bin", true).unwrap();
        assert_eq!(fs.file_mut(fd).unwrap().write(b"abc"), 3);
        fs.file_mut(fd).unwrap().seek(1);
        fs.file_mut(fd).unwrap().write(b"XY");
        fs.close(fd);
        assert_eq!(fs.get("out.bin").unwrap(), b"aXY");
    }

    #[test]
    fn read_only_rejects_writes() {
        let mut fs = Vfs::new();
        fs.put("ro", b"x".to_vec());
        let fd = fs.open("ro", false).unwrap();
        assert_eq!(fs.file_mut(fd).unwrap().write(b"y"), 0);
    }

    #[test]
    fn distinct_fds() {
        let mut fs = Vfs::new();
        fs.put("a", vec![1]);
        let f1 = fs.open("a", false).unwrap();
        let f2 = fs.open("a", false).unwrap();
        assert_ne!(f1, f2);
        assert_eq!(fs.open_count(), 2);
    }
}
