//! The WASI host context: stdio, filesystem, deterministic clock and
//! randomness.

use crate::vfs::Vfs;

/// Initial value of the deterministic nanosecond clock.
pub const CLOCK_START: i64 = 1_000_000_000;
/// Clock advance per `clock_time_get` call.
pub const CLOCK_STEP_NS: i64 = 1000;
/// Seed of the deterministic xorshift64 random source.
pub const RNG_SEED: u64 = 0x2545F4914F6CDD1D;

/// Per-instance WASI state, installed as the engine's host data.
#[derive(Debug)]
pub struct WasiCtx {
    stdout: Vec<u8>,
    stderr: Vec<u8>,
    stdin: Vec<u8>,
    stdin_pos: usize,
    /// The virtual filesystem.
    pub fs: Vfs,
    clock: i64,
    rng: u64,
    /// Exit code recorded by `proc_exit`.
    pub exit_code: Option<i32>,
    /// Program arguments surfaced through `args_get`.
    pub args: Vec<String>,
    /// Environment variables surfaced through `environ_get`.
    pub env: Vec<(String, String)>,
}

impl Default for WasiCtx {
    fn default() -> Self {
        WasiCtx::new()
    }
}

impl WasiCtx {
    /// Creates a context with empty stdio and filesystem.
    pub fn new() -> Self {
        WasiCtx {
            stdout: Vec::new(),
            stderr: Vec::new(),
            stdin: Vec::new(),
            stdin_pos: 0,
            fs: Vfs::new(),
            clock: CLOCK_START,
            rng: RNG_SEED,
            exit_code: None,
            args: Vec::new(),
            env: Vec::new(),
        }
    }

    /// Creates a context with the given stdin content.
    pub fn with_stdin(stdin: Vec<u8>) -> Self {
        let mut c = WasiCtx::new();
        c.stdin = stdin;
        c
    }

    /// Captured stdout bytes.
    pub fn stdout(&self) -> &[u8] {
        &self.stdout
    }

    /// Captured stderr bytes.
    pub fn stderr(&self) -> &[u8] {
        &self.stderr
    }

    /// Appends to the pending stdin stream.
    pub fn push_stdin(&mut self, bytes: &[u8]) {
        self.stdin.extend_from_slice(bytes);
    }

    /// Writes to a descriptor (1 = stdout, 2 = stderr, ≥4 = VFS file).
    /// Returns bytes written, or `None` for a bad descriptor.
    pub fn write(&mut self, fd: i32, data: &[u8]) -> Option<usize> {
        match fd {
            1 => {
                self.stdout.extend_from_slice(data);
                Some(data.len())
            }
            2 => {
                self.stderr.extend_from_slice(data);
                Some(data.len())
            }
            _ => self.fs.file_mut(fd).map(|f| f.write(data)),
        }
    }

    /// Reads up to `len` bytes from a descriptor (0 = stdin, ≥4 = file).
    /// Returns `None` for a bad descriptor.
    pub fn read(&mut self, fd: i32, len: usize) -> Option<Vec<u8>> {
        match fd {
            0 => {
                let n = len.min(self.stdin.len() - self.stdin_pos);
                let out = self.stdin[self.stdin_pos..self.stdin_pos + n].to_vec();
                self.stdin_pos += n;
                Some(out)
            }
            _ => self.fs.file_mut(fd).map(|f| f.read(len).to_vec()),
        }
    }

    /// The deterministic clock: advances a fixed step per call.
    pub fn clock_time(&mut self) -> i64 {
        self.clock += CLOCK_STEP_NS;
        self.clock
    }

    /// Fills `buf` from the deterministic xorshift64 source.
    pub fn random_fill(&mut self, buf: &mut [u8]) {
        for b in buf {
            self.rng ^= self.rng << 13;
            self.rng ^= self.rng >> 7;
            self.rng ^= self.rng << 17;
            *b = self.rng as u8;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stdio_round_trip() {
        let mut c = WasiCtx::with_stdin(b"abcdef".to_vec());
        assert_eq!(c.read(0, 4).unwrap(), b"abcd");
        assert_eq!(c.read(0, 4).unwrap(), b"ef");
        assert_eq!(c.read(0, 4).unwrap(), b"");
        c.write(1, b"out").unwrap();
        c.write(2, b"err").unwrap();
        assert_eq!(c.stdout(), b"out");
        assert_eq!(c.stderr(), b"err");
    }

    #[test]
    fn bad_fd() {
        let mut c = WasiCtx::new();
        assert_eq!(c.write(9, b"x"), None);
        assert_eq!(c.read(9, 1), None);
    }

    #[test]
    fn clock_is_deterministic() {
        let mut a = WasiCtx::new();
        let mut b = WasiCtx::new();
        assert_eq!(a.clock_time(), b.clock_time());
        assert_eq!(a.clock_time(), CLOCK_START + 2 * CLOCK_STEP_NS);
    }

    #[test]
    fn random_is_deterministic() {
        let mut a = WasiCtx::new();
        let mut b = WasiCtx::new();
        let mut ba = [0u8; 16];
        let mut bb = [0u8; 16];
        a.random_fill(&mut ba);
        b.random_fill(&mut bb);
        assert_eq!(ba, bb);
        assert_ne!(ba, [0u8; 16]);
    }

    #[test]
    fn vfs_reachable_through_ctx() {
        let mut c = WasiCtx::new();
        c.fs.put("f", b"123".to_vec());
        let fd = c.fs.open("f", false).unwrap();
        assert_eq!(c.read(fd, 2).unwrap(), b"12");
    }
}
