//! Host-function bindings: WASI preview1 entry points over a guest's
//! linear memory.

use crate::ctx::WasiCtx;
use crate::{ERRNO_BADF, ERRNO_INVAL, ERRNO_SUCCESS};
use engines::{HostCtx, Imports, Trap};
use wasm_core::types::{FuncType, ValType, Value};

const I32: ValType = ValType::I32;
const I64: ValType = ValType::I64;

fn ctx_parts<'a>(
    host: &'a mut HostCtx<'_>,
) -> Result<(&'a mut engines::LinearMemory, &'a mut WasiCtx), Trap> {
    let HostCtx { memory, data } = host;
    let mem = memory
        .as_deref_mut()
        .ok_or_else(|| Trap::Host("WASI requires a linear memory".into()))?;
    let wasi = data
        .downcast_mut::<WasiCtx>()
        .ok_or_else(|| Trap::Host("host data is not a WasiCtx".into()))?;
    Ok((mem, wasi))
}

/// Builds the `wasi_snapshot_preview1` import set. Install a
/// [`WasiCtx`] as the instance's host data.
pub fn imports() -> Imports {
    let mut im = Imports::new();

    im.func(
        "wasi_snapshot_preview1",
        "fd_write",
        FuncType::new(&[I32, I32, I32, I32], &[I32]),
        |host, args| {
            let (mem, wasi) = ctx_parts(host)?;
            let fd = args[0].unwrap_i32();
            let iovs = args[1].unwrap_i32() as u32;
            let iovs_len = args[2].unwrap_i32() as u32;
            let nwritten_ptr = args[3].unwrap_i32() as u32;
            let mut written = 0usize;
            for k in 0..iovs_len {
                let ptr = mem.load_i32(iovs + k * 8, 0)? as u32;
                let len = mem.load_i32(iovs + k * 8, 4)? as u32;
                let data = mem.slice(ptr, len)?.to_vec();
                match wasi.write(fd, &data) {
                    Some(n) => written += n,
                    None => return Ok(Some(Value::I32(ERRNO_BADF))),
                }
            }
            mem.store_i32(nwritten_ptr, 0, written as i32)?;
            Ok(Some(Value::I32(ERRNO_SUCCESS)))
        },
    );

    im.func(
        "wasi_snapshot_preview1",
        "fd_read",
        FuncType::new(&[I32, I32, I32, I32], &[I32]),
        |host, args| {
            let (mem, wasi) = ctx_parts(host)?;
            let fd = args[0].unwrap_i32();
            let iovs = args[1].unwrap_i32() as u32;
            let iovs_len = args[2].unwrap_i32() as u32;
            let nread_ptr = args[3].unwrap_i32() as u32;
            let mut total = 0usize;
            for k in 0..iovs_len {
                let ptr = mem.load_i32(iovs + k * 8, 0)? as u32;
                let len = mem.load_i32(iovs + k * 8, 4)? as u32;
                let data = match wasi.read(fd, len as usize) {
                    Some(d) => d,
                    None => return Ok(Some(Value::I32(ERRNO_BADF))),
                };
                mem.write_slice(ptr, &data)?;
                total += data.len();
                if data.len() < len as usize {
                    break;
                }
            }
            mem.store_i32(nread_ptr, 0, total as i32)?;
            Ok(Some(Value::I32(ERRNO_SUCCESS)))
        },
    );

    im.func(
        "wasi_snapshot_preview1",
        "proc_exit",
        FuncType::new(&[I32], &[]),
        |host, args| {
            let code = args[0].unwrap_i32();
            if let Ok((_, wasi)) = ctx_parts(host) {
                wasi.exit_code = Some(code);
            }
            Err(Trap::Exit(code))
        },
    );

    im.func(
        "wasi_snapshot_preview1",
        "clock_time_get",
        FuncType::new(&[I32, I64, I32], &[I32]),
        |host, args| {
            let (mem, wasi) = ctx_parts(host)?;
            let result_ptr = args[2].unwrap_i32() as u32;
            let t = wasi.clock_time();
            mem.store_i64(result_ptr, 0, t)?;
            Ok(Some(Value::I32(ERRNO_SUCCESS)))
        },
    );

    im.func(
        "wasi_snapshot_preview1",
        "random_get",
        FuncType::new(&[I32, I32], &[I32]),
        |host, args| {
            let (mem, wasi) = ctx_parts(host)?;
            let ptr = args[0].unwrap_i32() as u32;
            let len = args[1].unwrap_i32() as u32;
            if len > 1 << 20 {
                return Ok(Some(Value::I32(ERRNO_INVAL)));
            }
            let mut buf = vec![0u8; len as usize];
            wasi.random_fill(&mut buf);
            mem.write_slice(ptr, &buf)?;
            Ok(Some(Value::I32(ERRNO_SUCCESS)))
        },
    );

    im.func(
        "wasi_snapshot_preview1",
        "args_sizes_get",
        FuncType::new(&[I32, I32], &[I32]),
        |host, args| {
            let (mem, wasi) = ctx_parts(host)?;
            let argc_ptr = args[0].unwrap_i32() as u32;
            let size_ptr = args[1].unwrap_i32() as u32;
            let bytes: usize = wasi.args.iter().map(|a| a.len() + 1).sum();
            mem.store_i32(argc_ptr, 0, wasi.args.len() as i32)?;
            mem.store_i32(size_ptr, 0, bytes as i32)?;
            Ok(Some(Value::I32(ERRNO_SUCCESS)))
        },
    );

    im.func(
        "wasi_snapshot_preview1",
        "args_get",
        FuncType::new(&[I32, I32], &[I32]),
        |host, args| {
            let (mem, wasi) = ctx_parts(host)?;
            let argv = args[0].unwrap_i32() as u32;
            let mut buf = args[1].unwrap_i32() as u32;
            for (i, arg) in wasi.args.clone().iter().enumerate() {
                mem.store_i32(argv + i as u32 * 4, 0, buf as i32)?;
                mem.write_slice(buf, arg.as_bytes())?;
                mem.write_slice(buf + arg.len() as u32, &[0])?;
                buf += arg.len() as u32 + 1;
            }
            Ok(Some(Value::I32(ERRNO_SUCCESS)))
        },
    );

    im.func(
        "wasi_snapshot_preview1",
        "environ_sizes_get",
        FuncType::new(&[I32, I32], &[I32]),
        |host, args| {
            let (mem, wasi) = ctx_parts(host)?;
            let count_ptr = args[0].unwrap_i32() as u32;
            let size_ptr = args[1].unwrap_i32() as u32;
            let bytes: usize = wasi.env.iter().map(|(k, v)| k.len() + v.len() + 2).sum();
            mem.store_i32(count_ptr, 0, wasi.env.len() as i32)?;
            mem.store_i32(size_ptr, 0, bytes as i32)?;
            Ok(Some(Value::I32(ERRNO_SUCCESS)))
        },
    );

    im.func(
        "wasi_snapshot_preview1",
        "environ_get",
        FuncType::new(&[I32, I32], &[I32]),
        |host, args| {
            let (mem, wasi) = ctx_parts(host)?;
            let envp = args[0].unwrap_i32() as u32;
            let mut buf = args[1].unwrap_i32() as u32;
            for (i, (k, v)) in wasi.env.clone().iter().enumerate() {
                let entry = format!("{k}={v}");
                mem.store_i32(envp + i as u32 * 4, 0, buf as i32)?;
                mem.write_slice(buf, entry.as_bytes())?;
                mem.write_slice(buf + entry.len() as u32, &[0])?;
                buf += entry.len() as u32 + 1;
            }
            Ok(Some(Value::I32(ERRNO_SUCCESS)))
        },
    );

    im.func(
        "wasi_snapshot_preview1",
        "fd_close",
        FuncType::new(&[I32], &[I32]),
        |host, args| {
            let (_, wasi) = ctx_parts(host)?;
            let fd = args[0].unwrap_i32();
            let errno = if wasi.fs.close(fd) { ERRNO_SUCCESS } else { ERRNO_BADF };
            Ok(Some(Value::I32(errno)))
        },
    );

    im.func(
        "wasi_snapshot_preview1",
        "fd_seek",
        FuncType::new(&[I32, I64, I32, I32], &[I32]),
        |host, args| {
            let (mem, wasi) = ctx_parts(host)?;
            let fd = args[0].unwrap_i32();
            let offset = args[1].unwrap_i64();
            let whence = args[2].unwrap_i32();
            let result_ptr = args[3].unwrap_i32() as u32;
            let Some(file) = wasi.fs.file_mut(fd) else {
                return Ok(Some(Value::I32(ERRNO_BADF)));
            };
            let new_pos = match whence {
                0 => offset,                          // SET
                1 => file.pos as i64 + offset,        // CUR
                2 => file.bytes.len() as i64 + offset, // END
                _ => return Ok(Some(Value::I32(ERRNO_INVAL))),
            };
            if new_pos < 0 {
                return Ok(Some(Value::I32(ERRNO_INVAL)));
            }
            file.seek(new_pos as usize);
            mem.store_i64(result_ptr, 0, new_pos)?;
            Ok(Some(Value::I32(ERRNO_SUCCESS)))
        },
    );

    // Simplified preview1 path_open: dirfd/rights/flags beyond CREAT are
    // accepted and ignored; the VFS has a single flat namespace.
    im.func(
        "wasi_snapshot_preview1",
        "path_open",
        FuncType::new(&[I32, I32, I32, I32, I32, I64, I64, I32, I32], &[I32]),
        |host, args| {
            let (mem, wasi) = ctx_parts(host)?;
            let path_ptr = args[2].unwrap_i32() as u32;
            let path_len = args[3].unwrap_i32() as u32;
            let oflags = args[4].unwrap_i32();
            let fd_ptr = args[8].unwrap_i32() as u32;
            let path_bytes = mem.slice(path_ptr, path_len)?.to_vec();
            let Ok(path) = String::from_utf8(path_bytes) else {
                return Ok(Some(Value::I32(ERRNO_INVAL)));
            };
            let create = oflags & 0x1 != 0; // OFLAGS_CREAT
            match wasi.fs.open(&path, create) {
                Some(fd) => {
                    mem.store_i32(fd_ptr, 0, fd)?;
                    Ok(Some(Value::I32(ERRNO_SUCCESS)))
                }
                None => Ok(Some(Value::I32(crate::ERRNO_NOENT))),
            }
        },
    );

    im
}

#[cfg(test)]
mod tests {
    use super::*;
    use engines::{Engine, EngineKind};
    use wasm_core::types::ValType;

    fn run_main(src: &str, ctx: WasiCtx) -> WasiCtx {
        let bytes = wacc::compile_to_bytes(src, wacc::OptLevel::O1).unwrap();
        let compiled = Engine::new(EngineKind::Wasmtime).compile(&bytes).unwrap();
        let mut inst = compiled.instantiate(&imports(), Box::new(ctx)).unwrap();
        inst.invoke("main", &[]).unwrap();
        // Extract the context back out.
        inst.host_data_mut()
            .downcast_mut::<WasiCtx>()
            .map(std::mem::take)
            .unwrap()
    }

    #[test]
    fn print_reaches_stdout() {
        let ctx = run_main(
            r#"export fn main() -> i32 { print_i32(1234); println(); return 0; }"#,
            WasiCtx::new(),
        );
        assert_eq!(ctx.stdout(), b"1234\n");
    }

    #[test]
    fn stdin_reaches_guest() {
        let ctx = run_main(
            r#"export fn main() -> i32 {
                let c: i32 = read_byte();
                while (c >= 0) { print_char(c + 1); c = read_byte(); }
                return 0;
            }"#,
            WasiCtx::with_stdin(b"abc".to_vec()),
        );
        assert_eq!(ctx.stdout(), b"bcd");
    }

    #[test]
    fn clock_and_random_are_deterministic_across_engines() {
        let src = r#"export fn main() -> i32 {
            let t: i64 = clock_ns();
            wasi_random_get(2048, 8);
            print_i64(t);
            print_char(32);
            print_i64(load_i64(2048));
            return 0;
        }"#;
        let bytes = wacc::compile_to_bytes(src, wacc::OptLevel::O2).unwrap();
        let mut outputs = Vec::new();
        for kind in EngineKind::all() {
            let compiled = Engine::new(kind).compile(&bytes).unwrap();
            let mut inst = compiled
                .instantiate(&imports(), Box::new(WasiCtx::new()))
                .unwrap();
            inst.invoke("main", &[]).unwrap();
            let ctx = inst.host_data().downcast_ref::<WasiCtx>().unwrap();
            outputs.push(ctx.stdout().to_vec());
        }
        assert!(outputs.windows(2).all(|w| w[0] == w[1]), "{outputs:?}");
    }

    #[test]
    fn proc_exit_traps_with_code() {
        let bytes = wacc::compile_to_bytes(
            r#"export fn main() -> i32 { exit(7); return 0; }"#,
            wacc::OptLevel::O0,
        )
        .unwrap();
        let compiled = Engine::new(EngineKind::Wamr).compile(&bytes).unwrap();
        let mut inst = compiled
            .instantiate(&imports(), Box::new(WasiCtx::new()))
            .unwrap();
        assert_eq!(inst.invoke("main", &[]), Err(Trap::Exit(7)));
        let ctx = inst.host_data().downcast_ref::<WasiCtx>().unwrap();
        assert_eq!(ctx.exit_code, Some(7));
    }
    #[test]
    fn file_io_via_path_open_seek_close() {
        use wasm_core::builder::ModuleBuilder;
        use wasm_core::instr::Instr;
        // A module that opens "data.bin", seeks to 2, reads 3 bytes into
        // memory, closes, and returns the bytes summed.
        let mut b = ModuleBuilder::new();
        let path_open = b.import_func(
            "wasi_snapshot_preview1",
            "path_open",
            FuncType::new(&[I32, I32, I32, I32, I32, I64, I64, I32, I32], &[I32]),
        );
        let fd_seek = b.import_func(
            "wasi_snapshot_preview1",
            "fd_seek",
            FuncType::new(&[I32, I64, I32, I32], &[I32]),
        );
        let fd_read = b.import_func(
            "wasi_snapshot_preview1",
            "fd_read",
            FuncType::new(&[I32, I32, I32, I32], &[I32]),
        );
        let fd_close = b.import_func(
            "wasi_snapshot_preview1",
            "fd_close",
            FuncType::new(&[I32], &[I32]),
        );
        b.memory(1, None);
        b.data(256, b"data.bin".to_vec());
        let f = b.begin_func(FuncType::new(&[], &[ValType::I32]));
        let fd = b.new_local(ValType::I32);
        // path_open(dirfd=3, lookup=0, path=256, len=8, oflags=0, 0, 0, fdflags=0, fd_out=512)
        for v in [3, 0, 256, 8, 0] {
            b.emit(Instr::I32Const(v));
        }
        b.emit(Instr::I64Const(0));
        b.emit(Instr::I64Const(0));
        b.emit(Instr::I32Const(0));
        b.emit(Instr::I32Const(512));
        b.emit(Instr::Call(path_open));
        b.emit(Instr::Drop);
        b.emit(Instr::I32Const(512));
        b.emit(Instr::I32Load(Default::default()));
        b.emit(Instr::LocalSet(fd));
        // fd_seek(fd, 2, SET=0, result=520)
        b.emit(Instr::LocalGet(fd));
        b.emit(Instr::I64Const(2));
        b.emit(Instr::I32Const(0));
        b.emit(Instr::I32Const(520));
        b.emit(Instr::Call(fd_seek));
        b.emit(Instr::Drop);
        // iovec at 528: ptr 600, len 3; fd_read(fd, 528, 1, 536)
        b.emit(Instr::I32Const(528));
        b.emit(Instr::I32Const(600));
        b.emit(Instr::I32Store(Default::default()));
        b.emit(Instr::I32Const(532));
        b.emit(Instr::I32Const(3));
        b.emit(Instr::I32Store(Default::default()));
        b.emit(Instr::LocalGet(fd));
        b.emit(Instr::I32Const(528));
        b.emit(Instr::I32Const(1));
        b.emit(Instr::I32Const(536));
        b.emit(Instr::Call(fd_read));
        b.emit(Instr::Drop);
        b.emit(Instr::LocalGet(fd));
        b.emit(Instr::Call(fd_close));
        b.emit(Instr::Drop);
        // Sum the 3 bytes.
        b.emit(Instr::I32Const(600));
        b.emit(Instr::I32Load8U(Default::default()));
        b.emit(Instr::I32Const(601));
        b.emit(Instr::I32Load8U(Default::default()));
        b.emit(Instr::I32Add);
        b.emit(Instr::I32Const(602));
        b.emit(Instr::I32Load8U(Default::default()));
        b.emit(Instr::I32Add);
        b.finish_func();
        b.export_func("go", f);
        let m = b.build();
        wasm_core::validate::validate(&m).unwrap();
        let bytes = wasm_core::encode::encode(&m);

        let mut ctx = WasiCtx::new();
        ctx.fs.put("data.bin", vec![10, 20, 1, 2, 3, 99]);
        let compiled = Engine::new(EngineKind::Wasm3).compile(&bytes).unwrap();
        let mut inst = compiled.instantiate(&imports(), Box::new(ctx)).unwrap();
        assert_eq!(
            inst.invoke("go", &[]).unwrap(),
            Some(Value::I32(6)) // bytes 1+2+3 after seeking past 10, 20
        );
    }

    #[test]
    fn args_and_environ_surface() {
        use wasm_core::builder::ModuleBuilder;
        use wasm_core::instr::Instr;
        let mut b = ModuleBuilder::new();
        let sizes = b.import_func(
            "wasi_snapshot_preview1",
            "args_sizes_get",
            FuncType::new(&[I32, I32], &[I32]),
        );
        let get = b.import_func(
            "wasi_snapshot_preview1",
            "args_get",
            FuncType::new(&[I32, I32], &[I32]),
        );
        b.memory(1, None);
        let f = b.begin_func(FuncType::new(&[], &[ValType::I32]));
        b.emit(Instr::I32Const(0));
        b.emit(Instr::I32Const(4));
        b.emit(Instr::Call(sizes));
        b.emit(Instr::Drop);
        b.emit(Instr::I32Const(16));
        b.emit(Instr::I32Const(64));
        b.emit(Instr::Call(get));
        b.emit(Instr::Drop);
        // return argc * 1000 + first byte of argv[0]
        b.emit(Instr::I32Const(0));
        b.emit(Instr::I32Load(Default::default()));
        b.emit(Instr::I32Const(1000));
        b.emit(Instr::I32Mul);
        b.emit(Instr::I32Const(16));
        b.emit(Instr::I32Load(Default::default()));
        b.emit(Instr::I32Load8U(Default::default()));
        b.emit(Instr::I32Add);
        b.finish_func();
        b.export_func("go", f);
        let m = b.build();
        wasm_core::validate::validate(&m).unwrap();
        let bytes = wasm_core::encode::encode(&m);
        let mut ctx = WasiCtx::new();
        ctx.args = vec!["prog".into(), "x".into()];
        let compiled = Engine::new(EngineKind::Wamr).compile(&bytes).unwrap();
        let mut inst = compiled.instantiate(&imports(), Box::new(ctx)).unwrap();
        assert_eq!(inst.invoke("go", &[]).unwrap(), Some(Value::I32(2000 + 112)));
    }
}
