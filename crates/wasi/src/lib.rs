//! # wasi — a WASI preview1 subset over an in-memory virtual filesystem
//!
//! Implements the host side of the system interface the benchmark modules
//! import: `fd_write`, `fd_read`, `proc_exit`, `clock_time_get`, and
//! `random_get`, plus an in-memory VFS with stdio streams and preloadable
//! files.
//!
//! The clock and the random source are **deterministic** (a fixed-step
//! clock and a seeded xorshift generator) so benchmark runs are exactly
//! reproducible across engines and match the `wacc` reference evaluator.
//!
//! ```
//! use engines::{Engine, EngineKind};
//! use wasi_rt::WasiCtx;
//!
//! let src = r#"export fn main() -> i32 { print_cstr("hi"); return 0; }"#;
//! let bytes = wacc::compile_to_bytes(src, wacc::OptLevel::O2)?;
//! let compiled = Engine::new(EngineKind::Wasmtime).compile(&bytes)?;
//! let mut inst = compiled.instantiate(&wasi_rt::imports(), Box::new(WasiCtx::new()))?;
//! inst.invoke("main", &[])?;
//! let ctx = inst.host_data().downcast_ref::<WasiCtx>().unwrap();
//! assert_eq!(ctx.stdout(), b"hi");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod ctx;
mod host;
mod vfs;

pub use ctx::{WasiCtx, CLOCK_START, CLOCK_STEP_NS, RNG_SEED};
pub use host::imports;
pub use vfs::{Vfs, WasiFile};

/// WASI errno: success.
pub const ERRNO_SUCCESS: i32 = 0;
/// WASI errno: bad file descriptor.
pub const ERRNO_BADF: i32 = 8;
/// WASI errno: invalid argument.
pub const ERRNO_INVAL: i32 = 28;
/// WASI errno: no such file or directory.
pub const ERRNO_NOENT: i32 = 44;
