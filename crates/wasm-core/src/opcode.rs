//! Opcode byte assignments for instructions without complex immediates.
//!
//! A single macro defines the mapping once; the encoder and decoder both
//! derive from it so they can never drift apart.

use crate::instr::Instr;

macro_rules! simple_opcodes {
    ($(($byte:expr, $variant:ident)),* $(,)?) => {
        /// Returns the opcode byte for a simple (immediate-free) instruction.
        pub fn simple_to_byte(instr: &Instr) -> Option<u8> {
            match instr {
                $(Instr::$variant => Some($byte),)*
                _ => None,
            }
        }

        /// Returns the instruction for a simple opcode byte.
        pub fn simple_from_byte(byte: u8) -> Option<Instr> {
            match byte {
                $($byte => Some(Instr::$variant),)*
                _ => None,
            }
        }

        /// All simple (immediate-free) instructions, for exhaustive tests.
        pub fn all_simple() -> Vec<(u8, Instr)> {
            vec![$(($byte, Instr::$variant)),*]
        }
    };
}

simple_opcodes! {
    (0x00, Unreachable),
    (0x01, Nop),
    (0x05, Else),
    (0x0B, End),
    (0x0F, Return),
    (0x1A, Drop),
    (0x1B, Select),
    (0x45, I32Eqz),
    (0x46, I32Eq),
    (0x47, I32Ne),
    (0x48, I32LtS),
    (0x49, I32LtU),
    (0x4A, I32GtS),
    (0x4B, I32GtU),
    (0x4C, I32LeS),
    (0x4D, I32LeU),
    (0x4E, I32GeS),
    (0x4F, I32GeU),
    (0x50, I64Eqz),
    (0x51, I64Eq),
    (0x52, I64Ne),
    (0x53, I64LtS),
    (0x54, I64LtU),
    (0x55, I64GtS),
    (0x56, I64GtU),
    (0x57, I64LeS),
    (0x58, I64LeU),
    (0x59, I64GeS),
    (0x5A, I64GeU),
    (0x5B, F32Eq),
    (0x5C, F32Ne),
    (0x5D, F32Lt),
    (0x5E, F32Gt),
    (0x5F, F32Le),
    (0x60, F32Ge),
    (0x61, F64Eq),
    (0x62, F64Ne),
    (0x63, F64Lt),
    (0x64, F64Gt),
    (0x65, F64Le),
    (0x66, F64Ge),
    (0x67, I32Clz),
    (0x68, I32Ctz),
    (0x69, I32Popcnt),
    (0x6A, I32Add),
    (0x6B, I32Sub),
    (0x6C, I32Mul),
    (0x6D, I32DivS),
    (0x6E, I32DivU),
    (0x6F, I32RemS),
    (0x70, I32RemU),
    (0x71, I32And),
    (0x72, I32Or),
    (0x73, I32Xor),
    (0x74, I32Shl),
    (0x75, I32ShrS),
    (0x76, I32ShrU),
    (0x77, I32Rotl),
    (0x78, I32Rotr),
    (0x79, I64Clz),
    (0x7A, I64Ctz),
    (0x7B, I64Popcnt),
    (0x7C, I64Add),
    (0x7D, I64Sub),
    (0x7E, I64Mul),
    (0x7F, I64DivS),
    (0x80, I64DivU),
    (0x81, I64RemS),
    (0x82, I64RemU),
    (0x83, I64And),
    (0x84, I64Or),
    (0x85, I64Xor),
    (0x86, I64Shl),
    (0x87, I64ShrS),
    (0x88, I64ShrU),
    (0x89, I64Rotl),
    (0x8A, I64Rotr),
    (0x8B, F32Abs),
    (0x8C, F32Neg),
    (0x8D, F32Ceil),
    (0x8E, F32Floor),
    (0x8F, F32Trunc),
    (0x90, F32Nearest),
    (0x91, F32Sqrt),
    (0x92, F32Add),
    (0x93, F32Sub),
    (0x94, F32Mul),
    (0x95, F32Div),
    (0x96, F32Min),
    (0x97, F32Max),
    (0x98, F32Copysign),
    (0x99, F64Abs),
    (0x9A, F64Neg),
    (0x9B, F64Ceil),
    (0x9C, F64Floor),
    (0x9D, F64Trunc),
    (0x9E, F64Nearest),
    (0x9F, F64Sqrt),
    (0xA0, F64Add),
    (0xA1, F64Sub),
    (0xA2, F64Mul),
    (0xA3, F64Div),
    (0xA4, F64Min),
    (0xA5, F64Max),
    (0xA6, F64Copysign),
    (0xA7, I32WrapI64),
    (0xA8, I32TruncF32S),
    (0xA9, I32TruncF32U),
    (0xAA, I32TruncF64S),
    (0xAB, I32TruncF64U),
    (0xAC, I64ExtendI32S),
    (0xAD, I64ExtendI32U),
    (0xAE, I64TruncF32S),
    (0xAF, I64TruncF32U),
    (0xB0, I64TruncF64S),
    (0xB1, I64TruncF64U),
    (0xB2, F32ConvertI32S),
    (0xB3, F32ConvertI32U),
    (0xB4, F32ConvertI64S),
    (0xB5, F32ConvertI64U),
    (0xB6, F32DemoteF64),
    (0xB7, F64ConvertI32S),
    (0xB8, F64ConvertI32U),
    (0xB9, F64ConvertI64S),
    (0xBA, F64ConvertI64U),
    (0xBB, F64PromoteF32),
    (0xBC, I32ReinterpretF32),
    (0xBD, I64ReinterpretF64),
    (0xBE, F32ReinterpretI32),
    (0xBF, F64ReinterpretI64),
    (0xC0, I32Extend8S),
    (0xC1, I32Extend16S),
    (0xC2, I64Extend8S),
    (0xC3, I64Extend16S),
    (0xC4, I64Extend32S),
}

/// Returns the opcode byte and memarg for a memory-access instruction.
pub fn mem_opcode(instr: &Instr) -> Option<(u8, crate::instr::MemArg)> {
    use Instr::*;
    Some(match *instr {
        I32Load(m) => (0x28, m),
        I64Load(m) => (0x29, m),
        F32Load(m) => (0x2A, m),
        F64Load(m) => (0x2B, m),
        I32Load8S(m) => (0x2C, m),
        I32Load8U(m) => (0x2D, m),
        I32Load16S(m) => (0x2E, m),
        I32Load16U(m) => (0x2F, m),
        I64Load8S(m) => (0x30, m),
        I64Load8U(m) => (0x31, m),
        I64Load16S(m) => (0x32, m),
        I64Load16U(m) => (0x33, m),
        I64Load32S(m) => (0x34, m),
        I64Load32U(m) => (0x35, m),
        I32Store(m) => (0x36, m),
        I64Store(m) => (0x37, m),
        F32Store(m) => (0x38, m),
        F64Store(m) => (0x39, m),
        I32Store8(m) => (0x3A, m),
        I32Store16(m) => (0x3B, m),
        I64Store8(m) => (0x3C, m),
        I64Store16(m) => (0x3D, m),
        I64Store32(m) => (0x3E, m),
        _ => return None,
    })
}

/// Builds a memory-access instruction from its opcode byte and memarg.
pub fn mem_from_byte(byte: u8, m: crate::instr::MemArg) -> Option<Instr> {
    use Instr::*;
    Some(match byte {
        0x28 => I32Load(m),
        0x29 => I64Load(m),
        0x2A => F32Load(m),
        0x2B => F64Load(m),
        0x2C => I32Load8S(m),
        0x2D => I32Load8U(m),
        0x2E => I32Load16S(m),
        0x2F => I32Load16U(m),
        0x30 => I64Load8S(m),
        0x31 => I64Load8U(m),
        0x32 => I64Load16S(m),
        0x33 => I64Load16U(m),
        0x34 => I64Load32S(m),
        0x35 => I64Load32U(m),
        0x36 => I32Store(m),
        0x37 => I64Store(m),
        0x38 => F32Store(m),
        0x39 => F64Store(m),
        0x3A => I32Store8(m),
        0x3B => I32Store16(m),
        0x3C => I64Store8(m),
        0x3D => I64Store16(m),
        0x3E => I64Store32(m),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::MemArg;

    #[test]
    fn simple_opcode_bijection() {
        for (byte, instr) in all_simple() {
            assert_eq!(simple_to_byte(&instr), Some(byte), "{instr:?}");
            assert_eq!(simple_from_byte(byte), Some(instr), "0x{byte:02x}");
        }
    }

    #[test]
    fn no_simple_collisions() {
        let all = all_simple();
        let mut bytes: Vec<u8> = all.iter().map(|(b, _)| *b).collect();
        bytes.sort_unstable();
        bytes.dedup();
        assert_eq!(bytes.len(), all.len());
    }

    #[test]
    fn mem_opcode_round_trip() {
        let m = MemArg {
            align: 2,
            offset: 16,
        };
        for op in 0x28u8..=0x3E {
            let instr = mem_from_byte(op, m).unwrap();
            assert_eq!(mem_opcode(&instr), Some((op, m)));
        }
    }
}
