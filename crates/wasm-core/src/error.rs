//! Error types for decoding and validating WebAssembly modules.

use std::error::Error;
use std::fmt;

/// The specific reason a binary failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeErrorKind {
    /// Input ended before a complete item was read.
    UnexpectedEof,
    /// The 4-byte magic number was not `\0asm`.
    BadMagic,
    /// Unsupported binary format version.
    BadVersion(u32),
    /// A LEB128 integer exceeded its bit width.
    IntTooLarge,
    /// A name was not valid UTF-8.
    InvalidUtf8,
    /// Unknown section id.
    UnknownSection(u8),
    /// Sections appeared out of order or duplicated.
    SectionOrder(u8),
    /// A section's declared size did not match its content.
    SectionSizeMismatch,
    /// Unknown or unsupported opcode byte.
    UnknownOpcode(u8),
    /// Unknown secondary opcode (0xFC prefix).
    UnknownExtOpcode(u32),
    /// Invalid value-type byte.
    InvalidValType(u8),
    /// Invalid block-type encoding.
    InvalidBlockType,
    /// Invalid mutability flag.
    InvalidMutability(u8),
    /// Invalid limits flag.
    InvalidLimits(u8),
    /// Invalid import/export kind byte.
    InvalidExternKind(u8),
    /// Function count in code section disagrees with function section.
    FuncCountMismatch,
    /// A constant expression was malformed.
    InvalidConstExpr,
    /// An element type other than funcref was used.
    InvalidElemType(u8),
    /// Trailing garbage after the last section.
    TrailingBytes,
}

impl fmt::Display for DecodeErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use DecodeErrorKind::*;
        match self {
            UnexpectedEof => write!(f, "unexpected end of input"),
            BadMagic => write!(f, "bad magic number"),
            BadVersion(v) => write!(f, "unsupported binary version {v}"),
            IntTooLarge => write!(f, "LEB128 integer too large"),
            InvalidUtf8 => write!(f, "invalid UTF-8 in name"),
            UnknownSection(id) => write!(f, "unknown section id {id}"),
            SectionOrder(id) => write!(f, "section {id} out of order"),
            SectionSizeMismatch => write!(f, "section size mismatch"),
            UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            UnknownExtOpcode(op) => write!(f, "unknown extended opcode {op}"),
            InvalidValType(b) => write!(f, "invalid value type 0x{b:02x}"),
            InvalidBlockType => write!(f, "invalid block type"),
            InvalidMutability(b) => write!(f, "invalid mutability flag {b}"),
            InvalidLimits(b) => write!(f, "invalid limits flag {b}"),
            InvalidExternKind(b) => write!(f, "invalid extern kind {b}"),
            FuncCountMismatch => write!(f, "function and code section counts differ"),
            InvalidConstExpr => write!(f, "malformed constant expression"),
            InvalidElemType(b) => write!(f, "invalid element type 0x{b:02x}"),
            TrailingBytes => write!(f, "trailing bytes after final section"),
        }
    }
}

/// An error produced while decoding a binary module, with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// What went wrong.
    pub kind: DecodeErrorKind,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at offset {}: {}", self.offset, self.kind)
    }
}

impl Error for DecodeError {}

/// An error produced by module validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// Human-readable description of the violation.
    pub message: String,
    /// Function index space position, when the error is inside a body.
    pub func: Option<u32>,
    /// Instruction offset within the body, when applicable.
    pub instr: Option<usize>,
}

impl ValidateError {
    /// Creates a module-level validation error.
    pub fn module(message: impl Into<String>) -> Self {
        ValidateError {
            message: message.into(),
            func: None,
            instr: None,
        }
    }

    /// Creates a validation error inside a function body.
    pub fn in_func(func: u32, instr: usize, message: impl Into<String>) -> Self {
        ValidateError {
            message: message.into(),
            func: Some(func),
            instr: Some(instr),
        }
    }

    /// Creates a validation error at a known instruction offset in a
    /// not-yet-identified function (used by body-local analyses like
    /// `ControlMap`, whose callers attach the index via [`with_func`]).
    ///
    /// [`with_func`]: ValidateError::with_func
    pub fn at_instr(instr: usize, message: impl Into<String>) -> Self {
        ValidateError {
            message: message.into(),
            func: None,
            instr: Some(instr),
        }
    }

    /// Attaches the function index space position, unless one is already
    /// recorded (an inner analysis may know the index more precisely).
    #[must_use]
    pub fn with_func(mut self, func: u32) -> Self {
        self.func.get_or_insert(func);
        self
    }
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.func, self.instr) {
            (Some(func), Some(i)) => {
                write!(f, "validation error in func {func} at instr {i}: {}", self.message)
            }
            (Some(func), None) => write!(f, "validation error in func {func}: {}", self.message),
            (None, Some(i)) => write!(f, "validation error at instr {i}: {}", self.message),
            _ => write!(f, "validation error: {}", self.message),
        }
    }
}

impl Error for ValidateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset() {
        let e = DecodeError {
            offset: 12,
            kind: DecodeErrorKind::BadMagic,
        };
        assert_eq!(e.to_string(), "decode error at offset 12: bad magic number");
    }

    #[test]
    fn validate_error_display() {
        assert_eq!(
            ValidateError::in_func(3, 9, "type mismatch").to_string(),
            "validation error in func 3 at instr 9: type mismatch"
        );
        assert_eq!(
            ValidateError::module("no memory").to_string(),
            "validation error: no memory"
        );
    }

    #[test]
    fn at_instr_carries_offset_and_accepts_a_func_index() {
        let e = ValidateError::at_instr(7, "unbalanced end");
        assert_eq!(e.to_string(), "validation error at instr 7: unbalanced end");
        let e = e.with_func(4);
        assert_eq!(e.func, Some(4));
        assert_eq!(e.instr, Some(7));
        assert_eq!(e.to_string(), "validation error in func 4 at instr 7: unbalanced end");
        // An already-attributed error keeps its original function index.
        assert_eq!(ValidateError::in_func(1, 2, "x").with_func(9).func, Some(1));
    }
}
