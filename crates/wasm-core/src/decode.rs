//! Decoding of WebAssembly binary format bytes into a [`Module`].

use crate::encode::{MAGIC, VERSION};
use crate::error::{DecodeError, DecodeErrorKind};
use crate::instr::{BlockType, Instr, MemArg};
use crate::leb::Reader;
use crate::module::{
    ConstExpr, CustomSection, DataSegment, ElemSegment, Export, ExportKind, Func, Global, Import,
    ImportKind, Module,
};
use crate::types::{FuncType, GlobalType, Limits, MemoryType, Mutability, TableType, ValType};

/// Decodes a binary module.
///
/// # Errors
///
/// Returns a [`DecodeError`] (with byte offset) on any malformed input:
/// bad magic/version, out-of-order sections, truncated sections, unknown
/// opcodes, or invalid encodings. Decoding does *not* validate types; run
/// [`crate::validate::validate`] afterwards.
pub fn decode(bytes: &[u8]) -> Result<Module, DecodeError> {
    let mut r = Reader::new(bytes);
    let err = |r: &Reader<'_>, kind| DecodeError {
        offset: r.pos(),
        kind,
    };

    if r.bytes(4)? != MAGIC {
        return Err(DecodeError {
            offset: 0,
            kind: DecodeErrorKind::BadMagic,
        });
    }
    let version = r.bytes(4)?;
    if version != VERSION {
        let v = u32::from_le_bytes([version[0], version[1], version[2], version[3]]);
        return Err(DecodeError {
            offset: 4,
            kind: DecodeErrorKind::BadVersion(v),
        });
    }

    let mut module = Module::new();
    let mut last_section = 0u8;
    let mut declared_types: Vec<u32> = Vec::new();

    while !r.is_empty() {
        let id = r.byte()?;
        let size = r.u32()? as usize;
        let start = r.pos();
        if r.remaining() < size {
            return Err(err(&r, DecodeErrorKind::UnexpectedEof));
        }
        if id != 0 {
            if id > 11 {
                return Err(DecodeError {
                    offset: start,
                    kind: DecodeErrorKind::UnknownSection(id),
                });
            }
            if id <= last_section {
                return Err(DecodeError {
                    offset: start,
                    kind: DecodeErrorKind::SectionOrder(id),
                });
            }
            last_section = id;
        }
        let body = r.bytes(size)?;
        let mut s = SectionReader {
            r: Reader::new(body),
            base: start,
        };
        match id {
            0 => {
                let name = s.r.name().map_err(|e| s.lift(e))?;
                let payload = s.r.bytes(s.r.remaining()).map_err(|e| s.lift(e))?.to_vec();
                module.customs.push(CustomSection { name, payload });
            }
            1 => decode_types(&mut s, &mut module)?,
            2 => decode_imports(&mut s, &mut module)?,
            3 => {
                let count = s.u32()?;
                for _ in 0..count {
                    declared_types.push(s.u32()?);
                }
            }
            4 => {
                let count = s.u32()?;
                for _ in 0..count {
                    let elem_ty = s.byte()?;
                    if elem_ty != 0x70 {
                        return Err(s.err_here(DecodeErrorKind::InvalidElemType(elem_ty)));
                    }
                    let limits = decode_limits(&mut s)?;
                    module.tables.push(TableType { limits });
                }
            }
            5 => {
                let count = s.u32()?;
                for _ in 0..count {
                    let limits = decode_limits(&mut s)?;
                    module.memories.push(MemoryType { limits });
                }
            }
            6 => {
                let count = s.u32()?;
                for _ in 0..count {
                    let ty = decode_global_type(&mut s)?;
                    let init = decode_const_expr(&mut s)?;
                    module.globals.push(Global { ty, init });
                }
            }
            7 => {
                let count = s.u32()?;
                for _ in 0..count {
                    let name = s.r.name().map_err(|e| s.lift(e))?;
                    let kind_byte = s.byte()?;
                    let idx = s.u32()?;
                    let kind = match kind_byte {
                        0 => ExportKind::Func(idx),
                        1 => ExportKind::Table(idx),
                        2 => ExportKind::Memory(idx),
                        3 => ExportKind::Global(idx),
                        b => return Err(s.err_here(DecodeErrorKind::InvalidExternKind(b))),
                    };
                    module.exports.push(Export { name, kind });
                }
            }
            8 => {
                module.start = Some(s.u32()?);
            }
            9 => {
                let count = s.u32()?;
                for _ in 0..count {
                    let table = s.u32()?;
                    let offset = decode_const_expr(&mut s)?;
                    let n = s.u32()?;
                    let mut funcs = Vec::with_capacity(n as usize);
                    for _ in 0..n {
                        funcs.push(s.u32()?);
                    }
                    module.elems.push(ElemSegment {
                        table,
                        offset,
                        funcs,
                    });
                }
            }
            10 => {
                let count = s.u32()? as usize;
                if count != declared_types.len() {
                    return Err(s.err_here(DecodeErrorKind::FuncCountMismatch));
                }
                for &type_idx in &declared_types {
                    let body_size = s.u32()? as usize;
                    let body_start = s.r.pos();
                    let func = decode_func_body(&mut s, type_idx, &mut module)?;
                    if s.r.pos() - body_start != body_size {
                        return Err(s.err_here(DecodeErrorKind::SectionSizeMismatch));
                    }
                    module.funcs.push(func);
                }
            }
            11 => {
                let count = s.u32()?;
                for _ in 0..count {
                    let memory = s.u32()?;
                    let offset = decode_const_expr(&mut s)?;
                    let n = s.u32()? as usize;
                    let bytes = s.r.bytes(n).map_err(|e| s.lift(e))?.to_vec();
                    module.data.push(DataSegment {
                        memory,
                        offset,
                        bytes,
                    });
                }
            }
            _ => unreachable!(),
        }
        if !s.r.is_empty() {
            return Err(DecodeError {
                offset: start + s.r.pos(),
                kind: DecodeErrorKind::SectionSizeMismatch,
            });
        }
    }

    if declared_types.len() != module.funcs.len() {
        return Err(DecodeError {
            offset: bytes.len(),
            kind: DecodeErrorKind::FuncCountMismatch,
        });
    }

    Ok(module)
}

/// A reader over a section body that lifts error offsets to file offsets.
struct SectionReader<'a> {
    r: Reader<'a>,
    base: usize,
}

impl<'a> SectionReader<'a> {
    fn lift(&self, e: DecodeError) -> DecodeError {
        DecodeError {
            offset: self.base + e.offset,
            kind: e.kind,
        }
    }

    fn err_here(&self, kind: DecodeErrorKind) -> DecodeError {
        DecodeError {
            offset: self.base + self.r.pos(),
            kind,
        }
    }

    fn byte(&mut self) -> Result<u8, DecodeError> {
        self.r.byte().map_err(|e| self.lift(e))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        self.r.u32().map_err(|e| self.lift(e))
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        self.r.i32().map_err(|e| self.lift(e))
    }

    fn i64(&mut self) -> Result<i64, DecodeError> {
        self.r.i64().map_err(|e| self.lift(e))
    }

    fn val_type(&mut self) -> Result<ValType, DecodeError> {
        let b = self.byte()?;
        ValType::from_byte(b).ok_or_else(|| self.err_here(DecodeErrorKind::InvalidValType(b)))
    }
}

fn decode_types(s: &mut SectionReader<'_>, module: &mut Module) -> Result<(), DecodeError> {
    let count = s.u32()?;
    for _ in 0..count {
        let tag = s.byte()?;
        if tag != 0x60 {
            return Err(s.err_here(DecodeErrorKind::InvalidValType(tag)));
        }
        let np = s.u32()?;
        let mut params = Vec::with_capacity(np as usize);
        for _ in 0..np {
            params.push(s.val_type()?);
        }
        let nr = s.u32()?;
        let mut results = Vec::with_capacity(nr as usize);
        for _ in 0..nr {
            results.push(s.val_type()?);
        }
        module.types.push(FuncType { params, results });
    }
    Ok(())
}

fn decode_imports(s: &mut SectionReader<'_>, module: &mut Module) -> Result<(), DecodeError> {
    let count = s.u32()?;
    for _ in 0..count {
        let mod_name = s.r.name().map_err(|e| s.lift(e))?;
        let name = s.r.name().map_err(|e| s.lift(e))?;
        let kind = match s.byte()? {
            0x00 => ImportKind::Func(s.u32()?),
            0x01 => {
                let elem_ty = s.byte()?;
                if elem_ty != 0x70 {
                    return Err(s.err_here(DecodeErrorKind::InvalidElemType(elem_ty)));
                }
                ImportKind::Table(TableType {
                    limits: decode_limits(s)?,
                })
            }
            0x02 => ImportKind::Memory(MemoryType {
                limits: decode_limits(s)?,
            }),
            0x03 => ImportKind::Global(decode_global_type(s)?),
            b => return Err(s.err_here(DecodeErrorKind::InvalidExternKind(b))),
        };
        module.imports.push(Import {
            module: mod_name,
            name,
            kind,
        });
    }
    Ok(())
}

fn decode_limits(s: &mut SectionReader<'_>) -> Result<Limits, DecodeError> {
    match s.byte()? {
        0x00 => Ok(Limits {
            min: s.u32()?,
            max: None,
        }),
        0x01 => Ok(Limits {
            min: s.u32()?,
            max: Some(s.u32()?),
        }),
        b => Err(s.err_here(DecodeErrorKind::InvalidLimits(b))),
    }
}

fn decode_global_type(s: &mut SectionReader<'_>) -> Result<GlobalType, DecodeError> {
    let val_type = s.val_type()?;
    let mutability = match s.byte()? {
        0 => Mutability::Const,
        1 => Mutability::Var,
        b => return Err(s.err_here(DecodeErrorKind::InvalidMutability(b))),
    };
    Ok(GlobalType {
        val_type,
        mutability,
    })
}

fn decode_const_expr(s: &mut SectionReader<'_>) -> Result<ConstExpr, DecodeError> {
    let expr = match s.byte()? {
        0x41 => ConstExpr::I32(s.i32()?),
        0x42 => ConstExpr::I64(s.i64()?),
        0x43 => ConstExpr::F32(s.r.f32_bits().map_err(|e| s.lift(e))?),
        0x44 => ConstExpr::F64(s.r.f64_bits().map_err(|e| s.lift(e))?),
        0x23 => ConstExpr::GlobalGet(s.u32()?),
        _ => return Err(s.err_here(DecodeErrorKind::InvalidConstExpr)),
    };
    if s.byte()? != 0x0B {
        return Err(s.err_here(DecodeErrorKind::InvalidConstExpr));
    }
    Ok(expr)
}

fn decode_block_type(s: &mut SectionReader<'_>) -> Result<BlockType, DecodeError> {
    let b = s.byte()?;
    if b == 0x40 {
        return Ok(BlockType::Empty);
    }
    ValType::from_byte(b)
        .map(BlockType::Value)
        .ok_or_else(|| s.err_here(DecodeErrorKind::InvalidBlockType))
}

fn decode_memarg(s: &mut SectionReader<'_>) -> Result<MemArg, DecodeError> {
    Ok(MemArg {
        align: s.u32()?,
        offset: s.u32()?,
    })
}

fn decode_func_body(
    s: &mut SectionReader<'_>,
    type_idx: u32,
    module: &mut Module,
) -> Result<Func, DecodeError> {
    let run_count = s.u32()?;
    let mut locals = Vec::new();
    for _ in 0..run_count {
        let n = s.u32()?;
        let ty = s.val_type()?;
        if locals.len() + n as usize > 1_000_000 {
            return Err(s.err_here(DecodeErrorKind::IntTooLarge));
        }
        locals.resize(locals.len() + n as usize, ty);
    }

    let mut body = Vec::new();
    let mut depth = 1u32; // the implicit function block
    loop {
        let instr = decode_instr(s, module)?;
        match instr {
            Instr::Block(_) | Instr::Loop(_) | Instr::If(_) => depth += 1,
            Instr::End => depth -= 1,
            _ => {}
        }
        body.push(instr);
        if depth == 0 {
            break;
        }
    }
    Ok(Func {
        type_idx,
        locals,
        body,
    })
}

fn decode_instr(s: &mut SectionReader<'_>, module: &mut Module) -> Result<Instr, DecodeError> {
    use Instr::*;
    let op = s.byte()?;
    if let Some(i) = crate::opcode::simple_from_byte(op) {
        return Ok(i);
    }
    if (0x28..=0x3E).contains(&op) {
        let m = decode_memarg(s)?;
        return Ok(crate::opcode::mem_from_byte(op, m).expect("range checked"));
    }
    Ok(match op {
        0x02 => Block(decode_block_type(s)?),
        0x03 => Loop(decode_block_type(s)?),
        0x04 => If(decode_block_type(s)?),
        0x0C => Br(s.u32()?),
        0x0D => BrIf(s.u32()?),
        0x0E => {
            let n = s.u32()?;
            let mut targets = Vec::with_capacity(n as usize);
            for _ in 0..n {
                targets.push(s.u32()?);
            }
            let default = s.u32()?;
            let pool = module.intern_br_table(crate::instr::BrTable { targets, default });
            BrTable(pool)
        }
        0x10 => Call(s.u32()?),
        0x11 => {
            let ty = s.u32()?;
            let table = s.byte()?;
            if table != 0 {
                return Err(s.err_here(DecodeErrorKind::InvalidExternKind(table)));
            }
            CallIndirect(ty)
        }
        0x20 => LocalGet(s.u32()?),
        0x21 => LocalSet(s.u32()?),
        0x22 => LocalTee(s.u32()?),
        0x23 => GlobalGet(s.u32()?),
        0x24 => GlobalSet(s.u32()?),
        0x3F => {
            s.byte()?;
            MemorySize
        }
        0x40 => {
            s.byte()?;
            MemoryGrow
        }
        0x41 => I32Const(s.i32()?),
        0x42 => I64Const(s.i64()?),
        0x43 => F32Const(s.r.f32_bits().map_err(|e| s.lift(e))?),
        0x44 => F64Const(s.r.f64_bits().map_err(|e| s.lift(e))?),
        other => return Err(s.err_here(DecodeErrorKind::UnknownOpcode(other))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::types::Value;

    #[test]
    fn rejects_bad_magic() {
        let e = decode(b"\0nope\x01\0\0\0").unwrap_err();
        assert_eq!(e.kind, DecodeErrorKind::BadMagic);
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&[2, 0, 0, 0]);
        let e = decode(&bytes).unwrap_err();
        assert_eq!(e.kind, DecodeErrorKind::BadVersion(2));
    }

    #[test]
    fn empty_module_round_trips() {
        let m = Module::new();
        assert_eq!(decode(&encode(&m)).unwrap(), m);
    }

    #[test]
    fn rejects_out_of_order_sections() {
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&VERSION);
        // memory section (5) then type section (1): out of order
        bytes.extend_from_slice(&[5, 3, 1, 0, 1]);
        bytes.extend_from_slice(&[1, 1, 0]);
        let e = decode(&bytes).unwrap_err();
        assert_eq!(e.kind, DecodeErrorKind::SectionOrder(1));
    }

    #[test]
    fn rejects_truncated_section() {
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&VERSION);
        bytes.extend_from_slice(&[1, 100]); // declares 100 bytes, has none
        let e = decode(&bytes).unwrap_err();
        assert_eq!(e.kind, DecodeErrorKind::UnexpectedEof);
    }

    #[test]
    fn value_helper_used_in_tests_compiles() {
        // Touch the Value type here to keep the test-only import honest.
        assert_eq!(Value::I32(1).ty().to_byte(), 0x7F);
    }
}
