//! Module validation: type-checks every function body against the
//! WebAssembly MVP typing rules, and checks module-level well-formedness.

use crate::control::ControlMap;
use crate::error::ValidateError;
use crate::instr::{BlockType, Instr};
use crate::module::{ConstExpr, ExportKind, ImportKind, Module};
use crate::types::{FuncType, Mutability, ValType};

/// Validates a module.
///
/// # Errors
///
/// Returns the first [`ValidateError`] found: an out-of-bounds index, a
/// type mismatch in a function body, malformed control structure, an
/// invalid constant expression, or a module-level constraint violation
/// (duplicate export names, more than one memory/table, etc.).
pub fn validate(module: &Module) -> Result<(), ValidateError> {
    validate_module_level(module)?;
    let num_imported = module.num_imported_funcs() as u32;
    for (i, func) in module.funcs.iter().enumerate() {
        let func_idx = num_imported + i as u32;
        let ty = module
            .types
            .get(func.type_idx as usize)
            .ok_or_else(|| {
                ValidateError::module("type index out of bounds").with_func(func_idx)
            })?
            .clone();
        FuncValidator::new(module, func_idx, &ty, &func.locals).run(&func.body)?;
    }
    Ok(())
}

fn validate_module_level(module: &Module) -> Result<(), ValidateError> {
    for ty in &module.types {
        if ty.results.len() > 1 {
            return Err(ValidateError::module(
                "multi-value results are not supported in the MVP",
            ));
        }
    }

    for imp in &module.imports {
        if let ImportKind::Func(ty) = imp.kind {
            if ty as usize >= module.types.len() {
                return Err(ValidateError::module(format!(
                    "import {}.{}: type index out of bounds",
                    imp.module, imp.name
                )));
            }
        }
    }

    if module.num_imported_memories() + module.memories.len() > 1 {
        return Err(ValidateError::module("at most one memory is allowed"));
    }
    if module.num_imported_tables() + module.tables.len() > 1 {
        return Err(ValidateError::module("at most one table is allowed"));
    }

    for m in &module.memories {
        if let Some(max) = m.limits.max {
            if max < m.limits.min {
                return Err(ValidateError::module("memory max below min"));
            }
        }
        if m.limits.min > 65536 {
            return Err(ValidateError::module("memory min exceeds 4 GiB"));
        }
    }
    for t in &module.tables {
        if let Some(max) = t.limits.max {
            if max < t.limits.min {
                return Err(ValidateError::module("table max below min"));
            }
        }
    }

    // Globals: initializers may only reference *imported* globals (MVP).
    let imported_global_types: Vec<_> = module
        .imports
        .iter()
        .filter_map(|i| match i.kind {
            ImportKind::Global(g) => Some(g),
            _ => None,
        })
        .collect();
    for (i, g) in module.globals.iter().enumerate() {
        let init_ty = match g.init {
            ConstExpr::GlobalGet(idx) => {
                let gt = imported_global_types.get(idx as usize).ok_or_else(|| {
                    ValidateError::module(format!(
                        "global {i}: initializer references non-imported global {idx}"
                    ))
                })?;
                if gt.mutability != Mutability::Const {
                    return Err(ValidateError::module(format!(
                        "global {i}: initializer references mutable global"
                    )));
                }
                gt.val_type
            }
            other => other
                .ty(&[])
                .expect("non-global const exprs always have a type"),
        };
        if init_ty != g.ty.val_type {
            return Err(ValidateError::module(format!(
                "global {i}: initializer type {init_ty} != declared {}",
                g.ty.val_type
            )));
        }
    }

    let mut names = std::collections::HashSet::new();
    for e in &module.exports {
        if !names.insert(e.name.as_str()) {
            return Err(ValidateError::module(format!(
                "duplicate export name {:?}",
                e.name
            )));
        }
        let ok = match e.kind {
            ExportKind::Func(i) => (i as usize) < module.total_funcs(),
            ExportKind::Global(i) => (i as usize) < module.total_globals(),
            ExportKind::Memory(i) => module.memory_type(i).is_some(),
            ExportKind::Table(i) => module.table_type(i).is_some(),
        };
        if !ok {
            return Err(ValidateError::module(format!(
                "export {:?}: index out of bounds",
                e.name
            )));
        }
    }

    if let Some(start) = module.start {
        let ty = module
            .func_type(start)
            .ok_or_else(|| ValidateError::module("start function index out of bounds"))?;
        if !ty.params.is_empty() || !ty.results.is_empty() {
            return Err(ValidateError::module("start function must be [] -> []"));
        }
    }

    for (i, e) in module.elems.iter().enumerate() {
        if module.table_type(e.table).is_none() {
            return Err(ValidateError::module(format!(
                "elem segment {i}: no table {}",
                e.table
            )));
        }
        if offset_type(module, &e.offset)? != ValType::I32 {
            return Err(ValidateError::module(format!(
                "elem segment {i}: offset must be i32"
            )));
        }
        for f in &e.funcs {
            if *f as usize >= module.total_funcs() {
                return Err(ValidateError::module(format!(
                    "elem segment {i}: func index {f} out of bounds"
                )));
            }
        }
    }

    for (i, d) in module.data.iter().enumerate() {
        if module.memory_type(d.memory).is_none() {
            return Err(ValidateError::module(format!(
                "data segment {i}: no memory {}",
                d.memory
            )));
        }
        if offset_type(module, &d.offset)? != ValType::I32 {
            return Err(ValidateError::module(format!(
                "data segment {i}: offset must be i32"
            )));
        }
    }

    for func in &module.funcs {
        for instr in &func.body {
            if let Instr::BrTable(pool) = instr {
                if *pool as usize >= module.br_tables.len() {
                    return Err(ValidateError::module("br_table pool index out of bounds"));
                }
            }
        }
    }

    Ok(())
}

fn offset_type(module: &Module, expr: &ConstExpr) -> Result<ValType, ValidateError> {
    let imported: Vec<_> = module
        .imports
        .iter()
        .filter_map(|i| match i.kind {
            ImportKind::Global(g) => Some(g),
            _ => None,
        })
        .collect();
    match expr {
        ConstExpr::GlobalGet(idx) => imported
            .get(*idx as usize)
            .map(|g| g.val_type)
            .ok_or_else(|| ValidateError::module("offset references non-imported global")),
        other => Ok(other.ty(&[]).expect("const")),
    }
}

/// An operand-stack entry: a known type or the polymorphic `Unknown`
/// produced after unconditional control transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpType {
    Known(ValType),
    Unknown,
}

#[derive(Debug)]
struct Frame {
    /// Types a branch to this frame expects (loop: params = none in MVP;
    /// block/if: the result type).
    label_types: Vec<ValType>,
    /// Result types of the frame when it exits normally.
    end_types: Vec<ValType>,
    /// Operand stack height at frame entry.
    height: usize,
    /// Set once an unconditional transfer makes the rest unreachable.
    unreachable: bool,
    /// For `If` without `Else`: remembered to check arity.
    is_if: bool,
}

struct FuncValidator<'m> {
    module: &'m Module,
    func_idx: u32,
    locals: Vec<ValType>,
    results: Vec<ValType>,
    ops: Vec<OpType>,
    frames: Vec<Frame>,
    pc: usize,
}

impl<'m> FuncValidator<'m> {
    fn new(module: &'m Module, func_idx: u32, ty: &FuncType, extra_locals: &[ValType]) -> Self {
        let mut locals = ty.params.clone();
        locals.extend_from_slice(extra_locals);
        FuncValidator {
            module,
            func_idx,
            locals,
            results: ty.results.clone(),
            ops: Vec::new(),
            frames: Vec::new(),
            pc: 0,
        }
    }

    fn err(&self, msg: impl Into<String>) -> ValidateError {
        ValidateError::in_func(self.func_idx, self.pc, msg)
    }

    fn push(&mut self, ty: ValType) {
        self.ops.push(OpType::Known(ty));
    }

    fn push_many(&mut self, tys: &[ValType]) {
        for t in tys {
            self.push(*t);
        }
    }

    fn pop(&mut self) -> Result<OpType, ValidateError> {
        let frame = self.frames.last().expect("frame stack never empty");
        if self.ops.len() == frame.height {
            if frame.unreachable {
                return Ok(OpType::Unknown);
            }
            return Err(self.err("operand stack underflow"));
        }
        Ok(self.ops.pop().expect("checked height"))
    }

    fn pop_expect(&mut self, want: ValType) -> Result<(), ValidateError> {
        match self.pop()? {
            OpType::Known(got) if got != want => {
                Err(self.err(format!("type mismatch: expected {want}, got {got}")))
            }
            _ => Ok(()),
        }
    }

    fn pop_many(&mut self, tys: &[ValType]) -> Result<(), ValidateError> {
        for t in tys.iter().rev() {
            self.pop_expect(*t)?;
        }
        Ok(())
    }

    fn set_unreachable(&mut self) {
        let frame = self.frames.last_mut().expect("frame stack never empty");
        frame.unreachable = true;
        let h = frame.height;
        self.ops.truncate(h);
    }

    fn local_type(&self, idx: u32) -> Result<ValType, ValidateError> {
        self.locals
            .get(idx as usize)
            .copied()
            .ok_or_else(|| self.err(format!("local index {idx} out of bounds")))
    }

    fn label_types(&self, depth: u32) -> Result<Vec<ValType>, ValidateError> {
        let idx = self
            .frames
            .len()
            .checked_sub(1 + depth as usize)
            .ok_or_else(|| self.err(format!("branch depth {depth} exceeds nesting")))?;
        Ok(self.frames[idx].label_types.clone())
    }

    fn check_memory(&self) -> Result<(), ValidateError> {
        if self.module.memory_type(0).is_none() {
            return Err(self.err("memory instruction without a declared memory"));
        }
        Ok(())
    }

    fn block_types(&self, bt: BlockType) -> Vec<ValType> {
        match bt {
            BlockType::Empty => vec![],
            BlockType::Value(t) => vec![t],
        }
    }

    fn run(mut self, body: &[Instr]) -> Result<(), ValidateError> {
        // Build the control map first; this also verifies block structure.
        ControlMap::build(body).map_err(|e| e.with_func(self.func_idx))?;

        self.frames.push(Frame {
            label_types: self.results.clone(),
            end_types: self.results.clone(),
            height: 0,
            unreachable: false,
            is_if: false,
        });

        for (pc, instr) in body.iter().enumerate() {
            self.pc = pc;
            self.step(instr)?;
        }
        if !self.frames.is_empty() {
            return Err(self.err("control frames remain after body"));
        }
        Ok(())
    }

    fn step(&mut self, instr: &Instr) -> Result<(), ValidateError> {
        use Instr::*;
        use ValType::*;
        match *instr {
            Nop => {}
            Unreachable => self.set_unreachable(),
            Block(bt) | Loop(bt) | If(bt) => {
                if matches!(instr, If(_)) {
                    self.pop_expect(I32)?;
                }
                let types = self.block_types(bt);
                let is_loop = matches!(instr, Loop(_));
                self.frames.push(Frame {
                    label_types: if is_loop { vec![] } else { types.clone() },
                    end_types: types,
                    height: self.ops.len(),
                    unreachable: false,
                    is_if: matches!(instr, If(_)),
                });
            }
            Else => {
                let frame = self.frames.last().ok_or_else(|| self.err("else outside if"))?;
                if !frame.is_if {
                    return Err(self.err("else without matching if"));
                }
                let end_types = frame.end_types.clone();
                let height = frame.height;
                self.pop_many(&end_types.clone())?;
                if self.ops.len() != height && !self.frames.last().expect("frame").unreachable {
                    return Err(self.err("operand stack not empty at else"));
                }
                let frame = self.frames.last_mut().expect("frame");
                frame.unreachable = false;
                frame.is_if = false; // an else arm satisfies the result rule
                let h = frame.height;
                self.ops.truncate(h);
            }
            End => {
                let frame = self.frames.pop().ok_or_else(|| self.err("unbalanced end"))?;
                let unreachable = frame.unreachable;
                // Pop the result values (tolerant when unreachable).
                for t in frame.end_types.iter().rev() {
                    match self.ops.pop() {
                        Some(OpType::Known(got)) if got != *t => {
                            return Err(
                                self.err(format!("block result mismatch: expected {t}, got {got}"))
                            )
                        }
                        Some(_) => {}
                        None if unreachable => {}
                        None => return Err(self.err("missing block result")),
                    }
                }
                if self.ops.len() > frame.height {
                    return Err(self.err("operand stack not empty at end of block"));
                }
                self.ops.truncate(frame.height);
                if frame.is_if && !frame.end_types.is_empty() {
                    return Err(self.err("if without else cannot produce a result"));
                }
                self.push_many(&frame.end_types);
            }
            Br(depth) => {
                let types = self.label_types(depth)?;
                self.pop_many(&types)?;
                self.set_unreachable();
            }
            BrIf(depth) => {
                self.pop_expect(I32)?;
                let types = self.label_types(depth)?;
                self.pop_many(&types)?;
                self.push_many(&types);
            }
            BrTable(pool) => {
                self.pop_expect(I32)?;
                let table = &self.module.br_tables[pool as usize];
                let default_types = self.label_types(table.default)?;
                for t in &table.targets {
                    let types = self.label_types(*t)?;
                    if types != default_types {
                        return Err(self.err("br_table targets have mismatched types"));
                    }
                }
                self.pop_many(&default_types)?;
                self.set_unreachable();
            }
            Return => {
                let results = self.results.clone();
                self.pop_many(&results)?;
                self.set_unreachable();
            }
            Call(f) => {
                let ty = self
                    .module
                    .func_type(f)
                    .ok_or_else(|| self.err(format!("call: func index {f} out of bounds")))?
                    .clone();
                self.pop_many(&ty.params)?;
                self.push_many(&ty.results);
            }
            CallIndirect(type_idx) => {
                if self.module.table_type(0).is_none() {
                    return Err(self.err("call_indirect without a table"));
                }
                let ty = self
                    .module
                    .types
                    .get(type_idx as usize)
                    .ok_or_else(|| self.err("call_indirect: type index out of bounds"))?
                    .clone();
                self.pop_expect(I32)?;
                self.pop_many(&ty.params)?;
                self.push_many(&ty.results);
            }
            Drop => {
                self.pop()?;
            }
            Select => {
                self.pop_expect(I32)?;
                let a = self.pop()?;
                let b = self.pop()?;
                match (a, b) {
                    (OpType::Known(x), OpType::Known(y)) if x != y => {
                        return Err(self.err("select operands differ in type"))
                    }
                    (OpType::Known(x), _) | (_, OpType::Known(x)) => self.push(x),
                    _ => self.ops.push(OpType::Unknown),
                }
            }
            LocalGet(i) => {
                let t = self.local_type(i)?;
                self.push(t);
            }
            LocalSet(i) => {
                let t = self.local_type(i)?;
                self.pop_expect(t)?;
            }
            LocalTee(i) => {
                let t = self.local_type(i)?;
                self.pop_expect(t)?;
                self.push(t);
            }
            GlobalGet(i) => {
                let g = self
                    .module
                    .global_type(i)
                    .ok_or_else(|| self.err(format!("global index {i} out of bounds")))?;
                self.push(g.val_type);
            }
            GlobalSet(i) => {
                let g = self
                    .module
                    .global_type(i)
                    .ok_or_else(|| self.err(format!("global index {i} out of bounds")))?;
                if g.mutability != Mutability::Var {
                    return Err(self.err(format!("global {i} is immutable")));
                }
                self.pop_expect(g.val_type)?;
            }
            MemorySize => {
                self.check_memory()?;
                self.push(I32);
            }
            MemoryGrow => {
                self.check_memory()?;
                self.pop_expect(I32)?;
                self.push(I32);
            }
            I32Const(_) => self.push(I32),
            I64Const(_) => self.push(I64),
            F32Const(_) => self.push(F32),
            F64Const(_) => self.push(F64),
            ref other => {
                // Loads, stores, and all pure numeric operators.
                if let Some((pops, push, needs_mem, align_limit)) = numeric_signature(other) {
                    if needs_mem {
                        self.check_memory()?;
                        if let Some(limit) = align_limit {
                            let align = memarg_align(other).expect("memory instr has memarg");
                            if align > limit {
                                return Err(self.err(format!(
                                    "alignment 2^{align} exceeds natural alignment 2^{limit}"
                                )));
                            }
                        }
                    }
                    self.pop_many(pops)?;
                    if let Some(p) = push {
                        self.push(p);
                    }
                } else {
                    return Err(self.err(format!("unhandled instruction {other:?}")));
                }
            }
        }
        Ok(())
    }
}

fn memarg_align(instr: &Instr) -> Option<u32> {
    crate::opcode::mem_opcode(instr).map(|(_, m)| m.align)
}

/// Returns `(pops, push, needs_memory, natural_align_log2)` for loads,
/// stores, and pure numeric instructions.
#[allow(clippy::type_complexity)]
fn numeric_signature(
    instr: &Instr,
) -> Option<(&'static [ValType], Option<ValType>, bool, Option<u32>)> {
    use Instr::*;
    use ValType::*;
    const I: ValType = I32;
    const L: ValType = I64;
    const F: ValType = F32;
    const D: ValType = F64;
    let sig: (&'static [ValType], Option<ValType>, bool, Option<u32>) = match instr {
        // Loads: pop address, push value.
        I32Load(_) => (&[I], Some(I), true, Some(2)),
        I64Load(_) => (&[I], Some(L), true, Some(3)),
        F32Load(_) => (&[I], Some(F), true, Some(2)),
        F64Load(_) => (&[I], Some(D), true, Some(3)),
        I32Load8S(_) | I32Load8U(_) => (&[I], Some(I), true, Some(0)),
        I32Load16S(_) | I32Load16U(_) => (&[I], Some(I), true, Some(1)),
        I64Load8S(_) | I64Load8U(_) => (&[I], Some(L), true, Some(0)),
        I64Load16S(_) | I64Load16U(_) => (&[I], Some(L), true, Some(1)),
        I64Load32S(_) | I64Load32U(_) => (&[I], Some(L), true, Some(2)),
        // Stores: pop address and value.
        I32Store(_) => (&[I, I], None, true, Some(2)),
        I64Store(_) => (&[I, L], None, true, Some(3)),
        F32Store(_) => (&[I, F], None, true, Some(2)),
        F64Store(_) => (&[I, D], None, true, Some(3)),
        I32Store8(_) => (&[I, I], None, true, Some(0)),
        I32Store16(_) => (&[I, I], None, true, Some(1)),
        I64Store8(_) => (&[I, L], None, true, Some(0)),
        I64Store16(_) => (&[I, L], None, true, Some(1)),
        I64Store32(_) => (&[I, L], None, true, Some(2)),
        // i32 unary / binary / comparisons.
        I32Eqz => (&[I], Some(I), false, None),
        I32Clz | I32Ctz | I32Popcnt | I32Extend8S | I32Extend16S => (&[I], Some(I), false, None),
        I32Eq | I32Ne | I32LtS | I32LtU | I32GtS | I32GtU | I32LeS | I32LeU | I32GeS | I32GeU => {
            (&[I, I], Some(I), false, None)
        }
        I32Add | I32Sub | I32Mul | I32DivS | I32DivU | I32RemS | I32RemU | I32And | I32Or
        | I32Xor | I32Shl | I32ShrS | I32ShrU | I32Rotl | I32Rotr => (&[I, I], Some(I), false, None),
        // i64.
        I64Eqz => (&[L], Some(I), false, None),
        I64Clz | I64Ctz | I64Popcnt | I64Extend8S | I64Extend16S | I64Extend32S => {
            (&[L], Some(L), false, None)
        }
        I64Eq | I64Ne | I64LtS | I64LtU | I64GtS | I64GtU | I64LeS | I64LeU | I64GeS | I64GeU => {
            (&[L, L], Some(I), false, None)
        }
        I64Add | I64Sub | I64Mul | I64DivS | I64DivU | I64RemS | I64RemU | I64And | I64Or
        | I64Xor | I64Shl | I64ShrS | I64ShrU | I64Rotl | I64Rotr => (&[L, L], Some(L), false, None),
        // f32.
        F32Eq | F32Ne | F32Lt | F32Gt | F32Le | F32Ge => (&[F, F], Some(I), false, None),
        F32Abs | F32Neg | F32Ceil | F32Floor | F32Trunc | F32Nearest | F32Sqrt => {
            (&[F], Some(F), false, None)
        }
        F32Add | F32Sub | F32Mul | F32Div | F32Min | F32Max | F32Copysign => {
            (&[F, F], Some(F), false, None)
        }
        // f64.
        F64Eq | F64Ne | F64Lt | F64Gt | F64Le | F64Ge => (&[D, D], Some(I), false, None),
        F64Abs | F64Neg | F64Ceil | F64Floor | F64Trunc | F64Nearest | F64Sqrt => {
            (&[D], Some(D), false, None)
        }
        F64Add | F64Sub | F64Mul | F64Div | F64Min | F64Max | F64Copysign => {
            (&[D, D], Some(D), false, None)
        }
        // Conversions.
        I32WrapI64 => (&[L], Some(I), false, None),
        I32TruncF32S | I32TruncF32U => (&[F], Some(I), false, None),
        I32TruncF64S | I32TruncF64U => (&[D], Some(I), false, None),
        I64ExtendI32S | I64ExtendI32U => (&[I], Some(L), false, None),
        I64TruncF32S | I64TruncF32U => (&[F], Some(L), false, None),
        I64TruncF64S | I64TruncF64U => (&[D], Some(L), false, None),
        F32ConvertI32S | F32ConvertI32U => (&[I], Some(F), false, None),
        F32ConvertI64S | F32ConvertI64U => (&[L], Some(F), false, None),
        F32DemoteF64 => (&[D], Some(F), false, None),
        F64ConvertI32S | F64ConvertI32U => (&[I], Some(D), false, None),
        F64ConvertI64S | F64ConvertI64U => (&[L], Some(D), false, None),
        F64PromoteF32 => (&[F], Some(D), false, None),
        I32ReinterpretF32 => (&[F], Some(I), false, None),
        I64ReinterpretF64 => (&[D], Some(L), false, None),
        F32ReinterpretI32 => (&[I], Some(F), false, None),
        F64ReinterpretI64 => (&[L], Some(D), false, None),
        _ => return None,
    };
    Some(sig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Export, ExportKind, Func};
    use crate::types::{FuncType, Limits, MemoryType};

    fn one_func_module(params: &[ValType], results: &[ValType], body: Vec<Instr>) -> Module {
        let mut m = Module::new();
        let ty = m.intern_type(FuncType::new(params, results));
        m.funcs.push(Func {
            type_idx: ty,
            locals: vec![],
            body,
        });
        m
    }

    #[test]
    fn accepts_trivial_function() {
        let m = one_func_module(&[], &[ValType::I32], vec![Instr::I32Const(1), Instr::End]);
        validate(&m).unwrap();
    }

    #[test]
    fn rejects_result_type_mismatch() {
        let m = one_func_module(&[], &[ValType::I32], vec![Instr::F32Const(0), Instr::End]);
        assert!(validate(&m).is_err());
    }

    #[test]
    fn rejects_stack_underflow() {
        let m = one_func_module(&[], &[], vec![Instr::I32Add, Instr::End]);
        assert!(validate(&m).is_err());
    }

    #[test]
    fn rejects_binop_operand_mismatch() {
        let m = one_func_module(
            &[],
            &[ValType::I32],
            vec![
                Instr::I32Const(1),
                Instr::I64Const(2),
                Instr::I32Add,
                Instr::End,
            ],
        );
        assert!(validate(&m).is_err());
    }

    #[test]
    fn accepts_params_and_locals() {
        let mut m = Module::new();
        let ty = m.intern_type(FuncType::new(&[ValType::I32], &[ValType::I32]));
        m.funcs.push(Func {
            type_idx: ty,
            locals: vec![ValType::I32],
            body: vec![
                Instr::LocalGet(0),
                Instr::LocalTee(1),
                Instr::LocalGet(1),
                Instr::I32Add,
                Instr::End,
            ],
        });
        validate(&m).unwrap();
    }

    #[test]
    fn rejects_local_out_of_bounds() {
        let m = one_func_module(&[], &[], vec![Instr::LocalGet(0), Instr::Drop, Instr::End]);
        assert!(validate(&m).is_err());
    }

    #[test]
    fn unreachable_makes_stack_polymorphic() {
        let m = one_func_module(
            &[],
            &[ValType::I32],
            vec![Instr::Unreachable, Instr::I32Add, Instr::End],
        );
        validate(&m).unwrap();
    }

    #[test]
    fn branch_depth_checked() {
        let m = one_func_module(&[], &[], vec![Instr::Br(3), Instr::End]);
        assert!(validate(&m).is_err());
    }

    #[test]
    fn valid_loop_with_branch() {
        let m = one_func_module(
            &[],
            &[],
            vec![
                Instr::Block(BlockType::Empty),
                Instr::Loop(BlockType::Empty),
                Instr::I32Const(0),
                Instr::BrIf(0),
                Instr::I32Const(1),
                Instr::BrIf(1),
                Instr::End,
                Instr::End,
                Instr::End,
            ],
        );
        validate(&m).unwrap();
    }

    #[test]
    fn memory_ops_require_memory() {
        let m = one_func_module(
            &[],
            &[ValType::I32],
            vec![Instr::I32Const(0), Instr::I32Load(Default::default()), Instr::End],
        );
        assert!(validate(&m).is_err());

        let mut with_mem = one_func_module(
            &[],
            &[ValType::I32],
            vec![Instr::I32Const(0), Instr::I32Load(Default::default()), Instr::End],
        );
        with_mem.memories.push(MemoryType {
            limits: Limits::at_least(1),
        });
        validate(&with_mem).unwrap();
    }

    #[test]
    fn rejects_excessive_alignment() {
        let mut m = one_func_module(
            &[],
            &[ValType::I32],
            vec![
                Instr::I32Const(0),
                Instr::I32Load(crate::instr::MemArg {
                    align: 4,
                    offset: 0,
                }),
                Instr::End,
            ],
        );
        m.memories.push(MemoryType {
            limits: Limits::at_least(1),
        });
        assert!(validate(&m).is_err());
    }

    #[test]
    fn rejects_duplicate_exports() {
        let mut m = one_func_module(&[], &[], vec![Instr::End]);
        m.exports.push(Export {
            name: "f".into(),
            kind: ExportKind::Func(0),
        });
        m.exports.push(Export {
            name: "f".into(),
            kind: ExportKind::Func(0),
        });
        assert!(validate(&m).is_err());
    }

    #[test]
    fn rejects_immutable_global_set() {
        let mut m = one_func_module(
            &[],
            &[],
            vec![Instr::I32Const(1), Instr::GlobalSet(0), Instr::End],
        );
        m.globals.push(crate::module::Global {
            ty: crate::types::GlobalType {
                val_type: ValType::I32,
                mutability: Mutability::Const,
            },
            init: ConstExpr::I32(0),
        });
        assert!(validate(&m).is_err());
    }

    #[test]
    fn rejects_two_memories() {
        let mut m = Module::new();
        for _ in 0..2 {
            m.memories.push(MemoryType {
                limits: Limits::at_least(1),
            });
        }
        assert!(validate(&m).is_err());
    }

    #[test]
    fn if_else_types_check() {
        let m = one_func_module(
            &[ValType::I32],
            &[ValType::I32],
            vec![
                Instr::LocalGet(0),
                Instr::If(BlockType::Value(ValType::I32)),
                Instr::I32Const(1),
                Instr::Else,
                Instr::I32Const(2),
                Instr::End,
                Instr::End,
            ],
        );
        validate(&m).unwrap();
    }

    #[test]
    fn select_requires_matching_types() {
        let m = one_func_module(
            &[],
            &[ValType::I32],
            vec![
                Instr::I32Const(1),
                Instr::F64Const(0),
                Instr::I32Const(0),
                Instr::Select,
                Instr::End,
            ],
        );
        assert!(validate(&m).is_err());
    }

    #[test]
    fn start_function_signature_checked() {
        let mut m = one_func_module(&[ValType::I32], &[], vec![Instr::End]);
        m.start = Some(0);
        assert!(validate(&m).is_err());
    }
}
