//! The in-memory representation of a WebAssembly module, mirroring the
//! section structure of the binary format.

use crate::instr::{BrTable, Instr};
use crate::types::{FuncType, GlobalType, Limits, MemoryType, TableType, ValType};

/// What kind of external item an import/export refers to.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ImportKind {
    /// A function import with the given type index.
    Func(u32),
    /// A table import.
    Table(TableType),
    /// A memory import.
    Memory(MemoryType),
    /// A global import.
    Global(GlobalType),
}

/// A single import: `module.name` with its expected kind.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Import {
    /// Module namespace, e.g. `wasi_snapshot_preview1`.
    pub module: String,
    /// Item name within the module namespace.
    pub name: String,
    /// The kind and type of the imported item.
    pub kind: ImportKind,
}

/// The kind and index of an exported item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ExportKind {
    /// Function export.
    Func(u32),
    /// Table export.
    Table(u32),
    /// Memory export.
    Memory(u32),
    /// Global export.
    Global(u32),
}

/// A single export entry.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Export {
    /// Exported name.
    pub name: String,
    /// What is exported.
    pub kind: ExportKind,
}

/// A constant initializer expression (MVP: single const or `global.get`).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ConstExpr {
    /// `i32.const`
    I32(i32),
    /// `i64.const`
    I64(i64),
    /// `f32.const` (raw bits)
    F32(u32),
    /// `f64.const` (raw bits)
    F64(u64),
    /// `global.get` of an imported immutable global.
    GlobalGet(u32),
}

impl ConstExpr {
    /// The value type this expression produces, given the types of globals.
    pub fn ty(&self, global_types: &[GlobalType]) -> Option<ValType> {
        match self {
            ConstExpr::I32(_) => Some(ValType::I32),
            ConstExpr::I64(_) => Some(ValType::I64),
            ConstExpr::F32(_) => Some(ValType::F32),
            ConstExpr::F64(_) => Some(ValType::F64),
            ConstExpr::GlobalGet(i) => global_types.get(*i as usize).map(|g| g.val_type),
        }
    }
}

/// A module-defined global variable.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Global {
    /// The global's type.
    pub ty: GlobalType,
    /// Its initializer.
    pub init: ConstExpr,
}

/// A function defined in this module (not imported).
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Func {
    /// Index into [`Module::types`].
    pub type_idx: u32,
    /// Declared local variables (beyond parameters), already expanded.
    pub locals: Vec<ValType>,
    /// Flat instruction sequence, terminated by `End`.
    pub body: Vec<Instr>,
}

/// An active data segment copied into memory at instantiation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DataSegment {
    /// Target memory index (MVP: 0).
    pub memory: u32,
    /// Offset expression.
    pub offset: ConstExpr,
    /// Bytes to copy.
    pub bytes: Vec<u8>,
}

/// An active element segment populating a table at instantiation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ElemSegment {
    /// Target table index (MVP: 0).
    pub table: u32,
    /// Offset expression.
    pub offset: ConstExpr,
    /// Function indices to install.
    pub funcs: Vec<u32>,
}

/// A custom (name, bytes) section, carried through encode/decode.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CustomSection {
    /// Section name.
    pub name: String,
    /// Raw payload.
    pub payload: Vec<u8>,
}

/// A complete WebAssembly module.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Module {
    /// Function type pool.
    pub types: Vec<FuncType>,
    /// Imports, in declaration order.
    pub imports: Vec<Import>,
    /// Module-defined functions.
    pub funcs: Vec<Func>,
    /// Module-defined tables.
    pub tables: Vec<TableType>,
    /// Module-defined memories.
    pub memories: Vec<MemoryType>,
    /// Module-defined globals.
    pub globals: Vec<Global>,
    /// Exports.
    pub exports: Vec<Export>,
    /// Optional start function index.
    pub start: Option<u32>,
    /// Element segments.
    pub elems: Vec<ElemSegment>,
    /// Data segments.
    pub data: Vec<DataSegment>,
    /// Side pool for `br_table` payloads (indexed by [`Instr::BrTable`]).
    pub br_tables: Vec<BrTable>,
    /// Custom sections (passed through verbatim).
    pub customs: Vec<CustomSection>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Self {
        Module::default()
    }

    /// Number of imported functions (these precede module-defined functions
    /// in the function index space).
    pub fn num_imported_funcs(&self) -> usize {
        self.imports
            .iter()
            .filter(|i| matches!(i.kind, ImportKind::Func(_)))
            .count()
    }

    /// Number of imported globals.
    pub fn num_imported_globals(&self) -> usize {
        self.imports
            .iter()
            .filter(|i| matches!(i.kind, ImportKind::Global(_)))
            .count()
    }

    /// Number of imported memories.
    pub fn num_imported_memories(&self) -> usize {
        self.imports
            .iter()
            .filter(|i| matches!(i.kind, ImportKind::Memory(_)))
            .count()
    }

    /// Number of imported tables.
    pub fn num_imported_tables(&self) -> usize {
        self.imports
            .iter()
            .filter(|i| matches!(i.kind, ImportKind::Table(_)))
            .count()
    }

    /// The type of the function at `func_idx` in the combined index space
    /// (imports first, then module-defined functions).
    pub fn func_type(&self, func_idx: u32) -> Option<&FuncType> {
        let mut remaining = func_idx as usize;
        for imp in &self.imports {
            if let ImportKind::Func(ty) = imp.kind {
                if remaining == 0 {
                    return self.types.get(ty as usize);
                }
                remaining -= 1;
            }
        }
        self.funcs
            .get(remaining)
            .and_then(|f| self.types.get(f.type_idx as usize))
    }

    /// The type of the global at `global_idx` in the combined index space.
    pub fn global_type(&self, global_idx: u32) -> Option<GlobalType> {
        let mut remaining = global_idx as usize;
        for imp in &self.imports {
            if let ImportKind::Global(g) = imp.kind {
                if remaining == 0 {
                    return Some(g);
                }
                remaining -= 1;
            }
        }
        self.globals.get(remaining).map(|g| g.ty)
    }

    /// The memory type at `mem_idx` in the combined index space.
    pub fn memory_type(&self, mem_idx: u32) -> Option<MemoryType> {
        let mut remaining = mem_idx as usize;
        for imp in &self.imports {
            if let ImportKind::Memory(m) = imp.kind {
                if remaining == 0 {
                    return Some(m);
                }
                remaining -= 1;
            }
        }
        self.memories.get(remaining).copied()
    }

    /// The table type at `table_idx` in the combined index space.
    pub fn table_type(&self, table_idx: u32) -> Option<TableType> {
        let mut remaining = table_idx as usize;
        for imp in &self.imports {
            if let ImportKind::Table(t) = imp.kind {
                if remaining == 0 {
                    return Some(t);
                }
                remaining -= 1;
            }
        }
        self.tables.get(remaining).copied()
    }

    /// Total function index space size.
    pub fn total_funcs(&self) -> usize {
        self.num_imported_funcs() + self.funcs.len()
    }

    /// Total global index space size.
    pub fn total_globals(&self) -> usize {
        self.num_imported_globals() + self.globals.len()
    }

    /// Finds an export by name.
    pub fn export(&self, name: &str) -> Option<&Export> {
        self.exports.iter().find(|e| e.name == name)
    }

    /// Finds an exported function index by name.
    pub fn exported_func(&self, name: &str) -> Option<u32> {
        match self.export(name)?.kind {
            ExportKind::Func(i) => Some(i),
            _ => None,
        }
    }

    /// Interns a function type, reusing an existing entry if present.
    pub fn intern_type(&mut self, ty: FuncType) -> u32 {
        if let Some(pos) = self.types.iter().position(|t| *t == ty) {
            pos as u32
        } else {
            self.types.push(ty);
            (self.types.len() - 1) as u32
        }
    }

    /// Interns a `br_table` payload, returning its pool index.
    pub fn intern_br_table(&mut self, table: BrTable) -> u32 {
        self.br_tables.push(table);
        (self.br_tables.len() - 1) as u32
    }

    /// Static Wasm code size: total number of instructions across all bodies.
    pub fn code_size(&self) -> usize {
        self.funcs.iter().map(|f| f.body.len()).sum()
    }

    /// Declared minimum memory pages (0 if no memory).
    pub fn min_memory_pages(&self) -> u32 {
        self.memory_type(0).map(|m| m.limits.min).unwrap_or(0)
    }
}

/// Convenience alias used across the workspace.
pub type MemLimits = Limits;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Mutability, ValType};

    fn module_with_import() -> Module {
        let mut m = Module::new();
        let ty = m.intern_type(FuncType::new(&[ValType::I32], &[]));
        m.imports.push(Import {
            module: "env".into(),
            name: "log".into(),
            kind: ImportKind::Func(ty),
        });
        let ty2 = m.intern_type(FuncType::new(&[], &[ValType::I32]));
        m.funcs.push(Func {
            type_idx: ty2,
            locals: vec![],
            body: vec![Instr::I32Const(42), Instr::End],
        });
        m.exports.push(Export {
            name: "answer".into(),
            kind: ExportKind::Func(1),
        });
        m
    }

    #[test]
    fn index_spaces_account_for_imports() {
        let m = module_with_import();
        assert_eq!(m.num_imported_funcs(), 1);
        assert_eq!(m.total_funcs(), 2);
        assert_eq!(m.func_type(0).unwrap().params, vec![ValType::I32]);
        assert_eq!(m.func_type(1).unwrap().results, vec![ValType::I32]);
        assert_eq!(m.func_type(2), None);
    }

    #[test]
    fn intern_type_dedups() {
        let mut m = Module::new();
        let a = m.intern_type(FuncType::new(&[], &[]));
        let b = m.intern_type(FuncType::new(&[], &[]));
        let c = m.intern_type(FuncType::new(&[ValType::I32], &[]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(m.types.len(), 2);
    }

    #[test]
    fn export_lookup() {
        let m = module_with_import();
        assert_eq!(m.exported_func("answer"), Some(1));
        assert_eq!(m.exported_func("missing"), None);
    }

    #[test]
    fn global_index_space() {
        let mut m = Module::new();
        m.imports.push(Import {
            module: "env".into(),
            name: "g".into(),
            kind: ImportKind::Global(GlobalType {
                val_type: ValType::I64,
                mutability: Mutability::Const,
            }),
        });
        m.globals.push(Global {
            ty: GlobalType {
                val_type: ValType::F32,
                mutability: Mutability::Var,
            },
            init: ConstExpr::F32(0),
        });
        assert_eq!(m.global_type(0).unwrap().val_type, ValType::I64);
        assert_eq!(m.global_type(1).unwrap().val_type, ValType::F32);
        assert_eq!(m.global_type(2), None);
    }

    #[test]
    fn const_expr_types() {
        let globals = [GlobalType {
            val_type: ValType::F64,
            mutability: Mutability::Const,
        }];
        assert_eq!(ConstExpr::I32(1).ty(&globals), Some(ValType::I32));
        assert_eq!(ConstExpr::GlobalGet(0).ty(&globals), Some(ValType::F64));
        assert_eq!(ConstExpr::GlobalGet(1).ty(&globals), None);
    }
}
