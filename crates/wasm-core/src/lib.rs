//! # wasm-core
//!
//! The WebAssembly MVP substrate of the WABench reproduction: an in-memory
//! module model, binary encoder/decoder, validator, structural analysis,
//! and a builder API.
//!
//! Everything in this workspace — the `wacc` compiler, the five runtime
//! engines, WASI, and the benchmark suite — is built on these types.
//!
//! ## Quick tour
//!
//! ```
//! use wasm_core::builder::ModuleBuilder;
//! use wasm_core::types::{FuncType, ValType};
//! use wasm_core::instr::Instr;
//!
//! // Build a module that adds two i32s.
//! let mut b = ModuleBuilder::new();
//! let f = b.begin_func(FuncType::new(&[ValType::I32, ValType::I32], &[ValType::I32]));
//! b.emit(Instr::LocalGet(0));
//! b.emit(Instr::LocalGet(1));
//! b.emit(Instr::I32Add);
//! b.finish_func();
//! b.export_func("add", f);
//! let module = b.build();
//!
//! // Validate, encode to binary, and decode back.
//! wasm_core::validate::validate(&module)?;
//! let bytes = wasm_core::encode::encode(&module);
//! let decoded = wasm_core::decode::decode(&bytes)?;
//! assert_eq!(decoded, module);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod control;
pub mod decode;
pub mod encode;
pub mod error;
pub mod instr;
pub mod leb;
pub mod module;
pub mod opcode;
pub mod types;
pub mod validate;

pub use error::{DecodeError, DecodeErrorKind, ValidateError};
pub use instr::Instr;
pub use module::Module;
pub use types::{FuncType, ValType, Value};
