//! Structural analysis of flat function bodies: matching `End`/`Else`
//! indices for every block-opening instruction.
//!
//! Both the validator and the engines need to know, for each `Block`,
//! `Loop`, or `If` at instruction index `pc`, where its matching `End`
//! (and `Else`, if any) lives. This is computed once per function.

use crate::error::ValidateError;
use crate::instr::Instr;

/// Sentinel meaning "no matching index".
pub const NO_MATCH: u32 = u32::MAX;

/// Matching-index side table for a single (flat) function body.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ControlMap {
    /// For `Block`/`Loop`/`If`/`Else` at `pc`: index of the matching `End`.
    /// `NO_MATCH` elsewhere.
    pub end_of: Vec<u32>,
    /// For `If` at `pc`: index of its `Else`, or `NO_MATCH` if none.
    pub else_of: Vec<u32>,
}

impl ControlMap {
    /// Builds the control map for `body`.
    ///
    /// # Errors
    ///
    /// Returns an error if control structure is malformed: unbalanced
    /// `End`, `Else` outside an `If`, or a missing final `End`. Every
    /// error carries the offending instruction offset; callers that know
    /// which function the body belongs to attach the index with
    /// [`ValidateError::with_func`].
    pub fn build(body: &[Instr]) -> Result<ControlMap, ValidateError> {
        let n = body.len();
        let mut end_of = vec![NO_MATCH; n];
        let mut else_of = vec![NO_MATCH; n];
        // Stack of (opening pc or NO_MATCH for the function frame, else pc).
        let mut stack: Vec<(u32, u32)> = vec![(NO_MATCH, NO_MATCH)];
        for (pc, instr) in body.iter().enumerate() {
            match instr {
                Instr::Block(_) | Instr::Loop(_) | Instr::If(_) => {
                    stack.push((pc as u32, NO_MATCH));
                }
                Instr::Else => {
                    let top = stack.last_mut().ok_or_else(|| {
                        ValidateError::at_instr(pc, "else with empty control stack")
                    })?;
                    let opener = top.0;
                    if opener == NO_MATCH || !matches!(body[opener as usize], Instr::If(_)) {
                        return Err(ValidateError::at_instr(pc, "else does not match an if"));
                    }
                    if top.1 != NO_MATCH {
                        return Err(ValidateError::at_instr(pc, "duplicate else"));
                    }
                    top.1 = pc as u32;
                    else_of[opener as usize] = pc as u32;
                }
                Instr::End => {
                    let (opener, else_pc) = stack
                        .pop()
                        .ok_or_else(|| ValidateError::at_instr(pc, "unbalanced end"))?;
                    if opener != NO_MATCH {
                        end_of[opener as usize] = pc as u32;
                    }
                    if else_pc != NO_MATCH {
                        end_of[else_pc as usize] = pc as u32;
                    }
                    if stack.is_empty() && pc + 1 != n {
                        return Err(ValidateError::at_instr(
                            pc + 1,
                            "instructions after final end",
                        ));
                    }
                }
                _ => {}
            }
        }
        if !stack.is_empty() {
            return Err(ValidateError::at_instr(n, "missing final end"));
        }
        Ok(ControlMap { end_of, else_of })
    }

    /// The matching `End` index for the opener (or `Else`) at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is not a block-opening or `Else` instruction.
    pub fn end(&self, pc: usize) -> usize {
        let e = self.end_of[pc];
        assert_ne!(e, NO_MATCH, "no matching end recorded for pc {pc}");
        e as usize
    }

    /// The `Else` index for the `If` at `pc`, if present.
    pub fn else_branch(&self, pc: usize) -> Option<usize> {
        match self.else_of[pc] {
            NO_MATCH => None,
            e => Some(e as usize),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::BlockType;

    fn block() -> Instr {
        Instr::Block(BlockType::Empty)
    }

    #[test]
    fn simple_block_matches_end() {
        // block; nop; end; end(func)
        let body = [block(), Instr::Nop, Instr::End, Instr::End];
        let map = ControlMap::build(&body).unwrap();
        assert_eq!(map.end(0), 2);
    }

    #[test]
    fn if_else_structure() {
        // if; nop; else; nop; end; end(func)
        let body = [
            Instr::If(BlockType::Empty),
            Instr::Nop,
            Instr::Else,
            Instr::Nop,
            Instr::End,
            Instr::End,
        ];
        let map = ControlMap::build(&body).unwrap();
        assert_eq!(map.end(0), 4);
        assert_eq!(map.else_branch(0), Some(2));
        assert_eq!(map.end(2), 4); // else's end
    }

    #[test]
    fn nested_blocks() {
        let body = [
            block(),
            Instr::Loop(BlockType::Empty),
            block(),
            Instr::End,
            Instr::End,
            Instr::End,
            Instr::End,
        ];
        let map = ControlMap::build(&body).unwrap();
        assert_eq!(map.end(0), 5);
        assert_eq!(map.end(1), 4);
        assert_eq!(map.end(2), 3);
    }

    #[test]
    fn rejects_missing_end() {
        let e = ControlMap::build(&[block(), Instr::Nop]).unwrap_err();
        assert_eq!(e.instr, Some(2), "{e}");
    }

    #[test]
    fn rejects_else_outside_if() {
        let body = [block(), Instr::Else, Instr::End, Instr::End];
        let e = ControlMap::build(&body).unwrap_err();
        assert_eq!(e.instr, Some(1), "{e}");
        assert_eq!(e.to_string(), "validation error at instr 1: else does not match an if");
    }

    #[test]
    fn rejects_trailing_instructions() {
        let body = [Instr::End, Instr::Nop];
        assert!(ControlMap::build(&body).is_err());
    }

    #[test]
    fn rejects_duplicate_else() {
        let body = [
            Instr::If(BlockType::Empty),
            Instr::Else,
            Instr::Else,
            Instr::End,
            Instr::End,
        ];
        assert!(ControlMap::build(&body).is_err());
    }
}
