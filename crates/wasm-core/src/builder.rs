//! Ergonomic construction of [`Module`]s, used by the `wacc` code generator,
//! tests, and anyone producing Wasm programmatically.

use crate::instr::{BrTable, Instr};
use crate::module::{
    ConstExpr, DataSegment, ElemSegment, Export, ExportKind, Func, Global, Import, ImportKind,
    Module,
};
use crate::types::{
    FuncType, GlobalType, Limits, MemoryType, Mutability, TableType, ValType,
};

/// Incrementally builds a [`Module`].
///
/// Imported functions must be declared before module-defined functions so
/// the index space is laid out correctly.
///
/// # Examples
///
/// ```
/// use wasm_core::builder::ModuleBuilder;
/// use wasm_core::types::{FuncType, ValType};
/// use wasm_core::instr::Instr;
///
/// let mut b = ModuleBuilder::new();
/// let ty = FuncType::new(&[], &[ValType::I32]);
/// let f = b.begin_func(ty);
/// b.emit(Instr::I32Const(42));
/// b.finish_func();
/// b.export_func("answer", f);
/// let module = b.build();
/// wasm_core::validate::validate(&module)?;
/// # Ok::<(), wasm_core::error::ValidateError>(())
/// ```
#[derive(Debug, Default)]
pub struct ModuleBuilder {
    module: Module,
    current: Option<FuncInProgress>,
    defined_funcs_started: bool,
}

#[derive(Debug)]
struct FuncInProgress {
    type_idx: u32,
    param_count: usize,
    locals: Vec<ValType>,
    body: Vec<Instr>,
}

impl ModuleBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ModuleBuilder::default()
    }

    /// Declares an imported function, returning its function index.
    ///
    /// # Panics
    ///
    /// Panics if any module-defined function has already been started
    /// (imports must come first in the index space).
    pub fn import_func(&mut self, module: &str, name: &str, ty: FuncType) -> u32 {
        assert!(
            !self.defined_funcs_started,
            "function imports must be declared before defined functions"
        );
        let type_idx = self.module.intern_type(ty);
        self.module.imports.push(Import {
            module: module.to_string(),
            name: name.to_string(),
            kind: ImportKind::Func(type_idx),
        });
        (self.module.num_imported_funcs() - 1) as u32
    }

    /// Starts a new function with the given type; instructions are appended
    /// with [`emit`](Self::emit). Returns the function's index.
    ///
    /// # Panics
    ///
    /// Panics if another function is still in progress.
    pub fn begin_func(&mut self, ty: FuncType) -> u32 {
        assert!(self.current.is_none(), "finish the previous function first");
        self.defined_funcs_started = true;
        let param_count = ty.params.len();
        let type_idx = self.module.intern_type(ty);
        let idx = (self.module.num_imported_funcs() + self.module.funcs.len()) as u32;
        self.current = Some(FuncInProgress {
            type_idx,
            param_count,
            locals: Vec::new(),
            body: Vec::new(),
        });
        idx
    }

    /// Declares a new local in the current function, returning its index
    /// (params occupy the first indices).
    ///
    /// # Panics
    ///
    /// Panics if no function is in progress.
    pub fn new_local(&mut self, ty: ValType) -> u32 {
        let f = self.current.as_mut().expect("no function in progress");
        f.locals.push(ty);
        (f.param_count + f.locals.len() - 1) as u32
    }

    /// Appends an instruction to the current function body.
    ///
    /// # Panics
    ///
    /// Panics if no function is in progress.
    pub fn emit(&mut self, instr: Instr) {
        self.current
            .as_mut()
            .expect("no function in progress")
            .body
            .push(instr);
    }

    /// Appends a `br_table`, interning its payload.
    ///
    /// # Panics
    ///
    /// Panics if no function is in progress.
    pub fn emit_br_table(&mut self, targets: Vec<u32>, default: u32) {
        let pool = self.module.intern_br_table(BrTable { targets, default });
        self.emit(Instr::BrTable(pool));
    }

    /// Ends the current function, appending the terminating `End`.
    ///
    /// # Panics
    ///
    /// Panics if no function is in progress.
    pub fn finish_func(&mut self) {
        let mut f = self.current.take().expect("no function in progress");
        f.body.push(Instr::End);
        self.module.funcs.push(Func {
            type_idx: f.type_idx,
            locals: f.locals,
            body: f.body,
        });
    }

    /// Declares the module's linear memory.
    pub fn memory(&mut self, min_pages: u32, max_pages: Option<u32>) -> &mut Self {
        self.module.memories.push(MemoryType {
            limits: Limits {
                min: min_pages,
                max: max_pages,
            },
        });
        self
    }

    /// Declares a table with `min` elements.
    pub fn table(&mut self, min: u32, max: Option<u32>) -> &mut Self {
        self.module.tables.push(TableType {
            limits: Limits { min, max },
        });
        self
    }

    /// Adds an element segment installing `funcs` at `offset` in table 0.
    pub fn elems(&mut self, offset: i32, funcs: Vec<u32>) -> &mut Self {
        self.module.elems.push(ElemSegment {
            table: 0,
            offset: ConstExpr::I32(offset),
            funcs,
        });
        self
    }

    /// Declares a module global, returning its index.
    pub fn global(&mut self, ty: ValType, mutable: bool, init: ConstExpr) -> u32 {
        self.module.globals.push(Global {
            ty: GlobalType {
                val_type: ty,
                mutability: if mutable {
                    Mutability::Var
                } else {
                    Mutability::Const
                },
            },
            init,
        });
        (self.module.num_imported_globals() + self.module.globals.len() - 1) as u32
    }

    /// Adds an active data segment at `offset` in memory 0.
    pub fn data(&mut self, offset: i32, bytes: Vec<u8>) -> &mut Self {
        self.module.data.push(DataSegment {
            memory: 0,
            offset: ConstExpr::I32(offset),
            bytes,
        });
        self
    }

    /// Exports a function under `name`.
    pub fn export_func(&mut self, name: &str, idx: u32) -> &mut Self {
        self.module.exports.push(Export {
            name: name.to_string(),
            kind: ExportKind::Func(idx),
        });
        self
    }

    /// Exports memory 0 under `name`.
    pub fn export_memory(&mut self, name: &str) -> &mut Self {
        self.module.exports.push(Export {
            name: name.to_string(),
            kind: ExportKind::Memory(0),
        });
        self
    }

    /// Sets the start function.
    pub fn start(&mut self, idx: u32) -> &mut Self {
        self.module.start = Some(idx);
        self
    }

    /// Read access to the module being built.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Finishes building.
    ///
    /// # Panics
    ///
    /// Panics if a function is still in progress.
    pub fn build(self) -> Module {
        assert!(self.current.is_none(), "unfinished function");
        self.module
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn builds_valid_module() {
        let mut b = ModuleBuilder::new();
        b.memory(1, Some(4));
        let log =
            b.import_func("env", "log", FuncType::new(&[ValType::I32], &[]));
        let g = b.global(ValType::I32, true, ConstExpr::I32(7));
        let f = b.begin_func(FuncType::new(&[ValType::I32], &[ValType::I32]));
        let tmp = b.new_local(ValType::I32);
        b.emit(Instr::LocalGet(0));
        b.emit(Instr::GlobalGet(g));
        b.emit(Instr::I32Add);
        b.emit(Instr::LocalTee(tmp));
        b.emit(Instr::Call(log));
        b.emit(Instr::LocalGet(tmp));
        b.finish_func();
        b.export_func("run", f);
        b.data(0, vec![1, 2, 3]);
        let m = b.build();
        validate(&m).unwrap();
        assert_eq!(m.exported_func("run"), Some(1));
    }

    #[test]
    fn local_indices_start_after_params() {
        let mut b = ModuleBuilder::new();
        b.begin_func(FuncType::new(&[ValType::I32, ValType::I32], &[]));
        assert_eq!(b.new_local(ValType::F64), 2);
        assert_eq!(b.new_local(ValType::I32), 3);
        b.finish_func();
    }

    #[test]
    #[should_panic(expected = "before defined functions")]
    fn import_after_func_panics() {
        let mut b = ModuleBuilder::new();
        b.begin_func(FuncType::new(&[], &[]));
        b.finish_func();
        b.import_func("env", "x", FuncType::new(&[], &[]));
    }

    #[test]
    fn br_table_interned() {
        let mut b = ModuleBuilder::new();
        b.begin_func(FuncType::new(&[ValType::I32], &[]));
        b.emit(Instr::Block(crate::instr::BlockType::Empty));
        b.emit(Instr::LocalGet(0));
        b.emit_br_table(vec![0], 0);
        b.emit(Instr::End);
        b.finish_func();
        let m = b.build();
        assert_eq!(m.br_tables.len(), 1);
        validate(&m).unwrap();
    }
}
