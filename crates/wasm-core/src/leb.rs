//! LEB128 variable-length integer encoding, as used throughout the
//! WebAssembly binary format.

use crate::error::{DecodeError, DecodeErrorKind};

/// Appends an unsigned LEB128 encoding of `value` to `out`.
pub fn write_u32(out: &mut Vec<u8>, mut value: u32) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends an unsigned LEB128 encoding of a 64-bit `value` to `out`.
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a signed LEB128 encoding of `value` to `out`.
pub fn write_i32(out: &mut Vec<u8>, value: i32) {
    write_i64(out, value as i64);
}

/// Appends a signed LEB128 encoding of a 64-bit `value` to `out`.
pub fn write_i64(out: &mut Vec<u8>, mut value: i64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        let sign_clear = byte & 0x40 == 0;
        if (value == 0 && sign_clear) || (value == -1 && !sign_clear) {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// A positioned reader over a byte buffer with LEB128 helpers.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the reader is exhausted.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn err(&self, kind: DecodeErrorKind) -> DecodeError {
        DecodeError {
            offset: self.pos,
            kind,
        }
    }

    /// Reads a single byte.
    ///
    /// # Errors
    ///
    /// Returns an error at end of input.
    pub fn byte(&mut self) -> Result<u8, DecodeError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| self.err(DecodeErrorKind::UnexpectedEof))?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than `n` bytes remain.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(self.err(DecodeErrorKind::UnexpectedEof));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads an unsigned LEB128 u32.
    ///
    /// # Errors
    ///
    /// Returns an error on EOF or if the encoding overflows 32 bits.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let mut result: u32 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            let low = (byte & 0x7F) as u32;
            if shift >= 32 || (shift == 28 && low > 0x0F) {
                return Err(self.err(DecodeErrorKind::IntTooLarge));
            }
            result |= low << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
        }
    }

    /// Reads an unsigned LEB128 u64.
    ///
    /// # Errors
    ///
    /// Returns an error on EOF or if the encoding overflows 64 bits.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let mut result: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            let low = (byte & 0x7F) as u64;
            if shift >= 64 || (shift == 63 && low > 1) {
                return Err(self.err(DecodeErrorKind::IntTooLarge));
            }
            result |= low << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
        }
    }

    /// Reads a signed LEB128 i32.
    ///
    /// # Errors
    ///
    /// Returns an error on EOF or if the encoding overflows 32 bits.
    pub fn i32(&mut self) -> Result<i32, DecodeError> {
        let v = self.i64_with_width(33)?;
        Ok(v as i32)
    }

    /// Reads a signed LEB128 i64.
    ///
    /// # Errors
    ///
    /// Returns an error on EOF or if the encoding overflows 64 bits.
    pub fn i64(&mut self) -> Result<i64, DecodeError> {
        self.i64_with_width(64)
    }

    fn i64_with_width(&mut self, width: u32) -> Result<i64, DecodeError> {
        let mut result: i64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            if shift + 7 > width && {
                // Excess bits must be a valid sign extension.
                let sign = byte & 0x40 != 0;
                let used = width.saturating_sub(shift);
                let mask = if used >= 7 {
                    0
                } else {
                    (!0u8 << used) & 0x7F
                };
                let excess = byte & mask;
                !(excess == 0 && !sign || excess == mask && sign)
            } {
                return Err(self.err(DecodeErrorKind::IntTooLarge));
            }
            result |= ((byte & 0x7F) as i64) << shift;
            shift += 7;
            if byte & 0x80 == 0 {
                if shift < 64 && byte & 0x40 != 0 {
                    result |= !0i64 << shift;
                }
                return Ok(result);
            }
            if shift >= 64 {
                return Err(self.err(DecodeErrorKind::IntTooLarge));
            }
        }
    }

    /// Reads a little-endian f32.
    ///
    /// # Errors
    ///
    /// Returns an error on EOF.
    pub fn f32_bits(&mut self) -> Result<u32, DecodeError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian f64.
    ///
    /// # Errors
    ///
    /// Returns an error on EOF.
    pub fn f64_bits(&mut self) -> Result<u64, DecodeError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a length-prefixed UTF-8 name.
    ///
    /// # Errors
    ///
    /// Returns an error on EOF or invalid UTF-8.
    pub fn name(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let start = self.pos;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError {
            offset: start,
            kind: DecodeErrorKind::InvalidUtf8,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_u32(v: u32) -> u32 {
        let mut buf = Vec::new();
        write_u32(&mut buf, v);
        Reader::new(&buf).u32().unwrap()
    }

    fn round_trip_i64(v: i64) -> i64 {
        let mut buf = Vec::new();
        write_i64(&mut buf, v);
        Reader::new(&buf).i64().unwrap()
    }

    #[test]
    fn u32_round_trips() {
        for v in [0, 1, 127, 128, 300, 16383, 16384, u32::MAX] {
            assert_eq!(round_trip_u32(v), v);
        }
    }

    #[test]
    fn i64_round_trips() {
        for v in [0, 1, -1, 63, 64, -64, -65, i64::MAX, i64::MIN, 0x7fff_ffff] {
            assert_eq!(round_trip_i64(v), v);
        }
    }

    #[test]
    fn i32_round_trips() {
        for v in [0, -1, i32::MIN, i32::MAX, 42, -300] {
            let mut buf = Vec::new();
            write_i32(&mut buf, v);
            assert_eq!(Reader::new(&buf).i32().unwrap(), v);
        }
    }

    #[test]
    fn rejects_overlong_u32() {
        // Six continuation bytes overflow a u32.
        let buf = [0x80u8, 0x80, 0x80, 0x80, 0x80, 0x01];
        assert!(Reader::new(&buf).u32().is_err());
    }

    #[test]
    fn rejects_truncated_input() {
        let buf = [0x80u8];
        assert!(Reader::new(&buf).u32().is_err());
        assert!(Reader::new(&[]).byte().is_err());
    }

    #[test]
    fn name_utf8_validation() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert!(Reader::new(&buf).name().is_err());

        let mut ok = Vec::new();
        write_u32(&mut ok, 5);
        ok.extend_from_slice(b"hello");
        assert_eq!(Reader::new(&ok).name().unwrap(), "hello");
    }

    #[test]
    fn float_bits() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1.5f32.to_bits().to_le_bytes());
        buf.extend_from_slice(&(-2.25f64).to_bits().to_le_bytes());
        let mut r = Reader::new(&buf);
        assert_eq!(f32::from_bits(r.f32_bits().unwrap()), 1.5);
        assert_eq!(f64::from_bits(r.f64_bits().unwrap()), -2.25);
    }
}
