//! Encoding of a [`Module`] into the WebAssembly binary format.

use crate::instr::{BlockType, Instr, MemArg};
use crate::leb;
use crate::module::{ConstExpr, ExportKind, ImportKind, Module};
use crate::types::{Limits, Mutability, ValType};

/// The `\0asm` magic number.
pub const MAGIC: [u8; 4] = [0x00, 0x61, 0x73, 0x6D];
/// Binary format version 1.
pub const VERSION: [u8; 4] = [0x01, 0x00, 0x00, 0x00];

/// Encodes `module` into WebAssembly binary format bytes.
pub fn encode(module: &Module) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION);

    if !module.types.is_empty() {
        section(&mut out, 1, |s| {
            leb::write_u32(s, module.types.len() as u32);
            for ty in &module.types {
                s.push(0x60);
                leb::write_u32(s, ty.params.len() as u32);
                for p in &ty.params {
                    s.push(p.to_byte());
                }
                leb::write_u32(s, ty.results.len() as u32);
                for r in &ty.results {
                    s.push(r.to_byte());
                }
            }
        });
    }

    if !module.imports.is_empty() {
        section(&mut out, 2, |s| {
            leb::write_u32(s, module.imports.len() as u32);
            for imp in &module.imports {
                write_name(s, &imp.module);
                write_name(s, &imp.name);
                match &imp.kind {
                    ImportKind::Func(ty) => {
                        s.push(0x00);
                        leb::write_u32(s, *ty);
                    }
                    ImportKind::Table(t) => {
                        s.push(0x01);
                        s.push(0x70);
                        write_limits(s, &t.limits);
                    }
                    ImportKind::Memory(m) => {
                        s.push(0x02);
                        write_limits(s, &m.limits);
                    }
                    ImportKind::Global(g) => {
                        s.push(0x03);
                        s.push(g.val_type.to_byte());
                        s.push(match g.mutability {
                            Mutability::Const => 0,
                            Mutability::Var => 1,
                        });
                    }
                }
            }
        });
    }

    if !module.funcs.is_empty() {
        section(&mut out, 3, |s| {
            leb::write_u32(s, module.funcs.len() as u32);
            for f in &module.funcs {
                leb::write_u32(s, f.type_idx);
            }
        });
    }

    if !module.tables.is_empty() {
        section(&mut out, 4, |s| {
            leb::write_u32(s, module.tables.len() as u32);
            for t in &module.tables {
                s.push(0x70);
                write_limits(s, &t.limits);
            }
        });
    }

    if !module.memories.is_empty() {
        section(&mut out, 5, |s| {
            leb::write_u32(s, module.memories.len() as u32);
            for m in &module.memories {
                write_limits(s, &m.limits);
            }
        });
    }

    if !module.globals.is_empty() {
        section(&mut out, 6, |s| {
            leb::write_u32(s, module.globals.len() as u32);
            for g in &module.globals {
                s.push(g.ty.val_type.to_byte());
                s.push(match g.ty.mutability {
                    Mutability::Const => 0,
                    Mutability::Var => 1,
                });
                write_const_expr(s, &g.init);
            }
        });
    }

    if !module.exports.is_empty() {
        section(&mut out, 7, |s| {
            leb::write_u32(s, module.exports.len() as u32);
            for e in &module.exports {
                write_name(s, &e.name);
                let (kind, idx) = match e.kind {
                    ExportKind::Func(i) => (0u8, i),
                    ExportKind::Table(i) => (1, i),
                    ExportKind::Memory(i) => (2, i),
                    ExportKind::Global(i) => (3, i),
                };
                s.push(kind);
                leb::write_u32(s, idx);
            }
        });
    }

    if let Some(start) = module.start {
        section(&mut out, 8, |s| {
            leb::write_u32(s, start);
        });
    }

    if !module.elems.is_empty() {
        section(&mut out, 9, |s| {
            leb::write_u32(s, module.elems.len() as u32);
            for e in &module.elems {
                leb::write_u32(s, e.table);
                write_const_expr(s, &e.offset);
                leb::write_u32(s, e.funcs.len() as u32);
                for f in &e.funcs {
                    leb::write_u32(s, *f);
                }
            }
        });
    }

    if !module.funcs.is_empty() {
        section(&mut out, 10, |s| {
            leb::write_u32(s, module.funcs.len() as u32);
            for f in &module.funcs {
                let mut body = Vec::with_capacity(f.body.len() * 2 + 8);
                // Locals: run-length encode consecutive identical types.
                let mut runs: Vec<(u32, ValType)> = Vec::new();
                for &l in &f.locals {
                    match runs.last_mut() {
                        Some((n, ty)) if *ty == l => *n += 1,
                        _ => runs.push((1, l)),
                    }
                }
                leb::write_u32(&mut body, runs.len() as u32);
                for (n, ty) in runs {
                    leb::write_u32(&mut body, n);
                    body.push(ty.to_byte());
                }
                for instr in &f.body {
                    write_instr(&mut body, instr, module);
                }
                leb::write_u32(s, body.len() as u32);
                s.extend_from_slice(&body);
            }
        });
    }

    if !module.data.is_empty() {
        section(&mut out, 11, |s| {
            leb::write_u32(s, module.data.len() as u32);
            for d in &module.data {
                leb::write_u32(s, d.memory);
                write_const_expr(s, &d.offset);
                leb::write_u32(s, d.bytes.len() as u32);
                s.extend_from_slice(&d.bytes);
            }
        });
    }

    for custom in &module.customs {
        section(&mut out, 0, |s| {
            write_name(s, &custom.name);
            s.extend_from_slice(&custom.payload);
        });
    }

    out
}

fn section(out: &mut Vec<u8>, id: u8, f: impl FnOnce(&mut Vec<u8>)) {
    let mut body = Vec::new();
    f(&mut body);
    out.push(id);
    leb::write_u32(out, body.len() as u32);
    out.extend_from_slice(&body);
}

fn write_name(out: &mut Vec<u8>, name: &str) {
    leb::write_u32(out, name.len() as u32);
    out.extend_from_slice(name.as_bytes());
}

fn write_limits(out: &mut Vec<u8>, limits: &Limits) {
    match limits.max {
        None => {
            out.push(0x00);
            leb::write_u32(out, limits.min);
        }
        Some(max) => {
            out.push(0x01);
            leb::write_u32(out, limits.min);
            leb::write_u32(out, max);
        }
    }
}

fn write_const_expr(out: &mut Vec<u8>, expr: &ConstExpr) {
    match *expr {
        ConstExpr::I32(v) => {
            out.push(0x41);
            leb::write_i32(out, v);
        }
        ConstExpr::I64(v) => {
            out.push(0x42);
            leb::write_i64(out, v);
        }
        ConstExpr::F32(bits) => {
            out.push(0x43);
            out.extend_from_slice(&bits.to_le_bytes());
        }
        ConstExpr::F64(bits) => {
            out.push(0x44);
            out.extend_from_slice(&bits.to_le_bytes());
        }
        ConstExpr::GlobalGet(i) => {
            out.push(0x23);
            leb::write_u32(out, i);
        }
    }
    out.push(0x0B);
}

fn write_block_type(out: &mut Vec<u8>, bt: BlockType) {
    match bt {
        BlockType::Empty => out.push(0x40),
        BlockType::Value(ty) => out.push(ty.to_byte()),
    }
}

fn write_memarg(out: &mut Vec<u8>, m: MemArg) {
    leb::write_u32(out, m.align);
    leb::write_u32(out, m.offset);
}

/// Encodes a single instruction.
///
/// `module` is needed to resolve `br_table` pool indices.
pub fn write_instr(out: &mut Vec<u8>, instr: &Instr, module: &Module) {
    use Instr::*;
    if let Some(byte) = crate::opcode::simple_to_byte(instr) {
        out.push(byte);
        return;
    }
    if let Some((byte, m)) = crate::opcode::mem_opcode(instr) {
        out.push(byte);
        write_memarg(out, m);
        return;
    }
    match *instr {
        Block(bt) => {
            out.push(0x02);
            write_block_type(out, bt);
        }
        Loop(bt) => {
            out.push(0x03);
            write_block_type(out, bt);
        }
        If(bt) => {
            out.push(0x04);
            write_block_type(out, bt);
        }
        Br(l) => {
            out.push(0x0C);
            leb::write_u32(out, l);
        }
        BrIf(l) => {
            out.push(0x0D);
            leb::write_u32(out, l);
        }
        BrTable(pool) => {
            out.push(0x0E);
            let table = &module.br_tables[pool as usize];
            leb::write_u32(out, table.targets.len() as u32);
            for t in &table.targets {
                leb::write_u32(out, *t);
            }
            leb::write_u32(out, table.default);
        }
        Call(i) => {
            out.push(0x10);
            leb::write_u32(out, i);
        }
        CallIndirect(ty) => {
            out.push(0x11);
            leb::write_u32(out, ty);
            out.push(0x00); // table index
        }
        LocalGet(i) => {
            out.push(0x20);
            leb::write_u32(out, i);
        }
        LocalSet(i) => {
            out.push(0x21);
            leb::write_u32(out, i);
        }
        LocalTee(i) => {
            out.push(0x22);
            leb::write_u32(out, i);
        }
        GlobalGet(i) => {
            out.push(0x23);
            leb::write_u32(out, i);
        }
        GlobalSet(i) => {
            out.push(0x24);
            leb::write_u32(out, i);
        }
        MemorySize => {
            out.push(0x3F);
            out.push(0x00);
        }
        MemoryGrow => {
            out.push(0x40);
            out.push(0x00);
        }
        I32Const(v) => {
            out.push(0x41);
            leb::write_i32(out, v);
        }
        I64Const(v) => {
            out.push(0x42);
            leb::write_i64(out, v);
        }
        F32Const(bits) => {
            out.push(0x43);
            out.extend_from_slice(&bits.to_le_bytes());
        }
        F64Const(bits) => {
            out.push(0x44);
            out.extend_from_slice(&bits.to_le_bytes());
        }
        ref other => unreachable!("instruction {other:?} should be covered by opcode tables"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Func;
    use crate::types::FuncType;

    #[test]
    fn empty_module_is_header_only() {
        let bytes = encode(&Module::new());
        assert_eq!(bytes, [MAGIC.as_slice(), VERSION.as_slice()].concat());
    }

    #[test]
    fn minimal_function_encodes() {
        let mut m = Module::new();
        let ty = m.intern_type(FuncType::new(&[], &[ValType::I32]));
        m.funcs.push(Func {
            type_idx: ty,
            locals: vec![ValType::I32, ValType::I32, ValType::F64],
            body: vec![Instr::I32Const(7), Instr::End],
        });
        let bytes = encode(&m);
        // magic + version + type section + func section + code section
        assert_eq!(&bytes[..4], &MAGIC);
        assert!(bytes.len() > 8);
        // Section ids present, in order.
        assert!(bytes[8] == 1);
    }

    #[test]
    fn locals_are_run_length_encoded() {
        let mut m = Module::new();
        let ty = m.intern_type(FuncType::new(&[], &[]));
        m.funcs.push(Func {
            type_idx: ty,
            locals: vec![ValType::I32; 100],
            body: vec![Instr::End],
        });
        let with_runs = encode(&m).len();
        // If locals were not run-length encoded this would be ~200 bytes.
        assert!(with_runs < 40, "encoded size {with_runs}");
    }
}
