//! The WebAssembly MVP instruction set.
//!
//! Function bodies are kept *flat*, mirroring the binary format: structured
//! control instructions (`Block`, `Loop`, `If`, `Else`, `End`) appear inline
//! and engines/validators compute branch targets with a side table (see
//! [`crate::control::ControlMap`]).

use crate::types::ValType;

/// The type annotation of a block, loop, or if.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum BlockType {
    /// No result.
    Empty,
    /// A single result value.
    Value(ValType),
}

impl BlockType {
    /// Number of result values this block type produces (0 or 1).
    pub fn arity(self) -> usize {
        match self {
            BlockType::Empty => 0,
            BlockType::Value(_) => 1,
        }
    }
}

/// Alignment and offset immediate for memory access instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize)]
pub struct MemArg {
    /// Expected alignment, as a power of two exponent.
    pub align: u32,
    /// Constant byte offset added to the dynamic address.
    pub offset: u32,
}

impl MemArg {
    /// A memarg with the given constant offset and natural alignment exponent.
    pub fn offset(offset: u32, align: u32) -> Self {
        MemArg { align, offset }
    }
}

/// A single WebAssembly MVP instruction.
///
/// Index immediates refer to the module's index spaces (functions, locals,
/// globals, types, labels).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
#[allow(missing_docs)] // variant names mirror the spec mnemonics 1:1
pub enum Instr {
    // Control.
    Unreachable,
    Nop,
    Block(BlockType),
    Loop(BlockType),
    If(BlockType),
    Else,
    End,
    Br(u32),
    BrIf(u32),
    /// `br_table`: the index immediate points into the module-level
    /// [`crate::module::Module::br_tables`] pool (flat storage keeps
    /// `Instr: Copy`).
    BrTable(u32),
    Return,
    Call(u32),
    /// `call_indirect` with the given type index (MVP: table index 0).
    CallIndirect(u32),

    // Parametric.
    Drop,
    Select,

    // Variable.
    LocalGet(u32),
    LocalSet(u32),
    LocalTee(u32),
    GlobalGet(u32),
    GlobalSet(u32),

    // Memory loads.
    I32Load(MemArg),
    I64Load(MemArg),
    F32Load(MemArg),
    F64Load(MemArg),
    I32Load8S(MemArg),
    I32Load8U(MemArg),
    I32Load16S(MemArg),
    I32Load16U(MemArg),
    I64Load8S(MemArg),
    I64Load8U(MemArg),
    I64Load16S(MemArg),
    I64Load16U(MemArg),
    I64Load32S(MemArg),
    I64Load32U(MemArg),

    // Memory stores.
    I32Store(MemArg),
    I64Store(MemArg),
    F32Store(MemArg),
    F64Store(MemArg),
    I32Store8(MemArg),
    I32Store16(MemArg),
    I64Store8(MemArg),
    I64Store16(MemArg),
    I64Store32(MemArg),

    MemorySize,
    MemoryGrow,

    // Constants.
    I32Const(i32),
    I64Const(i64),
    /// Stored as raw bits so `Instr` can derive `Eq`-adjacent semantics for NaN.
    F32Const(u32),
    F64Const(u64),

    // i32 comparisons.
    I32Eqz,
    I32Eq,
    I32Ne,
    I32LtS,
    I32LtU,
    I32GtS,
    I32GtU,
    I32LeS,
    I32LeU,
    I32GeS,
    I32GeU,

    // i64 comparisons.
    I64Eqz,
    I64Eq,
    I64Ne,
    I64LtS,
    I64LtU,
    I64GtS,
    I64GtU,
    I64LeS,
    I64LeU,
    I64GeS,
    I64GeU,

    // f32 comparisons.
    F32Eq,
    F32Ne,
    F32Lt,
    F32Gt,
    F32Le,
    F32Ge,

    // f64 comparisons.
    F64Eq,
    F64Ne,
    F64Lt,
    F64Gt,
    F64Le,
    F64Ge,

    // i32 arithmetic.
    I32Clz,
    I32Ctz,
    I32Popcnt,
    I32Add,
    I32Sub,
    I32Mul,
    I32DivS,
    I32DivU,
    I32RemS,
    I32RemU,
    I32And,
    I32Or,
    I32Xor,
    I32Shl,
    I32ShrS,
    I32ShrU,
    I32Rotl,
    I32Rotr,

    // i64 arithmetic.
    I64Clz,
    I64Ctz,
    I64Popcnt,
    I64Add,
    I64Sub,
    I64Mul,
    I64DivS,
    I64DivU,
    I64RemS,
    I64RemU,
    I64And,
    I64Or,
    I64Xor,
    I64Shl,
    I64ShrS,
    I64ShrU,
    I64Rotl,
    I64Rotr,

    // f32 arithmetic.
    F32Abs,
    F32Neg,
    F32Ceil,
    F32Floor,
    F32Trunc,
    F32Nearest,
    F32Sqrt,
    F32Add,
    F32Sub,
    F32Mul,
    F32Div,
    F32Min,
    F32Max,
    F32Copysign,

    // f64 arithmetic.
    F64Abs,
    F64Neg,
    F64Ceil,
    F64Floor,
    F64Trunc,
    F64Nearest,
    F64Sqrt,
    F64Add,
    F64Sub,
    F64Mul,
    F64Div,
    F64Min,
    F64Max,
    F64Copysign,

    // Conversions.
    I32WrapI64,
    I32TruncF32S,
    I32TruncF32U,
    I32TruncF64S,
    I32TruncF64U,
    I64ExtendI32S,
    I64ExtendI32U,
    I64TruncF32S,
    I64TruncF32U,
    I64TruncF64S,
    I64TruncF64U,
    F32ConvertI32S,
    F32ConvertI32U,
    F32ConvertI64S,
    F32ConvertI64U,
    F32DemoteF64,
    F64ConvertI32S,
    F64ConvertI32U,
    F64ConvertI64S,
    F64ConvertI64U,
    F64PromoteF32,
    I32ReinterpretF32,
    I64ReinterpretF64,
    F32ReinterpretI32,
    F64ReinterpretI64,

    // Sign extension operators (merged into the core spec).
    I32Extend8S,
    I32Extend16S,
    I64Extend8S,
    I64Extend16S,
    I64Extend32S,
}

/// The operand payload of a `br_table` instruction, stored in the module's
/// side pool (see [`Instr::BrTable`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize)]
pub struct BrTable {
    /// Jump-table label depths.
    pub targets: Vec<u32>,
    /// Default label depth.
    pub default: u32,
}

impl Instr {
    /// Whether this instruction opens a new structured control frame.
    pub fn opens_block(&self) -> bool {
        matches!(self, Instr::Block(_) | Instr::Loop(_) | Instr::If(_))
    }

    /// Whether execution cannot fall through this instruction.
    pub fn is_unconditional_jump(&self) -> bool {
        matches!(
            self,
            Instr::Unreachable | Instr::Br(_) | Instr::BrTable(_) | Instr::Return
        )
    }

    /// A coarse classification used by cost models and statistics.
    pub fn class(&self) -> InstrClass {
        use Instr::*;
        match self {
            Unreachable | Nop | Block(_) | Loop(_) | If(_) | Else | End | Br(_) | BrIf(_)
            | BrTable(_) | Return | Call(_) | CallIndirect(_) => InstrClass::Control,
            Drop | Select | LocalGet(_) | LocalSet(_) | LocalTee(_) | GlobalGet(_)
            | GlobalSet(_) => InstrClass::Variable,
            I32Load(_) | I64Load(_) | F32Load(_) | F64Load(_) | I32Load8S(_) | I32Load8U(_)
            | I32Load16S(_) | I32Load16U(_) | I64Load8S(_) | I64Load8U(_) | I64Load16S(_)
            | I64Load16U(_) | I64Load32S(_) | I64Load32U(_) => InstrClass::Load,
            I32Store(_) | I64Store(_) | F32Store(_) | F64Store(_) | I32Store8(_)
            | I32Store16(_) | I64Store8(_) | I64Store16(_) | I64Store32(_) => InstrClass::Store,
            MemorySize | MemoryGrow => InstrClass::Memory,
            I32Const(_) | I64Const(_) | F32Const(_) | F64Const(_) => InstrClass::Const,
            I32DivS | I32DivU | I32RemS | I32RemU | I64DivS | I64DivU | I64RemS | I64RemU
            | F32Div | F64Div | F32Sqrt | F64Sqrt => InstrClass::SlowArith,
            F32Abs | F32Neg | F32Ceil | F32Floor | F32Trunc | F32Nearest | F32Add | F32Sub
            | F32Mul | F32Min | F32Max | F32Copysign | F64Abs | F64Neg | F64Ceil | F64Floor
            | F64Trunc | F64Nearest | F64Add | F64Sub | F64Mul | F64Min | F64Max
            | F64Copysign => InstrClass::FloatArith,
            _ => InstrClass::IntArith,
        }
    }
}

/// Coarse instruction classification for cost models and statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// Control flow (blocks, branches, calls).
    Control,
    /// Local/global/parametric stack shuffling.
    Variable,
    /// Memory loads.
    Load,
    /// Memory stores.
    Store,
    /// memory.size / memory.grow.
    Memory,
    /// Constant materialization.
    Const,
    /// Integer ALU operations and conversions.
    IntArith,
    /// Floating-point operations (excluding div/sqrt).
    FloatArith,
    /// Division, remainder, square root.
    SlowArith,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(Instr::I32Add.class(), InstrClass::IntArith);
        assert_eq!(Instr::F64Div.class(), InstrClass::SlowArith);
        assert_eq!(Instr::Call(0).class(), InstrClass::Control);
        assert_eq!(Instr::I32Load(MemArg::default()).class(), InstrClass::Load);
        assert_eq!(Instr::I32Const(1).class(), InstrClass::Const);
    }

    #[test]
    fn block_introspection() {
        assert!(Instr::Block(BlockType::Empty).opens_block());
        assert!(Instr::Loop(BlockType::Value(ValType::I32)).opens_block());
        assert!(!Instr::End.opens_block());
        assert!(Instr::Return.is_unconditional_jump());
        assert!(!Instr::BrIf(0).is_unconditional_jump());
    }

    #[test]
    fn block_type_arity() {
        assert_eq!(BlockType::Empty.arity(), 0);
        assert_eq!(BlockType::Value(ValType::F64).arity(), 1);
    }
}
