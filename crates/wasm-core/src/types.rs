//! Core WebAssembly type definitions: value types, function types, limits,
//! and runtime values.

use std::fmt;

/// A WebAssembly value type from the MVP specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ValType {
    /// 32-bit integer (sign-agnostic).
    I32,
    /// 64-bit integer (sign-agnostic).
    I64,
    /// 32-bit IEEE-754 float.
    F32,
    /// 64-bit IEEE-754 float.
    F64,
}

impl ValType {
    /// The binary-format type byte for this value type.
    pub fn to_byte(self) -> u8 {
        match self {
            ValType::I32 => 0x7F,
            ValType::I64 => 0x7E,
            ValType::F32 => 0x7D,
            ValType::F64 => 0x7C,
        }
    }

    /// Decodes a binary-format type byte.
    pub fn from_byte(b: u8) -> Option<ValType> {
        match b {
            0x7F => Some(ValType::I32),
            0x7E => Some(ValType::I64),
            0x7D => Some(ValType::F32),
            0x7C => Some(ValType::F64),
            _ => None,
        }
    }

    /// Size of this value type in bytes when stored in linear memory.
    pub fn byte_size(self) -> u32 {
        match self {
            ValType::I32 | ValType::F32 => 4,
            ValType::I64 | ValType::F64 => 8,
        }
    }

    /// Returns `true` for `I32`/`I64`.
    pub fn is_int(self) -> bool {
        matches!(self, ValType::I32 | ValType::I64)
    }

    /// Returns `true` for `F32`/`F64`.
    pub fn is_float(self) -> bool {
        !self.is_int()
    }
}

impl fmt::Display for ValType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValType::I32 => "i32",
            ValType::I64 => "i64",
            ValType::F32 => "f32",
            ValType::F64 => "f64",
        };
        f.write_str(s)
    }
}

/// A function signature: parameter types and result types.
///
/// The MVP allows at most one result; the validator enforces this, but the
/// type itself is future-proofed for multi-value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize)]
pub struct FuncType {
    /// Parameter value types, in order.
    pub params: Vec<ValType>,
    /// Result value types (0 or 1 in the MVP).
    pub results: Vec<ValType>,
}

impl FuncType {
    /// Creates a function type from parameter and result slices.
    pub fn new(params: &[ValType], results: &[ValType]) -> Self {
        FuncType {
            params: params.to_vec(),
            results: results.to_vec(),
        }
    }
}

impl fmt::Display for FuncType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ") -> (")?;
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, ")")
    }
}

/// Size limits for memories and tables, in units of pages or elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Limits {
    /// Initial size.
    pub min: u32,
    /// Optional maximum size.
    pub max: Option<u32>,
}

impl Limits {
    /// Creates limits with only a minimum.
    pub fn at_least(min: u32) -> Self {
        Limits { min, max: None }
    }

    /// Creates limits with a minimum and maximum.
    pub fn bounded(min: u32, max: u32) -> Self {
        Limits {
            min,
            max: Some(max),
        }
    }

    /// Whether `other` fits within (is importable into) these limits.
    pub fn accepts(&self, other: &Limits) -> bool {
        other.min >= self.min
            && match (self.max, other.max) {
                (None, _) => true,
                (Some(_), None) => false,
                (Some(a), Some(b)) => b <= a,
            }
    }
}

/// The type of a linear memory: limits in 64 KiB pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct MemoryType {
    /// Page limits.
    pub limits: Limits,
}

/// The type of a table (MVP: always `funcref`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct TableType {
    /// Element-count limits.
    pub limits: Limits,
}

/// Mutability of a global.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Mutability {
    /// Immutable global.
    Const,
    /// Mutable global.
    Var,
}

/// The type of a global variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct GlobalType {
    /// Type of the stored value.
    pub val_type: ValType,
    /// Whether the global may be mutated.
    pub mutability: Mutability,
}

/// The size of one WebAssembly linear-memory page: 64 KiB.
pub const PAGE_SIZE: u32 = 65536;

/// A runtime WebAssembly value.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Value {
    /// 32-bit integer.
    I32(i32),
    /// 64-bit integer.
    I64(i64),
    /// 32-bit float.
    F32(f32),
    /// 64-bit float.
    F64(f64),
}

impl Value {
    /// The value type of this value.
    pub fn ty(&self) -> ValType {
        match self {
            Value::I32(_) => ValType::I32,
            Value::I64(_) => ValType::I64,
            Value::F32(_) => ValType::F32,
            Value::F64(_) => ValType::F64,
        }
    }

    /// The zero value of a given type.
    pub fn zero(ty: ValType) -> Value {
        match ty {
            ValType::I32 => Value::I32(0),
            ValType::I64 => Value::I64(0),
            ValType::F32 => Value::F32(0.0),
            ValType::F64 => Value::F64(0.0),
        }
    }

    /// Extracts an `i32`, panicking on type mismatch.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an `I32`.
    pub fn unwrap_i32(self) -> i32 {
        match self {
            Value::I32(v) => v,
            other => panic!("expected i32, got {other:?}"),
        }
    }

    /// Extracts an `i64`, panicking on type mismatch.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an `I64`.
    pub fn unwrap_i64(self) -> i64 {
        match self {
            Value::I64(v) => v,
            other => panic!("expected i64, got {other:?}"),
        }
    }

    /// Extracts an `f32`, panicking on type mismatch.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an `F32`.
    pub fn unwrap_f32(self) -> f32 {
        match self {
            Value::F32(v) => v,
            other => panic!("expected f32, got {other:?}"),
        }
    }

    /// Extracts an `f64`, panicking on type mismatch.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an `F64`.
    pub fn unwrap_f64(self) -> f64 {
        match self {
            Value::F64(v) => v,
            other => panic!("expected f64, got {other:?}"),
        }
    }

    /// Reinterprets the value as raw 64-bit storage (how engines hold it).
    pub fn to_bits(self) -> u64 {
        match self {
            Value::I32(v) => v as u32 as u64,
            Value::I64(v) => v as u64,
            Value::F32(v) => v.to_bits() as u64,
            Value::F64(v) => v.to_bits(),
        }
    }

    /// Rebuilds a value of type `ty` from raw 64-bit storage.
    pub fn from_bits(ty: ValType, bits: u64) -> Value {
        match ty {
            ValType::I32 => Value::I32(bits as u32 as i32),
            ValType::I64 => Value::I64(bits as i64),
            ValType::F32 => Value::F32(f32::from_bits(bits as u32)),
            ValType::F64 => Value::F64(f64::from_bits(bits)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I32(v) => write!(f, "{v}: i32"),
            Value::I64(v) => write!(f, "{v}: i64"),
            Value::F32(v) => write!(f, "{v}: f32"),
            Value::F64(v) => write!(f, "{v}: f64"),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I32(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F32(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valtype_byte_round_trip() {
        for ty in [ValType::I32, ValType::I64, ValType::F32, ValType::F64] {
            assert_eq!(ValType::from_byte(ty.to_byte()), Some(ty));
        }
        assert_eq!(ValType::from_byte(0x00), None);
    }

    #[test]
    fn value_bits_round_trip() {
        let vals = [
            Value::I32(-7),
            Value::I64(i64::MIN),
            Value::F32(3.5),
            Value::F64(-0.0),
        ];
        for v in vals {
            assert_eq!(Value::from_bits(v.ty(), v.to_bits()), v);
        }
    }

    #[test]
    fn limits_accepts() {
        let l = Limits::bounded(1, 10);
        assert!(l.accepts(&Limits::bounded(1, 10)));
        assert!(l.accepts(&Limits::bounded(2, 5)));
        assert!(!l.accepts(&Limits::at_least(1)));
        assert!(!l.accepts(&Limits::bounded(0, 5)));
        assert!(Limits::at_least(1).accepts(&Limits::at_least(4)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            FuncType::new(&[ValType::I32, ValType::F64], &[ValType::I64]).to_string(),
            "(i32, f64) -> (i64)"
        );
        assert_eq!(Value::I32(5).to_string(), "5: i32");
    }
}
