//! Property-based tests for the Wasm substrate: encode/decode round
//! trips on generated valid modules, and decoder robustness on arbitrary
//! bytes.

use proptest::prelude::*;
use wasm_core::builder::ModuleBuilder;
use wasm_core::instr::{BlockType, Instr};
use wasm_core::module::Module;
use wasm_core::types::{FuncType, ValType};

/// A tiny stack-typed program generator: emits instructions that keep the
/// operand stack well-typed, so every generated module validates.
#[derive(Debug, Clone, Copy, PartialEq)]
enum T {
    I32,
    I64,
    F64,
}

fn gen_body(seed: u64, len: usize) -> (Vec<Instr>, Vec<T>) {
    let mut rng = seed | 1;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let mut stack: Vec<T> = Vec::new();
    let mut body = Vec::new();
    for _ in 0..len {
        let r = next() % 10;
        match r {
            0 => {
                body.push(Instr::I32Const(next() as i32));
                stack.push(T::I32);
            }
            1 => {
                body.push(Instr::I64Const(next() as i64));
                stack.push(T::I64);
            }
            2 => {
                body.push(Instr::F64Const((next() % 1000) as f64 as u64));
                stack.push(T::F64);
            }
            3..=5 => {
                // Binary op on two same-typed tops, if available.
                if stack.len() >= 2 && stack[stack.len() - 1] == stack[stack.len() - 2] {
                    let t = stack.pop().expect("len checked");
                    match t {
                        T::I32 => body.push(Instr::I32Add),
                        T::I64 => body.push(Instr::I64Xor),
                        T::F64 => body.push(Instr::F64Mul),
                    }
                } else {
                    body.push(Instr::I32Const(1));
                    stack.push(T::I32);
                }
            }
            6 => {
                if stack.last() == Some(&T::I32) {
                    body.push(Instr::I64ExtendI32U);
                    stack.pop();
                    stack.push(T::I64);
                } else {
                    body.push(Instr::Nop);
                }
            }
            7 => {
                if stack.last() == Some(&T::I64) {
                    body.push(Instr::I32WrapI64);
                    stack.pop();
                    stack.push(T::I32);
                } else {
                    body.push(Instr::Nop);
                }
            }
            8 => {
                if !stack.is_empty() {
                    body.push(Instr::Drop);
                    stack.pop();
                } else {
                    body.push(Instr::Nop);
                }
            }
            _ => {
                // A balanced block.
                body.push(Instr::Block(BlockType::Empty));
                body.push(Instr::Nop);
                body.push(Instr::End);
            }
        }
    }
    (body, stack)
}

fn gen_module(seed: u64, len: usize) -> Module {
    let (mut body, stack) = gen_body(seed, len);
    // Clean the stack down to a single i32 result.
    for _ in 0..stack.len() {
        body.push(Instr::Drop);
    }
    body.push(Instr::I32Const(42));
    let mut b = ModuleBuilder::new();
    b.memory(1, Some(4));
    let f = b.begin_func(FuncType::new(&[ValType::I32], &[ValType::I32]));
    b.new_local(ValType::I64);
    for i in body {
        b.emit(i);
    }
    b.finish_func();
    b.export_func("f", f);
    b.data(0, vec![1, 2, 3, 4]);
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated valid modules validate, and encode→decode is identity.
    #[test]
    fn encode_decode_round_trip(seed in any::<u64>(), len in 0usize..200) {
        let module = gen_module(seed, len);
        wasm_core::validate::validate(&module).expect("generated modules are valid");
        let bytes = wasm_core::encode::encode(&module);
        let decoded = wasm_core::decode::decode(&bytes).expect("decodes");
        prop_assert_eq!(decoded, module);
    }

    /// The decoder never panics on arbitrary input, it returns errors.
    #[test]
    fn decoder_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = wasm_core::decode::decode(&bytes);
    }

    /// Corrupting any single byte of a valid module never panics the
    /// decoder or the validator.
    #[test]
    fn decoder_total_on_bitflips(seed in any::<u64>(), pos in any::<prop::sample::Index>(), flip in 1u8..=255) {
        let module = gen_module(seed, 50);
        let mut bytes = wasm_core::encode::encode(&module);
        let i = pos.index(bytes.len());
        bytes[i] ^= flip;
        if let Ok(m) = wasm_core::decode::decode(&bytes) {
            let _ = wasm_core::validate::validate(&m);
        }
    }

    /// LEB128 round-trips for all integer widths.
    #[test]
    fn leb_round_trips(u in any::<u32>(), v in any::<u64>(), s in any::<i32>(), t in any::<i64>()) {
        let mut buf = Vec::new();
        wasm_core::leb::write_u32(&mut buf, u);
        wasm_core::leb::write_u64(&mut buf, v);
        wasm_core::leb::write_i32(&mut buf, s);
        wasm_core::leb::write_i64(&mut buf, t);
        let mut r = wasm_core::leb::Reader::new(&buf);
        prop_assert_eq!(r.u32().expect("u32"), u);
        prop_assert_eq!(r.u64().expect("u64"), v);
        prop_assert_eq!(r.i32().expect("i32"), s);
        prop_assert_eq!(r.i64().expect("i64"), t);
        prop_assert!(r.is_empty());
    }
}
