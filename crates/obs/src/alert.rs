//! SLO alert rules, spec parsing, and the alert state machine.
//!
//! The series ring ([`crate::series`]) records what happened; this
//! module decides when what happened is an *incident*. An
//! [`AlertEngine`] is fed one [`Observation`] per telemetry sample and
//! evaluates a fixed set of [`Rule`]s over a bounded trailing window:
//! dual-window error-budget burn rate, a p99 latency ceiling, queue
//! saturation, open circuit breakers, and profile drift (a phase's
//! self-time share jumping versus its trailing baseline).
//!
//! Rules parse from a compact spec string (`--alerts` /
//! `WABENCH_ALERTS`), the same shape `fault::FaultPlan` uses:
//!
//! ```text
//! slo=0.999,pending=5s,burn=14:5s:60s,p99=250ms:15s,queue=64:10s,breaker,drift=3:60s
//! ```
//!
//! Each rule runs a pending → firing → resolved state machine. The
//! evaluation clock is the observation's own `t_ns`, never a wall
//! clock, so a synthetic observation stream drives the machine
//! deterministically in tests — and nothing here runs unless an engine
//! is explicitly constructed, preserving the bit-identical-when-off
//! contract.

use std::collections::VecDeque;

use crate::metrics::{fmt_ns, HistogramSnapshot, BUCKETS};

/// Hard cap on observations an engine retains, on top of the
/// time-window bound (guards against a spec with an enormous window).
const MAX_OBSERVATIONS: usize = 4096;

/// Bounded alert-event log length.
const LOG_CAP: usize = 256;

/// Baseline points the drift rule needs before it can judge a phase.
const DRIFT_MIN_BASELINE: usize = 3;

/// One telemetry sample, reshaped for rule evaluation.
///
/// The service layer maps its per-interval series points into this
/// (obs cannot depend on svc); tests construct them directly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Observation {
    /// Sample time (trace clock) — the engine's evaluation clock.
    pub t_ns: u64,
    /// Nanoseconds this sample covers.
    pub interval_ns: u64,
    /// Jobs completed in the interval.
    pub completed: u64,
    /// Jobs failed in the interval.
    pub failed: u64,
    /// Latency observations in the interval.
    pub lat_count: u64,
    /// Interval p99 estimate, ns (fallback when `lat_buckets` is empty).
    pub p99_ns: u64,
    /// Sparse latency bucket deltas `(bucket index, count)` — see
    /// [`crate::metrics::bucket_bound_ns`]. Lets the p99 rule merge
    /// intervals into an exact windowed quantile.
    pub lat_buckets: Vec<(u8, u64)>,
    /// Queue depth at sample time.
    pub queue_depth: u64,
    /// Circuit breakers currently not closed.
    pub breakers_open: u32,
    /// Profiler phase self-time shares for the current profile window
    /// (`stack → share of total self time`); empty when the profiler
    /// is off.
    pub phase_shares: Vec<(String, f64)>,
}

/// What a rule watches.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleKind {
    /// Error-budget burn rate ≥ `threshold` over *both* the fast and
    /// slow trailing windows (the classic dual-window page rule: the
    /// fast window catches the incident, the slow window keeps a brief
    /// blip from paging).
    Burn {
        /// Burn-rate threshold (1.0 = consuming budget exactly on
        /// schedule).
        threshold: f64,
        /// Fast window span, ns.
        fast_ns: u64,
        /// Slow window span, ns.
        slow_ns: u64,
    },
    /// Merged p99 over the trailing window exceeds the ceiling.
    P99 {
        /// Latency ceiling, ns.
        ceiling_ns: u64,
        /// Trailing window span, ns.
        window_ns: u64,
    },
    /// Queue depth at or above `depth` for every sample in the window.
    Queue {
        /// Saturation depth.
        depth: u64,
        /// Trailing window span, ns.
        window_ns: u64,
    },
    /// Any circuit breaker not closed at the latest sample.
    Breaker,
    /// A profile phase's self-time share exceeds its trailing-baseline
    /// mean by more than `k` standard deviations.
    Drift {
        /// Sigma multiplier.
        k: f64,
        /// Trailing baseline window span, ns.
        window_ns: u64,
    },
}

/// One armed alert rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// What the rule watches.
    pub kind: RuleKind,
}

impl Rule {
    /// Stable short id (`burn` / `p99` / `queue` / `breaker` / `drift`)
    /// — the spec key, the wire name, and the postmortem file tag.
    pub fn id(&self) -> &'static str {
        match self.kind {
            RuleKind::Burn { .. } => "burn",
            RuleKind::P99 { .. } => "p99",
            RuleKind::Queue { .. } => "queue",
            RuleKind::Breaker => "breaker",
            RuleKind::Drift { .. } => "drift",
        }
    }

    /// The longest trailing span this rule looks back over.
    fn lookback_ns(&self) -> u64 {
        match self.kind {
            RuleKind::Burn { slow_ns, .. } => slow_ns,
            RuleKind::P99 { window_ns, .. } => window_ns,
            RuleKind::Queue { window_ns, .. } => window_ns,
            RuleKind::Breaker => 0,
            RuleKind::Drift { window_ns, .. } => window_ns,
        }
    }
}

/// A parsed alert spec: global tuning plus the armed rules.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertSpec {
    /// Availability SLO target for burn-rate rules (default 0.999).
    pub slo: f64,
    /// How long a condition must hold before pending becomes firing
    /// (default 0 — fire on first breach).
    pub pending_ns: u64,
    /// Armed rules, in spec order.
    pub rules: Vec<Rule>,
}

impl Default for AlertSpec {
    fn default() -> AlertSpec {
        AlertSpec {
            slo: 0.999,
            pending_ns: 0,
            rules: Vec::new(),
        }
    }
}

impl AlertSpec {
    /// Parses a spec string: comma-separated clauses.
    ///
    /// ```text
    /// slo=F           burn-rule SLO target in [0, 1)      (default 0.999)
    /// pending=DUR     hold before pending → firing        (default 0s)
    /// burn=T:FAST:SLOW   dual-window burn rule (threshold, two spans)
    /// p99=DUR:WINDOW     merged-p99 ceiling over a trailing window
    /// queue=N:WINDOW     queue depth ≥ N for the whole window
    /// breaker            any breaker open at the latest sample
    /// drift=K:WINDOW     phase share > baseline mean + K·σ
    /// ```
    ///
    /// Durations take `ms` or `s` suffixes, like fault-plan delays.
    ///
    /// # Errors
    ///
    /// A human-readable message for unknown keys, malformed clauses, or
    /// out-of-range numbers.
    pub fn parse(spec: &str) -> Result<AlertSpec, String> {
        let mut out = AlertSpec::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if part == "breaker" {
                out.rules.push(Rule {
                    kind: RuleKind::Breaker,
                });
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("alert spec: {part:?} is not key=value"))?;
            match key {
                "slo" => {
                    let slo: f64 = value
                        .parse()
                        .map_err(|_| format!("alert spec: bad slo {value:?}"))?;
                    if !(0.0..1.0).contains(&slo) {
                        return Err(format!("alert spec: slo {slo} outside [0, 1)"));
                    }
                    out.slo = slo;
                }
                "pending" => out.pending_ns = parse_duration_ns(value)?,
                "burn" => {
                    let (t, fast, slow) = split3(value, "burn")?;
                    let threshold = parse_pos_f64(t, "burn threshold")?;
                    out.rules.push(Rule {
                        kind: RuleKind::Burn {
                            threshold,
                            fast_ns: parse_duration_ns(fast)?,
                            slow_ns: parse_duration_ns(slow)?,
                        },
                    });
                }
                "p99" => {
                    let (ceiling, window) = split2(value, "p99")?;
                    out.rules.push(Rule {
                        kind: RuleKind::P99 {
                            ceiling_ns: parse_duration_ns(ceiling)?,
                            window_ns: parse_duration_ns(window)?,
                        },
                    });
                }
                "queue" => {
                    let (depth, window) = split2(value, "queue")?;
                    let depth: u64 = depth
                        .parse()
                        .map_err(|_| format!("alert spec: bad queue depth {depth:?}"))?;
                    out.rules.push(Rule {
                        kind: RuleKind::Queue {
                            depth,
                            window_ns: parse_duration_ns(window)?,
                        },
                    });
                }
                "drift" => {
                    let (k, window) = split2(value, "drift")?;
                    out.rules.push(Rule {
                        kind: RuleKind::Drift {
                            k: parse_pos_f64(k, "drift sigma")?,
                            window_ns: parse_duration_ns(window)?,
                        },
                    });
                }
                other => {
                    return Err(format!(
                        "alert spec: unknown key {other:?} \
                         (known: slo, pending, burn, p99, queue, breaker, drift)"
                    ))
                }
            }
        }
        Ok(out)
    }

    /// Reads a spec from `WABENCH_ALERTS`; `Ok(None)` when unset/empty.
    ///
    /// # Errors
    ///
    /// Parse errors from [`AlertSpec::parse`].
    pub fn from_env() -> Result<Option<AlertSpec>, String> {
        match std::env::var("WABENCH_ALERTS") {
            Ok(spec) if !spec.trim().is_empty() => AlertSpec::parse(&spec).map(Some),
            _ => Ok(None),
        }
    }

    /// The longest lookback any armed rule needs.
    fn lookback_ns(&self) -> u64 {
        self.rules
            .iter()
            .map(Rule::lookback_ns)
            .max()
            .unwrap_or(0)
            .max(self.pending_ns)
    }
}

impl std::fmt::Display for AlertSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "slo={}", self.slo)?;
        if self.pending_ns > 0 {
            write!(f, ",pending={}", fmt_dur(self.pending_ns))?;
        }
        for rule in &self.rules {
            match rule.kind {
                RuleKind::Burn {
                    threshold,
                    fast_ns,
                    slow_ns,
                } => write!(
                    f,
                    ",burn={threshold}:{}:{}",
                    fmt_dur(fast_ns),
                    fmt_dur(slow_ns)
                )?,
                RuleKind::P99 {
                    ceiling_ns,
                    window_ns,
                } => write!(f, ",p99={}:{}", fmt_dur(ceiling_ns), fmt_dur(window_ns))?,
                RuleKind::Queue { depth, window_ns } => {
                    write!(f, ",queue={depth}:{}", fmt_dur(window_ns))?
                }
                RuleKind::Breaker => write!(f, ",breaker")?,
                RuleKind::Drift { k, window_ns } => {
                    write!(f, ",drift={k}:{}", fmt_dur(window_ns))?
                }
            }
        }
        Ok(())
    }
}

fn split2<'a>(v: &'a str, key: &str) -> Result<(&'a str, &'a str), String> {
    v.split_once(':')
        .ok_or_else(|| format!("alert spec: {key} wants {key}=A:B, got {v:?}"))
}

fn split3<'a>(v: &'a str, key: &str) -> Result<(&'a str, &'a str, &'a str), String> {
    let (a, rest) = split2(v, key)?;
    let (b, c) = rest
        .split_once(':')
        .ok_or_else(|| format!("alert spec: {key} wants {key}=A:B:C, got {v:?}"))?;
    Ok((a, b, c))
}

fn parse_pos_f64(s: &str, what: &str) -> Result<f64, String> {
    let v: f64 = s
        .parse()
        .map_err(|_| format!("alert spec: bad {what} {s:?}"))?;
    if v > 0.0 && v.is_finite() {
        Ok(v)
    } else {
        Err(format!("alert spec: {what} must be positive, got {v}"))
    }
}

/// Parses `250ms` / `15s` into nanoseconds.
fn parse_duration_ns(s: &str) -> Result<u64, String> {
    let bad = || format!("alert spec: bad duration {s:?} (use e.g. 250ms or 15s)");
    if let Some(ms) = s.strip_suffix("ms") {
        let v: u64 = ms.parse().map_err(|_| bad())?;
        Ok(v.saturating_mul(1_000_000))
    } else if let Some(secs) = s.strip_suffix('s') {
        let v: u64 = secs.parse().map_err(|_| bad())?;
        Ok(v.saturating_mul(1_000_000_000))
    } else {
        Err(bad())
    }
}

/// Renders a nanosecond span in the spec grammar (`ms` or whole `s`).
fn fmt_dur(ns: u64) -> String {
    if ns.is_multiple_of(1_000_000_000) {
        format!("{}s", ns / 1_000_000_000)
    } else {
        format!("{}ms", ns / 1_000_000)
    }
}

/// A state-machine transition kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// Condition breached; waiting out the pending hold.
    Pending,
    /// Alert is live — the flight-recorder trigger.
    Firing,
    /// A firing alert's condition cleared.
    Resolved,
}

impl Transition {
    /// Stable wire byte.
    pub fn byte(self) -> u8 {
        match self {
            Transition::Pending => 0,
            Transition::Firing => 1,
            Transition::Resolved => 2,
        }
    }

    /// Decodes a wire byte.
    pub fn from_byte(b: u8) -> Option<Transition> {
        Some(match b {
            0 => Transition::Pending,
            1 => Transition::Firing,
            2 => Transition::Resolved,
            _ => return None,
        })
    }

    /// Lowercase human name.
    pub fn name(self) -> &'static str {
        match self {
            Transition::Pending => "pending",
            Transition::Firing => "firing",
            Transition::Resolved => "resolved",
        }
    }
}

/// One logged state transition.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEvent {
    /// Monotone event number since engine creation.
    pub seq: u64,
    /// Evaluation-clock time of the transition.
    pub t_ns: u64,
    /// Rule id ([`Rule::id`]).
    pub rule: String,
    /// Which transition happened.
    pub transition: Transition,
    /// The evaluated value at transition time.
    pub value: f64,
    /// The rule's threshold.
    pub threshold: f64,
    /// Human context (`fast=14.2 slow=15.0`, `phase=wasm3;exec z=4.1`…).
    pub detail: String,
}

/// A currently-firing alert, for health surfaces.
#[derive(Debug, Clone, PartialEq)]
pub struct FiringAlert {
    /// Rule id.
    pub rule: String,
    /// When it started firing (evaluation clock).
    pub since_ns: u64,
    /// Latest evaluated value.
    pub value: f64,
    /// The rule's threshold.
    pub threshold: f64,
    /// Latest human context.
    pub detail: String,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Inactive,
    Pending { since_ns: u64 },
    Firing { since_ns: u64 },
}

/// One rule's evaluation this tick.
#[derive(Debug, Clone)]
struct Eval {
    breached: bool,
    value: f64,
    threshold: f64,
    detail: String,
}

/// The rule evaluator and per-rule state machines.
///
/// Feed it one [`Observation`] per sample via [`AlertEngine::observe`];
/// it returns the transitions that sample caused (the caller snapshots
/// a postmortem on each [`Transition::Firing`]).
#[derive(Debug)]
pub struct AlertEngine {
    spec: AlertSpec,
    window: VecDeque<Observation>,
    states: Vec<State>,
    last_eval: Vec<Eval>,
    log: VecDeque<AlertEvent>,
    seq: u64,
}

impl AlertEngine {
    /// An engine with every rule inactive and an empty window.
    pub fn new(spec: AlertSpec) -> AlertEngine {
        let n = spec.rules.len();
        AlertEngine {
            spec,
            window: VecDeque::new(),
            states: vec![State::Inactive; n],
            last_eval: (0..n)
                .map(|_| Eval {
                    breached: false,
                    value: 0.0,
                    threshold: 0.0,
                    detail: String::new(),
                })
                .collect(),
            log: VecDeque::new(),
            seq: 0,
        }
    }

    /// The spec this engine runs.
    pub fn spec(&self) -> &AlertSpec {
        &self.spec
    }

    /// Feeds one sample and returns the transitions it caused, in rule
    /// order. The observation's `t_ns` is the evaluation clock.
    pub fn observe(&mut self, obs: Observation) -> Vec<AlertEvent> {
        let now = obs.t_ns;
        self.window.push_back(obs);
        let keep_from = now.saturating_sub(self.spec.lookback_ns());
        while self.window.len() > MAX_OBSERVATIONS
            || self
                .window
                .front()
                .is_some_and(|o| o.t_ns < keep_from && self.window.len() > 1)
        {
            self.window.pop_front();
        }

        let mut transitions = Vec::new();
        for i in 0..self.spec.rules.len() {
            let eval = self.evaluate(i, now);
            let state = self.states[i];
            let next = match (state, eval.breached) {
                (State::Inactive, true) if self.spec.pending_ns == 0 => {
                    transitions.push(self.log_event(i, now, Transition::Firing, &eval));
                    State::Firing { since_ns: now }
                }
                (State::Inactive, true) => {
                    transitions.push(self.log_event(i, now, Transition::Pending, &eval));
                    State::Pending { since_ns: now }
                }
                (State::Pending { since_ns }, true)
                    if now.saturating_sub(since_ns) >= self.spec.pending_ns =>
                {
                    transitions.push(self.log_event(i, now, Transition::Firing, &eval));
                    State::Firing { since_ns }
                }
                (State::Pending { .. }, false) => State::Inactive,
                (State::Firing { .. }, false) => {
                    transitions.push(self.log_event(i, now, Transition::Resolved, &eval));
                    State::Inactive
                }
                (s, _) => s,
            };
            self.states[i] = next;
            self.last_eval[i] = eval;
        }
        transitions
    }

    /// The alerts firing right now, in rule order.
    pub fn firing(&self) -> Vec<FiringAlert> {
        self.spec
            .rules
            .iter()
            .zip(self.states.iter())
            .zip(self.last_eval.iter())
            .filter_map(|((rule, state), eval)| match state {
                State::Firing { since_ns } => Some(FiringAlert {
                    rule: rule.id().to_string(),
                    since_ns: *since_ns,
                    value: eval.value,
                    threshold: eval.threshold,
                    detail: eval.detail.clone(),
                }),
                _ => None,
            })
            .collect()
    }

    /// The bounded transition log, oldest first.
    pub fn log(&self) -> Vec<AlertEvent> {
        self.log.iter().cloned().collect()
    }

    fn log_event(&mut self, rule: usize, t_ns: u64, tr: Transition, eval: &Eval) -> AlertEvent {
        let event = AlertEvent {
            seq: self.seq,
            t_ns,
            rule: self.spec.rules[rule].id().to_string(),
            transition: tr,
            value: eval.value,
            threshold: eval.threshold,
            detail: eval.detail.clone(),
        };
        self.seq += 1;
        if self.log.len() == LOG_CAP {
            self.log.pop_front();
        }
        self.log.push_back(event.clone());
        event
    }

    fn trailing(&self, now: u64, span_ns: u64) -> impl Iterator<Item = &Observation> {
        let from = now.saturating_sub(span_ns);
        self.window.iter().filter(move |o| o.t_ns > from)
    }

    fn evaluate(&self, rule: usize, now: u64) -> Eval {
        match self.spec.rules[rule].kind {
            RuleKind::Burn {
                threshold,
                fast_ns,
                slow_ns,
            } => {
                let budget = (1.0 - self.spec.slo).max(f64::EPSILON);
                let burn_over = |span: u64| {
                    let (mut completed, mut failed) = (0u64, 0u64);
                    for o in self.trailing(now, span) {
                        completed += o.completed;
                        failed += o.failed;
                    }
                    if completed == 0 {
                        0.0
                    } else {
                        (failed as f64 / completed as f64) / budget
                    }
                };
                let fast = burn_over(fast_ns);
                let slow = burn_over(slow_ns);
                Eval {
                    breached: fast >= threshold && slow >= threshold,
                    value: fast.min(slow),
                    threshold,
                    detail: format!("fast={fast:.2} slow={slow:.2} slo={}", self.spec.slo),
                }
            }
            RuleKind::P99 {
                ceiling_ns,
                window_ns,
            } => {
                let mut merged = HistogramSnapshot::default();
                let (mut lat_count, mut weighted) = (0u64, 0u128);
                for o in self.trailing(now, window_ns) {
                    for (idx, count) in &o.lat_buckets {
                        let i = (*idx as usize).min(BUCKETS - 1);
                        merged.buckets[i] += count;
                        merged.count += count;
                    }
                    lat_count += o.lat_count;
                    weighted += u128::from(o.lat_count) * u128::from(o.p99_ns);
                }
                // Exact merged quantile when buckets rode along; the
                // count-weighted interval p99 otherwise.
                let p99 = if merged.count > 0 {
                    merged.quantile_ns(0.99)
                } else if lat_count > 0 {
                    (weighted / u128::from(lat_count)) as u64
                } else {
                    0
                };
                Eval {
                    breached: p99 > ceiling_ns,
                    value: p99 as f64,
                    threshold: ceiling_ns as f64,
                    detail: format!("p99={} ceiling={}", fmt_ns(p99), fmt_ns(ceiling_ns)),
                }
            }
            RuleKind::Queue { depth, window_ns } => {
                let depths: Vec<u64> =
                    self.trailing(now, window_ns).map(|o| o.queue_depth).collect();
                let min = depths.iter().copied().min().unwrap_or(0);
                Eval {
                    breached: !depths.is_empty() && min >= depth,
                    value: min as f64,
                    threshold: depth as f64,
                    detail: format!("min_depth={min} over {} samples", depths.len()),
                }
            }
            RuleKind::Breaker => {
                let open = self.window.back().map_or(0, |o| o.breakers_open);
                Eval {
                    breached: open > 0,
                    value: f64::from(open),
                    threshold: 1.0,
                    detail: format!("breakers_open={open}"),
                }
            }
            RuleKind::Drift { k, window_ns } => {
                let Some(cur) = self.window.back() else {
                    return Eval {
                        breached: false,
                        value: 0.0,
                        threshold: k,
                        detail: String::new(),
                    };
                };
                let mut worst: Option<(f64, String)> = None;
                for (phase, share) in &cur.phase_shares {
                    let baseline: Vec<f64> = self
                        .trailing(now, window_ns)
                        .filter(|o| o.t_ns < cur.t_ns)
                        .filter_map(|o| {
                            o.phase_shares
                                .iter()
                                .find(|(p, _)| p == phase)
                                .map(|(_, s)| *s)
                        })
                        .collect();
                    if baseline.len() < DRIFT_MIN_BASELINE {
                        continue;
                    }
                    let mean = baseline.iter().sum::<f64>() / baseline.len() as f64;
                    let var = baseline.iter().map(|s| (s - mean).powi(2)).sum::<f64>()
                        / baseline.len() as f64;
                    // Share noise floor: a dead-flat baseline would turn
                    // any change into an infinite z-score.
                    let sigma = var.sqrt().max(1e-3);
                    let z = (share - mean) / sigma;
                    if worst.as_ref().is_none_or(|(w, _)| z > *w) {
                        worst = Some((
                            z,
                            format!("phase={phase} share={share:.3} base={mean:.3} z={z:.2}"),
                        ));
                    }
                }
                let (z, detail) = worst.unwrap_or((0.0, "no baseline".to_string()));
                Eval {
                    breached: z > k,
                    value: z,
                    threshold: k,
                    detail,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u64 = 1_000_000_000;

    fn obs(t_s: u64) -> Observation {
        Observation {
            t_ns: t_s * S,
            interval_ns: S,
            ..Observation::default()
        }
    }

    #[test]
    fn spec_parses_and_round_trips() {
        let spec = AlertSpec::parse(
            "slo=0.99,pending=5s,burn=14:5s:60s,p99=250ms:15s,queue=64:10s,breaker,drift=3:60s",
        )
        .unwrap();
        assert_eq!(spec.slo, 0.99);
        assert_eq!(spec.pending_ns, 5 * S);
        assert_eq!(spec.rules.len(), 5);
        assert_eq!(
            spec.rules.iter().map(Rule::id).collect::<Vec<_>>(),
            vec!["burn", "p99", "queue", "breaker", "drift"]
        );
        assert_eq!(
            spec.rules[1].kind,
            RuleKind::P99 {
                ceiling_ns: 250_000_000,
                window_ns: 15 * S
            }
        );
        let again = AlertSpec::parse(&spec.to_string()).unwrap();
        assert_eq!(again, spec);
    }

    #[test]
    fn spec_rejects_garbage() {
        assert!(AlertSpec::parse("nonsense").is_err());
        assert!(AlertSpec::parse("bogus=1").is_err());
        assert!(AlertSpec::parse("slo=1.5").is_err());
        assert!(AlertSpec::parse("burn=14:5s").is_err(), "burn wants three parts");
        assert!(AlertSpec::parse("burn=-1:5s:60s").is_err());
        assert!(AlertSpec::parse("p99=250ms").is_err());
        assert!(AlertSpec::parse("p99=fast:15s").is_err());
        assert!(AlertSpec::parse("queue=x:10s").is_err());
        assert!(AlertSpec::parse("drift=3:10parsecs").is_err());
        assert!(AlertSpec::parse("pending=10").is_err(), "bare number has no unit");
    }

    #[test]
    fn empty_spec_arms_nothing() {
        let engine = &mut AlertEngine::new(AlertSpec::parse("").unwrap());
        assert!(engine.observe(obs(1)).is_empty());
        assert!(engine.firing().is_empty());
        assert!(engine.log().is_empty());
    }

    #[test]
    fn p99_rule_fires_and_resolves_on_merged_quantile() {
        // Ceiling 1ms; bucket 13 holds (1.05ms, 2.1ms].
        let spec = AlertSpec::parse("p99=1ms:10s").unwrap();
        let mut engine = AlertEngine::new(spec);
        let slow = |t: u64| Observation {
            lat_count: 10,
            p99_ns: 2_000_000,
            lat_buckets: vec![(13, 10)],
            ..obs(t)
        };
        let fast = |t: u64| Observation {
            lat_count: 10,
            p99_ns: 100_000,
            lat_buckets: vec![(9, 10)],
            ..obs(t)
        };
        let events = engine.observe(slow(1));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].transition, Transition::Firing);
        assert_eq!(events[0].rule, "p99");
        assert!(events[0].value > 1_000_000.0);
        assert_eq!(engine.firing().len(), 1);
        // Still breached while the slow point is in the window...
        assert!(engine.observe(fast(2)).is_empty());
        // ...resolved once it ages out (window is 10s).
        let events = engine.observe(fast(12));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].transition, Transition::Resolved);
        assert!(engine.firing().is_empty());
        let log = engine.log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].seq, 0);
        assert_eq!(log[1].seq, 1);
    }

    #[test]
    fn pending_hold_delays_firing_and_cancels_cleanly() {
        let spec = AlertSpec::parse("pending=3s,queue=4:10s").unwrap();
        let mut engine = AlertEngine::new(spec.clone());
        let deep = |t: u64| Observation {
            queue_depth: 9,
            ..obs(t)
        };
        let events = engine.observe(deep(1));
        assert_eq!(events[0].transition, Transition::Pending);
        assert!(engine.firing().is_empty(), "pending is not firing");
        assert!(engine.observe(deep(2)).is_empty(), "still holding");
        let events = engine.observe(deep(4));
        assert_eq!(events[0].transition, Transition::Firing);
        assert_eq!(engine.firing()[0].since_ns, S, "firing since first breach");

        // A breach that clears during the hold never fires.
        let mut engine = AlertEngine::new(spec);
        engine.observe(deep(1));
        assert!(engine.observe(obs(20)).is_empty(), "cancelled silently");
        // The shallow sample must age out of the 10s window before the
        // rule can go pending again.
        assert!(engine.observe(deep(31))[0].transition == Transition::Pending);
    }

    #[test]
    fn burn_rule_needs_both_windows() {
        // slo=0.9 → budget 0.1; threshold 2 → failure ratio ≥ 0.2 in
        // both the 2s fast and 6s slow windows.
        let spec = AlertSpec::parse("slo=0.9,burn=2:2s:6s").unwrap();
        let mut engine = AlertEngine::new(spec);
        let failing = |t: u64| Observation {
            completed: 10,
            failed: 5,
            ..obs(t)
        };
        let clean = |t: u64| Observation {
            completed: 10,
            failed: 0,
            ..obs(t)
        };
        // A long clean history dilutes the slow window below threshold:
        // fast breaches, slow does not → no alert.
        for t in 1..=5 {
            assert!(engine.observe(clean(t)).is_empty());
        }
        assert!(engine.observe(failing(6)).is_empty(), "slow window still diluted");
        assert!(engine.observe(failing(7)).is_empty(), "slow window still diluted");
        // Sustained failures push both windows over.
        let events = engine.observe(failing(8));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].transition, Transition::Firing);
        assert_eq!(events[0].rule, "burn");
    }

    #[test]
    fn breaker_rule_tracks_latest_sample() {
        let mut engine = AlertEngine::new(AlertSpec::parse("breaker").unwrap());
        assert!(engine.observe(obs(1)).is_empty());
        let events = engine.observe(Observation {
            breakers_open: 2,
            ..obs(2)
        });
        assert_eq!(events[0].transition, Transition::Firing);
        assert_eq!(events[0].value, 2.0);
        let events = engine.observe(obs(3));
        assert_eq!(events[0].transition, Transition::Resolved);
    }

    #[test]
    fn drift_rule_wants_a_baseline_before_judging() {
        let spec = AlertSpec::parse("drift=3:60s").unwrap();
        let mut engine = AlertEngine::new(spec);
        let shares = |t: u64, exec: f64| Observation {
            phase_shares: vec![
                ("wasm3;compile".to_string(), 1.0 - exec),
                ("wasm3;exec".to_string(), exec),
            ],
            ..obs(t)
        };
        // A jump with no baseline cannot fire.
        assert!(engine.observe(shares(1, 0.9)).is_empty());
        // Build a steady baseline, then jump the exec share.
        let mut engine = AlertEngine::new(AlertSpec::parse("drift=3:60s").unwrap());
        for (t, s) in [(1, 0.50), (2, 0.51), (3, 0.49), (4, 0.50)] {
            assert!(engine.observe(shares(t, s)).is_empty(), "t={t}");
        }
        let events = engine.observe(shares(5, 0.95));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].rule, "drift");
        assert_eq!(events[0].transition, Transition::Firing);
        assert!(events[0].detail.contains("phase=wasm3;exec"), "{}", events[0].detail);
    }

    #[test]
    fn observations_are_bounded_by_lookback() {
        let mut engine = AlertEngine::new(AlertSpec::parse("queue=1:5s").unwrap());
        for t in 1..=500 {
            engine.observe(obs(t));
        }
        assert!(
            engine.window.len() <= 8,
            "window holds ~5s of 1s samples, got {}",
            engine.window.len()
        );
    }

    #[test]
    fn transition_bytes_round_trip() {
        for t in [Transition::Pending, Transition::Firing, Transition::Resolved] {
            assert_eq!(Transition::from_byte(t.byte()), Some(t));
        }
        assert_eq!(Transition::from_byte(9), None);
    }
}
