//! # obs — tracing, metrics, and trace export for the wabench stack
//!
//! The paper's whole contribution is *measurement*; this crate makes the
//! reproduction's own internals measurable. Three pieces:
//!
//! - **Spans** ([`trace`], the [`span!`] macro): named, attributed,
//!   nested timing regions recorded into per-thread fixed-capacity ring
//!   buffers ([`ring`]) with a lock-free producer path. The default sink
//!   is [`trace::Sink::Null`]: a disabled [`span!`] costs one relaxed
//!   atomic load and touches nothing else, so plain timing runs stay
//!   bit-identical to uninstrumented ones.
//! - **Metrics** ([`metrics`]): a global registry of named counters and
//!   fixed-bucket latency histograms with p50/p95/p99 summaries, used
//!   for per-engine compile/execute/verify latencies and artifact-store
//!   hit/miss/eviction counts.
//! - **Exporters**: Chrome trace-event JSON ([`chrome`], loadable in
//!   Perfetto / `chrome://tracing`), a plain-text hierarchical
//!   self-time report ([`report`]), a `perf report`-style attributed
//!   counter profile ([`prof`]) over the optional
//!   [`trace::SpanCounters`] span payloads, and flamegraph folded
//!   stacks ([`folded`], wall- or counter-weighted); [`json`] carries
//!   the tiny parser the round-trip validators are built on.
//!
//! Live-telemetry pieces ride on those: a background registry
//! sampler feeding a bounded delta ring ([`series`]), a threshold-gated
//! slow-request exemplar buffer ([`exemplar`]), a client/server
//! trace stitcher with round-trip clock-offset estimation ([`stitch`]),
//! a windowed continuous-profile aggregator ([`contprof`]), and an SLO
//! alert-rule engine ([`alert`]). None of them run unless explicitly
//! started, preserving the bit-identical-when-off contract.
//!
//! There is also a leveled [`log!`] macro family (respecting
//! `WABENCH_LOG=error|warn|info|debug`, [`logger`]) that replaces the
//! scattered `eprintln!` progress lines in the binaries.
//!
//! ```
//! obs::trace::install(obs::trace::Sink::Ring);
//! {
//!     let _outer = obs::span!("compile", module = "crc32");
//!     let _inner = obs::span!("pass", name = "const_fold");
//! }
//! let trace = obs::trace::drain();
//! let json = obs::chrome::export_string(&trace);
//! let summary = obs::chrome::validate(&json).unwrap();
//! assert!(summary.spans >= 2);
//! obs::trace::install(obs::trace::Sink::Null);
//! ```
//!
//! This crate deliberately depends on nothing in the workspace, so every
//! other crate (wacc, engines, svc, harness) can depend on it.

#![warn(missing_docs)]

pub mod alert;
pub mod chrome;
pub mod contprof;
pub mod exemplar;
pub mod folded;
pub mod json;
pub mod logger;
pub mod metrics;
pub mod prof;
pub mod report;
pub mod ring;
pub mod series;
pub mod stitch;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use trace::{SpanCounters, SpanEvent, SpanGuard, ThreadTrace, Trace};

/// Opens a timing span that ends when the returned guard drops.
///
/// `span!("name")` records just the name; `span!("name", key = expr,
/// ...)` formats the attributes with [`std::fmt::Display`] into a
/// `key=value` detail string — but only when tracing is enabled, so the
/// disabled path never allocates or formats.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::SpanGuard::enter($name, || None)
    };
    ($name:expr, $($k:ident = $v:expr),+ $(,)?) => {
        $crate::trace::SpanGuard::enter($name, || {
            let mut s = String::new();
            $(
                if !s.is_empty() {
                    s.push(' ');
                }
                s.push_str(concat!(stringify!($k), "="));
                {
                    use std::fmt::Write as _;
                    let _ = write!(s, "{}", $v);
                }
            )+
            Some(s.into_boxed_str())
        })
    };
}

/// Logs a line at the given [`logger::Level`] if `WABENCH_LOG` permits.
///
/// The default level is `info`, chosen so existing progress output is
/// preserved verbatim; `WABENCH_LOG=error` silences progress,
/// `WABENCH_LOG=debug` adds diagnostics. Setting `WABENCH_LOG_TS=1`
/// prefixes each line with seconds since the first logged line
/// ([`logger::prefix`]); without it the output is byte-identical to the
/// historical `eprintln!` lines.
#[macro_export]
macro_rules! log {
    ($lvl:expr, $($arg:tt)*) => {
        if $crate::logger::enabled($lvl) {
            eprintln!("{}{}", $crate::logger::prefix(), format_args!($($arg)*));
        }
    };
}

/// Logs at [`logger::Level::Error`].
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => { $crate::log!($crate::logger::Level::Error, $($arg)*) };
}

/// Logs at [`logger::Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => { $crate::log!($crate::logger::Level::Warn, $($arg)*) };
}

/// Logs at [`logger::Level::Info`] (the default visibility threshold).
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => { $crate::log!($crate::logger::Level::Info, $($arg)*) };
}

/// Logs at [`logger::Level::Debug`] (hidden unless `WABENCH_LOG=debug`).
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => { $crate::log!($crate::logger::Level::Debug, $($arg)*) };
}
