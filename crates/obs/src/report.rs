//! Plain-text hierarchical self-time report.
//!
//! The Chrome trace answers "what happened when"; this report answers
//! "where did the time go" without leaving the terminal. Spans aggregate
//! by their full call path (`harness.cell/engine.compile/jit.pass`), so
//! the same pass invoked from two places shows up twice — that is the
//! point: attribution follows the path, not the name. *Self* time is a
//! span's duration minus its children's, which is what you optimize.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::fmt_ns;
use crate::trace::{SpanEvent, Trace};

#[derive(Default, Clone)]
struct Node {
    total_ns: u64,
    self_ns: u64,
    count: u64,
}

/// Aggregates one thread's spans by call path.
fn aggregate(events: &[SpanEvent]) -> BTreeMap<Vec<&'static str>, Node> {
    let mut spans: Vec<&SpanEvent> = events.iter().collect();
    spans.sort_by(|a, b| {
        a.start_ns
            .cmp(&b.start_ns)
            .then(a.depth.cmp(&b.depth))
            .then(b.dur_ns.cmp(&a.dur_ns))
    });

    let mut agg: BTreeMap<Vec<&'static str>, Node> = BTreeMap::new();
    // Open spans: (end_ns, duration, children's total so far, path).
    let mut open: Vec<(u64, u64, u64, Vec<&'static str>)> = Vec::new();
    let pop = |open: &mut Vec<(u64, u64, u64, Vec<&'static str>)>,
                   agg: &mut BTreeMap<Vec<&'static str>, Node>| {
        let (_, dur_ns, child_ns, path) = open.pop().expect("pop with open span");
        let node = agg.entry(path).or_default();
        node.total_ns += dur_ns;
        node.self_ns += dur_ns.saturating_sub(child_ns);
        node.count += 1;
        if let Some(parent) = open.last_mut() {
            parent.2 += dur_ns;
        }
    };

    for span in spans {
        while let Some(&(end_ns, ..)) = open.last() {
            if end_ns > span.start_ns {
                break;
            }
            pop(&mut open, &mut agg);
        }
        let end_ns = match open.last() {
            Some(&(parent_end, ..)) => span.end_ns().min(parent_end),
            None => span.end_ns(),
        };
        let mut path: Vec<&'static str> =
            open.last().map(|(.., p)| p.clone()).unwrap_or_default();
        path.push(span.name);
        open.push((end_ns, span.dur_ns, 0, path));
    }
    while !open.is_empty() {
        pop(&mut open, &mut agg);
    }
    agg
}

/// Renders `trace` as an indented per-thread self-time table.
pub fn render(trace: &Trace) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "self-time report ({} spans, {} threads{})",
        trace.span_count(),
        trace.threads.len(),
        if trace.dropped() > 0 {
            format!(", {} dropped", trace.dropped())
        } else {
            String::new()
        }
    );

    for thread in &trace.threads {
        if thread.events.is_empty() {
            continue;
        }
        let agg = aggregate(&thread.events);
        let thread_total: u64 = agg
            .iter()
            .filter(|(path, _)| path.len() == 1)
            .map(|(_, n)| n.total_ns)
            .sum();
        let _ = writeln!(out, "\n[{} tid={}]", thread.name, thread.tid);
        let name_width = agg
            .keys()
            .map(|path| 2 * (path.len() - 1) + path.last().map_or(0, |n| n.len()))
            .max()
            .unwrap_or(0)
            .max("span".len());
        let _ = writeln!(
            out,
            "  {:name_width$}  {:>7}  {:>9}  {:>9}  {:>6}",
            "span", "count", "total", "self", "self%"
        );
        for (path, node) in &agg {
            let indent = 2 * (path.len() - 1);
            let label = format!(
                "{:indent$}{}",
                "",
                path.last().expect("non-empty path")
            );
            let pct = if thread_total == 0 {
                0.0
            } else {
                100.0 * node.self_ns as f64 / thread_total as f64
            };
            let _ = writeln!(
                out,
                "  {label:name_width$}  {:>7}  {:>9}  {:>9}  {pct:>5.1}%",
                node.count,
                fmt_ns(node.total_ns),
                fmt_ns(node.self_ns),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ThreadTrace;

    fn span(name: &'static str, start_ns: u64, dur_ns: u64, depth: u16) -> SpanEvent {
        SpanEvent {
            name,
            attr: None,
            start_ns,
            dur_ns,
            depth,
            counters: None,
        }
    }

    #[test]
    fn self_time_excludes_children() {
        let agg = aggregate(&[
            span("child", 2_000, 3_000, 1),
            span("parent", 1_000, 10_000, 0),
        ]);
        let parent = &agg[&vec!["parent"]];
        assert_eq!(parent.total_ns, 10_000);
        assert_eq!(parent.self_ns, 7_000);
        let child = &agg[&vec!["parent", "child"]];
        assert_eq!(child.total_ns, 3_000);
        assert_eq!(child.self_ns, 3_000);
    }

    #[test]
    fn same_name_different_paths_stay_separate() {
        let agg = aggregate(&[
            span("pass", 100, 50, 1),
            span("compile", 100, 100, 0),
            span("pass", 300, 80, 1),
            span("verify", 300, 100, 0),
        ]);
        assert_eq!(agg[&vec!["compile", "pass"]].count, 1);
        assert_eq!(agg[&vec!["verify", "pass"]].count, 1);
        assert!(!agg.contains_key(&vec!["pass"]));
    }

    #[test]
    fn repeated_spans_accumulate() {
        let agg = aggregate(&[
            span("pass", 100, 10, 1),
            span("pass", 120, 20, 1),
            span("compile", 100, 100, 0),
        ]);
        let pass = &agg[&vec!["compile", "pass"]];
        assert_eq!(pass.count, 2);
        assert_eq!(pass.total_ns, 30);
        assert_eq!(agg[&vec!["compile"]].self_ns, 70);
    }

    #[test]
    fn recursive_spans_do_not_double_count_self_time() {
        // f calls itself: outer 0..100, inner 20..60. The path keys
        // distinguish the recursion levels, each level's self time is
        // its duration minus its direct child, and total self time
        // equals the outer wall time — nothing counted twice.
        let agg = aggregate(&[span("f", 20, 40, 1), span("f", 0, 100, 0)]);
        let outer = &agg[&vec!["f"]];
        let inner = &agg[&vec!["f", "f"]];
        assert_eq!(outer.total_ns, 100);
        assert_eq!(outer.self_ns, 60);
        assert_eq!(inner.total_ns, 40);
        assert_eq!(inner.self_ns, 40);
        let self_sum: u64 = agg.values().map(|n| n.self_ns).sum();
        assert_eq!(self_sum, 100, "self times must partition the wall time");
    }

    #[test]
    fn zero_total_duration_renders_without_nan() {
        // Every span has zero duration: thread_total is 0 and the
        // percentage column must degrade to 0.0%, never NaN.
        let trace = Trace {
            threads: vec![ThreadTrace {
                tid: 1,
                name: "main".into(),
                dropped: 0,
                events: vec![span("instant", 10, 0, 0), span("blip", 20, 0, 0)],
            }],
        };
        let text = render(&trace);
        assert!(!text.contains("NaN"), "NaN leaked into report:\n{text}");
        assert!(text.contains("0.0%"));
    }

    #[test]
    fn render_mentions_threads_and_spans() {
        let trace = Trace {
            threads: vec![ThreadTrace {
                tid: 3,
                name: "main".into(),
                dropped: 0,
                events: vec![span("cell", 0, 1_000, 0), span("compile", 100, 400, 1)],
            }],
        };
        let text = render(&trace);
        assert!(text.contains("[main tid=3]"));
        assert!(text.contains("cell"));
        assert!(text.contains("  compile"), "children are indented");
        assert!(text.contains("self%"));
    }
}
