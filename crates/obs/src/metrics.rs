//! Metrics: named counters and fixed-bucket latency histograms.
//!
//! A process-global registry maps names to atomically-updated metrics,
//! so instrumentation sites just say
//! `obs::metrics::counter("svc.store.hits").inc()` — no handles to
//! thread through constructors. Histograms use power-of-two nanosecond
//! buckets, which makes observation lock-free and snapshots mergeable.
//! Quantile queries interpolate linearly within the target bucket and
//! clamp to the exact recorded extremes, so the estimate error is
//! bounded by the bucket width (a ≤2× ratio in the worst case, exact
//! for single-valued buckets at the edges) — the right trade for
//! p50/p95/p99 *summaries* of latencies spanning microseconds to
//! minutes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Histogram bucket count: bucket `i` holds observations in
/// `(2^(i+7), 2^(i+8)]` ns, so the range covers 256 ns .. ~2.3 min,
/// with the last bucket catching everything above.
pub const BUCKETS: usize = 32;

/// Upper bound (ns, inclusive) of bucket `i`.
pub fn bucket_bound_ns(i: usize) -> u64 {
    1u64 << (i + 8).min(63)
}

fn bucket_for(v_ns: u64) -> usize {
    // First bucket whose bound holds v; bound(i) = 2^(i+8), so
    // i = ⌈log2 v⌉ - 8 (clamped). ⌈log2 v⌉ = bit-length of v-1.
    let bits = 64 - (v_ns.max(1) - 1).leading_zeros() as usize;
    bits.saturating_sub(8).min(BUCKETS - 1)
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (queue depth, busy workers, breaker state).
///
/// Unlike a [`Counter`] a gauge moves both ways; the series sampler
/// records its point-in-time value rather than a delta.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`, saturating at zero (concurrent add/sub can
    /// transiently observe a stale level; a floor beats a wrap).
    pub fn sub(&self, n: u64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket latency histogram (nanosecond observations).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    // Exact extremes alongside the bucketed shape; min starts at
    // u64::MAX so the first observation always wins fetch_min.
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation of `v_ns` nanoseconds.
    pub fn observe_ns(&self, v_ns: u64) {
        self.buckets[bucket_for(v_ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(v_ns, Ordering::Relaxed);
        self.min_ns.fetch_min(v_ns, Ordering::Relaxed);
        self.max_ns.fetch_max(v_ns, Ordering::Relaxed);
    }

    /// Records one observation given in seconds.
    pub fn observe_s(&self, v_s: f64) {
        self.observe_ns((v_s.max(0.0) * 1e9) as u64);
    }

    /// A point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count,
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            // Normalize the empty-histogram sentinel out of snapshots so
            // they compare, encode, and merge without a special value.
            min_ns: if count == 0 {
                0
            } else {
                self.min_ns.load(Ordering::Relaxed)
            },
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// An immutable histogram snapshot — wire-encodable and mergeable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_bound_ns`]).
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observations, nanoseconds.
    pub sum_ns: u64,
    /// Smallest observation in nanoseconds (0 when empty).
    pub min_ns: u64,
    /// Largest observation in nanoseconds (0 when empty).
    pub max_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: 0,
            max_ns: 0,
        }
    }
}

impl HistogramSnapshot {
    /// The `q`-quantile (0.0..=1.0) estimate in ns; 0 when empty.
    ///
    /// The estimate interpolates linearly within the bucket holding the
    /// target rank (power-of-two buckets alone would round any quantile
    /// up to its bucket's upper bound — as much as 2× the true value)
    /// and is clamped into `[min_ns, max_ns]` when the snapshot carries
    /// exact extremes, which makes single-valued histograms and the
    /// p100 exact. Snapshots decoded from legacy v2 wire frames have no
    /// extremes (`max_ns == 0` with observations) and skip the clamp.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        // Rank 1 is the recorded minimum and rank `count` the maximum —
        // answer those exactly when the snapshot carries extremes.
        if self.max_ns > 0 {
            if target == 1 {
                return self.min_ns.min(self.max_ns);
            }
            if target == self.count {
                return self.max_ns;
            }
        }
        let mut cum = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            if *c == 0 {
                continue;
            }
            if cum + c >= target {
                let lower = if i == 0 { 0 } else { bucket_bound_ns(i - 1) };
                let upper = bucket_bound_ns(i);
                // Rank position within this bucket, in (0, 1].
                let into = (target - cum) as f64 / *c as f64;
                let mut est = (lower as f64 + (upper - lower) as f64 * into) as u64;
                if self.max_ns > 0 {
                    est = est.clamp(self.min_ns.min(self.max_ns), self.max_ns);
                }
                return est;
            }
            cum += c;
        }
        bucket_bound_ns(BUCKETS - 1)
    }

    /// Mean observation in nanoseconds (0 when empty — never NaN).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Folds another snapshot into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        // Empty sides carry min=0 as "no data", not "observed zero" —
        // only take a min from a side that actually has observations.
        self.min_ns = match (self.count, other.count) {
            (_, 0) => self.min_ns,
            (0, _) => other.min_ns,
            _ => self.min_ns.min(other.min_ns),
        };
        self.max_ns = self.max_ns.max(other.max_ns);
        self.count += other.count;
        self.sum_ns += other.sum_ns;
    }

    /// `count=… mean=… min=… p50=… p95=… p99=… max=…` with
    /// human-scaled units; the mean, min, and max are exact while the
    /// quantiles are interpolated estimates (see [`Self::quantile_ns`]).
    pub fn summary(&self) -> String {
        format!(
            "count={} mean={} min={} p50={} p95={} p99={} max={}",
            self.count,
            fmt_ns(self.mean_ns() as u64),
            fmt_ns(self.min_ns),
            fmt_ns(self.quantile_ns(0.50)),
            fmt_ns(self.quantile_ns(0.95)),
            fmt_ns(self.quantile_ns(0.99)),
            fmt_ns(self.max_ns),
        )
    }
}

/// Formats nanoseconds with an adaptive unit (`ns`, `µs`, `ms`, `s`).
pub fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

fn registry() -> &'static Mutex<HashMap<String, Metric>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(Mutex::default)
}

/// The counter registered under `name` (created on first use).
///
/// # Panics
///
/// Panics if `name` is already registered as a histogram.
pub fn counter(name: &str) -> Arc<Counter> {
    let mut reg = registry().lock().expect("metrics registry");
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Counter(Arc::default()))
    {
        Metric::Counter(c) => Arc::clone(c),
        _ => panic!("metric {name:?} is not a counter"),
    }
}

/// The gauge registered under `name` (created on first use).
///
/// # Panics
///
/// Panics if `name` is already registered as another metric kind.
pub fn gauge(name: &str) -> Arc<Gauge> {
    let mut reg = registry().lock().expect("metrics registry");
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Gauge(Arc::default()))
    {
        Metric::Gauge(g) => Arc::clone(g),
        _ => panic!("metric {name:?} is not a gauge"),
    }
}

/// The histogram registered under `name` (created on first use).
///
/// # Panics
///
/// Panics if `name` is already registered as a counter.
pub fn histogram(name: &str) -> Arc<Histogram> {
    let mut reg = registry().lock().expect("metrics registry");
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Histogram(Arc::default()))
    {
        Metric::Histogram(h) => Arc::clone(h),
        _ => panic!("metric {name:?} is not a histogram"),
    }
}

/// A named metric value in a [`snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge level.
    Gauge(u64),
    /// Histogram state (boxed: a snapshot is ~35× a counter).
    Histogram(Box<HistogramSnapshot>),
}

/// Snapshots every registered metric, sorted by name.
pub fn snapshot() -> Vec<(String, MetricValue)> {
    let reg = registry().lock().expect("metrics registry");
    let mut out: Vec<(String, MetricValue)> = reg
        .iter()
        .map(|(name, m)| {
            let v = match m {
                Metric::Counter(c) => MetricValue::Counter(c.get()),
                Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
            };
            (name.clone(), v)
        })
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Snapshots every registered *counter* whose name starts with
/// `prefix`, sorted by name. The resilience layer registers its
/// counters under `svc.`/`fault.` prefixes, so dashboards and tests can
/// pull one subsystem without walking the whole registry.
pub fn counters_with_prefix(prefix: &str) -> Vec<(String, u64)> {
    let reg = registry().lock().expect("metrics registry");
    let mut out: Vec<(String, u64)> = reg
        .iter()
        .filter(|(name, _)| name.starts_with(prefix))
        .filter_map(|(name, m)| match m {
            Metric::Counter(c) => Some((name.clone(), c.get())),
            _ => None,
        })
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Renders the full registry as an aligned plain-text block.
pub fn render() -> String {
    let snap = snapshot();
    if snap.is_empty() {
        return "metrics: none recorded\n".to_string();
    }
    let width = snap.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (name, value) in snap {
        match value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                out.push_str(&format!("{name:width$}  {v}\n"));
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!("{name:width$}  {}\n", h.summary()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_range() {
        assert_eq!(bucket_for(0), 0);
        assert_eq!(bucket_for(256), 0);
        assert_eq!(bucket_for(257), 1);
        assert_eq!(bucket_for(u64::MAX), BUCKETS - 1);
        for i in 0..BUCKETS - 1 {
            assert_eq!(bucket_for(bucket_bound_ns(i)), i, "bound {i} maps to itself");
            assert_eq!(bucket_for(bucket_bound_ns(i) + 1), i + 1);
        }
    }

    #[test]
    fn quantiles_bound_observations() {
        let h = Histogram::default();
        for v in [1_000u64, 2_000, 4_000, 1_000_000] {
            h.observe_ns(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert!(s.quantile_ns(0.5) >= 2_000, "p50 covers the median");
        assert!(s.quantile_ns(1.0) >= 1_000_000);
        assert!(s.quantile_ns(0.99) <= 2 * 1_048_576, "≤2× true max");
        assert_eq!(s.mean_ns() as u64, (1_000 + 2_000 + 4_000 + 1_000_000) / 4);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        // 100 observations evenly spread over one bucket's span
        // (8192, 16384]: v_k = 8192 + k*81 (k = 1..=100 ⊂ that range).
        let h = Histogram::default();
        for k in 1..=100u64 {
            h.observe_ns(8_192 + k * 81);
        }
        let s = h.snapshot();
        for (q, true_v) in [(0.25, 8_192 + 25 * 81), (0.5, 8_192 + 50 * 81), (0.95, 8_192 + 95 * 81)] {
            let est = s.quantile_ns(q);
            let err = (est as f64 - true_v as f64).abs() / true_v as f64;
            // Interpolation tracks the uniform rank; the old
            // bucket-bound answer (16384) would be off by up to 63%.
            assert!(err < 0.15, "q={q}: est {est} vs true {true_v} (err {err:.3})");
        }
    }

    #[test]
    fn single_value_quantiles_are_exact() {
        // A p99 of N identical observations must be that value, not the
        // bucket bound (300_000 would previously report 524_288).
        let h = Histogram::default();
        for _ in 0..1_000 {
            h.observe_ns(300_000);
        }
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(s.quantile_ns(q), 300_000, "q={q}");
        }
    }

    #[test]
    fn extreme_quantiles_clamp_to_recorded_extremes() {
        let h = Histogram::default();
        for v in [1_000u64, 2_000, 4_000, 1_000_000] {
            h.observe_ns(v);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile_ns(1.0), 1_000_000, "p100 is the exact max");
        assert_eq!(s.quantile_ns(0.0), 1_000, "p0 is the exact min");
        // Without extremes (legacy wire snapshots), estimates still fall
        // inside the target bucket instead of clamping.
        let mut legacy = s.clone();
        legacy.min_ns = 0;
        legacy.max_ns = 0;
        let p100 = legacy.quantile_ns(1.0);
        assert!(p100 > 524_288 && p100 <= 1_048_576, "{p100}");
    }

    #[test]
    fn empty_snapshot_is_zero_not_nan() {
        let s = HistogramSnapshot::default();
        assert_eq!(s.quantile_ns(0.99), 0);
        assert_eq!(s.mean_ns(), 0.0);
        assert!(!s.mean_ns().is_nan());
        assert_eq!((s.min_ns, s.max_ns), (0, 0));
    }

    #[test]
    fn min_max_are_exact() {
        let h = Histogram::default();
        assert_eq!(h.snapshot().min_ns, 0, "empty min normalizes to 0");
        for v in [9_000u64, 3_000, 77_000] {
            h.observe_ns(v);
        }
        let s = h.snapshot();
        assert_eq!(s.min_ns, 3_000);
        assert_eq!(s.max_ns, 77_000);
        assert!(s.summary().contains("min=3.0µs"));
        assert!(s.summary().contains("max=77.0µs"));
    }

    #[test]
    fn merge_tracks_extremes_and_skips_empty_sides() {
        let a = Histogram::default();
        let b = Histogram::default();
        a.observe_ns(5_000);
        b.observe_ns(2_000);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!((s.min_ns, s.max_ns), (2_000, 5_000));

        // Merging an empty side must not drag min down to 0.
        s.merge(&HistogramSnapshot::default());
        assert_eq!(s.min_ns, 2_000);

        // And merging *into* an empty one adopts the other's extremes.
        let mut e = HistogramSnapshot::default();
        e.merge(&s);
        assert_eq!((e.min_ns, e.max_ns), (2_000, 5_000));
    }

    #[test]
    fn registry_hands_out_shared_instances() {
        counter("test.reg.counter").add(3);
        counter("test.reg.counter").add(4);
        assert_eq!(counter("test.reg.counter").get(), 7);
        histogram("test.reg.hist").observe_ns(5_000);
        assert_eq!(histogram("test.reg.hist").snapshot().count, 1);
        let snap = snapshot();
        assert!(snap.iter().any(|(n, _)| n == "test.reg.counter"));
    }

    #[test]
    fn gauges_move_both_ways_and_floor_at_zero() {
        let g = gauge("test.reg.gauge");
        g.set(5);
        g.add(2);
        g.sub(3);
        assert_eq!(g.get(), 4);
        g.sub(100);
        assert_eq!(g.get(), 0, "sub saturates instead of wrapping");
        g.set(9);
        assert!(snapshot()
            .iter()
            .any(|(n, v)| n == "test.reg.gauge" && *v == MetricValue::Gauge(9)));
    }

    #[test]
    fn prefix_filter_selects_counters_only() {
        counter("test.prefix.a").add(1);
        counter("test.prefix.b").add(2);
        counter("test.other").add(9);
        histogram("test.prefix.hist").observe_ns(1_000);
        let got = counters_with_prefix("test.prefix.");
        assert_eq!(
            got,
            vec![
                ("test.prefix.a".to_string(), 1),
                ("test.prefix.b".to_string(), 2),
            ]
        );
        assert!(counters_with_prefix("test.nope.").is_empty());
    }

    #[test]
    fn merge_adds_counts() {
        let a = Histogram::default();
        let b = Histogram::default();
        a.observe_ns(1_000);
        b.observe_ns(1_000_000);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count, 2);
        assert_eq!(s.sum_ns, 1_001_000);
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.5ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
