//! Span recording: thread-aware nested timing regions.
//!
//! The global sink starts as [`Sink::Null`]: every [`crate::span!`]
//! call-site checks one relaxed atomic and returns an inert guard, so
//! instrumentation left in hot paths (per-pass compile loops, engine
//! dispatch) costs nothing measurable and cannot change simulated
//! results. Installing [`Sink::Ring`] flips the same atomic; from then
//! on each thread lazily registers a fixed-capacity [`crate::ring::Ring`]
//! and records one *complete* event per span when its guard drops.
//! Recording completes (rather than begin/end pairs) means a full ring
//! can never produce an unbalanced trace — whole spans drop, counted.
//!
//! Timestamps come from one process-wide monotonic base, so spans from
//! different threads land on a single comparable timeline. Threads get
//! small stable ids in first-use order; a thread that exits moves its
//! buffered events to a retired list (freeing the ring) so short-lived
//! job threads do not pin ring memory until the next drain.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::ring::Ring;

/// A `perf stat`-shaped counter delta attached to a span: what the
/// architectural simulator retired between span entry and exit.
///
/// Lives here (not in `archsim`) because `obs` is the bottom of the
/// dependency stack: every crate can attach or read payloads without a
/// cycle. Field names follow `perf` vocabulary; producers map their own
/// counter types into this one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanCounters {
    /// Retired instructions (µops).
    pub instructions: u64,
    /// Modeled cycles.
    pub cycles: u64,
    /// Retired branches.
    pub branches: u64,
    /// Branch mispredictions.
    pub branch_misses: u64,
    /// Last-level cache references.
    pub cache_references: u64,
    /// Last-level cache misses.
    pub cache_misses: u64,
    /// L1-D accesses.
    pub l1d_accesses: u64,
    /// L1-D misses.
    pub l1d_misses: u64,
    /// L1-I accesses.
    pub l1i_accesses: u64,
    /// L1-I misses.
    pub l1i_misses: u64,
}

impl SpanCounters {
    /// Applies `f` pairwise over the ten counter fields.
    fn zip_with(self, other: SpanCounters, f: impl Fn(u64, u64) -> u64) -> SpanCounters {
        SpanCounters {
            instructions: f(self.instructions, other.instructions),
            cycles: f(self.cycles, other.cycles),
            branches: f(self.branches, other.branches),
            branch_misses: f(self.branch_misses, other.branch_misses),
            cache_references: f(self.cache_references, other.cache_references),
            cache_misses: f(self.cache_misses, other.cache_misses),
            l1d_accesses: f(self.l1d_accesses, other.l1d_accesses),
            l1d_misses: f(self.l1d_misses, other.l1d_misses),
            l1i_accesses: f(self.l1i_accesses, other.l1i_accesses),
            l1i_misses: f(self.l1i_misses, other.l1i_misses),
        }
    }

    /// Field-wise saturating difference (`self - earlier`); counters are
    /// monotone, so saturation only papers over caller mistakes.
    pub fn delta_since(self, earlier: SpanCounters) -> SpanCounters {
        self.zip_with(earlier, u64::saturating_sub)
    }

    /// Field-wise sum.
    pub fn saturating_add(self, other: SpanCounters) -> SpanCounters {
        self.zip_with(other, u64::saturating_add)
    }

    /// Whether every field is zero.
    pub fn is_zero(&self) -> bool {
        *self == SpanCounters::default()
    }

    /// Instructions per cycle (0 when no cycles).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Events per thousand instructions — the paper's MPKI metric
    /// (0 when no instructions retired; never NaN).
    pub fn per_kilo_instr(&self, events: u64) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            events as f64 * 1e3 / self.instructions as f64
        }
    }

    /// Branch MPKI.
    pub fn branch_mpki(&self) -> f64 {
        self.per_kilo_instr(self.branch_misses)
    }

    /// L1-D miss MPKI.
    pub fn l1d_mpki(&self) -> f64 {
        self.per_kilo_instr(self.l1d_misses)
    }

    /// L1-I miss MPKI.
    pub fn l1i_mpki(&self) -> f64 {
        self.per_kilo_instr(self.l1i_misses)
    }

    /// Last-level-cache miss MPKI.
    pub fn llc_mpki(&self) -> f64 {
        self.per_kilo_instr(self.cache_misses)
    }

    /// The counter selected by `name` (the spellings
    /// [`crate::folded::Weight`] accepts), if `name` is known.
    pub fn field(&self, name: &str) -> Option<u64> {
        Some(match name {
            "instructions" => self.instructions,
            "cycles" => self.cycles,
            "branches" => self.branches,
            "branch-misses" => self.branch_misses,
            "cache-references" => self.cache_references,
            "cache-misses" => self.cache_misses,
            "l1d-accesses" => self.l1d_accesses,
            "l1d-misses" => self.l1d_misses,
            "l1i-accesses" => self.l1i_accesses,
            "l1i-misses" => self.l1i_misses,
            _ => return None,
        })
    }
}

/// One recorded span: a named, optionally attributed interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Static span name (e.g. `"jit.pass"`).
    pub name: &'static str,
    /// Formatted `key=value` attributes, if any.
    pub attr: Option<Box<str>>,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth at entry (0 = top level on its thread).
    pub depth: u16,
    /// Architectural counter delta over the span, when the producer ran
    /// under a profiler and attached one (boxed: most spans carry none).
    pub counters: Option<Box<SpanCounters>>,
}

impl SpanEvent {
    /// End timestamp, nanoseconds since the trace epoch.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

/// All events one thread recorded.
#[derive(Debug, Clone, Default)]
pub struct ThreadTrace {
    /// Stable small id (first-use order), used as the trace `tid`.
    pub tid: u64,
    /// The thread's name at registration, or `thread-<tid>`.
    pub name: String,
    /// Events dropped on this thread because its ring filled.
    pub dropped: u64,
    /// Recorded spans, in completion (ring) order.
    pub events: Vec<SpanEvent>,
}

/// A drained trace: every thread's events.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Per-thread event streams, sorted by `tid`.
    pub threads: Vec<ThreadTrace>,
}

impl Trace {
    /// Total recorded spans across threads.
    pub fn span_count(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    /// Total dropped spans across threads.
    pub fn dropped(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped).sum()
    }
}

/// Where span events go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sink {
    /// Discard everything at the call site (the default). A disabled
    /// span costs one relaxed atomic load — no clock read, no
    /// allocation, no formatting.
    Null,
    /// Record into per-thread ring buffers for a later [`drain`].
    Ring,
}

static SINK: AtomicU8 = AtomicU8::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch (monotonic, shared by all
/// threads).
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Installs the global sink. Ring → Null leaves already-buffered events
/// drainable.
pub fn install(sink: Sink) {
    // Pin the epoch before the first span so timestamps are comparable
    // even across install/drain cycles.
    let _ = epoch();
    SINK.store(matches!(sink, Sink::Ring) as u8, Ordering::Release);
}

/// Whether spans are currently being recorded.
#[inline]
pub fn enabled() -> bool {
    SINK.load(Ordering::Relaxed) != 0
}

#[derive(Default)]
struct RegistryInner {
    live: Vec<(u64, String, Arc<Ring>)>,
    retired: Vec<ThreadTrace>,
}

fn registry() -> &'static Mutex<RegistryInner> {
    static REGISTRY: OnceLock<Mutex<RegistryInner>> = OnceLock::new();
    REGISTRY.get_or_init(Mutex::default)
}

struct Tls {
    tid: u64,
    ring: Arc<Ring>,
    depth: Cell<u16>,
}

impl Drop for Tls {
    fn drop(&mut self) {
        // Move this thread's buffered events to the retired list so the
        // ring's slot memory is freed with the thread, not at the next
        // drain. The registry lock serializes this with any concurrent
        // drain (drains are consumer-side, so SPSC still holds).
        let mut reg = registry().lock().expect("trace registry");
        let events = self.ring.drain();
        if let Some(i) = reg.live.iter().position(|(tid, _, _)| *tid == self.tid) {
            let (tid, name, ring) = reg.live.swap_remove(i);
            if !events.is_empty() || ring.dropped() > 0 {
                reg.retired.push(ThreadTrace {
                    tid,
                    name,
                    dropped: ring.dropped(),
                    events,
                });
            }
        }
    }
}

thread_local! {
    static TLS: RefCell<Option<Tls>> = const { RefCell::new(None) };
}

/// Runs `f` with this thread's trace state, registering it on first use.
/// Returns `None` during thread teardown (TLS already destroyed).
fn with_tls<R>(f: impl FnOnce(&Tls) -> R) -> Option<R> {
    TLS.try_with(|cell| {
        let mut slot = cell.borrow_mut();
        let tls = slot.get_or_insert_with(|| {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let name = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("thread-{tid}"));
            let ring = Arc::new(Ring::new());
            registry()
                .lock()
                .expect("trace registry")
                .live
                .push((tid, name, Arc::clone(&ring)));
            Tls {
                tid,
                ring,
                depth: Cell::new(0),
            }
        });
        f(tls)
    })
    .ok()
}

/// Removes and returns every buffered event from every thread (live
/// rings and retired threads), sorted by `tid`. Dropped-event counts are
/// cumulative per thread since recording began.
pub fn drain() -> Trace {
    let mut reg = registry().lock().expect("trace registry");
    let mut threads: Vec<ThreadTrace> = std::mem::take(&mut reg.retired);
    for (tid, name, ring) in &reg.live {
        let events = ring.drain();
        if events.is_empty() && ring.dropped() == 0 {
            continue;
        }
        threads.push(ThreadTrace {
            tid: *tid,
            name: name.clone(),
            dropped: ring.dropped(),
            events,
        });
    }
    drop(reg);
    // A thread can appear twice (retired entry + an earlier drain's
    // leftovers never do, but retired + live cannot share a tid); still,
    // keep the output deterministic.
    threads.sort_by_key(|t| t.tid);
    Trace { threads }
}

struct Active {
    name: &'static str,
    attr: Option<Box<str>>,
    start_ns: u64,
    depth: u16,
    counters: Option<Box<SpanCounters>>,
}

/// RAII span guard: records one [`SpanEvent`] when dropped (if tracing
/// was enabled when it was entered).
pub struct SpanGuard(Option<Active>);

impl SpanGuard {
    /// Enters a span. `attr` is only invoked when tracing is enabled.
    /// Prefer the [`crate::span!`] macro.
    #[inline]
    pub fn enter(name: &'static str, attr: impl FnOnce() -> Option<Box<str>>) -> SpanGuard {
        if !enabled() {
            return SpanGuard(None);
        }
        let depth = with_tls(|tls| {
            let d = tls.depth.get();
            tls.depth.set(d.saturating_add(1));
            d
        });
        let Some(depth) = depth else {
            return SpanGuard(None);
        };
        SpanGuard(Some(Active {
            name,
            attr: attr(),
            start_ns: now_ns(),
            depth,
            counters: None,
        }))
    }

    /// Whether this guard will record an event on drop (tracing was
    /// enabled at entry). Lets producers skip counter sampling entirely
    /// on the null-sink path.
    #[inline]
    pub fn active(&self) -> bool {
        self.0.is_some()
    }

    /// Attaches an architectural counter delta to the span. A no-op on
    /// an inert guard; the last call before drop wins.
    pub fn set_counters(&mut self, counters: SpanCounters) {
        if let Some(active) = self.0.as_mut() {
            active.counters = Some(Box::new(counters));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else { return };
        let dur_ns = now_ns().saturating_sub(active.start_ns);
        let _ = with_tls(|tls| {
            tls.depth.set(tls.depth.get().saturating_sub(1));
            tls.ring.push(SpanEvent {
                name: active.name,
                attr: active.attr,
                start_ns: active.start_ns,
                dur_ns,
                depth: active.depth,
                counters: active.counters,
            });
        });
    }
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("active", &self.0.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trace state is process-global; tests in this module serialize on
    // one lock so install/drain cycles do not interleave.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn null_sink_records_nothing() {
        let _g = lock();
        install(Sink::Null);
        {
            let _s = crate::span!("invisible", n = 42);
        }
        assert_eq!(drain().span_count(), 0);
    }

    #[test]
    fn spans_nest_and_carry_attrs() {
        let _g = lock();
        install(Sink::Ring);
        {
            let _outer = crate::span!("outer", engine = "Wasmtime", level = "-O2");
            let _inner = crate::span!("inner");
        }
        install(Sink::Null);
        let trace = drain();
        let mine: Vec<&SpanEvent> = trace.threads.iter().flat_map(|t| &t.events).collect();
        let outer = mine.iter().find(|e| e.name == "outer").expect("outer");
        let inner = mine.iter().find(|e| e.name == "inner").expect("inner");
        assert_eq!(outer.attr.as_deref(), Some("engine=Wasmtime level=-O2"));
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.end_ns() <= outer.end_ns());
    }

    #[test]
    fn exited_threads_retire_their_events() {
        let _g = lock();
        install(Sink::Ring);
        let handle = std::thread::Builder::new()
            .name("obs-test-worker".into())
            .spawn(|| {
                let _s = crate::span!("worker.span");
            })
            .unwrap();
        handle.join().unwrap();
        install(Sink::Null);
        let trace = drain();
        let worker = trace
            .threads
            .iter()
            .find(|t| t.name == "obs-test-worker")
            .expect("worker thread retired into the trace");
        assert_eq!(worker.events.len(), 1);
        assert_eq!(worker.events[0].name, "worker.span");
    }
}
