//! Live telemetry time series: a background sampler over the metrics
//! registry feeding a fixed-capacity delta ring.
//!
//! `Stats`/`StatsExt` answers are cumulative snapshots — a spike that
//! happened ten seconds ago is invisible once the averages re-converge.
//! A [`Sampler`] walks a fixed [`SeriesSpec`] of registry names every
//! interval and stores *deltas* (counter increments, per-interval
//! histogram quantiles) plus instantaneous gauge levels into a bounded
//! ring, so an operator tool can ask "what happened in the last minute"
//! without the server keeping unbounded history.
//!
//! Nothing samples unless a `Sampler` is explicitly started, so
//! workloads that never start one (the simulated figure paths) are
//! bit-identical with this module compiled in — the same contract as
//! [`crate::trace::Sink::Null`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::metrics::{self, Counter, Gauge, Histogram, HistogramSnapshot};
use crate::trace;

/// Which registry entries a sampler watches, by kind. The spec is fixed
/// at ring creation: every [`SeriesPoint`]'s vectors are parallel to
/// these name lists, which keeps points compact (no per-point names).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeriesSpec {
    /// Counter names; points carry the per-interval increment.
    pub counters: Vec<String>,
    /// Gauge names; points carry the instantaneous level at sample time.
    pub gauges: Vec<String>,
    /// Histogram names; points carry per-interval count/sum/p50/p99.
    pub histograms: Vec<String>,
}

/// Per-interval view of one histogram: the observations made since the
/// previous sample. Quantiles are bucket-interpolated (the interval
/// difference of two cumulative snapshots has no exact min/max).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistDelta {
    /// Observations during the interval.
    pub count: u64,
    /// Sum of those observations, nanoseconds.
    pub sum_ns: u64,
    /// Interval p50 estimate, nanoseconds (0 when `count == 0`).
    pub p50_ns: u64,
    /// Interval p99 estimate, nanoseconds (0 when `count == 0`).
    pub p99_ns: u64,
    /// Sparse nonzero bucket deltas `(bucket index, count)`, index
    /// order (see [`crate::metrics::bucket_bound_ns`]). Summing these
    /// across intervals reconstructs the window histogram, so a merged
    /// window quantile is exact where averaging interval quantiles is
    /// not.
    pub buckets: Vec<(u8, u64)>,
}

/// One sample: deltas and levels for every name in the ring's
/// [`SeriesSpec`], in spec order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeriesPoint {
    /// Monotone sample number since ring creation (detects ring wrap:
    /// a window whose first `seq` is not 0 has evicted older points).
    pub seq: u64,
    /// Sample time, nanoseconds since the process trace epoch
    /// ([`trace::now_ns`]).
    pub t_ns: u64,
    /// Nanoseconds covered by this sample (since the previous one, or
    /// since ring creation for the first).
    pub interval_ns: u64,
    /// Counter increments over the interval, parallel to
    /// `spec.counters`.
    pub counters: Vec<u64>,
    /// Gauge levels at sample time, parallel to `spec.gauges`.
    pub gauges: Vec<u64>,
    /// Histogram interval stats, parallel to `spec.histograms`.
    pub hists: Vec<HistDelta>,
}

/// A bounded ring of [`SeriesPoint`]s with the cumulative baselines
/// needed to turn registry snapshots into deltas.
#[derive(Debug)]
pub struct DeltaRing {
    spec: SeriesSpec,
    counters: Vec<Arc<Counter>>,
    gauges: Vec<Arc<Gauge>>,
    hists: Vec<Arc<Histogram>>,
    prev_counters: Vec<u64>,
    prev_hists: Vec<HistogramSnapshot>,
    last_t_ns: u64,
    seq: u64,
    cap: usize,
    points: VecDeque<SeriesPoint>,
}

impl DeltaRing {
    /// A ring watching `spec` with room for `cap` points (min 1).
    ///
    /// Baselines are taken at creation, so the first sample covers
    /// exactly the ring's lifetime — counts accumulated before the ring
    /// existed never appear as a spurious first-interval spike.
    pub fn new(spec: SeriesSpec, cap: usize) -> DeltaRing {
        let counters: Vec<_> = spec.counters.iter().map(|n| metrics::counter(n)).collect();
        let gauges: Vec<_> = spec.gauges.iter().map(|n| metrics::gauge(n)).collect();
        let hists: Vec<_> = spec.histograms.iter().map(|n| metrics::histogram(n)).collect();
        let prev_counters = counters.iter().map(|c| c.get()).collect();
        let prev_hists = hists.iter().map(|h| h.snapshot()).collect();
        DeltaRing {
            spec,
            counters,
            gauges,
            hists,
            prev_counters,
            prev_hists,
            last_t_ns: trace::now_ns(),
            seq: 0,
            cap: cap.max(1),
            points: VecDeque::new(),
        }
    }

    /// The spec this ring was created with.
    pub fn spec(&self) -> &SeriesSpec {
        &self.spec
    }

    /// Takes one sample now, pushing a point (evicting the oldest at
    /// capacity) and returning a copy of it.
    pub fn sample(&mut self) -> SeriesPoint {
        let t_ns = trace::now_ns();
        let interval_ns = t_ns.saturating_sub(self.last_t_ns);
        self.last_t_ns = t_ns;

        let mut counters = Vec::with_capacity(self.counters.len());
        for (c, prev) in self.counters.iter().zip(self.prev_counters.iter_mut()) {
            let cur = c.get();
            counters.push(cur.saturating_sub(*prev));
            *prev = cur;
        }
        let gauges = self.gauges.iter().map(|g| g.get()).collect();
        let mut hists = Vec::with_capacity(self.hists.len());
        for (h, prev) in self.hists.iter().zip(self.prev_hists.iter_mut()) {
            let cur = h.snapshot();
            hists.push(hist_delta(&cur, prev));
            *prev = cur;
        }

        let point = SeriesPoint {
            seq: self.seq,
            t_ns,
            interval_ns,
            counters,
            gauges,
            hists,
        };
        self.seq += 1;
        if self.points.len() == self.cap {
            self.points.pop_front();
        }
        self.points.push_back(point.clone());
        point
    }

    /// The buffered window, oldest first.
    pub fn window(&self) -> Vec<SeriesPoint> {
        self.points.iter().cloned().collect()
    }
}

/// The per-interval stats between two cumulative snapshots of the same
/// histogram. Quantiles come from the bucket difference; min/max cannot
/// be differenced, so the delta snapshot carries none and
/// [`HistogramSnapshot::quantile_ns`] falls back to pure interpolation.
fn hist_delta(cur: &HistogramSnapshot, prev: &HistogramSnapshot) -> HistDelta {
    let mut diff = HistogramSnapshot {
        count: cur.count.saturating_sub(prev.count),
        sum_ns: cur.sum_ns.saturating_sub(prev.sum_ns),
        ..HistogramSnapshot::default()
    };
    for (d, (c, p)) in diff
        .buckets
        .iter_mut()
        .zip(cur.buckets.iter().zip(prev.buckets.iter()))
    {
        *d = c.saturating_sub(*p);
    }
    HistDelta {
        count: diff.count,
        sum_ns: diff.sum_ns,
        p50_ns: diff.quantile_ns(0.50),
        p99_ns: diff.quantile_ns(0.99),
        buckets: diff
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (i as u8, *c))
            .collect(),
    }
}

struct Shared {
    ring: Mutex<DeltaRing>,
    stop: AtomicBool,
    // Signaled on stop so the sampling thread exits without waiting out
    // its full interval.
    wake: Condvar,
    gate: Mutex<()>,
}

/// A background thread sampling a [`DeltaRing`] every fixed interval.
///
/// Dropping (or [`Sampler::stop`]) joins the thread. The ring is only
/// ever touched under its mutex, so [`Sampler::window`] can run
/// concurrently with sampling.
pub struct Sampler {
    shared: Arc<Shared>,
    interval: Duration,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Sampler {
    /// Starts sampling `spec` every `interval` into a ring of `cap`
    /// points. Intervals shorter than 1ms are raised to 1ms.
    pub fn start(spec: SeriesSpec, interval: Duration, cap: usize) -> Sampler {
        let interval = interval.max(Duration::from_millis(1));
        let shared = Arc::new(Shared {
            ring: Mutex::new(DeltaRing::new(spec, cap)),
            stop: AtomicBool::new(false),
            wake: Condvar::new(),
            gate: Mutex::new(()),
        });
        let worker = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("obs-sampler".into())
            .spawn(move || loop {
                {
                    let gate = worker.gate.lock().expect("sampler gate");
                    let (_gate, _timeout) = worker
                        .wake
                        .wait_timeout(gate, interval)
                        .expect("sampler gate");
                }
                if worker.stop.load(Ordering::Acquire) {
                    return;
                }
                worker.ring.lock().expect("sampler ring").sample();
            })
            .expect("spawn obs-sampler");
        Sampler {
            shared,
            interval,
            handle: Some(handle),
        }
    }

    /// The configured sampling interval.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Takes an extra sample immediately (the background cadence is
    /// unaffected). Lets request handlers close the window right before
    /// answering so the freshest interval is never missing.
    pub fn sample_now(&self) -> SeriesPoint {
        self.shared.ring.lock().expect("sampler ring").sample()
    }

    /// The spec and buffered window, oldest point first.
    pub fn window(&self) -> (SeriesSpec, Vec<SeriesPoint>) {
        let ring = self.shared.ring.lock().expect("sampler ring");
        (ring.spec().clone(), ring.window())
    }

    /// Stops and joins the sampling thread (idempotent).
    pub fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        let _gate = self.shared.gate.lock().expect("sampler gate");
        self.shared.wake.notify_all();
        drop(_gate);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for Sampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sampler")
            .field("interval", &self.interval)
            .field("running", &self.handle.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(suffix: &str) -> SeriesSpec {
        SeriesSpec {
            counters: vec![format!("test.series.jobs.{suffix}")],
            gauges: vec![format!("test.series.depth.{suffix}")],
            histograms: vec![format!("test.series.lat.{suffix}")],
        }
    }

    #[test]
    fn deltas_measure_only_the_interval() {
        let s = spec("delta");
        metrics::counter(&s.counters[0]).add(1_000); // pre-ring history
        let mut ring = DeltaRing::new(s.clone(), 8);
        metrics::counter(&s.counters[0]).add(3);
        metrics::gauge(&s.gauges[0]).set(7);
        metrics::histogram(&s.histograms[0]).observe_ns(50_000);
        metrics::histogram(&s.histograms[0]).observe_ns(60_000);
        let p = ring.sample();
        assert_eq!(p.seq, 0);
        assert_eq!(p.counters, vec![3], "pre-ring counts excluded");
        assert_eq!(p.gauges, vec![7]);
        assert_eq!(p.hists[0].count, 2);
        assert_eq!(p.hists[0].sum_ns, 110_000);
        assert!(p.hists[0].p99_ns >= 32_768 && p.hists[0].p99_ns <= 131_072);
        // The sparse bucket deltas carry exactly the interval's
        // observations (both land in the 32k..64k bucket).
        let bucket_total: u64 = p.hists[0].buckets.iter().map(|(_, c)| c).sum();
        assert_eq!(bucket_total, 2);
        assert!(p.hists[0]
            .buckets
            .iter()
            .all(|(i, c)| usize::from(*i) < metrics::BUCKETS && *c > 0));

        // A quiet interval reads all-zero deltas, not repeats.
        let q = ring.sample();
        assert_eq!(q.counters, vec![0]);
        assert_eq!(q.hists[0].count, 0);
        assert_eq!(q.hists[0].p99_ns, 0);
        assert!(q.hists[0].buckets.is_empty());
    }

    #[test]
    fn ring_wraps_at_capacity() {
        let s = spec("wrap");
        let mut ring = DeltaRing::new(s.clone(), 4);
        for i in 0..10 {
            metrics::counter(&s.counters[0]).add(i + 1);
            ring.sample();
        }
        let window = ring.window();
        assert_eq!(window.len(), 4, "capacity bounds the window");
        let seqs: Vec<u64> = window.iter().map(|p| p.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest evicted, order kept");
        // The deltas of the surviving points are the increments made
        // right before each sample (i+1 for sample i).
        let deltas: Vec<u64> = window.iter().map(|p| p.counters[0]).collect();
        assert_eq!(deltas, vec![7, 8, 9, 10]);
        assert!(window.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
    }

    #[test]
    fn sampler_thread_fills_the_ring_and_stops() {
        let s = spec("thread");
        let mut sampler = Sampler::start(s.clone(), Duration::from_millis(5), 64);
        metrics::counter(&s.counters[0]).add(42);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let (_, window) = sampler.window();
            if window.iter().map(|p| p.counters[0]).sum::<u64>() >= 42 && window.len() >= 2 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "sampler never observed the increment"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        sampler.stop();
        let (_, after) = sampler.window();
        std::thread::sleep(Duration::from_millis(20));
        let (_, later) = sampler.window();
        assert_eq!(
            after.last().map(|p| p.seq),
            later.last().map(|p| p.seq),
            "no samples after stop"
        );
    }

    #[test]
    fn sample_now_closes_the_window() {
        let s = spec("now");
        let sampler = Sampler::start(s.clone(), Duration::from_secs(3600), 8);
        metrics::counter(&s.counters[0]).add(5);
        let p = sampler.sample_now();
        assert_eq!(p.counters, vec![5]);
        let (got_spec, window) = sampler.window();
        assert_eq!(got_spec, s);
        assert_eq!(window.len(), 1);
    }
}
