//! Stitching client- and server-side spans into one Chrome trace.
//!
//! The load generator observes `submit → response` per request; the
//! scheduler observes `enqueue → start → done` plus compile/execute
//! phase durations. Both stamp the same client-originated trace id, but
//! their clocks are different process-local epochs ([`crate::trace::now_ns`]
//! starts at 0 per process). [`clock_offset_ns`] estimates the skew from
//! one round-trip (the classic NTP-style midpoint: the server's "now",
//! answered mid-flight, corresponds to the midpoint of the client's
//! send/receive window), and [`stitch`] maps every server span onto the
//! client timeline with it.
//!
//! Each request becomes a *pair of lanes* (client tid / server tid) in
//! the output trace: open-loop requests overlap freely in time, so
//! folding them onto one lane would force fake nesting. Within a lane,
//! spans nest properly — the whole document passes
//! [`crate::chrome::validate`] and therefore `wabench-trace-check`.

use std::collections::HashMap;

use crate::trace::{SpanEvent, ThreadTrace, Trace};

/// The client-side view of one request (client trace clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientSpan {
    /// Client-originated trace id (the join key).
    pub trace_id: u64,
    /// When the request was submitted, client clock ns.
    pub begin_ns: u64,
    /// When the response arrived, client clock ns.
    pub end_ns: u64,
}

/// The server-side phase digest of one request (server trace clock).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerPhases {
    /// Trace id echoed from the submit frame.
    pub trace_id: u64,
    /// Server clock ns when the job entered the queue.
    pub enqueue_ns: u64,
    /// Server clock ns when a worker picked the job up.
    pub start_ns: u64,
    /// Server clock ns when the job finished.
    pub done_ns: u64,
    /// Time spent compiling (within start..done), ns.
    pub compile_ns: u64,
    /// Time spent executing (within start..done), ns.
    pub exec_ns: u64,
    /// Execution attempts (1 = clean first try).
    pub attempts: u32,
    /// Whether the JIT→interpreter fallback engaged.
    pub compile_fallback: bool,
    /// Artifact-store entries repaired while running this job.
    pub store_repairs: u32,
}

/// Estimates `server_clock - client_clock` in nanoseconds from one
/// round-trip: the client reads its clock before (`client_before_ns`)
/// and after (`client_after_ns`) a request whose reply carries the
/// server's clock (`server_now_ns`). The server's read is assumed to
/// fall at the midpoint of the client window, so the estimate's error is
/// bounded by half the round-trip time.
pub fn clock_offset_ns(client_before_ns: u64, client_after_ns: u64, server_now_ns: u64) -> i64 {
    let mid = client_before_ns + client_after_ns.saturating_sub(client_before_ns) / 2;
    let diff = server_now_ns as i128 - mid as i128;
    diff.clamp(i64::MIN as i128, i64::MAX as i128) as i64
}

/// Maps a server-clock timestamp onto the client clock using an
/// `offset = server - client` estimate, saturating at the epoch.
pub fn to_client_ns(server_ns: u64, offset_ns: i64) -> u64 {
    if offset_ns >= 0 {
        server_ns.saturating_sub(offset_ns as u64)
    } else {
        server_ns.saturating_add(offset_ns.unsigned_abs())
    }
}

/// Builds one Chrome-exportable [`Trace`] from matched client and server
/// spans. `offset_ns` is the [`clock_offset_ns`] estimate; server spans
/// are shifted onto the client timeline with it.
///
/// Requests present on only one side are dropped (the server ring may
/// have evicted an old record; the client may have timed out). Each
/// stitched request gets two lanes named after its trace id; lanes are
/// ordered by client submit time, so the output is deterministic for a
/// fixed input.
pub fn stitch(clients: &[ClientSpan], servers: &[ServerPhases], offset_ns: i64) -> Trace {
    let by_id: HashMap<u64, &ServerPhases> =
        servers.iter().map(|s| (s.trace_id, s)).collect();
    let mut matched: Vec<(&ClientSpan, &ServerPhases)> = clients
        .iter()
        .filter_map(|c| by_id.get(&c.trace_id).map(|s| (c, *s)))
        .collect();
    matched.sort_by_key(|(c, _)| (c.begin_ns, c.trace_id));

    let mut threads = Vec::with_capacity(matched.len() * 2);
    for (i, (client, server)) in matched.iter().enumerate() {
        let tid_base = (i as u64) * 2 + 1;
        threads.push(ThreadTrace {
            tid: tid_base,
            name: format!("req {:016x} client", client.trace_id),
            dropped: 0,
            events: vec![SpanEvent {
                name: "client.request",
                attr: Some(format!("trace_id={:016x}", client.trace_id).into_boxed_str()),
                start_ns: client.begin_ns,
                dur_ns: client.end_ns.saturating_sub(client.begin_ns),
                depth: 0,
                counters: None,
            }],
        });
        threads.push(ThreadTrace {
            tid: tid_base + 1,
            name: format!("req {:016x} server", client.trace_id),
            dropped: 0,
            events: server_lane(server, offset_ns),
        });
    }
    Trace { threads }
}

/// Builds a server-only [`Trace`] (no client lanes, no clock shift) —
/// one lane per record, ordered by enqueue time. This is how slow-request
/// exemplars fetched via `TraceDump` feed the chrome/folded exporters
/// when no client-side spans exist to stitch against.
pub fn server_only(servers: &[ServerPhases]) -> Trace {
    let mut ordered: Vec<&ServerPhases> = servers.iter().collect();
    ordered.sort_by_key(|s| (s.enqueue_ns, s.trace_id));
    Trace {
        threads: ordered
            .iter()
            .enumerate()
            .map(|(i, s)| ThreadTrace {
                tid: i as u64 + 1,
                name: format!("req {:016x} server", s.trace_id),
                dropped: 0,
                events: server_lane(s, 0),
            })
            .collect(),
    }
}

/// The server-side span tree of one request, shifted onto the client
/// clock: a `server.job` root containing `queue.wait`, `compile`, and
/// `execute` children, plus a zero-width `recovery` marker when retries
/// or degradation engaged. Children are clamped into the root so the
/// reconstruction stays properly nested no matter how the phase
/// durations round.
fn server_lane(s: &ServerPhases, offset_ns: i64) -> Vec<SpanEvent> {
    let enqueue = to_client_ns(s.enqueue_ns, offset_ns);
    let start = to_client_ns(s.start_ns, offset_ns).max(enqueue);
    let done = to_client_ns(s.done_ns, offset_ns).max(start);
    let child = |name: &'static str, attr: Option<Box<str>>, at: u64, dur: u64| {
        let at = at.clamp(enqueue, done);
        SpanEvent {
            name,
            attr,
            start_ns: at,
            dur_ns: dur.min(done - at),
            depth: 1,
            counters: None,
        }
    };

    let mut events = vec![SpanEvent {
        name: "server.job",
        attr: Some(format!("trace_id={:016x}", s.trace_id).into_boxed_str()),
        start_ns: enqueue,
        dur_ns: done - enqueue,
        depth: 0,
        counters: None,
    }];
    events.push(child("queue.wait", None, enqueue, start - enqueue));
    if s.compile_ns > 0 {
        events.push(child("compile", None, start, s.compile_ns));
    }
    if s.exec_ns > 0 {
        let exec_at = start.saturating_add(s.compile_ns);
        events.push(child("execute", None, exec_at, s.exec_ns));
    }
    if s.attempts > 1 || s.compile_fallback || s.store_repairs > 0 {
        let attr = format!(
            "attempts={} compile_fallback={} store_repairs={}",
            s.attempts, s.compile_fallback, s.store_repairs
        );
        events.push(child("recovery", Some(attr.into_boxed_str()), done, 0));
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome;

    fn sample_pair(offset: i64) -> (Vec<ClientSpan>, Vec<ServerPhases>) {
        // Server clock = client clock + offset; requests overlap in time
        // as an open-loop generator produces them.
        let mk_server = |trace_id, enq: u64, start: u64, done: u64| ServerPhases {
            trace_id,
            enqueue_ns: (enq as i64 + offset) as u64,
            start_ns: (start as i64 + offset) as u64,
            done_ns: (done as i64 + offset) as u64,
            compile_ns: (done - start) / 2,
            exec_ns: (done - start) / 4,
            attempts: 1,
            ..ServerPhases::default()
        };
        let clients = vec![
            ClientSpan { trace_id: 0xa1, begin_ns: 1_000_000, end_ns: 9_000_000 },
            ClientSpan { trace_id: 0xb2, begin_ns: 2_000_000, end_ns: 11_000_000 },
            ClientSpan { trace_id: 0xdead, begin_ns: 3_000_000, end_ns: 4_000_000 },
        ];
        let servers = vec![
            mk_server(0xa1, 1_100_000, 1_500_000, 8_800_000),
            mk_server(0xb2, 2_100_000, 8_900_000, 10_800_000),
            ServerPhases { trace_id: 0xfeed, ..ServerPhases::default() },
        ];
        (clients, servers)
    }

    #[test]
    fn offset_recovers_clock_skew() {
        // Server clock runs 1234ns ahead; its "now" answered at the
        // client-window midpoint (200) reads 200 + 1234.
        assert_eq!(clock_offset_ns(100, 300, 1434), 1234);
        // Server behind the client → negative offset.
        assert_eq!(clock_offset_ns(1_000, 3_000, 500), -1500);
        assert_eq!(to_client_ns(1434, 1234), 200);
        assert_eq!(to_client_ns(500, -1500), 2000);
    }

    #[test]
    fn stitch_pairs_lanes_by_trace_id() {
        let (clients, servers) = sample_pair(0);
        let trace = stitch(&clients, &servers, 0);
        // 0xdead has no server record and 0xfeed no client span: only
        // the two matched requests survive, two lanes each.
        assert_eq!(trace.threads.len(), 4);
        assert!(trace.threads[0].name.contains("00000000000000a1 client"));
        assert!(trace.threads[1].name.contains("00000000000000a1 server"));
        let doc = chrome::export_string(&trace);
        let summary = chrome::validate(&doc).expect("stitched trace validates");
        assert!(summary.names.iter().any(|n| n == "client.request"));
        assert!(summary.names.iter().any(|n| n == "queue.wait"));
        assert!(summary.names.iter().any(|n| n == "execute"));
        assert_eq!(summary.max_depth, 2);
    }

    #[test]
    fn nesting_survives_clock_offset_correction() {
        for offset in [-5_000_000i64, -1, 0, 1, 7_777_777] {
            let (clients, servers) = sample_pair(offset);
            let trace = stitch(&clients, &servers, offset);
            let doc = chrome::export_string(&trace);
            chrome::validate(&doc)
                .unwrap_or_else(|e| panic!("offset {offset}: {e}"));
            for lane in trace.threads.iter().filter(|t| t.name.ends_with("server")) {
                let root = &lane.events[0];
                assert_eq!(root.name, "server.job");
                for ev in &lane.events[1..] {
                    assert!(ev.start_ns >= root.start_ns, "offset {offset}");
                    assert!(ev.end_ns() <= root.end_ns(), "offset {offset}");
                    assert_eq!(ev.depth, 1);
                }
            }
        }
    }

    #[test]
    fn recovery_marker_appears_only_when_something_recovered() {
        let clean = ServerPhases {
            trace_id: 1,
            enqueue_ns: 0,
            start_ns: 10,
            done_ns: 100,
            attempts: 1,
            ..ServerPhases::default()
        };
        let degraded = ServerPhases {
            attempts: 3,
            compile_fallback: true,
            ..clean
        };
        let clients = [ClientSpan { trace_id: 1, begin_ns: 0, end_ns: 200 }];
        let no_marker = stitch(&clients, &[clean], 0);
        assert!(!no_marker.threads[1].events.iter().any(|e| e.name == "recovery"));
        let marker = stitch(&clients, &[degraded], 0);
        let rec = marker.threads[1]
            .events
            .iter()
            .find(|e| e.name == "recovery")
            .expect("recovery marker");
        assert_eq!(
            rec.attr.as_deref(),
            Some("attempts=3 compile_fallback=true store_repairs=0")
        );
    }

    #[test]
    fn pathological_offsets_saturate_instead_of_wrapping() {
        let clients = [ClientSpan { trace_id: 9, begin_ns: 100, end_ns: 200 }];
        let servers = [ServerPhases {
            trace_id: 9,
            enqueue_ns: 50,
            start_ns: 60,
            done_ns: 70,
            ..ServerPhases::default()
        }];
        // Offset larger than every server timestamp: everything clamps
        // to 0 and the document still validates.
        let trace = stitch(&clients, &servers, 1_000_000);
        chrome::validate(&chrome::export_string(&trace)).expect("saturated trace validates");
    }
}
