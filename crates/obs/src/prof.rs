//! Attributed counter profile: a `perf report`-style table over spans.
//!
//! The self-time report ([`crate::report`]) answers "where did the wall
//! time go"; this one answers "where did the *machine* go" — retired
//! instructions, IPC, and the paper's MPKI metrics (Figures 10–14)
//! attributed to span paths. Producers attach a [`SpanCounters`] delta
//! to the spans they sample (engine compile/execute); aggregation here
//! distributes those deltas hierarchically:
//!
//! * a span's **total** counters are its own payload;
//! * its **self** counters are its payload minus whatever its descendant
//!   spans already account for, so nothing is counted twice even when a
//!   payload-free span sits between two attributed ones.
//!
//! Spans without a payload get zero counters (shown as `-`), not a share
//! of their parent's — attribution stays honest about what was sampled.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::fmt_ns;
use crate::trace::{SpanCounters, SpanEvent, Trace};

/// Aggregated figures for one span path.
#[derive(Debug, Default, Clone)]
pub struct ProfNode {
    /// Number of spans that landed on this path.
    pub count: u64,
    /// Summed wall time.
    pub total_ns: u64,
    /// Summed wall time minus children's.
    pub self_ns: u64,
    /// Summed counter payloads (zero if no span on this path carried
    /// one).
    pub total: SpanCounters,
    /// Payloads minus descendants' accounted counters.
    pub self_counters: SpanCounters,
    /// Whether any span on this path carried a payload — distinguishes
    /// "measured zero" from "never measured".
    pub has_counters: bool,
}

/// Aggregates one thread's spans by call path, attributing counter
/// deltas hierarchically. Uses the same interval reconstruction as the
/// self-time report, so recursion and zero-duration spans are safe.
pub fn aggregate(events: &[SpanEvent]) -> BTreeMap<Vec<&'static str>, ProfNode> {
    let mut spans: Vec<&SpanEvent> = events.iter().collect();
    spans.sort_by(|a, b| {
        a.start_ns
            .cmp(&b.start_ns)
            .then(a.depth.cmp(&b.depth))
            .then(b.dur_ns.cmp(&a.dur_ns))
    });

    struct Open {
        end_ns: u64,
        dur_ns: u64,
        child_ns: u64,
        path: Vec<&'static str>,
        own: Option<SpanCounters>,
        // Sum over direct children of the counters they account for
        // (their payload, or — payload-free — their own children's).
        covered_by_children: SpanCounters,
    }

    let mut agg: BTreeMap<Vec<&'static str>, ProfNode> = BTreeMap::new();
    let mut open: Vec<Open> = Vec::new();
    let pop = |open: &mut Vec<Open>, agg: &mut BTreeMap<Vec<&'static str>, ProfNode>| {
        let o = open.pop().expect("pop with open span");
        let node = agg.entry(o.path).or_default();
        node.count += 1;
        node.total_ns += o.dur_ns;
        node.self_ns += o.dur_ns.saturating_sub(o.child_ns);
        let covered = match o.own {
            Some(c) => {
                node.total = node.total.saturating_add(c);
                node.self_counters = node
                    .self_counters
                    .saturating_add(c.delta_since(o.covered_by_children));
                node.has_counters = true;
                c
            }
            None => o.covered_by_children,
        };
        if let Some(parent) = open.last_mut() {
            parent.child_ns += o.dur_ns;
            parent.covered_by_children = parent.covered_by_children.saturating_add(covered);
        }
    };

    for span in spans {
        while let Some(top) = open.last() {
            if top.end_ns > span.start_ns {
                break;
            }
            pop(&mut open, &mut agg);
        }
        let end_ns = match open.last() {
            Some(top) => span.end_ns().min(top.end_ns),
            None => span.end_ns(),
        };
        let mut path: Vec<&'static str> = open.last().map(|o| o.path.clone()).unwrap_or_default();
        path.push(span.name);
        open.push(Open {
            end_ns,
            dur_ns: span.dur_ns,
            child_ns: 0,
            path,
            own: span.counters.as_deref().copied(),
            covered_by_children: SpanCounters::default(),
        });
    }
    while !open.is_empty() {
        pop(&mut open, &mut agg);
    }
    agg
}

/// Renders `trace` as a per-thread `perf report`-style table: wall self
/// time next to self instructions, the thread-relative instruction
/// share, and the derived IPC / MPKI columns the paper's Figures 10–14
/// plot. Threads with no attributed spans are skipped.
pub fn render(trace: &Trace) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "counter profile ({} spans, {} threads)",
        trace.span_count(),
        trace.threads.len()
    );

    let mut any = false;
    for thread in &trace.threads {
        let agg = aggregate(&thread.events);
        if !agg.values().any(|n| n.has_counters) {
            continue;
        }
        any = true;
        // Thread-relative instruction base: top-level totals only, so
        // shares sum to ≤100% without double counting nesting.
        let thread_instrs: u64 = agg
            .iter()
            .filter(|(path, _)| path.len() == 1)
            .map(|(_, n)| n.total.instructions)
            .sum();
        let _ = writeln!(out, "\n[{} tid={}]", thread.name, thread.tid);
        let name_width = agg
            .keys()
            .map(|path| 2 * (path.len() - 1) + path.last().map_or(0, |n| n.len()))
            .max()
            .unwrap_or(0)
            .max("span".len());
        let _ = writeln!(
            out,
            "  {:name_width$}  {:>7}  {:>9}  {:>12}  {:>6}  {:>5}  {:>8}  {:>8}  {:>8}  {:>8}",
            "span",
            "count",
            "self",
            "instrs",
            "inst%",
            "ipc",
            "br-mpki",
            "l1d-mpki",
            "l1i-mpki",
            "llc-mpki"
        );
        for (path, node) in &agg {
            let indent = 2 * (path.len() - 1);
            let label = format!("{:indent$}{}", "", path.last().expect("non-empty path"));
            if node.has_counters {
                let c = &node.self_counters;
                let pct = if thread_instrs == 0 {
                    0.0
                } else {
                    100.0 * c.instructions as f64 / thread_instrs as f64
                };
                let _ = writeln!(
                    out,
                    "  {label:name_width$}  {:>7}  {:>9}  {:>12}  {pct:>5.1}%  {:>5.2}  {:>8.2}  {:>8.2}  {:>8.2}  {:>8.2}",
                    node.count,
                    fmt_ns(node.self_ns),
                    c.instructions,
                    c.ipc(),
                    c.branch_mpki(),
                    c.l1d_mpki(),
                    c.l1i_mpki(),
                    c.llc_mpki(),
                );
            } else {
                let _ = writeln!(
                    out,
                    "  {label:name_width$}  {:>7}  {:>9}  {:>12}  {:>6}  {:>5}  {:>8}  {:>8}  {:>8}  {:>8}",
                    node.count,
                    fmt_ns(node.self_ns),
                    "-",
                    "-",
                    "-",
                    "-",
                    "-",
                    "-",
                    "-"
                );
            }
        }
    }
    if !any {
        out.push_str("(no attributed spans — run under a profiled mode)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ThreadTrace;

    fn counters(instructions: u64, cycles: u64) -> SpanCounters {
        SpanCounters {
            instructions,
            cycles,
            ..Default::default()
        }
    }

    fn span(
        name: &'static str,
        start_ns: u64,
        dur_ns: u64,
        depth: u16,
        c: Option<SpanCounters>,
    ) -> SpanEvent {
        SpanEvent {
            name,
            attr: None,
            start_ns,
            dur_ns,
            depth,
            counters: c.map(Box::new),
        }
    }

    #[test]
    fn self_counters_subtract_attributed_children() {
        let agg = aggregate(&[
            span("child", 100, 400, 1, Some(counters(300, 150))),
            span("parent", 0, 1_000, 0, Some(counters(1_000, 500))),
        ]);
        let parent = &agg[&vec!["parent"]];
        assert_eq!(parent.total.instructions, 1_000);
        assert_eq!(parent.self_counters.instructions, 700);
        assert_eq!(parent.self_counters.cycles, 350);
        let child = &agg[&vec!["parent", "child"]];
        assert_eq!(child.self_counters.instructions, 300);
    }

    #[test]
    fn payload_free_middle_span_forwards_coverage() {
        // parent(payload) → glue(no payload) → leaf(payload): the leaf's
        // counters must still come out of the parent's self share.
        let agg = aggregate(&[
            span("leaf", 200, 100, 2, Some(counters(400, 200))),
            span("glue", 100, 300, 1, None),
            span("parent", 0, 1_000, 0, Some(counters(1_000, 600))),
        ]);
        assert_eq!(agg[&vec!["parent"]].self_counters.instructions, 600);
        let glue = &agg[&vec!["parent", "glue"]];
        assert!(!glue.has_counters);
        assert!(glue.self_counters.is_zero());
        assert_eq!(
            agg[&vec!["parent", "glue", "leaf"]].self_counters.instructions,
            400
        );
    }

    #[test]
    fn attribution_conserves_instructions() {
        let events = [
            span("a", 100, 200, 1, Some(counters(250, 100))),
            span("b", 400, 300, 1, Some(counters(500, 250))),
            span("root", 0, 1_000, 0, Some(counters(1_000, 500))),
        ];
        let agg = aggregate(&events);
        let self_sum: u64 = agg.values().map(|n| n.self_counters.instructions).sum();
        assert_eq!(self_sum, 1_000, "self shares must partition the root total");
    }

    #[test]
    fn render_handles_empty_and_unattributed_traces() {
        let empty = render(&Trace::default());
        assert!(empty.contains("no attributed spans"));
        let trace = Trace {
            threads: vec![ThreadTrace {
                tid: 1,
                name: "main".into(),
                dropped: 0,
                events: vec![span("plain", 0, 100, 0, None)],
            }],
        };
        assert!(render(&trace).contains("no attributed spans"));
    }

    #[test]
    fn render_shows_derived_columns_without_nan() {
        // Zero-instruction payloads exercise every division guard.
        let trace = Trace {
            threads: vec![ThreadTrace {
                tid: 1,
                name: "main".into(),
                dropped: 0,
                events: vec![
                    span("empty", 0, 0, 0, Some(counters(0, 0))),
                    span("work", 10, 500, 0, Some(counters(2_000, 1_000))),
                ],
            }],
        };
        let text = render(&trace);
        assert!(!text.contains("NaN"), "NaN leaked:\n{text}");
        assert!(text.contains("work"));
        assert!(text.contains("2.00"), "ipc column missing:\n{text}");
    }
}
