//! Slow-request exemplars: a bounded buffer of the span trees behind
//! tail latency.
//!
//! Aggregates tell you the p99 moved; an exemplar tells you *which*
//! request moved it and where its time went. Producers offer every
//! completed request's [`ServerPhases`] digest; the buffer keeps only
//! those whose end-to-end latency meets the threshold, and at capacity
//! retains the slowest of them (ties broken toward recency), so a
//! long-running server cannot grow without limit and a flood of
//! borderline-slow requests cannot wash out the true outliers.
//! Consumers fetch the buffer (the `TraceDump` protocol request) and
//! export it through the chrome/folded exporters via
//! [`crate::stitch::server_only`].

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::stitch::ServerPhases;

/// One retained slow request: its phase digest plus a human label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exemplar {
    /// What ran, e.g. `"crc32 on Wasm3 at -O1"`.
    pub label: String,
    /// The request's full server-side span tree digest.
    pub phases: ServerPhases,
}

impl Exemplar {
    /// End-to-end server latency (enqueue → done), ns.
    pub fn total_ns(&self) -> u64 {
        self.phases.done_ns.saturating_sub(self.phases.enqueue_ns)
    }
}

/// A bounded, threshold-gated exemplar buffer (thread-safe).
#[derive(Debug)]
pub struct ExemplarBuffer {
    threshold_ns: u64,
    cap: usize,
    kept: Mutex<VecDeque<Exemplar>>,
}

impl ExemplarBuffer {
    /// A buffer keeping at most `cap` (min 1) exemplars at or above
    /// `threshold_ns` end-to-end latency.
    pub fn new(threshold_ns: u64, cap: usize) -> ExemplarBuffer {
        ExemplarBuffer {
            threshold_ns,
            cap: cap.max(1),
            kept: Mutex::new(VecDeque::new()),
        }
    }

    /// The retention threshold, ns.
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns
    }

    /// Offers a completed request; returns whether it was retained.
    ///
    /// At capacity the buffer keeps the *slowest* requests seen —
    /// severity beats recency, because "what were the worst requests"
    /// is the question exemplars exist to answer and a burst of merely
    /// slow-ish traffic must not wash out the genuine outliers. Ties
    /// break toward recency: an offer matching the current minimum
    /// replaces the oldest such exemplar, so of equally-slow requests
    /// the most recent survive. Insertion order is preserved for the
    /// survivors.
    pub fn offer(&self, exemplar: Exemplar) -> bool {
        if exemplar.total_ns() < self.threshold_ns {
            return false;
        }
        let mut kept = self.kept.lock().expect("exemplar buffer");
        if kept.len() == self.cap {
            let (min_idx, min_ns) = kept
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.total_ns())
                .map(|(i, e)| (i, e.total_ns()))
                .expect("cap >= 1");
            if exemplar.total_ns() < min_ns {
                return false;
            }
            kept.remove(min_idx);
        }
        kept.push_back(exemplar);
        true
    }

    /// Every retained exemplar, oldest first.
    pub fn window(&self) -> Vec<Exemplar> {
        self.kept.lock().expect("exemplar buffer").iter().cloned().collect()
    }

    /// Retained count.
    pub fn len(&self) -> usize {
        self.kept.lock().expect("exemplar buffer").len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{chrome, stitch};

    fn slow(trace_id: u64, total_ns: u64) -> Exemplar {
        Exemplar {
            label: format!("job-{trace_id}"),
            phases: ServerPhases {
                trace_id,
                enqueue_ns: 1_000,
                start_ns: 2_000,
                done_ns: 1_000 + total_ns,
                exec_ns: total_ns / 2,
                attempts: 1,
                ..ServerPhases::default()
            },
        }
    }

    #[test]
    fn threshold_gates_and_capacity_bounds() {
        let buf = ExemplarBuffer::new(1_000_000, 3);
        assert!(!buf.offer(slow(1, 999_999)), "below threshold rejected");
        for id in 2..=6 {
            assert!(buf.offer(slow(id, 1_000_000 + id)));
        }
        let kept = buf.window();
        assert_eq!(kept.len(), 3, "capacity bounds the buffer");
        let ids: Vec<u64> = kept.iter().map(|e| e.phases.trace_id).collect();
        assert_eq!(ids, vec![4, 5, 6], "monotone offers keep the slowest = newest");
    }

    #[test]
    fn overflow_retains_the_slowest_not_the_newest() {
        let buf = ExemplarBuffer::new(1_000_000, 3);
        // Fill with three genuinely slow requests...
        for (id, ns) in [(1, 9_000_000), (2, 5_000_000), (3, 7_000_000)] {
            assert!(buf.offer(slow(id, ns)));
        }
        // ...then a borderline one: it beats nothing retained, so the
        // buffer must reject it rather than evict a worse request.
        assert!(!buf.offer(slow(4, 1_500_000)), "faster than every survivor");
        let ids: Vec<u64> = buf.window().iter().map(|e| e.phases.trace_id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        // A slower one evicts the current fastest (id 2), and the
        // survivors keep insertion order.
        assert!(buf.offer(slow(5, 6_000_000)));
        let ids: Vec<u64> = buf.window().iter().map(|e| e.phases.trace_id).collect();
        assert_eq!(ids, vec![1, 3, 5], "fastest retained request evicted");
    }

    #[test]
    fn ties_break_toward_recency() {
        let buf = ExemplarBuffer::new(1_000_000, 2);
        assert!(buf.offer(slow(1, 2_000_000)));
        assert!(buf.offer(slow(2, 2_000_000)));
        // Equal to the minimum: the *oldest* of the tied minimums goes,
        // so equally-slow traffic rolls forward in time.
        assert!(buf.offer(slow(3, 2_000_000)));
        let ids: Vec<u64> = buf.window().iter().map(|e| e.phases.trace_id).collect();
        assert_eq!(ids, vec![2, 3], "tie evicts the older exemplar");
    }

    #[test]
    fn capacity_boundary_of_one_tracks_the_maximum() {
        let buf = ExemplarBuffer::new(0, 1);
        assert!(buf.offer(slow(1, 5_000)));
        assert!(!buf.offer(slow(2, 4_999)), "strictly faster rejected");
        assert!(buf.offer(slow(3, 5_000)), "tie replaces at cap 1");
        assert!(buf.offer(slow(4, 9_000)));
        let kept = buf.window();
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].phases.trace_id, 4);
        assert_eq!(kept[0].total_ns(), 9_000);
    }

    #[test]
    fn exemplars_export_through_the_chrome_exporter() {
        let buf = ExemplarBuffer::new(0, 8);
        buf.offer(slow(0xaa, 5_000_000));
        buf.offer(slow(0xbb, 7_000_000));
        let phases: Vec<ServerPhases> = buf.window().iter().map(|e| e.phases).collect();
        let trace = stitch::server_only(&phases);
        assert_eq!(trace.threads.len(), 2);
        let summary = chrome::validate(&chrome::export_string(&trace))
            .expect("exemplar trace validates");
        assert!(summary.names.iter().any(|n| n == "server.job"));
        assert!(summary.names.iter().any(|n| n == "queue.wait"));
    }
}
