//! Folded-stack (flamegraph) export from drained traces.
//!
//! Emits Brendan Gregg's collapsed format — one line per distinct stack,
//! `frame;frame;frame weight` — which `flamegraph.pl` and every
//! compatible viewer consume directly. The stack root is the thread
//! name, so lanes stay separable in one graph. The weight is selectable:
//! wall nanoseconds by default, or any [`SpanCounters`] field, giving
//! instruction- or miss-weighted flamegraphs of the same run.
//!
//! Weights are *self* quantities (a frame's time or counters minus its
//! children's): folded consumers derive the inclusive totals by summing
//! descendants, so exporting inclusive weights would double-count.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::prof;
use crate::trace::{SpanCounters, Trace};

/// What a folded stack line's weight measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Weight {
    /// Self wall time in nanoseconds (the default).
    WallNs,
    /// Self retired instructions.
    Instructions,
    /// Self modeled cycles.
    Cycles,
    /// Self retired branches.
    Branches,
    /// Self branch mispredictions.
    BranchMisses,
    /// Self last-level cache references.
    CacheReferences,
    /// Self last-level cache misses.
    CacheMisses,
    /// Self L1-D accesses.
    L1dAccesses,
    /// Self L1-D misses.
    L1dMisses,
    /// Self L1-I accesses.
    L1iAccesses,
    /// Self L1-I misses.
    L1iMisses,
}

impl Weight {
    /// All weights with their CLI spellings.
    pub const ALL: [(Weight, &'static str); 11] = [
        (Weight::WallNs, "wall-ns"),
        (Weight::Instructions, "instructions"),
        (Weight::Cycles, "cycles"),
        (Weight::Branches, "branches"),
        (Weight::BranchMisses, "branch-misses"),
        (Weight::CacheReferences, "cache-references"),
        (Weight::CacheMisses, "cache-misses"),
        (Weight::L1dAccesses, "l1d-accesses"),
        (Weight::L1dMisses, "l1d-misses"),
        (Weight::L1iAccesses, "l1i-accesses"),
        (Weight::L1iMisses, "l1i-misses"),
    ];

    /// Parses a CLI spelling (`wall` and `wall-ns` both mean wall time).
    pub fn parse(s: &str) -> Option<Weight> {
        if s == "wall" {
            return Some(Weight::WallNs);
        }
        Weight::ALL
            .iter()
            .find(|(_, name)| *name == s)
            .map(|(w, _)| *w)
    }

    /// The canonical spelling.
    pub fn name(self) -> &'static str {
        Weight::ALL
            .iter()
            .find(|(w, _)| *w == self)
            .map(|(_, name)| *name)
            .expect("every weight is listed")
    }

    fn of(self, self_ns: u64, c: &SpanCounters) -> u64 {
        match self {
            Weight::WallNs => self_ns,
            Weight::Instructions => c.instructions,
            Weight::Cycles => c.cycles,
            Weight::Branches => c.branches,
            Weight::BranchMisses => c.branch_misses,
            Weight::CacheReferences => c.cache_references,
            Weight::CacheMisses => c.cache_misses,
            Weight::L1dAccesses => c.l1d_accesses,
            Weight::L1dMisses => c.l1d_misses,
            Weight::L1iAccesses => c.l1i_accesses,
            Weight::L1iMisses => c.l1i_misses,
        }
    }
}

/// Renders `trace` as collapsed stacks weighted by `weight`. Stacks
/// whose weight is zero are omitted (a counter-weighted export of an
/// unattributed trace is empty, not a wall of zeros); lines sort
/// lexically so output is deterministic across runs.
pub fn export_string(trace: &Trace, weight: Weight) -> String {
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for thread in &trace.threads {
        for (path, node) in prof::aggregate(&thread.events) {
            let w = weight.of(node.self_ns, &node.self_counters);
            if w == 0 {
                continue;
            }
            let mut key = thread.name.replace([';', ' ', '\n'], "_");
            for frame in &path {
                key.push(';');
                key.push_str(&frame.replace([';', ' ', '\n'], "_"));
            }
            *stacks.entry(key).or_insert(0) += w;
        }
    }
    let mut out = String::new();
    for (stack, w) in stacks {
        let _ = writeln!(out, "{stack} {w}");
    }
    out
}

/// Writes `trace` to `path` in collapsed format.
pub fn export_file(
    trace: &Trace,
    weight: Weight,
    path: &std::path::Path,
) -> std::io::Result<()> {
    std::fs::write(path, export_string(trace, weight))
}

/// What [`parse`] learned about a folded document.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FoldedSummary {
    /// Distinct stack lines.
    pub stacks: usize,
    /// Sum of all weights.
    pub total_weight: u64,
    /// Deepest stack, counted in frames *excluding* the thread root —
    /// comparable to a Chrome trace's `max_depth`.
    pub max_depth: usize,
    /// Distinct frame names (thread roots excluded), sorted.
    pub frames: Vec<String>,
}

/// Parses a collapsed-format document, checking each line is
/// `frame(;frame)* <weight>`.
///
/// # Errors
///
/// A message naming the first malformed line (1-based).
pub fn parse(doc: &str) -> Result<FoldedSummary, String> {
    let mut summary = FoldedSummary::default();
    let mut frames = std::collections::BTreeSet::new();
    for (i, line) in doc.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let (stack, weight) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("folded: line {}: no weight field", i + 1))?;
        let weight: u64 = weight
            .parse()
            .map_err(|_| format!("folded: line {}: bad weight {weight:?}", i + 1))?;
        let parts: Vec<&str> = stack.split(';').collect();
        if parts.iter().any(|p| p.is_empty()) {
            return Err(format!("folded: line {}: empty frame", i + 1));
        }
        summary.stacks += 1;
        summary.total_weight += weight;
        summary.max_depth = summary.max_depth.max(parts.len().saturating_sub(1));
        for frame in &parts[1..] {
            frames.insert((*frame).to_string());
        }
    }
    summary.frames = frames.into_iter().collect();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanEvent, ThreadTrace};

    fn span(
        name: &'static str,
        start_ns: u64,
        dur_ns: u64,
        depth: u16,
        instructions: u64,
    ) -> SpanEvent {
        SpanEvent {
            name,
            attr: None,
            start_ns,
            dur_ns,
            depth,
            counters: (instructions > 0).then(|| {
                Box::new(SpanCounters {
                    instructions,
                    ..Default::default()
                })
            }),
        }
    }

    fn trace() -> Trace {
        Trace {
            threads: vec![ThreadTrace {
                tid: 1,
                name: "main".into(),
                dropped: 0,
                events: vec![
                    span("execute", 100, 600, 1, 900),
                    span("cell", 0, 1_000, 0, 1_000),
                    span("cell", 2_000, 500, 0, 0),
                ],
            }],
        }
    }

    #[test]
    fn wall_weights_are_self_time() {
        let folded = export_string(&trace(), Weight::WallNs);
        assert!(folded.contains("main;cell 900\n"), "400+500 self:\n{folded}");
        assert!(folded.contains("main;cell;execute 600\n"));
    }

    #[test]
    fn counter_weights_are_self_counters() {
        let folded = export_string(&trace(), Weight::Instructions);
        assert!(folded.contains("main;cell 100\n"), "1000-900 self:\n{folded}");
        assert!(folded.contains("main;cell;execute 900\n"));
        assert_eq!(folded.lines().count(), 2, "zero-weight stacks omitted");
    }

    #[test]
    fn export_parses_and_depths_match() {
        let s = parse(&export_string(&trace(), Weight::WallNs)).expect("parses");
        assert_eq!(s.stacks, 2);
        assert_eq!(s.total_weight, 1_500);
        assert_eq!(s.max_depth, 2);
        assert_eq!(s.frames, ["cell", "execute"]);
    }

    #[test]
    fn separators_in_names_are_sanitized() {
        let t = Trace {
            threads: vec![ThreadTrace {
                tid: 1,
                name: "pool worker;0".into(),
                dropped: 0,
                events: vec![span("a", 0, 10, 0, 0)],
            }],
        };
        let folded = export_string(&t, Weight::WallNs);
        assert!(folded.starts_with("pool_worker_0;a 10"));
        parse(&folded).expect("sanitized output parses");
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("noweight").is_err());
        assert!(parse("a;b twelve").is_err());
        assert!(parse("a;;b 3").is_err());
        assert_eq!(parse("").unwrap().stacks, 0);
    }

    #[test]
    fn weight_spellings_round_trip() {
        for (w, name) in Weight::ALL {
            assert_eq!(Weight::parse(name), Some(w));
            assert_eq!(w.name(), name);
        }
        assert_eq!(Weight::parse("wall"), Some(Weight::WallNs));
        assert_eq!(Weight::parse("bogus"), None);
    }
}
