//! Per-thread fixed-capacity event ring with a lock-free producer.
//!
//! Single-producer (the owning thread pushes), single-consumer (drains
//! are serialized by the trace registry's lock). The producer path is
//! two atomic loads, a slot write, and a release store — no locks, no
//! allocation, no syscalls — so recording a span never perturbs the
//! thread being measured beyond the clock reads themselves.
//!
//! When the ring is full, new events are *dropped and counted* rather
//! than overwriting old ones: overwriting could orphan half of a parent/
//! child pair and unbalance the exported begin/end stream, while a
//! counted drop keeps what was captured well-formed.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::trace::SpanEvent;

/// Events each thread can buffer between drains. Sized so a full
/// single-benchmark trace (per-pass spans included) fits with room to
/// spare: 32Ki events ≈ 2 MiB per traced thread.
pub const RING_CAPACITY: usize = 1 << 15;

/// A fixed-capacity single-producer/single-consumer event ring.
pub struct Ring {
    slots: Box<[UnsafeCell<MaybeUninit<SpanEvent>>]>,
    /// Next write index (free-running; producer-owned).
    head: AtomicUsize,
    /// Next read index (free-running; consumer-owned).
    tail: AtomicUsize,
    dropped: AtomicU64,
}

// The slots are written only by the producer at indices the consumer
// has not yet claimed, and read only by the consumer at indices the
// producer has published with a release store; the head/tail protocol
// below keeps the two ends on disjoint slots.
unsafe impl Send for Ring {}
unsafe impl Sync for Ring {}

impl Ring {
    /// Creates an empty ring with [`RING_CAPACITY`] slots.
    pub fn new() -> Ring {
        Ring::with_capacity(RING_CAPACITY)
    }

    /// Creates an empty ring with `capacity` slots (rounded up to a
    /// power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Ring {
        let capacity = capacity.max(2).next_power_of_two();
        let slots = (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        Ring {
            slots,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Pushes an event; drops it (counted) if the ring is full. Must
    /// only be called from the ring's owning (producer) thread.
    pub fn push(&self, ev: SpanEvent) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let slot = &self.slots[head & (self.slots.len() - 1)];
        unsafe { (*slot.get()).write(ev) };
        self.head.store(head.wrapping_add(1), Ordering::Release);
    }

    /// Removes and returns all buffered events, oldest first. Callers
    /// must serialize drains (the trace registry holds its lock).
    pub fn drain(&self) -> Vec<SpanEvent> {
        let head = self.head.load(Ordering::Acquire);
        let mut tail = self.tail.load(Ordering::Relaxed);
        let mut out = Vec::with_capacity(head.wrapping_sub(tail));
        while tail != head {
            let slot = &self.slots[tail & (self.slots.len() - 1)];
            out.push(unsafe { (*slot.get()).assume_init_read() });
            tail = tail.wrapping_add(1);
        }
        self.tail.store(tail, Ordering::Release);
        out
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.head
            .load(Ordering::Acquire)
            .wrapping_sub(self.tail.load(Ordering::Acquire))
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl Default for Ring {
    fn default() -> Ring {
        Ring::new()
    }
}

impl Drop for Ring {
    fn drop(&mut self) {
        // Drop any undrained events (they own heap attributes).
        self.drain();
    }
}

impl std::fmt::Debug for Ring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ring")
            .field("capacity", &self.slots.len())
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> SpanEvent {
        SpanEvent {
            name: "test",
            attr: Some(format!("n={n}").into_boxed_str()),
            start_ns: n,
            dur_ns: 1,
            depth: 0,
            counters: None,
        }
    }

    #[test]
    fn push_drain_preserves_order() {
        let r = Ring::with_capacity(8);
        for i in 0..5 {
            r.push(ev(i));
        }
        let out = r.drain();
        assert_eq!(out.len(), 5);
        assert!(out.iter().enumerate().all(|(i, e)| e.start_ns == i as u64));
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn full_ring_drops_and_counts() {
        let r = Ring::with_capacity(4);
        for i in 0..10 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        // The *oldest* events survive; drops never orphan prior pairs.
        let out = r.drain();
        assert_eq!(out[0].start_ns, 0);
        assert_eq!(out[3].start_ns, 3);
    }

    #[test]
    fn drain_resumes_after_wraparound() {
        let r = Ring::with_capacity(4);
        for round in 0..5u64 {
            for i in 0..3 {
                r.push(ev(round * 3 + i));
            }
            let out = r.drain();
            assert_eq!(out.len(), 3, "round {round}");
            assert_eq!(out[0].start_ns, round * 3);
        }
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn cross_thread_drain_sees_producer_writes() {
        let r = std::sync::Arc::new(Ring::with_capacity(1024));
        let producer = std::sync::Arc::clone(&r);
        let handle = std::thread::spawn(move || {
            for i in 0..500 {
                producer.push(ev(i));
            }
        });
        handle.join().unwrap();
        let out = r.drain();
        assert_eq!(out.len(), 500);
        assert!(out.windows(2).all(|w| w[0].start_ns < w[1].start_ns));
    }
}
