//! Continuous profiling: windowed per-phase profile aggregation.
//!
//! [`crate::prof`] attributes one *finished* trace; a serving process
//! needs the same attribution continuously, without retaining every
//! span. [`ContProf`] folds a stream of per-job phase samples (engine ×
//! phase wall self-time plus archsim counters, fed by the scheduler as
//! jobs complete) into fixed-span [`ProfileWindow`]s aligned to the
//! trace clock, keeping a bounded ring of sealed windows. Each window
//! renders as collapsed stacks in the same `stack;frame weight` format
//! [`crate::folded`] exports, so two windows diff exactly like two
//! flamegraphs — which is how `wabench-prof wdiff` names the phase that
//! regressed between them.
//!
//! Like the sampler and the alert engine, nothing aggregates unless a
//! `ContProf` is explicitly constructed and fed: the default-off path
//! costs nothing and keeps simulated figures bit-identical.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::time::Duration;

/// Aggregated cost of one phase stack within a window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Samples folded into this stack (≈ jobs touching the phase).
    pub count: u64,
    /// Wall self-time, nanoseconds.
    pub self_ns: u64,
    /// Simulated instructions retired in the phase (0 for unprofiled
    /// jobs — wall-only samples still attribute time).
    pub instructions: u64,
    /// Simulated cycles spent in the phase (0 for unprofiled jobs).
    pub cycles: u64,
}

/// One sealed (or in-progress) profile window.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileWindow {
    /// Monotone window number since profiler creation.
    pub seq: u64,
    /// Window start, trace-clock ns (aligned to the window span).
    pub start_ns: u64,
    /// Window end, trace-clock ns. For the in-progress window this is
    /// the time of the latest sample, so `end_ns - start_ns` under the
    /// configured span marks a partial window.
    pub end_ns: u64,
    /// Per-stack aggregates, keyed by the collapsed stack
    /// (`engine;phase`). A `BTreeMap` keeps every rendering
    /// deterministic.
    pub phases: BTreeMap<String, PhaseStat>,
}

impl ProfileWindow {
    /// Total wall self-time across all stacks, ns.
    pub fn total_self_ns(&self) -> u64 {
        self.phases.values().map(|p| p.self_ns).sum()
    }

    /// Each stack's share of the window's total self-time, in stack
    /// order. Empty when the window recorded no time.
    pub fn shares(&self) -> Vec<(String, f64)> {
        let total = self.total_self_ns();
        if total == 0 {
            return Vec::new();
        }
        self.phases
            .iter()
            .map(|(stack, p)| (stack.clone(), p.self_ns as f64 / total as f64))
            .collect()
    }

    /// Collapsed-stack rendering (`stack weight` per line, stack
    /// order), weight = wall self-nanoseconds — the format
    /// [`crate::folded::parse`] reads and `flamegraph.pl` consumes.
    /// Zero-weight stacks are omitted, like [`crate::folded`].
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (stack, p) in &self.phases {
            if p.self_ns > 0 {
                out.push_str(&format!("{stack} {}\n", p.self_ns));
            }
        }
        out
    }
}

/// The windowed profile aggregator.
#[derive(Debug)]
pub struct ContProf {
    window_ns: u64,
    cap: usize,
    next_seq: u64,
    cur: Option<ProfileWindow>,
    sealed: VecDeque<ProfileWindow>,
}

impl ContProf {
    /// An aggregator sealing one window per `window` span, retaining at
    /// most `cap` sealed windows (min 1 each). Spans shorter than 1ms
    /// are raised to 1ms.
    pub fn new(window: Duration, cap: usize) -> ContProf {
        ContProf {
            window_ns: window.max(Duration::from_millis(1)).as_nanos() as u64,
            cap: cap.max(1),
            next_seq: 0,
            cur: None,
            sealed: VecDeque::new(),
        }
    }

    /// The configured window span, ns.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Folds one phase sample in at trace-clock time `t_ns`. Windows
    /// are aligned to absolute multiples of the span, so the same
    /// sample stream always produces the same windows; quiet spans
    /// produce no window at all rather than empty filler.
    pub fn record(
        &mut self,
        t_ns: u64,
        engine: &str,
        phase: &str,
        self_ns: u64,
        instructions: u64,
        cycles: u64,
    ) {
        let start = t_ns - (t_ns % self.window_ns);
        // A sample older than the open window (a worker racing the
        // roll) folds into the open window rather than reopening a
        // sealed one; only a strictly newer span seals.
        if self.cur.as_ref().is_some_and(|c| c.start_ns < start) {
            self.seal();
        }
        let cur = self.cur.get_or_insert_with(|| {
            let seq = self.next_seq;
            self.next_seq += 1;
            ProfileWindow {
                seq,
                start_ns: start,
                end_ns: start,
                phases: BTreeMap::new(),
            }
        });
        cur.end_ns = cur.end_ns.max(t_ns);
        let stat = cur
            .phases
            .entry(format!("{};{}", sanitize(engine), sanitize(phase)))
            .or_default();
        stat.count += 1;
        stat.self_ns += self_ns;
        stat.instructions += instructions;
        stat.cycles += cycles;
    }

    fn seal(&mut self) {
        if let Some(mut w) = self.cur.take() {
            w.end_ns = w.start_ns + self.window_ns;
            if self.sealed.len() == self.cap {
                self.sealed.pop_front();
            }
            self.sealed.push_back(w);
        }
    }

    /// Every retained window, oldest first — the sealed ring plus the
    /// in-progress window (if any samples landed in it).
    pub fn windows(&self) -> Vec<ProfileWindow> {
        let mut out: Vec<ProfileWindow> = self.sealed.iter().cloned().collect();
        if let Some(cur) = &self.cur {
            out.push(cur.clone());
        }
        out
    }

    /// Phase shares of the most recent window (the in-progress one when
    /// it has samples, else the last sealed) — the drift rule's input.
    pub fn current_shares(&self) -> Vec<(String, f64)> {
        self.cur
            .as_ref()
            .or_else(|| self.sealed.back())
            .map(ProfileWindow::shares)
            .unwrap_or_default()
    }
}

/// Frame sanitizer shared with [`crate::folded`]'s conventions: the
/// collapsed format reserves `;` (frame separator) and space (weight
/// separator).
fn sanitize(frame: &str) -> String {
    frame
        .chars()
        .map(|c| if c == ';' || c == ' ' || c == '\n' { '_' } else { c })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    fn prof() -> ContProf {
        ContProf::new(Duration::from_millis(10), 4)
    }

    #[test]
    fn samples_aggregate_within_a_window() {
        let mut p = prof();
        p.record(MS, "wasm3", "compile", 100, 0, 0);
        p.record(2 * MS, "wasm3", "exec", 400, 1000, 500);
        p.record(3 * MS, "wasm3", "exec", 600, 2000, 900);
        let ws = p.windows();
        assert_eq!(ws.len(), 1, "one in-progress window");
        let w = &ws[0];
        assert_eq!(w.seq, 0);
        assert_eq!(w.start_ns, 0);
        assert_eq!(w.end_ns, 3 * MS, "partial window ends at latest sample");
        assert_eq!(w.phases.len(), 2);
        let exec = &w.phases["wasm3;exec"];
        assert_eq!((exec.count, exec.self_ns), (2, 1000));
        assert_eq!((exec.instructions, exec.cycles), (3000, 1400));
        assert_eq!(w.total_self_ns(), 1100);
    }

    #[test]
    fn windows_roll_on_aligned_boundaries_and_skip_quiet_spans() {
        let mut p = prof();
        p.record(5 * MS, "wasm3", "exec", 10, 0, 0);
        // Jump three spans ahead: the open window seals (full span),
        // and no empty filler windows appear for the quiet spans.
        p.record(35 * MS, "wamr", "exec", 20, 0, 0);
        let ws = p.windows();
        assert_eq!(ws.len(), 2);
        assert_eq!((ws[0].start_ns, ws[0].end_ns), (0, 10 * MS));
        assert_eq!((ws[1].start_ns, ws[1].seq), (30 * MS, 1));
    }

    #[test]
    fn sealed_ring_is_bounded() {
        let mut p = prof();
        for i in 0..10u64 {
            p.record(i * 10 * MS + MS, "wasm3", "exec", 1, 0, 0);
        }
        let ws = p.windows();
        // 9 sealed (capped to 4) + 1 in progress.
        assert_eq!(ws.len(), 5);
        let seqs: Vec<u64> = ws.iter().map(|w| w.seq).collect();
        assert_eq!(seqs, vec![5, 6, 7, 8, 9], "oldest sealed evicted");
    }

    #[test]
    fn late_sample_folds_into_open_window() {
        let mut p = prof();
        p.record(12 * MS, "wasm3", "exec", 5, 0, 0);
        // A worker finishing late reports a pre-roll timestamp; it must
        // not reopen or corrupt sealed history.
        p.record(11 * MS, "wasm3", "exec", 7, 0, 0);
        let ws = p.windows();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].phases["wasm3;exec"].self_ns, 12);
        assert_eq!(ws[0].end_ns, 12 * MS);
    }

    #[test]
    fn folded_rendering_parses_and_shares_sum_to_one() {
        let mut p = prof();
        p.record(MS, "wasm3", "compile", 250, 0, 0);
        p.record(2 * MS, "wasm3", "exec", 750, 0, 0);
        p.record(3 * MS, "cranelift", "exec", 0, 0, 0); // zero-weight
        let w = &p.windows()[0];
        let doc = w.folded();
        assert_eq!(doc, "wasm3;compile 250\nwasm3;exec 750\n");
        let summary = crate::folded::parse(&doc).unwrap();
        assert_eq!(summary.total_weight, 1000);
        let shares = w.shares();
        assert_eq!(shares.len(), 3);
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(shares[2], ("wasm3;exec".to_string(), 0.75));
    }

    #[test]
    fn current_shares_prefer_the_open_window() {
        let mut p = prof();
        p.record(MS, "wasm3", "exec", 100, 0, 0);
        p.record(11 * MS, "wamr", "exec", 100, 0, 0);
        let shares = p.current_shares();
        assert_eq!(shares, vec![("wamr;exec".to_string(), 1.0)]);
        let empty = ContProf::new(Duration::from_millis(10), 4);
        assert!(empty.current_shares().is_empty());
    }

    #[test]
    fn frames_are_sanitized() {
        let mut p = prof();
        p.record(MS, "eng;ne", "ph ase", 10, 0, 0);
        let w = &p.windows()[0];
        assert!(w.phases.contains_key("eng_ne;ph_ase"));
        assert!(crate::folded::parse(&w.folded()).is_ok());
    }
}
