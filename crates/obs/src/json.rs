//! A minimal JSON parser for trace validation.
//!
//! The workspace builds fully offline with no serialization framework
//! (the vendored `serde` is a derive-only stub), so the Chrome-trace
//! round-trip checker carries its own ~150-line recursive-descent
//! parser. It accepts strict RFC 8259 JSON — good enough to re-read our
//! own exporter's output and to reject anything malformed.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (sorted keys; duplicate keys keep the last value).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// A human-readable message with line, column, and byte offset on
/// malformed input.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        // 1-based line/column derived from the error offset; the byte
        // offset stays for tools that index the raw file.
        let consumed = &self.bytes[..self.pos.min(self.bytes.len())];
        let line = 1 + consumed.iter().filter(|&&b| b == b'\n').count();
        let line_start = consumed
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |i| i + 1);
        let col = 1 + self.pos.saturating_sub(line_start);
        format!("json: {msg} at line {line} column {col} (byte {})", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn keyword(&mut self, kw: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {kw}")))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(map)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}'"));
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']'"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = self
                            .bytes
                            .get(self.pos..self.pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| self.err("bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| self.err("bad \\u escape"))?;
                        self.pos += 4;
                        // Surrogate pairs are not produced by our
                        // exporter; map lone surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(c) => {
                    // Re-assemble UTF-8 multibyte sequences.
                    let start = self.pos - 1;
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err(self.err("invalid utf-8")),
                    };
                    let end = start + len;
                    let s = self
                        .bytes
                        .get(start..end)
                        .and_then(|b| std::str::from_utf8(b).ok())
                        .ok_or_else(|| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }
}

/// Escapes a string for embedding in JSON output (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\"y","d":null},"e":true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_num(), Some(2.5));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_num(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\"y"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Null));
        assert_eq!(v.get("e"), Some(&Value::Bool(true)));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2", "{'a':1}"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn errors_carry_line_and_column() {
        let err = parse("{\"a\": 1,\n \"b\": }\n").unwrap_err();
        assert!(
            err.contains("line 2") && err.contains("column 7"),
            "wrong position in {err:?}"
        );
        assert!(err.contains("byte 15"), "byte offset kept in {err:?}");
    }

    #[test]
    fn escape_round_trips() {
        let original = "a\"b\\c\nd\te\u{1}f µs";
        let quoted = format!("\"{}\"", escape(original));
        assert_eq!(parse(&quoted).unwrap().as_str(), Some(original));
    }

    #[test]
    fn unicode_survives() {
        let v = parse(r#"{"name":"wabench-работник-0","sym":"µ"}"#).unwrap();
        assert_eq!(v.get("sym").unwrap().as_str(), Some("µ"));
        assert_eq!(parse(r#""µ""#).unwrap().as_str(), Some("µ"));
    }
}
