//! Leveled stderr logging controlled by `WABENCH_LOG`.
//!
//! The binaries historically printed progress with bare `eprintln!`;
//! routing those lines through [`crate::info!`] (and diagnostics through
//! [`crate::debug!`]) keeps the default output byte-identical while
//! letting `WABENCH_LOG=error` silence a run and `WABENCH_LOG=debug`
//! open it up. The level is resolved once from the environment on first
//! use; [`set_level`] exists for binaries that take a `--log` flag and
//! for tests.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Log severity, ordered from most to least important.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Failures the user must see.
    Error = 0,
    /// Suspicious-but-recoverable conditions.
    Warn = 1,
    /// Normal progress output (the default threshold).
    Info = 2,
    /// Verbose diagnostics.
    Debug = 3,
}

impl Level {
    /// Parses a level name (case-insensitive). `None` for unknown names.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" | "err" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" | "trace" => Some(Level::Debug),
            _ => None,
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        })
    }
}

// 255 = "not yet resolved"; any other value is a Level discriminant.
static LEVEL: AtomicU8 = AtomicU8::new(255);

fn env_level() -> Level {
    static FROM_ENV: OnceLock<Level> = OnceLock::new();
    *FROM_ENV.get_or_init(|| {
        std::env::var("WABENCH_LOG")
            .ok()
            .as_deref()
            .and_then(Level::parse)
            .unwrap_or(Level::Info)
    })
}

/// The current visibility threshold.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        3 => Level::Debug,
        _ => env_level(),
    }
}

/// Overrides the threshold (wins over `WABENCH_LOG`).
pub fn set_level(lvl: Level) {
    LEVEL.store(lvl as u8, Ordering::Relaxed);
}

/// Whether a message at `lvl` should be printed.
#[inline]
pub fn enabled(lvl: Level) -> bool {
    lvl <= level()
}

fn ts_enabled() -> bool {
    static FROM_ENV: OnceLock<bool> = OnceLock::new();
    *FROM_ENV.get_or_init(|| std::env::var("WABENCH_LOG_TS").as_deref() == Ok("1"))
}

fn ts_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// The per-line prefix for [`crate::log!`] output.
///
/// Empty unless `WABENCH_LOG_TS=1`, so default output stays
/// byte-identical; with it, each line is prefixed with seconds since the
/// first logged line, e.g. `[     1.042] starting phase`.
pub fn prefix() -> String {
    if ts_enabled() {
        format!("[{:>10.3}] ", ts_epoch().elapsed().as_secs_f64())
    } else {
        String::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Debug);
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse(" debug "), Some(Level::Debug));
        assert_eq!(Level::parse("loud"), None);
        assert_eq!(Level::Info.to_string(), "info");
    }

    #[test]
    fn set_level_gates_enabled() {
        // Tests share the global; pick a level, check, then restore Info
        // (the default the other output-shape tests rely on).
        set_level(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(Level::Info);
        assert!(enabled(Level::Info));
    }
}
