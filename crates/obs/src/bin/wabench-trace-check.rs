//! Validates a Chrome trace-event JSON file produced by the wabench
//! tools (or anything else claiming the format).
//!
//! ```text
//! wabench-trace-check trace.json
//! ```
//!
//! Exits 0 and prints a one-line summary when the document is valid.
//! Failures use distinct codes so `scripts/verify.sh` output is
//! diagnosable at a glance:
//!
//! * 1 — usage error or unreadable file
//! * 2 — malformed JSON (message carries line/column)
//! * 3 — valid JSON that violates a trace invariant (unbalanced or
//!   mismatched `B`/`E`, missing fields, non-monotone timestamps)

use std::process::ExitCode;

use obs::chrome::ValidateError;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let path = match (args.next(), args.next()) {
        (Some(p), None) if p != "--help" && p != "-h" => p,
        _ => {
            eprintln!("usage: wabench-trace-check <trace.json>");
            return ExitCode::FAILURE;
        }
    };

    let doc = match std::fs::read_to_string(&path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("wabench-trace-check: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    match obs::chrome::validate(&doc) {
        Ok(s) => {
            println!(
                "{path}: ok — {} events, {} spans, {} threads, max depth {}, {} span names",
                s.events,
                s.spans,
                s.tids,
                s.max_depth,
                s.names.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            let (kind, code) = match &e {
                ValidateError::Parse(_) => ("parse error", 2),
                ValidateError::Semantic(_) => ("semantic error", 3),
            };
            eprintln!("wabench-trace-check: {path}: {kind}: {e}");
            ExitCode::from(code)
        }
    }
}
