//! Chrome trace-event JSON export and round-trip validation.
//!
//! [`export_string`] turns a drained [`Trace`] into the Trace Event
//! Format understood by Perfetto and `chrome://tracing`: one metadata
//! (`M`) event naming each thread, then balanced duration (`B`/`E`)
//! pairs per span. We record *complete* spans (start + duration at guard
//! drop), so the begin/end stream is reconstructed here: per thread,
//! spans sort by (start asc, depth asc, duration desc) and an end-time
//! stack decides when to close open spans. Because whole spans drop when
//! a ring fills — never half of a pair — the reconstruction always
//! balances.
//!
//! [`validate`] re-parses an exported document and checks the structural
//! invariants a viewer relies on (valid JSON, a `traceEvents` array,
//! per-thread balanced and name-matched `B`/`E` nesting, monotone
//! timestamps). The `wabench-trace-check` binary and the round-trip
//! tests are built on it.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::json::{self, Value};
use crate::trace::{SpanEvent, Trace};

/// The `pid` stamped on every exported event: the whole stack is one
/// process; threads are the interesting axis.
pub const TRACE_PID: u64 = 1;

fn push_event_prefix(out: &mut String, ph: char, tid: u64, name: &str) {
    let _ = write!(
        out,
        "{{\"ph\":\"{ph}\",\"pid\":{TRACE_PID},\"tid\":{tid},\"name\":\"{}\"",
        json::escape(name)
    );
}

/// Renders `trace` as a Chrome trace-event JSON document.
pub fn export_string(trace: &Trace) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let sep = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
    };

    for thread in &trace.threads {
        sep(&mut out, &mut first);
        push_event_prefix(&mut out, 'M', thread.tid, "thread_name");
        let _ = write!(
            out,
            ",\"args\":{{\"name\":\"{}\"}}}}",
            json::escape(&thread.name)
        );

        // Reconstruct a balanced B/E stream from complete events. Ties on
        // start break by depth (parent before child), then by longer
        // duration, so enclosing spans always open first.
        let mut spans: Vec<&SpanEvent> = thread.events.iter().collect();
        spans.sort_by(|a, b| {
            a.start_ns
                .cmp(&b.start_ns)
                .then(a.depth.cmp(&b.depth))
                .then(b.dur_ns.cmp(&a.dur_ns))
        });

        // Open spans as (end_ns, name); top of stack is the innermost.
        let mut open: Vec<(u64, &'static str)> = Vec::new();
        let close = |out: &mut String, first: &mut bool, end_ns: u64, name: &str, tid: u64| {
            sep(out, first);
            push_event_prefix(out, 'E', tid, name);
            let _ = write!(out, ",\"ts\":{}}}", fmt_us(end_ns));
        };

        for span in spans {
            while let Some(&(end_ns, name)) = open.last() {
                if end_ns > span.start_ns {
                    break;
                }
                open.pop();
                close(&mut out, &mut first, end_ns, name, thread.tid);
            }
            // RAII guards cannot produce partial overlap, but clamp the
            // end defensively so even a pathological input stays balanced.
            let end_ns = match open.last() {
                Some(&(parent_end, _)) => span.end_ns().min(parent_end),
                None => span.end_ns(),
            };
            sep(&mut out, &mut first);
            push_event_prefix(&mut out, 'B', thread.tid, span.name);
            let _ = write!(out, ",\"ts\":{}", fmt_us(span.start_ns));
            if span.attr.is_some() || span.counters.is_some() {
                out.push_str(",\"args\":{");
                let mut first_arg = true;
                if let Some(attr) = &span.attr {
                    let _ = write!(out, "\"detail\":\"{}\"", json::escape(attr));
                    first_arg = false;
                }
                if let Some(c) = &span.counters {
                    // Numeric args show up in the viewer's span details;
                    // derived ratios are finite by construction (the
                    // helpers return 0 on empty denominators), so this
                    // always stays valid JSON.
                    for (key, val) in [
                        ("instructions", c.instructions as f64),
                        ("cycles", c.cycles as f64),
                        ("ipc", c.ipc()),
                        ("branch_mpki", c.branch_mpki()),
                        ("l1d_mpki", c.l1d_mpki()),
                        ("llc_mpki", c.llc_mpki()),
                    ] {
                        if !first_arg {
                            out.push(',');
                        }
                        first_arg = false;
                        let _ = write!(out, "\"{key}\":{val:.3}");
                    }
                }
                out.push('}');
            }
            out.push('}');
            open.push((end_ns, span.name));
        }
        while let Some((end_ns, name)) = open.pop() {
            close(&mut out, &mut first, end_ns, name, thread.tid);
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Writes `trace` to `path` as Chrome trace JSON.
pub fn export_file(trace: &Trace, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, export_string(trace))
}

/// Microseconds with nanosecond precision, as trace-format `ts` expects.
fn fmt_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// What [`validate`] learned about a trace document.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Summary {
    /// Total events of any phase.
    pub events: usize,
    /// Completed `B`/`E` span pairs.
    pub spans: usize,
    /// Distinct thread ids seen.
    pub tids: usize,
    /// Deepest observed `B` nesting (1 = no nesting).
    pub max_depth: usize,
    /// Distinct span names, sorted.
    pub names: Vec<String>,
}

/// Why [`validate`] rejected a document — split so tools can exit with
/// distinct codes for "not JSON" vs "JSON, but not a coherent trace".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// The document is not well-formed JSON (message carries
    /// line/column from the parser).
    Parse(String),
    /// The JSON parses but violates a trace invariant: missing
    /// `traceEvents`, events without required fields, unbalanced or
    /// name-mismatched `B`/`E` pairs, or non-monotone timestamps.
    Semantic(String),
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidateError::Parse(m) | ValidateError::Semantic(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for ValidateError {}

fn semantic(msg: String) -> ValidateError {
    ValidateError::Semantic(msg)
}

/// Parses a Chrome trace-event document and checks its structural
/// invariants.
///
/// # Errors
///
/// [`ValidateError::Parse`] on malformed JSON;
/// [`ValidateError::Semantic`] for a missing or non-array
/// `traceEvents`, events without required fields, unbalanced or
/// name-mismatched `B`/`E` pairs, or non-monotone timestamps within
/// a thread.
pub fn validate(doc: &str) -> Result<Summary, ValidateError> {
    let root = json::parse(doc).map_err(ValidateError::Parse)?;
    let events = root
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or_else(|| semantic("trace: missing traceEvents array".into()))?;

    let mut summary = Summary {
        events: events.len(),
        ..Summary::default()
    };
    let mut names = BTreeSet::new();
    // Per (pid, tid): open-span name stack and last timestamp.
    let mut lanes: std::collections::BTreeMap<(u64, u64), (Vec<String>, f64)> =
        std::collections::BTreeMap::new();

    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| semantic(format!("trace: event {i} has no ph")))?;
        let pid = ev
            .get("pid")
            .and_then(Value::as_num)
            .ok_or_else(|| semantic(format!("trace: event {i} has no pid")))? as u64;
        let tid = ev
            .get("tid")
            .and_then(Value::as_num)
            .ok_or_else(|| semantic(format!("trace: event {i} has no tid")))? as u64;
        let lane = lanes.entry((pid, tid)).or_insert((Vec::new(), f64::MIN));

        match ph {
            "M" => continue,
            "B" | "E" => {
                let name = ev
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| semantic(format!("trace: event {i} ({ph}) has no name")))?;
                let ts = ev
                    .get("ts")
                    .and_then(Value::as_num)
                    .ok_or_else(|| semantic(format!("trace: event {i} ({ph}) has no ts")))?;
                if ts < lane.1 {
                    return Err(semantic(format!(
                        "trace: event {i} ts {ts} precedes {} on tid {tid}",
                        lane.1
                    )));
                }
                lane.1 = ts;
                if ph == "B" {
                    lane.0.push(name.to_string());
                    summary.max_depth = summary.max_depth.max(lane.0.len());
                    names.insert(name.to_string());
                } else {
                    let open = lane.0.pop().ok_or_else(|| {
                        semantic(format!(
                            "trace: event {i} closes {name:?} with nothing open on tid {tid}"
                        ))
                    })?;
                    if open != name {
                        return Err(semantic(format!(
                            "trace: event {i} closes {name:?} but {open:?} is open on tid {tid}"
                        )));
                    }
                    summary.spans += 1;
                }
            }
            other => return Err(semantic(format!("trace: event {i} has unknown phase {other:?}"))),
        }
    }

    for ((_, tid), (stack, _)) in &lanes {
        if let Some(name) = stack.last() {
            return Err(semantic(format!("trace: span {name:?} never closed on tid {tid}")));
        }
    }
    summary.tids = lanes.len();
    summary.names = names.into_iter().collect();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ThreadTrace;

    fn span(name: &'static str, start_ns: u64, dur_ns: u64, depth: u16) -> SpanEvent {
        SpanEvent {
            name,
            attr: None,
            start_ns,
            dur_ns,
            depth,
            counters: None,
        }
    }

    fn one_thread(events: Vec<SpanEvent>) -> Trace {
        Trace {
            threads: vec![ThreadTrace {
                tid: 7,
                name: "main".into(),
                dropped: 0,
                events,
            }],
        }
    }

    #[test]
    fn export_round_trips_nested_spans() {
        // Completion order (inner first), as a real ring would hold them.
        let trace = one_thread(vec![
            span("inner", 1_500, 1_000, 1),
            span("outer", 1_000, 4_000, 0),
            span("sibling", 6_000, 500, 0),
        ]);
        let doc = export_string(&trace);
        let s = validate(&doc).expect("exported trace validates");
        assert_eq!(s.spans, 3);
        assert_eq!(s.tids, 1);
        assert_eq!(s.max_depth, 2);
        assert_eq!(s.names, ["inner", "outer", "sibling"]);
    }

    #[test]
    fn attrs_become_args_detail() {
        let mut trace = one_thread(vec![span("compile", 0, 100, 0)]);
        trace.threads[0].events[0].attr = Some("engine=WasmEdge level=\"-O2\"".into());
        let doc = export_string(&trace);
        validate(&doc).expect("escaped attrs stay valid JSON");
        assert!(doc.contains("engine=WasmEdge level=\\\"-O2\\\""));
    }

    #[test]
    fn zero_duration_and_shared_boundaries_stay_balanced() {
        let trace = one_thread(vec![
            span("instant", 1_000, 0, 1),
            span("outer", 1_000, 2_000, 0),
            span("child_to_end", 2_000, 1_000, 1), // ends exactly with outer
        ]);
        let s = validate(&export_string(&trace)).expect("boundary ties validate");
        assert_eq!(s.spans, 3);
    }

    #[test]
    fn validate_rejects_broken_documents() {
        assert!(matches!(
            validate("not json"),
            Err(ValidateError::Parse(_))
        ));
        assert!(matches!(
            validate(r#"{"events":[]}"#),
            Err(ValidateError::Semantic(_))
        ));
        let unbalanced = r#"{"traceEvents":[
            {"ph":"B","pid":1,"tid":1,"name":"a","ts":1.0}
        ]}"#;
        let err = validate(unbalanced).unwrap_err();
        assert!(matches!(err, ValidateError::Semantic(_)));
        assert!(err.to_string().contains("never closed"));
        let mismatched = r#"{"traceEvents":[
            {"ph":"B","pid":1,"tid":1,"name":"a","ts":1.0},
            {"ph":"E","pid":1,"tid":1,"name":"b","ts":2.0}
        ]}"#;
        assert!(validate(mismatched).unwrap_err().to_string().contains("is open"));
        let backwards = r#"{"traceEvents":[
            {"ph":"B","pid":1,"tid":1,"name":"a","ts":5.0},
            {"ph":"E","pid":1,"tid":1,"name":"a","ts":1.0}
        ]}"#;
        assert!(validate(backwards).unwrap_err().to_string().contains("precedes"));
    }

    #[test]
    fn counter_payloads_export_as_numeric_args() {
        let mut trace = one_thread(vec![span("engine.execute", 0, 1_000, 0)]);
        trace.threads[0].events[0].attr = Some("engine=Wamr".into());
        trace.threads[0].events[0].counters = Some(Box::new(crate::trace::SpanCounters {
            instructions: 2_000,
            cycles: 1_000,
            branch_misses: 4,
            l1d_misses: 6,
            cache_misses: 2,
            ..Default::default()
        }));
        let doc = export_string(&trace);
        validate(&doc).expect("counter args stay valid JSON");
        assert!(doc.contains("\"detail\":\"engine=Wamr\""));
        assert!(doc.contains("\"instructions\":2000.000"));
        assert!(doc.contains("\"ipc\":2.000"));
        assert!(doc.contains("\"branch_mpki\":2.000"));
        assert!(doc.contains("\"l1d_mpki\":3.000"));
        assert!(doc.contains("\"llc_mpki\":1.000"));
    }

    #[test]
    fn threads_get_metadata_and_separate_lanes() {
        let trace = Trace {
            threads: vec![
                ThreadTrace {
                    tid: 1,
                    name: "main".into(),
                    dropped: 0,
                    events: vec![span("a", 0, 10, 0)],
                },
                ThreadTrace {
                    tid: 2,
                    name: "svc-worker-0".into(),
                    dropped: 0,
                    events: vec![span("b", 5, 10, 0)],
                },
            ],
        };
        let doc = export_string(&trace);
        let s = validate(&doc).expect("two lanes validate");
        assert_eq!(s.tids, 2);
        assert!(doc.contains("svc-worker-0"));
    }
}
