//! Criterion benchmarks: one group per paper table/figure. These time the
//! underlying measurements at reduced scale so `cargo bench` regenerates
//! the performance-relevant data quickly; the `wabench-harness` binary
//! produces the full tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use engines::{Backend, Engine, EngineKind};
use harness::runner;
use wacc::OptLevel;
use wasi_rt::WasiCtx;
use wasm_core::types::Value;

/// Representative benchmarks, one per suite group.
fn picks() -> Vec<&'static suite::Benchmark> {
    ["quicksort", "crc32", "gemm", "whitedb"]
        .iter()
        .map(|n| suite::by_name(n).expect("registered"))
        .collect()
}

fn exec(kind: EngineKind, bytes: &[u8], n: i32) {
    let compiled = Engine::new(kind).compile(bytes).expect("compile");
    let mut inst = compiled
        .instantiate(&wasi_rt::imports(), Box::new(WasiCtx::new()))
        .expect("instantiate");
    let out = inst.invoke("run", &[Value::I32(n)]).expect("run");
    std::hint::black_box(out);
}

/// Figure 1: execution time per engine vs native.
fn fig1_exec_time(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_exec_time");
    for b in picks() {
        let n = b.sizes.test;
        let bytes = runner::wasm_bytes(b, OptLevel::O2);
        g.bench_with_input(BenchmarkId::new("native", b.name), &n, |bench, &n| {
            bench.iter(|| std::hint::black_box((b.native)(n)))
        });
        for kind in EngineKind::all() {
            g.bench_with_input(
                BenchmarkId::new(kind.name(), b.name),
                &n,
                |bench, &n| bench.iter(|| exec(kind, &bytes, n)),
            );
        }
    }
    g.finish();
}

/// Figure 2: Wasmer backend comparison.
fn fig2_jit_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_jit_backends");
    for b in picks() {
        let n = b.sizes.test;
        let bytes = runner::wasm_bytes(b, OptLevel::O2);
        for backend in Backend::all() {
            g.bench_with_input(
                BenchmarkId::new(backend.to_string(), b.name),
                &n,
                |bench, &n| bench.iter(|| exec(EngineKind::Wasmer(backend), &bytes, n)),
            );
        }
    }
    g.finish();
}

/// Figure 3 / Table 4: AOT vs JIT startup+run.
fn fig3_aot(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_aot");
    for b in picks() {
        let n = b.sizes.test;
        let bytes = runner::wasm_bytes(b, OptLevel::O2);
        let engine = Engine::new(EngineKind::Wavm);
        let artifact = engine.precompile(&bytes).expect("precompile");
        g.bench_with_input(BenchmarkId::new("jit", b.name), &n, |bench, &n| {
            bench.iter(|| exec(EngineKind::Wavm, &bytes, n))
        });
        g.bench_with_input(BenchmarkId::new("aot", b.name), &n, |bench, &n| {
            bench.iter(|| {
                let compiled = engine.load_artifact(&artifact).expect("load");
                let mut inst = compiled
                    .instantiate(&wasi_rt::imports(), Box::new(WasiCtx::new()))
                    .expect("instantiate");
                std::hint::black_box(inst.invoke("run", &[Value::I32(n)]).expect("run"));
            })
        });
    }
    g.finish();
}

/// Figure 4: optimization levels (Wasm3, the most sensitive engine).
fn fig4_opt_levels(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_opt_levels");
    for b in picks() {
        let n = b.sizes.test;
        for level in OptLevel::all() {
            let bytes = runner::wasm_bytes(b, level);
            g.bench_with_input(
                BenchmarkId::new(format!("wasm3{level}"), b.name),
                &n,
                |bench, &n| bench.iter(|| exec(EngineKind::Wasm3, &bytes, n)),
            );
        }
    }
    g.finish();
}

/// Figures 5-10 are derived from accounting/simulation rather than timing;
/// this target times the simulation itself (throughput of the substrate).
fn sim_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("archsim_throughput");
    let b = suite::by_name("crc32").expect("registered");
    let bytes = runner::wasm_bytes(b, OptLevel::O2);
    let n = b.sizes.test;
    for kind in [EngineKind::Wasmtime, EngineKind::Wamr] {
        g.bench_function(BenchmarkId::new("profiled", kind.name()), |bench| {
            bench.iter(|| {
                let mut sim = archsim::ArchSim::new();
                let compiled = Engine::new(kind)
                    .compile_profiled(&bytes, &mut sim)
                    .expect("compile");
                let mut inst = compiled
                    .instantiate(&wasi_rt::imports(), Box::new(WasiCtx::new()))
                    .expect("instantiate");
                inst.invoke_profiled("run", &[Value::I32(n)], &mut sim)
                    .expect("run");
                std::hint::black_box(sim.counters())
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = fig1_exec_time, fig2_jit_backends, fig3_aot, fig4_opt_levels, sim_throughput
}
criterion_main!(figures);
