//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! dispatch technique, opcode fusion, register vs stack execution, and
//! the individual optimizer passes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use engines::interp::threaded::{FusionLevel, ThreadedCode};
use engines::interp::tree::TreeCode;
use engines::jit::exec::RegCode;
use engines::jit::lower::lower;
use engines::jit::opt::{optimize, PassConfig};
use engines::{Imports, NullProfiler, Runtime};
use std::rc::Rc;
use wasm_core::Module;

fn bench_module() -> (Rc<Module>, u32, i32) {
    // A loop-heavy kernel with calls, branches, and memory traffic.
    let b = suite::by_name("crc32").expect("registered");
    let bytes = b.compile(wacc::OptLevel::O2).expect("compile");
    let module = Rc::new(wasm_core::decode::decode(&bytes).expect("decode"));
    wasm_core::validate::validate(&module).expect("valid");
    let idx = module.exported_func("run").expect("entry");
    (module, idx, b.sizes.test)
}

fn runtime_for(module: &Rc<Module>) -> Runtime {
    // The benchmark imports WASI but never calls it on this path; a sink
    // import set would fail the link, so use the real one.
    let mut imports = Imports::new();
    // Register WASI sinks compatible with the module's import types.
    use wasm_core::types::{FuncType, ValType::*};
    imports.func("wasi_snapshot_preview1", "fd_write", FuncType::new(&[I32, I32, I32, I32], &[I32]), |_, _| Ok(Some(wasm_core::types::Value::I32(0))));
    imports.func("wasi_snapshot_preview1", "fd_read", FuncType::new(&[I32, I32, I32, I32], &[I32]), |_, _| Ok(Some(wasm_core::types::Value::I32(0))));
    imports.func("wasi_snapshot_preview1", "proc_exit", FuncType::new(&[I32], &[]), |_, _| Ok(None));
    imports.func("wasi_snapshot_preview1", "clock_time_get", FuncType::new(&[I32, I64, I32], &[I32]), |_, _| Ok(Some(wasm_core::types::Value::I32(0))));
    imports.func("wasi_snapshot_preview1", "random_get", FuncType::new(&[I32, I32], &[I32]), |_, _| Ok(Some(wasm_core::types::Value::I32(0))));
    Runtime::instantiate(module, &imports, Box::new(())).expect("instantiate")
}

/// Switch dispatch (tree) vs token threading (wasm3) vs subroutine
/// threading (compiled tier): the central interpreter-design ablation.
fn ablation_dispatch(c: &mut Criterion) {
    let (module, idx, n) = bench_module();
    let mut g = c.benchmark_group("ablation_dispatch");

    let tree = TreeCode::load(module.clone()).expect("tree");
    g.bench_function("switch_dispatch(tree)", |bench| {
        bench.iter(|| {
            let mut rt = runtime_for(&module);
            tree.invoke(&mut rt, idx, &[n as u64], &mut NullProfiler).expect("run")
        })
    });

    let threaded = ThreadedCode::load(module.clone()).expect("threaded");
    g.bench_function("token_threading(wasm3)", |bench| {
        bench.iter(|| {
            let mut rt = runtime_for(&module);
            threaded.invoke(&mut rt, idx, &[n as u64], &mut NullProfiler).expect("run")
        })
    });

    let funcs: Vec<_> = module
        .funcs
        .iter()
        .map(|f| {
            let mut rf = lower(&module, f).expect("lower");
            optimize(&mut rf, &PassConfig::standard());
            rf
        })
        .collect();
    let compiled = RegCode::new(module.clone(), funcs);
    g.bench_function("subroutine_threading(compiled)", |bench| {
        bench.iter(|| {
            let mut rt = runtime_for(&module);
            compiled.invoke(&mut rt, idx, &[n as u64], &mut NullProfiler).expect("run")
        })
    });
    g.finish();
}

/// Super-instruction fusion in the threaded interpreter, on vs off.
fn ablation_fusion(c: &mut Criterion) {
    let (module, idx, n) = bench_module();
    let mut g = c.benchmark_group("ablation_fusion");
    for (label, fuse) in [
        ("full", FusionLevel::Full),
        ("const", FusionLevel::Const),
        ("none", FusionLevel::None),
    ] {
        let code = ThreadedCode::load_with_options(module.clone(), fuse).expect("load");
        g.bench_function(BenchmarkId::new("threaded", label), |bench| {
            bench.iter(|| {
                let mut rt = runtime_for(&module);
                code.invoke(&mut rt, idx, &[n as u64], &mut NullProfiler).expect("run")
            })
        });
    }
    g.finish();
}

/// Register code vs stack code: singlepass-lowered register IR against the
/// threaded stack machine on identical input.
fn ablation_register_vs_stack(c: &mut Criterion) {
    let (module, idx, n) = bench_module();
    let mut g = c.benchmark_group("ablation_register_vs_stack");
    let funcs: Vec<_> = module.funcs.iter().map(|f| lower(&module, f).expect("lower")).collect();
    let reg = RegCode::new(module.clone(), funcs);
    g.bench_function("register(singlepass)", |bench| {
        bench.iter(|| {
            let mut rt = runtime_for(&module);
            reg.invoke(&mut rt, idx, &[n as u64], &mut NullProfiler).expect("run")
        })
    });
    let stack = ThreadedCode::load_with_options(module.clone(), FusionLevel::None).expect("load");
    g.bench_function("stack(threaded,unfused)", |bench| {
        bench.iter(|| {
            let mut rt = runtime_for(&module);
            stack.invoke(&mut rt, idx, &[n as u64], &mut NullProfiler).expect("run")
        })
    });
    g.finish();
}

/// Optimizer pass toggles in the LLVM-analogue tier.
fn ablation_passes(c: &mut Criterion) {
    let (module, idx, n) = bench_module();
    let mut g = c.benchmark_group("ablation_passes");
    let full = PassConfig::aggressive();
    let variants: Vec<(&str, PassConfig)> = vec![
        ("full", full),
        ("no_imm_fuse", PassConfig { imm_fuse: false, ..full }),
        ("no_cmp_fuse", PassConfig { cmp_fuse: false, ..full }),
        ("no_lvn", PassConfig { lvn: false, ..full }),
        ("no_copy_prop", PassConfig { copy_prop: false, ..full }),
        ("none", PassConfig::none()),
    ];
    for (label, config) in variants {
        let funcs: Vec<_> = module
            .funcs
            .iter()
            .map(|f| {
                let mut rf = lower(&module, f).expect("lower");
                optimize(&mut rf, &config);
                rf
            })
            .collect();
        let code = RegCode::new(module.clone(), funcs);
        g.bench_function(BenchmarkId::new("exec", label), |bench| {
            bench.iter(|| {
                let mut rt = runtime_for(&module);
                code.invoke(&mut rt, idx, &[n as u64], &mut NullProfiler).expect("run")
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = ablation_dispatch, ablation_fusion, ablation_register_vs_stack, ablation_passes
}
criterion_main!(ablations);
