//! Criterion benchmark targets live under `benches/`.
