//! End-to-end observability tests: the tracing overhead budget and the
//! Chrome-trace round trip under a multi-worker scheduler.
//!
//! Both tests flip the process-global trace sink, so they serialize on
//! one mutex rather than relying on `cargo test` thread scheduling.

use std::sync::Mutex;
use std::time::Duration;

use engines::{Engine, EngineKind};
use svc::scheduler::{Config, Scheduler};
use svc::{JobSpec, Scale};
use wacc::OptLevel;
use wasi_rt::WasiCtx;
use wasm_core::types::Value;

static SINK_GATE: Mutex<()> = Mutex::new(());

fn profiled_counters(bytes: &[u8], n: i32) -> archsim::Counters {
    let mut sim = archsim::ArchSim::new();
    let engine = Engine::new(EngineKind::Wamr);
    let compiled = engine.compile_profiled(bytes, &mut sim).expect("compile");
    let mut inst = compiled
        .instantiate(&wasi_rt::imports(), Box::new(WasiCtx::new()))
        .expect("instantiate");
    inst.invoke_profiled("run", &[Value::I32(n)], &mut sim)
        .expect("run");
    sim.counters()
}

/// The observability contract the whole PR rests on: simulated figures
/// are *bit-identical* whether tracing is enabled or not, because spans
/// only read clocks — they never touch the simulation. A PolyBench cell
/// (gemm) profiled with the null sink and with the ring sink must
/// produce byte-for-byte equal counters.
#[test]
fn tracing_does_not_perturb_simulated_counters() {
    let _gate = SINK_GATE.lock().unwrap();
    let b = suite::by_name("gemm").expect("gemm registered");
    let n = b.sizes.test;
    let bytes = b.compile(OptLevel::O2).expect("wacc compile");

    obs::trace::install(obs::trace::Sink::Null);
    let cold = profiled_counters(&bytes, n);

    obs::trace::install(obs::trace::Sink::Ring);
    let traced = profiled_counters(&bytes, n);
    let trace = obs::trace::drain();
    obs::trace::install(obs::trace::Sink::Null);

    assert_eq!(cold, traced, "tracing changed simulated counters");
    // And the traced run actually recorded the compile/execute phases.
    assert!(trace.span_count() > 0, "ring sink recorded nothing");
    let names: Vec<&str> = trace
        .threads
        .iter()
        .flat_map(|t| t.events.iter().map(|e| e.name))
        .collect();
    assert!(names.contains(&"engine.compile"));
    assert!(names.contains(&"engine.execute"));
    // Under the ring sink, profiled engine spans carry a counter-delta
    // payload — and those deltas are read from the same simulator that
    // just proved bit-identical, so attribution is free of perturbation.
    let exec_counters = trace
        .threads
        .iter()
        .flat_map(|t| &t.events)
        .find(|e| e.name == "engine.execute")
        .and_then(|e| e.counters.as_deref())
        .expect("engine.execute span missing counter payload");
    assert!(exec_counters.instructions > 0);
    assert!(exec_counters.instructions <= traced.instructions);
}

/// Generous overhead budget: a span enter/exit pair on the hot (ring)
/// path stays well under a microsecond on any machine this runs on; we
/// allow 10µs to keep CI noise out.
#[test]
fn span_overhead_within_budget() {
    let _gate = SINK_GATE.lock().unwrap();
    obs::trace::install(obs::trace::Sink::Ring);
    const N: u32 = 10_000;
    let t0 = std::time::Instant::now();
    for _ in 0..N {
        let _span = obs::span!("overhead.probe");
    }
    let per_span_ns = t0.elapsed().as_nanos() as f64 / f64::from(N);
    let _ = obs::trace::drain();
    obs::trace::install(obs::trace::Sink::Null);
    assert!(
        per_span_ns < 10_000.0,
        "span enter/exit cost {per_span_ns:.0}ns exceeds 10µs budget"
    );
}

/// Chrome-trace round trip under a real 4-worker scheduler: the export
/// must be valid JSON with balanced, name-matched B/E stacks per thread
/// lane, spans on several worker threads, and the scheduler + compiler
/// span names present.
#[test]
fn chrome_trace_round_trips_under_workers() {
    let _gate = SINK_GATE.lock().unwrap();
    obs::trace::install(obs::trace::Sink::Ring);

    let sched = Scheduler::start(Config {
        workers: 4,
        timeout: Duration::from_secs(120),
        store_dir: None,
        store_cap_bytes: 0,
        ..Config::default()
    })
    .expect("start scheduler");
    for kind in [
        EngineKind::Wasmtime,
        EngineKind::Wasm3,
        EngineKind::Wamr,
        EngineKind::Wavm,
    ] {
        sched.submit(JobSpec::exec("crc32", kind, OptLevel::O1, Scale::Test));
    }
    let results = sched.drain_sorted();
    sched.shutdown();
    assert!(results.iter().all(svc::JobResult::ok));

    let trace = obs::trace::drain();
    obs::trace::install(obs::trace::Sink::Null);
    assert_eq!(trace.dropped(), 0, "ring overflow in a small matrix");

    let json = obs::chrome::export_string(&trace);
    let summary = obs::chrome::validate(&json).expect("trace must validate");
    assert_eq!(summary.spans, trace.span_count());
    assert!(summary.max_depth >= 2, "no nesting recorded");
    // 4 workers plus the submitting thread — at least the workers left
    // spans (each ran at least one job).
    assert!(
        summary.tids >= 2,
        "expected spans on several threads, got {}",
        summary.tids
    );
    for name in ["svc.queue.wait", "svc.job.run", "engine.compile"] {
        assert!(
            summary.names.iter().any(|n| n == name),
            "missing span {name:?} in trace"
        );
    }
}
