//! The `wabench-harness` binary: regenerates the paper's tables/figures.
//!
//! ```text
//! wabench-harness <experiment|all> [--scale test|profile|timing] [--jobs N] [--out FILE]
//! ```
//!
//! With `--jobs N` (N > 1) the measurement matrix first runs through the
//! `wabench-svc` scheduler on N workers, then the tables are assembled
//! serially from the primed results — same rows, same order.
//!
//! `--faults PLAN` (or `WABENCH_FAULTS`) arms deterministic fault
//! injection in the warm pass for chaos testing: failed and degraded
//! cells are skipped and recomputed cleanly by the serial pass, so
//! output tables are unaffected. A greppable `resilience:` summary line
//! reports what was injected and recovered. `--store DIR` gives the
//! warm pass an on-disk artifact store (reusing a directory across runs
//! exercises corruption detection/repair).

use harness::parallel::WarmOptions;
use harness::runner::Scale;
use harness::{experiment_list, is_simulated, resolve_alias};

const USAGE: &str =
    "usage: wabench-harness <fig1..fig14|table4|table5|all> [--scale test|profile|timing] [--jobs N] [--out FILE] [--trace-out FILE] [--report] [--faults PLAN] [--store DIR]";

fn usage_exit() -> ! {
    obs::error!("{USAGE}");
    std::process::exit(2);
}

fn parse_scale(s: &str) -> Scale {
    match s {
        "test" => Scale::Test,
        "profile" => Scale::Profile,
        "timing" => Scale::Timing,
        other => {
            obs::error!("unknown scale {other:?} (use test|profile|timing)");
            std::process::exit(2);
        }
    }
}

/// The value of `--flag VALUE`, or usage + exit 2 when the flag is the
/// last argument.
fn flag_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> &'a str {
    *i += 1;
    match args.get(*i) {
        Some(v) => v,
        None => {
            obs::error!("missing value for {flag}");
            usage_exit();
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage_exit();
    }
    let mut target = String::new();
    let mut scale_override: Option<Scale> = None;
    let mut out_file: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut self_report = false;
    let mut jobs = 1usize;
    let mut faults_arg: Option<String> = None;
    let mut store_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => scale_override = Some(parse_scale(flag_value(&args, &mut i, "--scale"))),
            "--out" => out_file = Some(flag_value(&args, &mut i, "--out").to_string()),
            "--trace-out" => {
                trace_out = Some(flag_value(&args, &mut i, "--trace-out").to_string())
            }
            "--report" => self_report = true,
            "--faults" => faults_arg = Some(flag_value(&args, &mut i, "--faults").to_string()),
            "--store" => store_dir = Some(flag_value(&args, &mut i, "--store").to_string()),
            "--jobs" => {
                jobs = flag_value(&args, &mut i, "--jobs")
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| {
                        obs::error!("--jobs needs a positive integer");
                        usage_exit();
                    })
            }
            other => target = other.to_string(),
        }
        i += 1;
    }
    if target.is_empty() {
        usage_exit();
    }
    if trace_out.is_some() || self_report {
        obs::trace::install(obs::trace::Sink::Ring);
    }

    // Default scales: AOT experiments run the short-running
    // configuration (where the paper notes AOT matters most); the
    // rest use the medium scale. Override with --scale.
    let scale_for = |id: &str| {
        let _ = is_simulated(id);
        scale_override.unwrap_or(if id == "fig3" {
            Scale::Test
        } else {
            Scale::Profile
        })
    };

    let ids: Vec<&'static str> = if target == "all" {
        experiment_list().into_iter().map(|(id, _)| id).collect()
    } else {
        match resolve_alias(&target) {
            Some(id) => vec![id],
            None => {
                obs::error!("unknown experiment {target:?}");
                std::process::exit(2);
            }
        }
    };

    let faults = {
        let parsed = match &faults_arg {
            Some(spec) => fault::FaultPlan::parse(spec).map(Some),
            None => fault::FaultPlan::from_env(),
        };
        parsed
            .unwrap_or_else(|e| {
                obs::error!("bad fault plan: {e}");
                usage_exit();
            })
            .map(std::sync::Arc::new)
    };
    if faults.is_some() && jobs <= 1 {
        obs::warn!("--faults only affects the parallel warm pass; use --jobs N (N > 1)");
    }

    if jobs > 1 {
        let matrix: Vec<(&str, Scale)> = ids.iter().map(|id| (*id, scale_for(id))).collect();
        obs::info!("warming measurement matrix on {jobs} workers...");
        if let Some(plan) = &faults {
            obs::warn!("chaos mode: fault injection armed: {plan}");
        }
        let summary = harness::parallel::warm_matrix_opts(
            &matrix,
            &WarmOptions {
                jobs,
                faults: faults.clone(),
                store_dir: store_dir.as_ref().map(std::path::PathBuf::from),
            },
        );
        obs::info!("warmed {} of {} measurements", summary.primed, summary.jobs);
        if faults.is_some() {
            // One greppable line the chaos smoke asserts against.
            let r = &summary.resilience;
            println!(
                "resilience: jobs={} primed={} degraded={} failed={} retries={} fallbacks={} repairs={} breaker_fast_fails={} injected={}",
                summary.jobs,
                summary.primed,
                summary.degraded.len(),
                summary.failed.len(),
                r.retries,
                r.compile_fallbacks,
                r.store_repairs,
                r.breaker_fast_fails,
                summary.injected
            );
        }
    }

    let mut output = String::new();
    let run_one = |id: &str, output: &mut String| {
        let (_, f) = experiment_list()
            .into_iter()
            .find(|(eid, _)| *eid == id)
            .expect("known experiment");
        let scale = scale_for(id);
        obs::info!("running {id} ({scale:?} scale)...");
        let _span = obs::span!("harness.figure", id = id, scale = format_args!("{scale:?}"));
        for report in f(scale) {
            let md = report.to_markdown();
            print!("{md}");
            output.push_str(&md);
        }
    };

    if target == "all" {
        output.push_str(
            "# EXPERIMENTS — paper vs. measured\n\n\
             Regenerated by `cargo run -p wabench-harness --release -- all`.\n\
             Each table carries the paper's reported numbers in a trailing note;\n\
             absolute values are not comparable (different substrate), shapes are.\n\n",
        );
        output.push_str(
            "Parallel regeneration: with `--jobs N` the measurement matrices for\n\
             fig1–fig4 and fig6–fig9 run through the wabench-svc scheduler on N\n\
             workers; tables are then assembled in deterministic serial order, so\n\
             their structure is independent of how jobs interleaved. fig5 (memory)\n\
             always runs serially. The simulated figures (fig6–fig9) are\n\
             bit-identical to a serial run; wall-clock tables vary run to run\n\
             either way.\n\n",
        );
        if jobs > 1 {
            output.push_str(&format!(
                "This file was regenerated with `--jobs {jobs}`.\n\n"
            ));
        }
        for id in &ids {
            run_one(id, &mut output);
        }
        output.push_str(&harness::static_analysis_section());
        output.push_str(&harness::check_elimination_section());
        output.push_str(&harness::observability_section());
        output.push_str(&harness::profiling_section());
        let path = out_file.unwrap_or_else(|| "EXPERIMENTS.md".to_string());
        std::fs::write(&path, &output).expect("write experiments file");
        obs::info!("wrote {path}");
    } else {
        run_one(ids[0], &mut output);
        if let Some(path) = out_file {
            std::fs::write(&path, &output).expect("write output file");
        }
    }

    if trace_out.is_some() || self_report {
        let trace = obs::trace::drain();
        obs::trace::install(obs::trace::Sink::Null);
        if let Some(path) = trace_out {
            let path = std::path::PathBuf::from(path);
            obs::chrome::export_file(&trace, &path).expect("write trace file");
            obs::info!("wrote {} ({} spans)", path.display(), trace.span_count());
        }
        if self_report {
            eprint!("{}", obs::report::render(&trace));
        }
    }
}
