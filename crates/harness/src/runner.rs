//! Measurement machinery shared by all experiments.
//!
//! All caches here are *serial* state feeding the table-assembly code.
//! The parallel path (`crate::parallel`) primes them from scheduler
//! results before assembly starts, so `--jobs N` runs produce tables
//! with the same structure, in the same deterministic row order, as
//! serial runs — only the measurements were taken concurrently.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use archsim::{ArchSim, Counters};
use engines::account::MemoryReport;
use engines::{Engine, EngineKind};
use suite::Benchmark;
use svc::hash::fnv64;
use wacc::OptLevel;
use wasi_rt::WasiCtx;
use wasm_core::types::Value;

/// Which workload scale an experiment runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny (CI-friendly smoke runs).
    Test,
    /// Medium — the default for the harness.
    Profile,
    /// Large — closest to the paper's full workloads.
    Timing,
}

impl Scale {
    /// The scale argument for a benchmark.
    pub fn arg(self, b: &Benchmark) -> i32 {
        match self {
            Scale::Test => b.sizes.test,
            Scale::Profile => b.sizes.profile,
            Scale::Timing => b.sizes.timing,
        }
    }
}

/// Compiled-bytes cache: compiling 50 benchmarks once per (name, level).
/// `Arc<[u8]>` so a cache hit is a refcount bump, not a byte copy —
/// modules reach hundreds of KiB and every experiment re-requests them.
type BytesCache = HashMap<(&'static str, OptLevel), Arc<[u8]>>;
static CACHE: Mutex<Option<BytesCache>> = Mutex::new(None);

/// Compiles a benchmark (cached).
pub fn wasm_bytes(b: &Benchmark, level: OptLevel) -> Arc<[u8]> {
    let mut guard = CACHE.lock().expect("cache lock");
    let cache = guard.get_or_insert_with(HashMap::new);
    cache
        .entry((b.name, level))
        .or_insert_with(|| {
            let _span = obs::span!("harness.compile", bench = b.name, level = level);
            b.compile(level).expect("registered benchmarks compile").into()
        })
        .clone()
}

/// Pre-seeds the compiled-bytes cache (parallel warm pass).
pub fn prime_wasm_bytes(name: &'static str, level: OptLevel, bytes: Arc<[u8]>) {
    CACHE
        .lock()
        .expect("cache lock")
        .get_or_insert_with(HashMap::new)
        .insert((name, level), bytes);
}

/// A timed engine execution.
#[derive(Debug, Clone, Copy)]
pub struct ExecTime {
    /// Seconds spent in decode+validate+compile/translate.
    pub compile_s: f64,
    /// Seconds spent executing (instantiate + run).
    pub exec_s: f64,
}

impl ExecTime {
    /// Total runtime seconds, the paper's "execution time".
    pub fn total(&self) -> f64 {
        self.compile_s + self.exec_s
    }
}

/// Measurement key: (engine, FNV-1a of the wasm bytes, scale argument).
type MeasureKey = (EngineKind, u64, i32);

/// Measurements primed by the parallel warm pass. The serial path only
/// *reads* these — a serial run with `--jobs 1` never populates them,
/// so its behavior is exactly the pre-service harness.
static EXEC_PRIMED: Mutex<Option<HashMap<MeasureKey, ExecTime>>> = Mutex::new(None);
static AOT_PRIMED: Mutex<Option<HashMap<MeasureKey, (f64, ExecTime)>>> = Mutex::new(None);

/// Pre-seeds an engine execution measurement. The caller vouches that
/// the measured run verified its checksum (scheduler jobs do).
pub fn prime_exec(kind: EngineKind, bytes_hash: u64, n: i32, t: ExecTime) {
    EXEC_PRIMED
        .lock()
        .expect("exec cache lock")
        .get_or_insert_with(HashMap::new)
        .insert((kind, bytes_hash, n), t);
}

/// Pre-seeds an AOT measurement (precompile seconds + load/exec split).
pub fn prime_exec_aot(kind: EngineKind, bytes_hash: u64, n: i32, aot_s: f64, t: ExecTime) {
    AOT_PRIMED
        .lock()
        .expect("aot cache lock")
        .get_or_insert_with(HashMap::new)
        .insert((kind, bytes_hash, n), (aot_s, t));
}

/// Runs a benchmark on an engine, returning wall-clock components and
/// verifying the checksum. Consumes a primed measurement when the
/// parallel warm pass already ran this exact (engine, module, n).
///
/// # Panics
///
/// Panics if the engine produces a wrong checksum (measurement results
/// would be meaningless).
pub fn run_engine(kind: EngineKind, bytes: &[u8], n: i32, expected: i32) -> ExecTime {
    if let Some(t) = EXEC_PRIMED
        .lock()
        .expect("exec cache lock")
        .as_ref()
        .and_then(|m| m.get(&(kind, fnv64(bytes), n)).copied())
    {
        return t;
    }
    let _span = obs::span!("harness.cell", engine = kind.name(), n = n);
    let engine = Engine::new(kind);
    let t0 = std::time::Instant::now();
    let compiled = engine.compile(bytes).expect("compile");
    let compile_s = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    let mut inst = compiled
        .instantiate(&wasi_rt::imports(), Box::new(WasiCtx::new()))
        .expect("instantiate");
    let out = inst.invoke("run", &[Value::I32(n)]).expect("run");
    let exec_s = t1.elapsed().as_secs_f64();
    assert_eq!(out, Some(Value::I32(expected)), "{kind} checksum");
    ExecTime { compile_s, exec_s }
}

/// Runs a benchmark on an engine with AOT: precompile once (timed
/// separately), then load + execute. Consumes a primed measurement when
/// the parallel warm pass already ran this exact (engine, module, n).
pub fn run_engine_aot(kind: EngineKind, bytes: &[u8], n: i32, expected: i32) -> (f64, ExecTime) {
    if let Some(t) = AOT_PRIMED
        .lock()
        .expect("aot cache lock")
        .as_ref()
        .and_then(|m| m.get(&(kind, fnv64(bytes), n)).copied())
    {
        return t;
    }
    let _span = obs::span!("harness.cell.aot", engine = kind.name(), n = n);
    let engine = Engine::new(kind);
    let t0 = std::time::Instant::now();
    let artifact = engine.precompile(bytes).expect("precompile");
    let aot_compile_s = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    let compiled = engine.load_artifact(&artifact).expect("load artifact");
    let load_s = t1.elapsed().as_secs_f64();
    let t2 = std::time::Instant::now();
    let mut inst = compiled
        .instantiate(&wasi_rt::imports(), Box::new(WasiCtx::new()))
        .expect("instantiate");
    let out = inst.invoke("run", &[Value::I32(n)]).expect("run");
    let exec_s = t2.elapsed().as_secs_f64();
    assert_eq!(out, Some(Value::I32(expected)), "{kind} AOT checksum");
    (
        aot_compile_s,
        ExecTime {
            compile_s: load_s,
            exec_s,
        },
    )
}

/// Times the native implementation.
pub fn run_native(b: &Benchmark, n: i32) -> f64 {
    let t0 = std::time::Instant::now();
    let v = (b.native)(n);
    let dt = t0.elapsed().as_secs_f64();
    std::hint::black_box(v);
    dt
}

/// Cache of profiled counters: the four architectural experiments reuse
/// the same runs. Keyed by the module's content hash rather than its
/// full bytes — same lookups, 8 bytes per key instead of the module.
#[allow(clippy::type_complexity)]
static PROFILE_CACHE: Mutex<Option<HashMap<(String, u64, i32), Counters>>> = Mutex::new(None);

fn profile_cache_get(key: &(String, u64, i32)) -> Option<Counters> {
    PROFILE_CACHE
        .lock()
        .expect("profile cache lock")
        .as_ref()
        .and_then(|m| m.get(key).copied())
}

fn profile_cache_put(key: (String, u64, i32), c: Counters) {
    PROFILE_CACHE
        .lock()
        .expect("profile cache lock")
        .get_or_insert_with(HashMap::new)
        .insert(key, c);
}

/// Pre-seeds a profiled-counter measurement. `who` is an engine name or
/// `"native"` for the native baseline run.
pub fn prime_profiled(who: &str, bytes_hash: u64, n: i32, c: Counters) {
    profile_cache_put((who.to_string(), bytes_hash, n), c);
}

/// Profiled run: compile (with cost replay for compiling engines) and
/// execute under the architectural simulator. Results are cached; the
/// four architectural experiments share the same runs.
pub fn run_profiled(kind: EngineKind, bytes: &[u8], n: i32) -> Counters {
    let key = (kind.name().to_string(), fnv64(bytes), n);
    if let Some(c) = profile_cache_get(&key) {
        return c;
    }
    let mut span = obs::span!("harness.cell.profiled", engine = kind.name(), n = n);
    let mut sim = ArchSim::new();
    let engine = Engine::new(kind);
    let compiled = engine.compile_profiled(bytes, &mut sim).expect("compile");
    let mut inst = compiled
        .instantiate(&wasi_rt::imports(), Box::new(WasiCtx::new()))
        .expect("instantiate");
    inst.invoke_profiled("run", &[Value::I32(n)], &mut sim)
        .expect("run");
    let c = sim.counters();
    // The simulator started cold inside this span, so its totals are
    // exactly this cell's delta — and the attributed child spans
    // (compile.profiled + execute) partition it.
    span.set_counters(c.into());
    profile_cache_put(key, c);
    c
}

/// The native baseline for architectural experiments: best-code (LLVM
/// tier) execution with *no* compilation events — the steady-state
/// instruction stream a native binary would retire.
pub fn run_native_profiled(bytes: &[u8], n: i32) -> Counters {
    let key = ("native".to_string(), fnv64(bytes), n);
    if let Some(c) = profile_cache_get(&key) {
        return c;
    }
    let mut span = obs::span!("harness.cell.native", n = n);
    let mut sim = ArchSim::new();
    let engine = Engine::new(EngineKind::Wavm);
    let compiled = engine.compile(bytes).expect("compile");
    let mut inst = compiled
        .instantiate(&wasi_rt::imports(), Box::new(WasiCtx::new()))
        .expect("instantiate");
    inst.invoke_profiled("run", &[Value::I32(n)], &mut sim)
        .expect("run");
    let c = sim.counters();
    span.set_counters(c.into());
    profile_cache_put(key, c);
    c
}

/// Runs and reports the instance's memory breakdown.
pub fn run_memory(kind: EngineKind, bytes: &[u8], n: i32) -> MemoryReport {
    let _span = obs::span!("harness.cell.memory", engine = kind.name(), n = n);
    let engine = Engine::new(kind);
    let compiled = engine.compile(bytes).expect("compile");
    let mut inst = compiled
        .instantiate(&wasi_rt::imports(), Box::new(WasiCtx::new()))
        .expect("instantiate");
    inst.invoke("run", &[Value::I32(n)]).expect("run");
    inst.memory_report()
}

/// Native process baseline RSS for MRSS normalization (code + libc +
/// allocator of a small static binary).
pub const NATIVE_BASE_RSS: usize = 1 << 21; // 2 MiB

/// The paper's engine presentation order.
pub fn engines() -> [EngineKind; 5] {
    EngineKind::all()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crc() -> &'static Benchmark {
        suite::by_name("crc32").expect("registered")
    }

    #[test]
    fn engine_run_verifies_checksum() {
        let b = crc();
        let n = b.sizes.test;
        let expected = (b.native)(n);
        let bytes = wasm_bytes(b, OptLevel::O2);
        let t = run_engine(EngineKind::Wasmtime, &bytes, n, expected);
        assert!(t.compile_s > 0.0 && t.exec_s > 0.0);
    }

    #[test]
    fn aot_split_reported() {
        let b = crc();
        let n = b.sizes.test;
        let expected = (b.native)(n);
        let bytes = wasm_bytes(b, OptLevel::O2);
        let (aot_s, t) = run_engine_aot(EngineKind::Wavm, &bytes, n, expected);
        assert!(aot_s > 0.0);
        assert!(t.exec_s > 0.0);
    }

    #[test]
    fn profiled_counters_nonzero() {
        let b = crc();
        let bytes = wasm_bytes(b, OptLevel::O2);
        let c = run_profiled(EngineKind::Wamr, &bytes, b.sizes.test);
        assert!(c.instructions > 0);
        assert!(c.cycles > 0);
        let native = run_native_profiled(&bytes, b.sizes.test);
        assert!(native.instructions < c.instructions);
    }

    #[test]
    fn memory_report_nonzero() {
        let b = crc();
        let bytes = wasm_bytes(b, OptLevel::O2);
        let r = run_memory(EngineKind::Wasm3, &bytes, b.sizes.test);
        assert!(r.linear_memory_peak > 0);
        assert!(r.total() > r.linear_memory_peak);
    }
}
