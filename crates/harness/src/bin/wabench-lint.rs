//! `wabench-lint`: run the `wabench-analysis` source lints over every
//! WaCC benchmark program of the suite.
//!
//! ```text
//! wabench-lint [--programs DIR] [--md]
//! ```
//!
//! Each `.wc` file is composed with the shared suite helpers
//! ([`suite::COMMON`]) exactly as `Benchmark::full_source` does, linted,
//! and findings are windowed back to the program's own lines so every
//! report carries the real file and line. Exit status: `0` when every
//! program is clean, `1` when any lint fires, `2` on compile or I/O
//! errors.

use std::path::{Path, PathBuf};

use analysis::lint;
use harness::report::Report;

fn programs_dir(arg: Option<String>) -> PathBuf {
    if let Some(dir) = arg {
        return PathBuf::from(dir);
    }
    // The harness crate lives in crates/harness; the suite's programs
    // are its sibling. Resolved at compile time so the binary works from
    // any working directory inside the repo.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../suite/programs")
}

fn wc_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            files.extend(wc_files(&path)?);
        } else if path.extension().is_some_and(|e| e == "wc") {
            files.push(path);
        }
    }
    files.sort();
    Ok(files)
}

fn main() {
    let mut markdown = false;
    let mut dir_arg = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--md" => markdown = true,
            "--programs" => dir_arg = args.next(),
            other => {
                eprintln!("usage: wabench-lint [--programs DIR] [--md]; got {other:?}");
                std::process::exit(2);
            }
        }
    }

    let dir = programs_dir(dir_arg);
    let files = wc_files(&dir).unwrap_or_else(|e| {
        eprintln!("{}: {e}", dir.display());
        std::process::exit(2);
    });
    if files.is_empty() {
        eprintln!("{}: no .wc programs found", dir.display());
        std::process::exit(2);
    }

    let mut findings = 0usize;
    let mut errors = 0usize;
    let mut report = Report::new(
        "lint",
        "wabench-lint findings",
        vec!["file".into(), "line".into(), "finding".into()],
    );
    for path in &files {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{}: {e}", path.display());
                errors += 1;
                continue;
            }
        };
        // Compose exactly like Benchmark::full_source, then window the
        // findings back to the program's own lines.
        let composed = format!("{}\n{}", suite::COMMON, src);
        let offset = (composed.lines().count() - src.lines().count()) as u32;
        let shown = path.strip_prefix(&dir).unwrap_or(path);
        match lint::lint_source(&composed) {
            Ok(diags) => {
                for d in lint::window(diags, offset, src.lines().count() as u32) {
                    println!("{}:{}: {d}", shown.display(), d.line);
                    report.row(vec![
                        shown.display().to_string(),
                        d.line.to_string(),
                        d.to_string(),
                    ]);
                    findings += 1;
                }
            }
            Err(e) => {
                eprintln!("{}: compile error: {e}", shown.display());
                errors += 1;
            }
        }
    }

    if markdown {
        report.note(format!(
            "{} programs swept, {findings} finding(s), {errors} error(s)",
            files.len()
        ));
        print!("{}", report.to_markdown());
    }
    if errors > 0 {
        std::process::exit(2);
    }
    if findings > 0 {
        eprintln!("wabench-lint: {findings} finding(s) across {} programs", files.len());
        std::process::exit(1);
    }
    eprintln!("wabench-lint: {} programs clean", files.len());
}
