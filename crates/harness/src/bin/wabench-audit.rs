//! `wabench-audit`: static range-analysis audit over the benchmark suite.
//!
//! ```text
//! wabench-audit [--bench NAME] [--level O2] [--md] [--min-eliminated N]
//! ```
//!
//! Every suite program is compiled at each requested WaCC opt level,
//! lowered to the register IR, and analyzed: the report gives, per
//! module, the runtime safety checks found, how many the aggressive JIT
//! tier eliminates (each elimination carries a proof obligation), the
//! residual checks, blocks the analysis proves unreachable, sites proven
//! to *always* trap at the declared minimum memory, and constant-address
//! accesses (foldable loads). After elimination every proof obligation is
//! independently re-derived by `jit::verify::check_proofs`; any rejection
//! is a soundness violation and fails the run.
//!
//! Exit status: `0` clean, `1` on verifier violations or an unmet
//! `--min-eliminated` floor, `2` on compile errors.

use analysis::range::AuditFacts;
use engines::jit::{lower, opt, verify};
use harness::report::Report;
use wacc::OptLevel;

struct ModuleAudit {
    funcs: usize,
    facts: AuditFacts,
    eliminated: u64,
    violations: Vec<String>,
}

/// Lowers, audits, optimizes, and re-verifies every function of `module`.
fn audit_module(module: &wasm_core::Module) -> Result<ModuleAudit, String> {
    let module_rc = std::rc::Rc::new(module.clone());
    let config = engines::jit::Tier::Llvm.pass_config();
    let mut out = ModuleAudit {
        funcs: module.funcs.len(),
        facts: AuditFacts::default(),
        eliminated: 0,
        violations: Vec::new(),
    };
    for (i, f) in module.funcs.iter().enumerate() {
        let mut rf = lower::lower(&module_rc, f).map_err(|e| format!("func {i}: {e:?}"))?;
        // Audit the unoptimized lowering: these are the checks the
        // module *has*; elimination below reports what the JIT removes.
        let facts = verify::audit_rfunc(&rf);
        out.facts.blocks += facts.blocks;
        out.facts.unreachable_blocks += facts.unreachable_blocks;
        out.facts.checks_total += facts.checks_total;
        out.facts.checks_provable += facts.checks_provable;
        out.facts.always_trapping += facts.always_trapping;
        out.facts.const_addr_loads += facts.const_addr_loads;
        let stats = opt::optimize(&mut rf, &config);
        out.eliminated += stats.checks_eliminated;
        for v in verify::check_proofs(&rf) {
            out.violations.push(format!("func {i}: {v}"));
        }
    }
    Ok(out)
}

fn main() {
    let mut markdown = false;
    let mut bench_filter: Option<String> = None;
    let mut level_filter: Option<String> = None;
    let mut min_eliminated: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--md" => markdown = true,
            "--bench" => bench_filter = args.next(),
            "--level" => level_filter = args.next(),
            "--min-eliminated" => {
                min_eliminated = args.next().and_then(|v| v.parse().ok());
                if min_eliminated.is_none() {
                    eprintln!("--min-eliminated needs an integer");
                    std::process::exit(2);
                }
            }
            other => {
                eprintln!(
                    "usage: wabench-audit [--bench NAME] [--level O0..O3] [--md] \
                     [--min-eliminated N]; got {other:?}"
                );
                std::process::exit(2);
            }
        }
    }

    let levels: Vec<OptLevel> = OptLevel::all()
        .into_iter()
        .filter(|l| level_filter.as_deref().is_none_or(|want| l.to_string() == want))
        .collect();
    if levels.is_empty() {
        eprintln!("no such opt level: {}", level_filter.unwrap_or_default());
        std::process::exit(2);
    }

    let mut report = Report::new(
        "audit",
        "wabench-audit: static checks and JIT check elimination",
        vec![
            "bench".into(),
            "level".into(),
            "funcs".into(),
            "checks".into(),
            "eliminated".into(),
            "residual".into(),
            "unreachable-blocks".into(),
            "always-trapping".into(),
            "const-addr".into(),
        ],
    );

    let mut modules = 0u64;
    let mut total_checks = 0u64;
    let mut total_eliminated = 0u64;
    let mut violations = 0u64;
    let mut errors = 0u64;
    for b in suite::all() {
        if bench_filter.as_deref().is_some_and(|want| want != b.name) {
            continue;
        }
        for &level in &levels {
            let bytes = match b.compile(level) {
                Ok(bytes) => bytes,
                Err(e) => {
                    eprintln!("{} {level}: compile error: {e}", b.name);
                    errors += 1;
                    continue;
                }
            };
            let module = match wasm_core::decode::decode(&bytes) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("{} {level}: decode error: {e:?}", b.name);
                    errors += 1;
                    continue;
                }
            };
            let audit = match audit_module(&module) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("{} {level}: {e}", b.name);
                    errors += 1;
                    continue;
                }
            };
            modules += 1;
            total_checks += audit.facts.checks_total;
            total_eliminated += audit.eliminated;
            violations += audit.violations.len() as u64;
            for v in &audit.violations {
                eprintln!("{} {level}: VIOLATION: {v}", b.name);
            }
            let residual = audit.facts.checks_total.saturating_sub(audit.eliminated);
            report.row(vec![
                b.name.to_string(),
                level.to_string(),
                audit.funcs.to_string(),
                audit.facts.checks_total.to_string(),
                audit.eliminated.to_string(),
                residual.to_string(),
                audit.facts.unreachable_blocks.to_string(),
                audit.facts.always_trapping.to_string(),
                audit.facts.const_addr_loads.to_string(),
            ]);
        }
    }

    obs::metrics::counter("audit.modules").add(modules);
    obs::metrics::counter("audit.checks.total").add(total_checks);
    obs::metrics::counter("audit.checks.eliminated").add(total_eliminated);
    obs::metrics::counter("audit.violations").add(violations);

    report.note(format!(
        "{modules} module(s) audited: {total_checks} check(s), \
         {total_eliminated} eliminated with proofs, {violations} violation(s)"
    ));
    if markdown {
        print!("{}", report.to_markdown());
    } else {
        eprintln!(
            "wabench-audit: {modules} module(s), {total_checks} check(s), \
             {total_eliminated} eliminated, {violations} violation(s)"
        );
    }

    if errors > 0 {
        std::process::exit(2);
    }
    if violations > 0 {
        eprintln!("wabench-audit: {violations} proof violation(s)");
        std::process::exit(1);
    }
    if let Some(floor) = min_eliminated {
        if total_eliminated < floor {
            eprintln!("wabench-audit: eliminated {total_eliminated} < required floor {floor}");
            std::process::exit(1);
        }
    }
}
