//! `wabench-run`: execute a `.wasm` file — or a registered benchmark by
//! name — on a chosen engine with the in-memory WASI host; the
//! reproduction's standalone-runtime CLI.
//!
//! ```text
//! wabench-run module.wasm [--engine E] [--invoke NAME] [--stdin FILE]
//! wabench-run <benchmark>  [--engine E] [--level O0..O3] [--scale test|profile|timing] [--jobs N]
//! ```
//!
//! Either form accepts `--trace-out FILE` (write a Chrome trace-event
//! JSON loadable in Perfetto / `chrome://tracing`) and `--report`
//! (print a hierarchical self-time report to stderr). Benchmark mode
//! with `--jobs N` routes N copies of the run through the `wabench-svc`
//! scheduler so the trace includes queue-wait and job-run phases.

use std::path::PathBuf;
use std::time::Duration;

use engines::{Backend, Engine, EngineKind};
use svc::scheduler::{Config, Scheduler};
use svc::{JobSpec, Scale as JobScale};
use wacc::OptLevel;
use wasi_rt::WasiCtx;
use wasm_core::types::Value;

const USAGE: &str = "usage: wabench-run <module.wasm|benchmark> [--engine E] [--invoke NAME] \
     [--stdin FILE] [--level O0..O3] [--scale test|profile|timing] [--jobs N] \
     [--trace-out FILE] [--report]";

struct Opts {
    target: String,
    kind: EngineKind,
    entry: String,
    stdin_file: Option<String>,
    level: OptLevel,
    scale: JobScale,
    jobs: usize,
    trace_out: Option<PathBuf>,
    report: bool,
}

fn parse_engine(s: &str) -> EngineKind {
    match s {
        "wasmtime" => EngineKind::Wasmtime,
        "wavm" => EngineKind::Wavm,
        "wasmer" => EngineKind::Wasmer(Backend::Cranelift),
        "wasmer-singlepass" => EngineKind::Wasmer(Backend::Singlepass),
        "wasmer-llvm" => EngineKind::Wasmer(Backend::Llvm),
        "wasm3" => EngineKind::Wasm3,
        "wamr" => EngineKind::Wamr,
        other => {
            obs::error!("unknown engine {other:?}");
            std::process::exit(2);
        }
    }
}

fn parse_opts() -> Opts {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Opts {
        target: String::new(),
        kind: EngineKind::Wasmtime,
        entry: "_start".to_string(),
        stdin_file: None,
        level: OptLevel::O2,
        scale: JobScale::Test,
        jobs: 0,
        trace_out: None,
        report: false,
    };
    let mut i = 0;
    let value = |args: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| {
            obs::error!("missing value for {flag}");
            std::process::exit(2);
        })
    };
    while i < args.len() {
        match args[i].as_str() {
            "--engine" => opts.kind = parse_engine(&value(&args, &mut i, "--engine")),
            "--invoke" => opts.entry = value(&args, &mut i, "--invoke"),
            "--stdin" => opts.stdin_file = Some(value(&args, &mut i, "--stdin")),
            "--level" => {
                opts.level = match value(&args, &mut i, "--level").as_str() {
                    "O0" | "o0" | "0" => OptLevel::O0,
                    "O1" | "o1" | "1" => OptLevel::O1,
                    "O2" | "o2" | "2" => OptLevel::O2,
                    "O3" | "o3" | "3" => OptLevel::O3,
                    other => {
                        obs::error!("unknown opt level {other:?} (use O0..O3)");
                        std::process::exit(2);
                    }
                }
            }
            "--scale" => {
                opts.scale = match value(&args, &mut i, "--scale").as_str() {
                    "test" => JobScale::Test,
                    "profile" => JobScale::Profile,
                    "timing" => JobScale::Timing,
                    other => {
                        obs::error!("unknown scale {other:?} (use test|profile|timing)");
                        std::process::exit(2);
                    }
                }
            }
            "--jobs" => {
                opts.jobs = value(&args, &mut i, "--jobs").parse().unwrap_or_else(|_| {
                    obs::error!("--jobs needs a positive integer");
                    std::process::exit(2);
                })
            }
            "--trace-out" => opts.trace_out = Some(PathBuf::from(value(&args, &mut i, "--trace-out"))),
            "--report" => opts.report = true,
            other if other.starts_with('-') => {
                obs::error!("unknown flag {other:?}");
                obs::error!("{USAGE}");
                std::process::exit(2);
            }
            other => opts.target = other.to_string(),
        }
        i += 1;
    }
    if opts.target.is_empty() {
        obs::error!("{USAGE}");
        std::process::exit(2);
    }
    opts
}

/// File mode: the original `wabench-run module.wasm` behavior.
fn run_file(opts: &Opts) -> i32 {
    let bytes = match std::fs::read(&opts.target) {
        Ok(b) => b,
        Err(e) => {
            obs::error!("{}: {e}", opts.target);
            return 1;
        }
    };
    let engine = Engine::new(opts.kind);
    let module = match engine.compile(&bytes) {
        Ok(m) => m,
        Err(e) => {
            obs::error!("{}: {e}", opts.target);
            return 1;
        }
    };
    let mut ctx = WasiCtx::new();
    if let Some(path) = &opts.stdin_file {
        match std::fs::read(path) {
            Ok(content) => ctx.push_stdin(&content),
            Err(e) => {
                obs::error!("{path}: {e}");
                return 1;
            }
        }
    }
    let mut instance = match module.instantiate(&wasi_rt::imports(), Box::new(ctx)) {
        Ok(i) => i,
        Err(e) => {
            obs::error!("instantiate: {e}");
            return 1;
        }
    };
    let exit_code = match instance.invoke(&opts.entry, &[]) {
        Ok(_) => 0,
        Err(engines::Trap::Exit(code)) => code,
        Err(t) => {
            obs::error!("trap: {t}");
            101
        }
    };
    let ctx = instance
        .host_data()
        .downcast_ref::<WasiCtx>()
        .expect("wasi host data");
    use std::io::Write as _;
    std::io::stdout().write_all(ctx.stdout()).expect("stdout");
    std::io::stderr().write_all(ctx.stderr()).expect("stderr");
    exit_code
}

/// Benchmark mode: compile with WaCC, then either run locally or push
/// through the scheduler.
fn run_bench(opts: &Opts, b: &'static suite::Benchmark) -> i32 {
    let n = opts.scale.arg(b);
    if opts.jobs > 0 {
        let sched = match Scheduler::start(Config {
            workers: opts.jobs,
            timeout: Duration::from_secs(600),
            store_dir: None,
            store_cap_bytes: 0,
            ..Config::default()
        }) {
            Ok(s) => s,
            Err(e) => {
                obs::error!("scheduler: {e}");
                return 1;
            }
        };
        for _ in 0..opts.jobs.max(1) {
            sched.submit(JobSpec::exec(b.name, opts.kind, opts.level, opts.scale));
        }
        let results = sched.drain_sorted();
        sched.shutdown();
        for res in &results {
            if !res.ok() {
                obs::error!("job failed: {:?}", res.status);
                return 1;
            }
        }
        let r = &results[0];
        obs::info!(
            "{} on {} ({:?}, n={n}): compile {:.3} ms, exec {:.3} ms ({} jobs via scheduler)",
            b.name,
            opts.kind.name(),
            opts.level,
            r.compile_s * 1e3,
            r.exec_s * 1e3,
            results.len()
        );
        println!("{}", r.checksum.unwrap_or(0));
        return 0;
    }
    let bytes = match b.compile(opts.level) {
        Ok(b) => b,
        Err(e) => {
            obs::error!("{}: compile: {e}", b.name);
            return 1;
        }
    };
    let engine = Engine::new(opts.kind);
    let t0 = std::time::Instant::now();
    let module = match engine.compile(&bytes) {
        Ok(m) => m,
        Err(e) => {
            obs::error!("{}: {e}", b.name);
            return 1;
        }
    };
    let compile_s = t0.elapsed().as_secs_f64();
    let mut instance = match module.instantiate(&wasi_rt::imports(), Box::new(WasiCtx::new())) {
        Ok(i) => i,
        Err(e) => {
            obs::error!("instantiate: {e}");
            return 1;
        }
    };
    let t1 = std::time::Instant::now();
    let out = match instance.invoke("run", &[Value::I32(n)]) {
        Ok(v) => v,
        Err(t) => {
            obs::error!("trap: {t}");
            return 101;
        }
    };
    let exec_s = t1.elapsed().as_secs_f64();
    let got = match out {
        Some(Value::I32(v)) => v,
        other => {
            obs::error!("run() returned {other:?}");
            return 1;
        }
    };
    let expected = (b.native)(n);
    if got != expected {
        obs::error!("{}: checksum mismatch: got {got}, want {expected}", b.name);
        return 1;
    }
    obs::info!(
        "{} on {} ({:?}, n={n}): compile {:.3} ms, exec {:.3} ms, checksum ok",
        b.name,
        opts.kind.name(),
        opts.level,
        compile_s * 1e3,
        exec_s * 1e3
    );
    println!("{got}");
    0
}

fn main() {
    let opts = parse_opts();
    let tracing = opts.trace_out.is_some() || opts.report;
    if tracing {
        obs::trace::install(obs::trace::Sink::Ring);
    }
    let code = {
        let _span = obs::span!("run", target = opts.target);
        match suite::by_name(&opts.target) {
            Some(b) => run_bench(&opts, b),
            None => run_file(&opts),
        }
    };
    if tracing {
        let trace = obs::trace::drain();
        obs::trace::install(obs::trace::Sink::Null);
        if let Some(path) = &opts.trace_out {
            match obs::chrome::export_file(&trace, path) {
                Ok(()) => obs::info!("wrote {} ({} spans)", path.display(), trace.span_count()),
                Err(e) => {
                    obs::error!("{}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
        if opts.report {
            eprint!("{}", obs::report::render(&trace));
        }
    }
    std::process::exit(code);
}
