//! `wabench-run`: execute a `.wasm` file on a chosen engine with the
//! in-memory WASI host — the reproduction's standalone-runtime CLI.
//!
//! ```text
//! wabench-run module.wasm [--engine wasmtime|wavm|wasmer|wasm3|wamr] [--invoke NAME] [--stdin FILE]
//! ```

use engines::{Backend, Engine, EngineKind};
use wasi_rt::WasiCtx;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut kind = EngineKind::Wasmtime;
    let mut entry = "_start".to_string();
    let mut stdin_file: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--engine" => {
                i += 1;
                kind = match args[i].as_str() {
                    "wasmtime" => EngineKind::Wasmtime,
                    "wavm" => EngineKind::Wavm,
                    "wasmer" => EngineKind::Wasmer(Backend::Cranelift),
                    "wasmer-singlepass" => EngineKind::Wasmer(Backend::Singlepass),
                    "wasmer-llvm" => EngineKind::Wasmer(Backend::Llvm),
                    "wasm3" => EngineKind::Wasm3,
                    "wamr" => EngineKind::Wamr,
                    other => {
                        eprintln!("unknown engine {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--invoke" => {
                i += 1;
                entry = args[i].clone();
            }
            "--stdin" => {
                i += 1;
                stdin_file = Some(args[i].clone());
            }
            other => file = Some(other.to_string()),
        }
        i += 1;
    }
    let Some(file) = file else {
        eprintln!("usage: wabench-run module.wasm [--engine E] [--invoke NAME] [--stdin FILE]");
        std::process::exit(2);
    };
    let bytes = std::fs::read(&file).unwrap_or_else(|e| {
        eprintln!("{file}: {e}");
        std::process::exit(1);
    });
    let engine = Engine::new(kind);
    let module = engine.compile(&bytes).unwrap_or_else(|e| {
        eprintln!("{file}: {e}");
        std::process::exit(1);
    });
    let mut ctx = WasiCtx::new();
    if let Some(path) = stdin_file {
        let content = std::fs::read(&path).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        });
        ctx.push_stdin(&content);
    }
    let mut instance = module
        .instantiate(&wasi_rt::imports(), Box::new(ctx))
        .unwrap_or_else(|e| {
            eprintln!("instantiate: {e}");
            std::process::exit(1);
        });
    let exit_code = match instance.invoke(&entry, &[]) {
        Ok(_) => 0,
        Err(engines::Trap::Exit(code)) => code,
        Err(t) => {
            eprintln!("trap: {t}");
            101
        }
    };
    let ctx = instance
        .host_data()
        .downcast_ref::<WasiCtx>()
        .expect("wasi host data");
    use std::io::Write as _;
    std::io::stdout().write_all(ctx.stdout()).expect("stdout");
    std::io::stderr().write_all(ctx.stderr()).expect("stderr");
    std::process::exit(exit_code);
}
