//! The paper's figure matrices as *data*: which benchmark × engine ×
//! opt-level × measurement-mode cells each figure sweeps.
//!
//! The experiment drivers in [`crate::experiments`] iterate these cells
//! serially with measurement fidelity; the load generator draws from
//! the same matrices to build a realistic service job mix. Keeping one
//! definition here means the two cannot drift: a cell the load
//! generator stresses is a cell a figure actually measures.

use engines::{Backend, EngineKind};
use svc::job::{JobMode, JobSpec, Scale};
use wacc::OptLevel;

/// One schedulable cell of a figure's sweep. Scale and warm/cold are
/// run-level choices, not part of the matrix (see [`MatrixCell::spec`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixCell {
    /// Registered benchmark name.
    pub benchmark: &'static str,
    /// Engine the cell runs on.
    pub engine: EngineKind,
    /// WaCC optimization level.
    pub level: OptLevel,
    /// Measurement mode (Exec for wall-clock figures, ExecAot for the
    /// AOT figure, Profiled for the architectural ones).
    pub mode: JobMode,
}

impl MatrixCell {
    /// Converts the cell into a service job at the given scale.
    pub fn spec(&self, scale: Scale, warm: bool) -> JobSpec {
        JobSpec {
            benchmark: self.benchmark.to_string(),
            engine: self.engine,
            level: self.level,
            scale,
            mode: self.mode,
            warm,
        }
    }

    /// The `engine × level` cell label BENCH artifacts aggregate on
    /// (benchmarks within a cell share a latency distribution), e.g.
    /// `Wasmtime/-O2`.
    pub fn cell_key(&self) -> String {
        format!("{}/{}", self.engine.name(), self.level)
    }
}

/// Preset names accepted by [`preset`], in presentation order.
pub const PRESETS: [&str; 5] = ["fig1", "fig2", "fig3", "fig4", "arch"];

/// The cells behind a named figure matrix, or `None` for an unknown
/// name. `"arch"` covers the architectural figures 6–9, which all sweep
/// the same engine×benchmark grid under the simulator.
pub fn preset(name: &str) -> Option<Vec<MatrixCell>> {
    let cells = match name {
        // Figure 1: every benchmark on every runtime, O2, wall-clock.
        "fig1" => product(&crate::runner::engines(), &[OptLevel::O2], JobMode::Exec),
        // Figure 2: Wasmer's three JIT backends.
        "fig2" => product(
            &[
                EngineKind::Wasmer(Backend::Singlepass),
                EngineKind::Wasmer(Backend::Cranelift),
                EngineKind::Wasmer(Backend::Llvm),
            ],
            &[OptLevel::O2],
            JobMode::Exec,
        ),
        // Figure 3: AOT compile/load split on the compiling runtimes.
        "fig3" => product(
            &[
                EngineKind::Wasmtime,
                EngineKind::Wavm,
                EngineKind::Wasmer(Backend::Cranelift),
            ],
            &[OptLevel::O2],
            JobMode::ExecAot,
        ),
        // Figure 4: the optimization-level sweep on every runtime.
        "fig4" => product(&crate::runner::engines(), &OptLevel::all(), JobMode::Exec),
        // Figures 6–9: simulated architectural counters, every runtime.
        "arch" => product(&crate::runner::engines(), &[OptLevel::O2], JobMode::Profiled),
        _ => return None,
    };
    Some(cells)
}

fn product(engines: &[EngineKind], levels: &[OptLevel], mode: JobMode) -> Vec<MatrixCell> {
    let mut cells = Vec::new();
    for b in suite::all() {
        for engine in engines {
            for level in levels {
                cells.push(MatrixCell {
                    benchmark: b.name,
                    engine: *engine,
                    level: *level,
                    mode,
                });
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_cover_the_figures() {
        let n = suite::all().len();
        assert_eq!(preset("fig1").unwrap().len(), n * 5);
        assert_eq!(preset("fig2").unwrap().len(), n * 3);
        assert_eq!(preset("fig3").unwrap().len(), n * 3);
        assert_eq!(preset("fig4").unwrap().len(), n * 5 * 4);
        assert_eq!(preset("arch").unwrap().len(), n * 5);
        assert!(preset("fig99").is_none());
        for name in PRESETS {
            assert!(preset(name).is_some(), "{name} must resolve");
        }
    }

    #[test]
    fn modes_match_the_figures() {
        assert!(preset("fig1").unwrap().iter().all(|c| c.mode == JobMode::Exec));
        assert!(preset("fig3").unwrap().iter().all(|c| c.mode == JobMode::ExecAot));
        assert!(preset("arch").unwrap().iter().all(|c| c.mode == JobMode::Profiled));
    }

    #[test]
    fn cells_convert_to_jobs() {
        let cell = preset("fig1").unwrap()[0];
        let spec = cell.spec(Scale::Test, true);
        assert_eq!(spec.benchmark, cell.benchmark);
        assert_eq!(spec.mode, JobMode::Exec);
        assert!(spec.warm);
        assert!(cell.cell_key().contains('/'));
    }
}
