//! Statistics helpers used when aggregating benchmark results.

/// Geometric mean of strictly positive values (the paper aggregates
/// normalized results this way).
///
/// Returns 0 for an empty slice.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Minimum (0 for empty).
pub fn min(values: &[f64]) -> f64 {
    values.iter().copied().fold(f64::INFINITY, f64::min).min(f64::MAX)
}

/// Maximum (0 for empty).
pub fn max(values: &[f64]) -> f64 {
    values.iter().copied().fold(0.0, f64::max)
}

/// Sample standard deviation (n−1 denominator); 0 for fewer than two
/// values.
pub fn stddev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// Half-width of an approximate 95% confidence interval on the mean
/// (`2·s/√n`); 0 for fewer than two values. Two runs whose
/// `mean ± half-width` intervals overlap are statistically
/// indistinguishable at this confidence.
pub fn ci95_half_width(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    2.0 * stddev(values) / (values.len() as f64).sqrt()
}

/// Measures `f`'s wall-clock seconds, repeating until the total exceeds
/// `min_total` seconds (or `max_iters`), and returning the minimum
/// single-iteration time.
pub fn time_secs(mut f: impl FnMut(), min_total: f64, max_iters: u32) -> f64 {
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..max_iters {
        let t0 = std::time::Instant::now();
        f();
        let dt = t0.elapsed().as_secs_f64();
        best = best.min(dt);
        total += dt;
        if total >= min_total {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn mean_min_max() {
        let v = [1.0, 2.0, 9.0];
        assert!((mean(&v) - 4.0).abs() < 1e-12);
        assert_eq!(min(&v), 1.0);
        assert_eq!(max(&v), 9.0);
    }

    #[test]
    fn stddev_and_ci() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((stddev(&v) - 2.138089935).abs() < 1e-6);
        assert!((ci95_half_width(&v) - 2.0 * 2.138089935 / 8f64.sqrt()).abs() < 1e-6);
        assert_eq!(stddev(&[3.0]), 0.0);
        assert_eq!(ci95_half_width(&[]), 0.0);
        assert_eq!(stddev(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn timing_returns_positive() {
        let t = time_secs(
            || {
                std::hint::black_box((0..1000).sum::<u64>());
            },
            0.0,
            1,
        );
        assert!(t >= 0.0);
    }
}
