//! Rendering experiment results as aligned Markdown tables, with the
//! paper's reported values alongside for comparison.

use std::fmt::Write as _;

/// One regenerated table/figure.
#[derive(Debug, Clone)]
pub struct Report {
    /// Identifier, e.g. `"Figure 1"`.
    pub id: String,
    /// Title as in the paper.
    pub title: String,
    /// Column headers (first column is the row label).
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-text notes: paper-reported values and interpretation.
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>, header: Vec<String>) -> Report {
        Report {
            id: id.into(),
            title: title.into(),
            header,
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Renders the report as Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}: {}\n", self.id, self.title);
        let widths: Vec<usize> = (0..self.header.len())
            .map(|c| {
                self.rows
                    .iter()
                    .map(|r| r.get(c).map(|s| s.len()).unwrap_or(0))
                    .chain(std::iter::once(self.header[c].len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let fmt_row = |cells: &[String]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, s)| format!("{:width$}", s, width = widths.get(i).copied().unwrap_or(0)))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "{}", fmt_row(&sep));
        for r in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(r));
        }
        for n in &self.notes {
            let _ = writeln!(out, "\n> {n}");
        }
        out.push('\n');
        out
    }
}

/// Formats a ratio like the paper (`1.59x`).
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

/// Formats seconds.
pub fn secs(v: f64) -> String {
    if v < 0.001 {
        format!("{:.1}us", v * 1e6)
    } else if v < 1.0 {
        format!("{:.2}ms", v * 1e3)
    } else {
        format!("{v:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut r = Report::new(
            "Figure 0",
            "demo",
            vec!["bench".into(), "value".into()],
        );
        r.row(vec!["alpha".into(), "1.00x".into()]);
        r.row(vec!["b".into(), "10.00x".into()]);
        r.note("paper reports 2.00x");
        let md = r.to_markdown();
        assert!(md.contains("### Figure 0: demo"));
        assert!(md.contains("| alpha | 1.00x  |"));
        assert!(md.contains("> paper reports"));
    }

    #[test]
    fn formatters() {
        assert_eq!(ratio(1.589), "1.59x");
        assert_eq!(pct(0.1234), "12.34%");
        assert_eq!(secs(0.5), "500.00ms");
        assert_eq!(secs(2.0), "2.00s");
        assert_eq!(secs(0.0000005), "0.5us");
    }
}
