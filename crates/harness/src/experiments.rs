//! The experiment drivers: one function per table/figure in the paper's
//! evaluation (Figures 1–10 plus appendix Figures 11–14, Tables 4–5).

use crate::report::{pct, ratio, secs, Report};
use crate::runner::{self, Scale};
use crate::stats::geomean;
use engines::{Backend, EngineKind};
use suite::{Benchmark, Group};
use wacc::OptLevel;

fn group_benches(group: Group) -> Vec<&'static Benchmark> {
    suite::all().iter().filter(|b| b.group == group).collect()
}

/// Figure 1: normalized execution time of every benchmark on every
/// runtime (baseline: native execution).
pub fn fig1(scale: Scale) -> Vec<Report> {
    let engines = runner::engines();
    let mut header = vec!["benchmark".to_string()];
    header.extend(engines.iter().map(|e| e.name().to_string()));
    let mut report = Report::new(
        "Figure 1",
        "Normalized execution time vs native (lower is better)",
        header,
    );
    let mut per_engine: Vec<Vec<f64>> = vec![Vec::new(); engines.len()];
    let mut slow_max: (f64, String) = (0.0, String::new());
    let mut slow_min: (f64, String) = (f64::INFINITY, String::new());
    for b in suite::all() {
        let n = scale.arg(b);
        let expected = (b.native)(n);
        let bytes = runner::wasm_bytes(b, OptLevel::O2);
        let native_s = crate::stats::time_secs(
            || {
                std::hint::black_box((b.native)(n));
            },
            0.05,
            5,
        );
        let mut row = vec![b.name.to_string()];
        for (i, kind) in engines.iter().enumerate() {
            let t = runner::run_engine(*kind, &bytes, n, expected).total();
            let r = t / native_s;
            per_engine[i].push(r);
            row.push(ratio(r));
            if r > slow_max.0 {
                slow_max = (r, format!("{} on {}", b.name, kind.name()));
            }
            if r < slow_min.0 {
                slow_min = (r, format!("{} on {}", b.name, kind.name()));
            }
        }
        report.row(row);
    }
    let mut geo = vec!["geomean".to_string()];
    for v in &per_engine {
        geo.push(ratio(geomean(v)));
    }
    report.row(geo);
    report.note(format!(
        "extremes: max {} ({}), min {} ({})",
        ratio(slow_max.0),
        slow_max.1,
        ratio(slow_min.0),
        slow_min.1
    ));
    report.note(
        "paper (Finding 1): average slowdown 1.67x (Wasmtime), 3.54x (WAVM), \
         1.59x (Wasmer), 6.99x (Wasm3), 9.57x (WAMR); max 135.11x (WAVM/jpeg), \
         min 1.01x (WAVM/adi)",
    );
    vec![report]
}

/// Figure 2 (+ Figure 11 detail): Wasmer's three JIT backends, normalized
/// to SinglePass.
pub fn fig2(scale: Scale) -> Vec<Report> {
    let backends = [Backend::Singlepass, Backend::Cranelift, Backend::Llvm];
    let mut detail = Report::new(
        "Figure 11",
        "Wasmer backends per benchmark (normalized to SinglePass)",
        vec![
            "benchmark".into(),
            "SinglePass".into(),
            "Cranelift".into(),
            "LLVM".into(),
        ],
    );
    // group -> per-backend ratios
    let mut grouped: Vec<(String, Vec<Vec<f64>>)> = Vec::new();
    for group in Group::all() {
        let mut per_backend: Vec<Vec<f64>> = vec![Vec::new(); 3];
        for b in group_benches(group) {
            let n = scale.arg(b);
            let expected = (b.native)(n);
            let bytes = runner::wasm_bytes(b, OptLevel::O2);
            let times: Vec<f64> = backends
                .iter()
                .map(|bk| {
                    runner::run_engine(EngineKind::Wasmer(*bk), &bytes, n, expected).total()
                })
                .collect();
            let base = times[0];
            let mut row = vec![b.name.to_string()];
            for (i, t) in times.iter().enumerate() {
                per_backend[i].push(t / base);
                row.push(ratio(t / base));
            }
            detail.row(row);
        }
        grouped.push((group.name().to_string(), per_backend));
    }
    let mut summary = Report::new(
        "Figure 2",
        "Wasmer backends, geometric means per suite (normalized to SinglePass)",
        vec![
            "suite".into(),
            "SinglePass".into(),
            "Cranelift".into(),
            "LLVM".into(),
        ],
    );
    let mut all_cl = Vec::new();
    let mut all_ll = Vec::new();
    for (name, per_backend) in &grouped {
        summary.row(vec![
            name.clone(),
            ratio(geomean(&per_backend[0])),
            ratio(geomean(&per_backend[1])),
            ratio(geomean(&per_backend[2])),
        ]);
        all_cl.extend_from_slice(&per_backend[1]);
        all_ll.extend_from_slice(&per_backend[2]);
    }
    summary.row(vec![
        "overall".into(),
        ratio(1.0),
        ratio(geomean(&all_cl)),
        ratio(geomean(&all_ll)),
    ]);
    summary.note(
        "paper (Finding 2): vs SinglePass, Cranelift 1.74x speedup (0.58x time), \
         LLVM 1.43x speedup (0.70x time); Cranelift best on the suites, LLVM best \
         on most whole applications",
    );
    vec![summary, detail]
}

/// Figure 3 (+ Figure 12) and Table 4: AOT compilation.
pub fn fig3_table4(scale: Scale) -> Vec<Report> {
    let jits = [
        EngineKind::Wasmtime,
        EngineKind::Wavm,
        EngineKind::Wasmer(Backend::Cranelift),
    ];
    let mut detail = Report::new(
        "Figure 12",
        "AOT speedup per benchmark (baseline: same engine without AOT)",
        vec![
            "benchmark".into(),
            "Wasmtime".into(),
            "WAVM".into(),
            "Wasmer".into(),
        ],
    );
    let mut table4 = Report::new(
        "Table 4",
        "AOT compilation times (and % of no-AOT total execution time)",
        vec![
            "workload".into(),
            "Wasmtime".into(),
            "WAVM".into(),
            "Wasmer".into(),
        ],
    );
    struct Acc {
        speedups: [Vec<f64>; 3],
        aot_s: [Vec<f64>; 3],
        aot_pct: [Vec<f64>; 3],
    }
    let mut per_group: Vec<(String, Acc)> = Vec::new();
    for group in Group::all() {
        let mut acc = Acc {
            speedups: [Vec::new(), Vec::new(), Vec::new()],
            aot_s: [Vec::new(), Vec::new(), Vec::new()],
            aot_pct: [Vec::new(), Vec::new(), Vec::new()],
        };
        for b in group_benches(group) {
            let n = scale.arg(b);
            let expected = (b.native)(n);
            let bytes = runner::wasm_bytes(b, OptLevel::O2);
            let mut row = vec![b.name.to_string()];
            let mut t4: [String; 3] = Default::default();
            for (i, kind) in jits.iter().enumerate() {
                let jit = runner::run_engine(*kind, &bytes, n, expected);
                let (aot_compile, aot) = runner::run_engine_aot(*kind, &bytes, n, expected);
                let speedup = jit.total() / aot.total();
                acc.speedups[i].push(speedup);
                acc.aot_s[i].push(aot_compile);
                acc.aot_pct[i].push(aot_compile / jit.total());
                row.push(ratio(speedup));
                t4[i] = format!("{} ({})", secs(aot_compile), pct(aot_compile / jit.total()));
            }
            detail.row(row);
            if group == Group::Apps {
                table4.row(vec![b.name.to_string(), t4[0].clone(), t4[1].clone(), t4[2].clone()]);
            }
        }
        per_group.push((group.name().to_string(), acc));
    }
    // Table 4 rows for suite groups (prepend) and average.
    let mut t4_rows: Vec<Vec<String>> = Vec::new();
    let mut avg = [(0.0, 0.0); 3];
    let mut count = 0usize;
    for (name, acc) in &per_group {
        if name != "Whole Applications" {
            let mut row = vec![name.clone()];
            for i in 0..3 {
                row.push(format!(
                    "{} ({})",
                    secs(crate::stats::mean(&acc.aot_s[i])),
                    pct(crate::stats::mean(&acc.aot_pct[i]))
                ));
            }
            t4_rows.push(row);
        }
        for (i, a) in avg.iter_mut().enumerate() {
            a.0 += acc.aot_s[i].iter().sum::<f64>();
            a.1 += acc.aot_pct[i].iter().sum::<f64>();
        }
        count += acc.aot_s[0].len();
    }
    for (idx, row) in t4_rows.into_iter().enumerate() {
        table4.rows.insert(idx, row);
    }
    let mut avg_row = vec!["Average".to_string()];
    for a in avg {
        avg_row.push(format!(
            "{} ({})",
            secs(a.0 / count as f64),
            pct(a.1 / count as f64)
        ));
    }
    table4.row(avg_row);
    table4.note(
        "paper: averages 0.09s (0.67%) Wasmtime, 0.93s (9.52%) WAVM, 0.06s (0.48%) Wasmer",
    );

    let mut fig3 = Report::new(
        "Figure 3",
        "AOT speedup, geometric means per suite (baseline: no AOT)",
        vec![
            "suite".into(),
            "Wasmtime".into(),
            "WAVM".into(),
            "Wasmer".into(),
        ],
    );
    let mut all: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (name, acc) in &per_group {
        fig3.row(vec![
            name.clone(),
            ratio(geomean(&acc.speedups[0])),
            ratio(geomean(&acc.speedups[1])),
            ratio(geomean(&acc.speedups[2])),
        ]);
        for (i, a) in all.iter_mut().enumerate() {
            a.extend_from_slice(&acc.speedups[i]);
        }
    }
    fig3.row(vec![
        "overall".into(),
        ratio(geomean(&all[0])),
        ratio(geomean(&all[1])),
        ratio(geomean(&all[2])),
    ]);
    fig3.note(
        "paper (Finding 3): AOT speedup 1.02x Wasmtime, 1.73x WAVM, 1.02x Wasmer; \
         up to 14.19x (WAVM/facedetection)",
    );
    vec![fig3, table4, detail]
}

/// Figure 4: impact of compiler optimization levels (-O0..-O3).
pub fn fig4(scale: Scale) -> Vec<Report> {
    let levels = OptLevel::all();
    let engines = runner::engines();
    let mut report = Report::new(
        "Figure 4",
        "Speedup from compiler optimization levels (baseline: -O0, geomean over WABench)",
        vec![
            "configuration".into(),
            "-O0".into(),
            "-O1".into(),
            "-O2".into(),
            "-O3".into(),
        ],
    );
    // Engine rows.
    for kind in engines {
        let mut per_level: Vec<Vec<f64>> = vec![Vec::new(); 4];
        for b in suite::all() {
            let n = scale.arg(b);
            let expected = (b.native)(n);
            let t0 = runner::run_engine(kind, &runner::wasm_bytes(b, levels[0]), n, expected)
                .total();
            for (li, level) in levels.iter().enumerate() {
                let t = if li == 0 {
                    t0
                } else {
                    runner::run_engine(kind, &runner::wasm_bytes(b, *level), n, expected).total()
                };
                per_level[li].push(t0 / t);
            }
        }
        let mut row = vec![kind.name().to_string()];
        for v in &per_level {
            row.push(ratio(geomean(v)));
        }
        report.row(row);
    }
    // Native row: the reference evaluator executing the AST optimized at
    // each level (stand-in for natively compiling the same source at -OX).
    let mut per_level: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for b in suite::all() {
        let n = b.sizes.test;
        let src = b.full_source();
        let times: Vec<f64> = levels
            .iter()
            .map(|level| {
                let program = wacc::frontend(&src, *level).expect("frontend");
                crate::stats::time_secs(
                    || {
                        let mut ev = wacc::eval::Evaluator::new(&program);
                        let _ = std::hint::black_box(
                            ev.call("run", &[wacc::eval::V::I32(n)]).expect("eval"),
                        );
                    },
                    0.02,
                    3,
                )
            })
            .collect();
        for (li, t) in times.iter().enumerate() {
            per_level[li].push(times[0] / t);
        }
    }
    let mut row = vec!["native (evaluator proxy)".to_string()];
    for v in &per_level {
        row.push(ratio(geomean(v)));
    }
    report.row(row);
    report.note(
        "paper (Finding 4): -O2 vs -O0 speedups 1.44x-3.57x across runtimes \
         (3.57x Wasm3); native gains more (1.94x at -O2) than JIT runtimes",
    );
    vec![report]
}

/// Figure 5 (+ Figure 13): normalized maximum resident set sizes.
pub fn fig5(scale: Scale) -> Vec<Report> {
    let engines = runner::engines();
    let mut header = vec!["benchmark".to_string()];
    header.extend(engines.iter().map(|e| e.name().to_string()));
    let mut detail = Report::new(
        "Figure 13",
        "Normalized MRSS per benchmark (baseline: native footprint)",
        header.clone(),
    );
    let mut summary = Report::new(
        "Figure 5",
        "Normalized MRSS, geometric means per suite + whole applications",
        header,
    );
    let mut per_engine_all: Vec<Vec<f64>> = vec![Vec::new(); engines.len()];
    let mut app_rows: Vec<Vec<String>> = Vec::new();
    for group in Group::all() {
        let mut per_engine: Vec<Vec<f64>> = vec![Vec::new(); engines.len()];
        for b in group_benches(group) {
            let n = scale.arg(b);
            let bytes = runner::wasm_bytes(b, OptLevel::O2);
            let native_peak = (b.native_footprint)(n) + runner::NATIVE_BASE_RSS;
            let mut row = vec![b.name.to_string()];
            for (i, kind) in engines.iter().enumerate() {
                let r = runner::run_memory(*kind, &bytes, n);
                let norm = r.normalized_to_native(native_peak);
                per_engine[i].push(norm);
                per_engine_all[i].push(norm);
                row.push(ratio(norm));
            }
            detail.row(row.clone());
            if group == Group::Apps {
                app_rows.push(row);
            }
        }
        if group != Group::Apps {
            let mut row = vec![group.name().to_string()];
            for v in &per_engine {
                row.push(ratio(geomean(v)));
            }
            summary.row(row);
        }
    }
    for row in app_rows {
        summary.row(row);
    }
    let mut geo = vec!["geomean".to_string()];
    for v in &per_engine_all {
        geo.push(ratio(geomean(v)));
    }
    summary.row(geo);
    summary.note(
        "paper (Finding 5): runtimes consume 1.26x-5.50x the native MRSS; WAVM \
         consumes the most (31.66x on JetStream2), Wasm3 the least (1.55x)",
    );
    vec![summary, detail]
}

fn arch_normalized(
    id: &str,
    title: &str,
    paper_note: &str,
    scale: Scale,
    metric: impl Fn(&archsim::Counters) -> f64,
) -> Vec<Report> {
    let engines = runner::engines();
    let mut header = vec!["benchmark".to_string()];
    header.extend(engines.iter().map(|e| e.name().to_string()));
    let mut report = Report::new(id, title, header);
    let mut per_engine: Vec<Vec<f64>> = vec![Vec::new(); engines.len()];
    for b in suite::all() {
        let n = scale.arg(b);
        let bytes = runner::wasm_bytes(b, OptLevel::O2);
        let native = metric(&runner::run_native_profiled(&bytes, n)).max(1.0);
        let mut row = vec![b.name.to_string()];
        for (i, kind) in engines.iter().enumerate() {
            let c = runner::run_profiled(*kind, &bytes, n);
            let r = metric(&c) / native;
            per_engine[i].push(r);
            row.push(ratio(r));
        }
        report.row(row);
    }
    let mut geo = vec!["geomean".to_string()];
    for v in &per_engine {
        geo.push(ratio(geomean(v)));
    }
    report.row(geo);
    report.note(paper_note);
    vec![report]
}

/// Figure 6 (+14): normalized dynamically executed instructions.
pub fn fig6(scale: Scale) -> Vec<Report> {
    arch_normalized(
        "Figure 6",
        "Normalized dynamic instructions (baseline: native)",
        "paper (Finding 6): runtimes execute 2.03x-14.61x the native instructions; \
         interpreters far above the JIT runtimes",
        scale,
        |c| c.instructions as f64,
    )
}

/// Figure 7: instructions per cycle.
pub fn fig7(scale: Scale) -> Vec<Report> {
    let engines = runner::engines();
    let mut header = vec!["benchmark".to_string(), "Native".to_string()];
    header.extend(engines.iter().map(|e| e.name().to_string()));
    let mut report = Report::new("Figure 7", "Instructions per cycle (IPC)", header);
    let mut native_all = Vec::new();
    let mut per_engine: Vec<Vec<f64>> = vec![Vec::new(); engines.len()];
    for b in suite::all() {
        let n = scale.arg(b);
        let bytes = runner::wasm_bytes(b, OptLevel::O2);
        let native = runner::run_native_profiled(&bytes, n).ipc();
        native_all.push(native);
        let mut row = vec![b.name.to_string(), format!("{native:.2}")];
        for (i, kind) in engines.iter().enumerate() {
            let ipc = runner::run_profiled(*kind, &bytes, n).ipc();
            per_engine[i].push(ipc);
            row.push(format!("{ipc:.2}"));
        }
        report.row(row);
    }
    let mut geo = vec![
        "geomean".to_string(),
        format!("{:.2}", geomean(&native_all)),
    ];
    for v in &per_engine {
        geo.push(format!("{:.2}", geomean(v)));
    }
    report.row(geo);
    report.note(
        "paper (Finding 6): IPC > 1 nearly everywhere; runtime IPC generally \
         above native (more work per cycle available)",
    );
    vec![report]
}

/// Figure 8 + Table 5: branch prediction misses and miss ratios.
pub fn fig8_table5(scale: Scale) -> Vec<Report> {
    let mut out = arch_normalized(
        "Figure 8",
        "Normalized branch prediction misses (baseline: native)",
        "paper (Finding 7): misses 1.52x (Wasmtime), 8.99x (WAVM), 1.56x (Wasmer), \
         12.64x (Wasm3), 8.14x (WAMR) of native",
        scale,
        |c| c.branch_misses as f64,
    );
    let engines = runner::engines();
    let mut header = vec!["benchmark".to_string(), "Native".to_string()];
    header.extend(engines.iter().map(|e| e.name().to_string()));
    let mut t5 = Report::new("Table 5", "Branch prediction miss ratios", header);
    let mut native_all = Vec::new();
    let mut per_engine: Vec<Vec<f64>> = vec![Vec::new(); engines.len()];
    for b in suite::all() {
        let n = scale.arg(b);
        let bytes = runner::wasm_bytes(b, OptLevel::O2);
        let native = runner::run_native_profiled(&bytes, n).branch_miss_ratio();
        native_all.push(native.max(1e-6));
        let mut row = vec![b.name.to_string(), pct(native)];
        for (i, kind) in engines.iter().enumerate() {
            let r = runner::run_profiled(*kind, &bytes, n).branch_miss_ratio();
            per_engine[i].push(r.max(1e-6));
            row.push(pct(r));
        }
        t5.row(row);
    }
    let mut geo = vec!["geomean".to_string(), pct(geomean(&native_all))];
    for v in &per_engine {
        geo.push(pct(geomean(v)));
    }
    t5.row(geo);
    t5.note(
        "paper: geomeans 1.01% native, 0.77% Wasmtime, 1.69% WAVM, 0.92% Wasmer, \
         0.76% Wasm3, 0.53% WAMR — ratios close to native despite many more misses",
    );
    out.push(t5);
    out
}

/// Figures 9 and 10: cache misses (normalized) and miss ratios.
pub fn fig9_fig10(scale: Scale) -> Vec<Report> {
    let mut out = arch_normalized(
        "Figure 9",
        "Normalized cache misses (baseline: native)",
        "paper (Finding 8): 1.91x, 4.60x, 1.73x, 1.39x, 1.60x for Wasmtime, WAVM, \
         Wasmer, Wasm3, WAMR",
        scale,
        |c| c.cache_misses as f64,
    );
    let engines = runner::engines();
    let mut header = vec!["benchmark".to_string(), "Native".to_string()];
    header.extend(engines.iter().map(|e| e.name().to_string()));
    let mut f10 = Report::new("Figure 10", "Cache miss ratios (LLC)", header);
    let mut native_all = Vec::new();
    let mut per_engine: Vec<Vec<f64>> = vec![Vec::new(); engines.len()];
    for b in suite::all() {
        let n = scale.arg(b);
        let bytes = runner::wasm_bytes(b, OptLevel::O2);
        let native = runner::run_native_profiled(&bytes, n).cache_miss_ratio();
        native_all.push(native.max(1e-6));
        let mut row = vec![b.name.to_string(), pct(native)];
        for (i, kind) in engines.iter().enumerate() {
            let r = runner::run_profiled(*kind, &bytes, n).cache_miss_ratio();
            per_engine[i].push(r.max(1e-6));
            row.push(pct(r));
        }
        f10.row(row);
    }
    let mut geo = vec!["geomean".to_string(), pct(geomean(&native_all))];
    for v in &per_engine {
        geo.push(pct(geomean(v)));
    }
    f10.row(geo);
    f10.note(
        "paper: average miss ratios 11.13% native vs 12.98%, 5.57%, 13.26%, 7.97%, \
         8.99% for the runtimes — similar to native",
    );
    out.push(f10);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The experiment drivers are exercised end-to-end (at tiny scale) by
    // the integration tests; here we only check pure helpers.
    #[test]
    fn groups_cover_all_benchmarks() {
        let total: usize = Group::all().iter().map(|g| group_benches(*g).len()).sum();
        assert_eq!(total, suite::all().len());
    }
}
