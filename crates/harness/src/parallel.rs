//! The `--jobs N` warm pass: runs each experiment's measurement matrix
//! through the `wabench-svc` scheduler, then primes the serial runner
//! caches with the results.
//!
//! The table-assembly code in [`crate::experiments`] is untouched: it
//! still iterates benchmarks and engines in the same deterministic
//! order, but every `run_engine`/`run_engine_aot`/`run_profiled` call
//! finds its measurement already primed and returns immediately. Tables
//! therefore come out structurally identical to a serial run — same
//! rows, same columns, same ordering — regardless of how the jobs
//! interleaved across workers. Simulated experiments (fig6–fig9) are
//! bit-identical too, because the architectural simulator is
//! deterministic.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use engines::{Backend, EngineKind};
use fault::FaultPlan;
use svc::job::{JobMode, JobSpec};
use svc::scheduler::{Config, ResilienceStats, Scheduler};
use wacc::OptLevel;

use crate::runner::{self, ExecTime, Scale};

fn svc_scale(scale: Scale) -> svc::job::Scale {
    match scale {
        Scale::Test => svc::job::Scale::Test,
        Scale::Profile => svc::job::Scale::Profile,
        Scale::Timing => svc::job::Scale::Timing,
    }
}

/// The job matrix an experiment will measure, deduplicated across
/// experiments (fig1 and fig3 share their O2 JIT runs, the four
/// simulated figures share all their profiled runs).
fn specs_for(id: &str, scale: Scale, seen: &mut HashSet<(String, u8, u8, u8)>) -> Vec<JobSpec> {
    let scale = svc_scale(scale);
    let mut out = Vec::new();
    let mut push = |benchmark: &str, engine: EngineKind, level: OptLevel, mode: JobMode| {
        let key = (
            benchmark.to_string(),
            engine.code(),
            svc::wire::level_byte(level),
            mode.byte(),
        );
        if seen.insert(key) {
            out.push(JobSpec {
                benchmark: benchmark.to_string(),
                engine,
                level,
                scale,
                mode,
                warm: false,
            });
        }
    };
    match id {
        "fig1" => {
            for b in suite::all() {
                for kind in EngineKind::all() {
                    push(b.name, kind, OptLevel::O2, JobMode::Exec);
                }
            }
        }
        "fig2" => {
            for b in suite::all() {
                for bk in [Backend::Singlepass, Backend::Cranelift, Backend::Llvm] {
                    push(b.name, EngineKind::Wasmer(bk), OptLevel::O2, JobMode::Exec);
                }
            }
        }
        "fig3" => {
            let jits = [
                EngineKind::Wasmtime,
                EngineKind::Wavm,
                EngineKind::Wasmer(Backend::Cranelift),
            ];
            for b in suite::all() {
                for kind in jits {
                    push(b.name, kind, OptLevel::O2, JobMode::Exec);
                    push(b.name, kind, OptLevel::O2, JobMode::ExecAot);
                }
            }
        }
        "fig4" => {
            for b in suite::all() {
                for kind in EngineKind::all() {
                    for level in OptLevel::all() {
                        push(b.name, kind, level, JobMode::Exec);
                    }
                }
            }
        }
        // fig5 (memory) is deliberately uncached in the serial runner;
        // warming it would change what the experiment measures.
        "fig5" => {}
        "fig6" | "fig7" | "fig8" | "fig9" => {
            for b in suite::all() {
                push(b.name, EngineKind::Wavm, OptLevel::O2, JobMode::ProfiledNative);
                for kind in EngineKind::all() {
                    push(b.name, kind, OptLevel::O2, JobMode::Profiled);
                }
            }
        }
        _ => {}
    }
    out
}

/// Options for [`warm_matrix_opts`]: worker count plus the resilience
/// knobs the chaos path uses.
#[derive(Debug, Clone, Default)]
pub struct WarmOptions {
    /// Scheduler worker threads.
    pub jobs: usize,
    /// Deterministic fault-injection plan (chaos mode). With a plan
    /// armed, failed and degraded cells are *skipped* instead of
    /// aborting the run — the serial pass recomputes them cleanly, so
    /// figures stay bit-identical to a fault-free run.
    pub faults: Option<Arc<FaultPlan>>,
    /// Artifact-store directory for the warm pass (`None` = in-memory
    /// only). Reusing a directory across runs exercises store
    /// corruption detection and repair.
    pub store_dir: Option<PathBuf>,
}

/// What a warm pass did: how much of the matrix was primed, which cells
/// were recovered-but-degraded or failed (left for the serial path),
/// and the scheduler's resilience counters.
#[derive(Debug, Clone, Default)]
pub struct WarmSummary {
    /// Jobs executed.
    pub jobs: usize,
    /// Results primed into the serial runner caches.
    pub primed: usize,
    /// Cells that succeeded through a degradation path (interpreter
    /// fallback); never primed, so the serial pass remeasures them.
    pub degraded: Vec<String>,
    /// Cells that failed even after retries; the serial pass recomputes
    /// them from scratch.
    pub failed: Vec<String>,
    /// Scheduler resilience counters (retries, fallbacks, repairs,
    /// breaker fast-fails).
    pub resilience: ResilienceStats,
    /// Total faults the plan injected across all sites (0 without a
    /// plan).
    pub injected: u64,
}

/// Runs the measurement matrices for `ids` through a `jobs`-worker
/// scheduler and primes the serial runner caches with every result.
/// Returns the number of jobs executed.
///
/// # Panics
///
/// Panics if any job fails — a failed measurement (bad compile, wrong
/// checksum) would also abort a serial run, just later.
pub fn warm_matrix(ids: &[(&str, Scale)], jobs: usize) -> usize {
    warm_matrix_opts(
        ids,
        &WarmOptions {
            jobs,
            ..WarmOptions::default()
        },
    )
    .jobs
}

/// [`warm_matrix`] with resilience options. Only *clean* results prime
/// the serial caches: degraded cells measured the wrong tier and failed
/// cells produced nothing, so both are skipped and the serial pass
/// recomputes them — output tables stay correct (and simulated figures
/// bit-identical) under any fault plan.
///
/// # Panics
///
/// Without a fault plan, panics if any job fails (matching
/// [`warm_matrix`]). With a plan armed, failures are expected and
/// reported in the summary instead.
pub fn warm_matrix_opts(ids: &[(&str, Scale)], opts: &WarmOptions) -> WarmSummary {
    let _span = obs::span!("harness.warm_matrix", jobs = opts.jobs, figures = ids.len());
    let mut seen = HashSet::new();
    let mut specs = Vec::new();
    for (id, scale) in ids {
        specs.extend(specs_for(id, *scale, &mut seen));
    }
    let mut summary = WarmSummary::default();
    if specs.is_empty() {
        return summary;
    }
    let sched = Scheduler::start(Config {
        workers: opts.jobs,
        timeout: Duration::from_secs(600),
        store_dir: opts.store_dir.clone(),
        store_cap_bytes: if opts.store_dir.is_some() { 256 << 20 } else { 0 },
        faults: opts.faults.clone(),
        ..Config::default()
    })
    .expect("start scheduler");
    for spec in &specs {
        sched.submit(spec.clone());
    }
    let results = sched.drain_sorted();

    // Share the parallel pass's compiled modules with the serial path.
    for (name, level, bytes) in sched.bytes_snapshot() {
        if let Some(b) = suite::by_name(&name) {
            runner::prime_wasm_bytes(b.name, level, bytes);
        }
    }
    summary.jobs = results.len();
    for res in results {
        if !res.ok() {
            assert!(
                opts.faults.is_some(),
                "parallel job failed: {} — {:?}",
                res.spec,
                res.status
            );
            obs::warn!("chaos: job failed, serial pass will recompute: {}", res.spec);
            summary.failed.push(res.spec.to_string());
            continue;
        }
        if res.degraded() {
            // Correct checksum, wrong tier: the timings would poison the
            // figure, so leave the cell for the clean serial pass.
            obs::warn!("chaos: degraded cell not primed: {}", res.spec);
            summary.degraded.push(res.spec.to_string());
            continue;
        }
        let b = suite::by_name(&res.spec.benchmark).expect("job benchmark registered");
        let n = res.spec.scale.arg(b);
        match res.spec.mode {
            JobMode::Exec => runner::prime_exec(
                res.spec.engine,
                res.bytes_hash,
                n,
                ExecTime {
                    compile_s: res.compile_s,
                    exec_s: res.exec_s,
                },
            ),
            JobMode::ExecAot => runner::prime_exec_aot(
                res.spec.engine,
                res.bytes_hash,
                n,
                res.aot_compile_s.expect("aot job reports compile time"),
                ExecTime {
                    compile_s: res.compile_s,
                    exec_s: res.exec_s,
                },
            ),
            JobMode::Profiled => runner::prime_profiled(
                res.spec.engine.name(),
                res.bytes_hash,
                n,
                res.counters.expect("profiled job reports counters"),
            ),
            JobMode::ProfiledNative => runner::prime_profiled(
                "native",
                res.bytes_hash,
                n,
                res.counters.expect("profiled job reports counters"),
            ),
            JobMode::SelfTestPanic | JobMode::SelfTestHang | JobMode::SelfTestFlaky => {}
        }
        summary.primed += 1;
    }
    summary.resilience = sched.resilience();
    summary.injected = opts.faults.as_ref().map_or(0, |p| p.injected_total());
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrices_deduplicate_shared_runs() {
        let mut seen = HashSet::new();
        let fig1 = specs_for("fig1", Scale::Test, &mut seen);
        assert_eq!(fig1.len(), suite::all().len() * 5);
        // fig3's O2 JIT Exec runs are already covered by fig1; only the
        // AOT half remains.
        let fig3 = specs_for("fig3", Scale::Test, &mut seen);
        assert_eq!(fig3.len(), suite::all().len() * 3);
        assert!(fig3.iter().all(|s| s.mode == JobMode::ExecAot));
        // The four simulated figures share one profiled matrix.
        let fig6 = specs_for("fig6", Scale::Test, &mut seen);
        assert_eq!(fig6.len(), suite::all().len() * 6);
        assert!(specs_for("fig7", Scale::Test, &mut seen).is_empty());
        assert!(specs_for("fig8", Scale::Test, &mut seen).is_empty());
        assert!(specs_for("fig9", Scale::Test, &mut seen).is_empty());
    }

    #[test]
    fn warm_pass_primes_the_serial_runner() {
        // Warm fig1's matrix at test scale, then check a serial
        // measurement comes straight from the primed cache: identical
        // down to the bit on repeated calls.
        let n_jobs = warm_matrix(&[("fig1", Scale::Test)], 4);
        assert_eq!(n_jobs, suite::all().len() * 5);
        let b = suite::by_name("crc32").unwrap();
        let n = b.sizes.test;
        let expected = (b.native)(n);
        let bytes = runner::wasm_bytes(b, OptLevel::O2);
        let t1 = runner::run_engine(engines::EngineKind::Wasmtime, &bytes, n, expected);
        let t2 = runner::run_engine(engines::EngineKind::Wasmtime, &bytes, n, expected);
        assert_eq!(t1.compile_s.to_bits(), t2.compile_s.to_bits());
        assert_eq!(t1.exec_s.to_bits(), t2.exec_s.to_bits());
        assert!(t1.total() > 0.0);
    }
}
