//! # harness — experiment drivers
//!
//! Regenerates every table and figure of the paper's evaluation from the
//! systems built in this workspace. Each `experiments::fig*` function runs
//! the measurement and returns [`report::Report`]s; the `wabench-harness`
//! binary renders them and (with `all`) writes `EXPERIMENTS.md`.
//!
//! Absolute numbers differ from the paper's Xeon testbed (our substrate is
//! a simulator), but each report carries the paper's reported values in a
//! note so the *shape* can be compared directly.

#![warn(missing_docs)]

pub mod experiments;
pub mod matrix;
pub mod parallel;
pub mod report;
pub mod runner;
pub mod stats;

use report::Report;
use runner::Scale;

/// An experiment driver: runs at a scale, returns the reports it built.
pub type ExperimentFn = fn(Scale) -> Vec<Report>;

/// All experiment entry points, in paper order, with ids used by the CLI.
pub fn experiment_list() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("fig1", experiments::fig1 as ExperimentFn),
        ("fig2", experiments::fig2),
        ("fig3", experiments::fig3_table4),
        ("fig4", experiments::fig4),
        ("fig5", experiments::fig5),
        ("fig6", experiments::fig6),
        ("fig7", experiments::fig7),
        ("fig8", experiments::fig8_table5),
        ("fig9", experiments::fig9_fig10),
    ]
}

/// Whether an experiment uses the architectural simulator (these default
/// to a smaller scale; full workloads would take hours under simulation).
pub fn is_simulated(id: &str) -> bool {
    matches!(id, "fig6" | "fig7" | "fig8" | "fig9")
}

/// The "Static analysis & IR verification" section appended to
/// `EXPERIMENTS.md` by `wabench-harness all`, describing the guarantees
/// under which every number above was measured.
pub fn static_analysis_section() -> String {
    let verifying = if engines::jit::verify::enabled() {
        "was ON for this run"
    } else {
        "was OFF for this run (release build without `--features verify-ir`)"
    };
    format!(
        "### Static analysis & IR verification\n\n\
         Every compiled-tier measurement above was produced by a JIT\n\
         pipeline that is checkable after every pass: `wabench-analysis`\n\
         rebuilds the CFG of each lowered function and runs a reaching-defs\n\
         dataflow to reject use-before-def, dangling or mid-instruction\n\
         branch targets, malformed terminators, and any pass that drops or\n\
         reorders an observable side effect (stores, global writes,\n\
         `memory.grow`, calls). Verification {verifying}; it is always on in\n\
         debug builds, and its cost is accounted separately\n\
         (`PassStats::verify_ns`) so modeled compile work is never inflated.\n\n\
         Suite hygiene is enforced the same way at the source level:\n\
         `cargo run -p wabench-harness --bin wabench-lint` sweeps all 50\n\
         WaCC programs for unused variables/functions, unreachable\n\
         statements, constant division by zero, and constant out-of-bounds\n\
         accesses, and exits nonzero on findings (`scripts/verify.sh` runs\n\
         it as part of the tier-1 gate).\n"
    )
}

/// The "Static analysis & check elimination" section appended to
/// `EXPERIMENTS.md` by `wabench-harness all`, describing the interval
/// analysis, the proof-carrying elimination pass, and how to regenerate
/// and read the audit report.
pub fn check_elimination_section() -> String {
    "### Static analysis & check elimination\n\n\
     On top of the verifier, `wabench-analysis` runs an interval\n\
     abstract interpretation over the lowered register IR (value ranges\n\
     per register, widening with thresholds plus one narrowing pass for\n\
     termination, and branch refinement so `if i < n` tightens `i` on\n\
     the taken edge). The Cranelift- and LLVM-analogue tiers use it to\n\
     eliminate runtime safety checks — bounds checks whose address\n\
     interval fits the declared minimum memory, division guards whose\n\
     divisor interval excludes zero (and, for signed division, excludes\n\
     the `INT_MIN / -1` overflow pair), and float-truncation guards\n\
     whose source interval fits the target width. Every elimination\n\
     records a machine-checkable proof obligation (the interval fact and\n\
     the guarded site); `jit::verify` re-derives each obligation from\n\
     scratch with an independent analysis run, so an unsound or tampered\n\
     proof is rejected rather than trusted, both after optimization and\n\
     when an AOT artifact is loaded. The interpreter tiers consult the\n\
     same facts at load time: statically safe sites keep the host-side\n\
     check (defense in depth) but skip the modeled check cost, and the\n\
     skips are attributed via the `checks_skipped` simulated counter.\n\n\
     To see what the analysis proves on the suite, run\n\n\
     ```sh\n\
     cargo run --release -p wabench-harness --bin wabench-audit -- --md\n\
     ```\n\n\
     which compiles all 50 programs at every opt level and reports, per\n\
     module: total checks, checks eliminated with proofs, residual\n\
     checks, blocks proven unreachable, sites proven to always trap, and\n\
     constant-address accesses. The run fails on any proof violation;\n\
     `scripts/verify.sh` gates on zero violations and a floor on\n\
     eliminated checks under `--features verify-ir`.\n"
        .to_string()
}

/// The "Observability" section appended to `EXPERIMENTS.md` by
/// `wabench-harness all`, describing how any number above can be broken
/// down into its compiler/engine/service phases.
pub fn observability_section() -> String {
    "### Observability\n\n\
     Every binary in this workspace is instrumented with `wabench-obs`\n\
     spans: WaCC passes (`wacc.parse`/`wacc.opt`/`wacc.pass`), engine\n\
     phases (`engine.decode`/`engine.validate`, per-tier `jit.compile`\n\
     and `jit.pass`, `engine.execute`), harness matrix cells\n\
     (`harness.cell`, `harness.figure`), and scheduler phases\n\
     (`svc.queue.wait`, `svc.job.run`). Tracing is off by default and\n\
     the disabled path is one relaxed atomic load, so the numbers above\n\
     are bit-identical with or without the instrumentation compiled in.\n\n\
     To see where a run's time went, add `--trace-out trace.json` (a\n\
     Chrome trace-event file loadable in Perfetto or `chrome://tracing`)\n\
     or `--report` (a plain-text hierarchical self-time table, printed\n\
     to stderr) to `wabench-harness` or `wabench-run`. A sample\n\
     self-time report for `wabench-run crc32 --report` attributes the\n\
     run's wall clock to `engine.execute`, `jit.pass`, `wacc.parse` and\n\
     friends, with per-span counts, totals, and self-time percentages.\n\
     `wabench-served --trace-out` does the same for the service; its\n\
     protocol-v3 `stats-ext` reply additionally carries queue-depth,\n\
     worker-utilization, per-engine latency histograms\n\
     (min/p50/p95/p99/max), and per-engine simulated IPC/MPKI\n\
     aggregates once profiled jobs have run.\n"
        .to_string()
}

/// The "Profiling & regression gates" section appended to
/// `EXPERIMENTS.md` by `wabench-harness all`, mapping the attributed
/// profile columns back to the paper's figures and documenting the
/// baseline workflow.
pub fn profiling_section() -> String {
    "### Profiling & regression gates\n\n\
     `wabench-prof` layers three tools on the span rings described\n\
     above. `wabench-prof report` prints a `perf report`-style table\n\
     per phase: each attributed span row carries retired instructions,\n\
     IPC, and branch/L1D/L1I/LLC MPKI sampled from the architectural\n\
     simulator at span entry/exit. The columns map onto the paper's\n\
     architectural figures: instructions and IPC are the quantities\n\
     behind Figures 10–11, branch MPKI behind Figure 12, L1 data/\n\
     instruction MPKI behind Figure 13, and LLC MPKI behind Figure 14 —\n\
     but broken down per phase (compile vs. execute) instead of per\n\
     whole run. `wabench-prof fold --out stacks.folded` runs a job\n\
     matrix through the scheduler and writes Brendan-Gregg folded\n\
     stacks (`thread;span;span N`, weight selectable between wall\n\
     nanoseconds and any simulated counter) ready for `flamegraph.pl`;\n\
     `collapse` produces the same from a saved Chrome trace.\n\n\
     Baselines close the loop: `wabench-prof record --out base.jsonl`\n\
     stores per-cell wall statistics (mean/min/max/stddev over N\n\
     repetitions) plus the deterministic simulator counters as\n\
     versioned JSON lines, and `wabench-prof diff --base base.jsonl`\n\
     re-measures and exits non-zero on a regression. Wall time only\n\
     fires when the mean moves past a relative threshold *and* the\n\
     ~95% confidence intervals separate; counters fire on a bare\n\
     relative threshold because simulation is deterministic.\n\
     `scripts/verify.sh` records and diffs a small fixed matrix on\n\
     every run, and proves the gate is live by re-diffing under a\n\
     synthetic `WABENCH_PROF_SLOWDOWN=2`, which must fail.\n"
        .to_string()
}

/// Aliases accepted by the CLI for individual tables/figures.
pub fn resolve_alias(name: &str) -> Option<&'static str> {
    Some(match name {
        "fig1" | "figure1" => "fig1",
        "fig2" | "fig11" => "fig2",
        "fig3" | "fig12" | "table4" => "fig3",
        "fig4" => "fig4",
        "fig5" | "fig13" => "fig5",
        "fig6" | "fig14" => "fig6",
        "fig7" => "fig7",
        "fig8" | "table5" => "fig8",
        "fig9" | "fig10" => "fig9",
        _ => return None,
    })
}
