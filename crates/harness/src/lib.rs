//! # harness — experiment drivers
//!
//! Regenerates every table and figure of the paper's evaluation from the
//! systems built in this workspace. Each `experiments::fig*` function runs
//! the measurement and returns [`report::Report`]s; the `wabench-harness`
//! binary renders them and (with `all`) writes `EXPERIMENTS.md`.
//!
//! Absolute numbers differ from the paper's Xeon testbed (our substrate is
//! a simulator), but each report carries the paper's reported values in a
//! note so the *shape* can be compared directly.

#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod runner;
pub mod stats;

use report::Report;
use runner::Scale;

/// An experiment driver: runs at a scale, returns the reports it built.
pub type ExperimentFn = fn(Scale) -> Vec<Report>;

/// All experiment entry points, in paper order, with ids used by the CLI.
pub fn experiment_list() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("fig1", experiments::fig1 as ExperimentFn),
        ("fig2", experiments::fig2),
        ("fig3", experiments::fig3_table4),
        ("fig4", experiments::fig4),
        ("fig5", experiments::fig5),
        ("fig6", experiments::fig6),
        ("fig7", experiments::fig7),
        ("fig8", experiments::fig8_table5),
        ("fig9", experiments::fig9_fig10),
    ]
}

/// Whether an experiment uses the architectural simulator (these default
/// to a smaller scale; full workloads would take hours under simulation).
pub fn is_simulated(id: &str) -> bool {
    matches!(id, "fig6" | "fig7" | "fig8" | "fig9")
}

/// Aliases accepted by the CLI for individual tables/figures.
pub fn resolve_alias(name: &str) -> Option<&'static str> {
    Some(match name {
        "fig1" | "figure1" => "fig1",
        "fig2" | "fig11" => "fig2",
        "fig3" | "fig12" | "table4" => "fig3",
        "fig4" => "fig4",
        "fig5" | "fig13" => "fig5",
        "fig6" | "fig14" => "fig6",
        "fig7" => "fig7",
        "fig8" | "table5" => "fig8",
        "fig9" | "fig10" => "fig9",
        _ => return None,
    })
}
