//! Reactor front-end behavior a thread-per-connection server never had
//! to get right: pipelined frames (many requests in one write),
//! partial-frame reassembly across writes, and strict in-order replies
//! even when an earlier request parks (`Wait`) while a later one could
//! answer immediately.

#![cfg(unix)]

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use svc::job::{JobSpec, Scale};
use svc::proto::{Request, Response};
use svc::scheduler::{Config, Scheduler};
use svc::server::{serve, Client};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wabench-reactor-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn start_server(socket: &Path, workers: usize) -> std::thread::JoinHandle<std::io::Result<()>> {
    let sched = Arc::new(
        Scheduler::start(Config {
            workers,
            ..Config::default()
        })
        .expect("start scheduler"),
    );
    let path = socket.to_path_buf();
    let handle = std::thread::spawn(move || serve(&path, sched));
    for _ in 0..400 {
        if let Ok(mut c) = Client::connect(socket) {
            if c.ping().is_ok() {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    handle
}

/// Length-prefixes a request payload into one wire frame.
fn frame(req: &Request) -> Vec<u8> {
    let payload = req.encode();
    let mut f = Vec::with_capacity(4 + payload.len());
    f.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    f.extend_from_slice(&payload);
    f
}

/// Reads exactly one response frame off a raw stream.
fn read_response(stream: &mut UnixStream) -> Response {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).expect("frame length");
    let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
    stream.read_exact(&mut payload).expect("frame payload");
    Response::decode(&payload).expect("decode response")
}

fn shutdown(socket: &Path, server: std::thread::JoinHandle<std::io::Result<()>>) {
    let mut c = Client::connect(socket).expect("connect for shutdown");
    c.shutdown().expect("shutdown");
    server.join().expect("join").expect("serve");
}

#[test]
fn pipelined_requests_in_one_write_get_ordered_replies() {
    let dir = tmp_dir("pipeline");
    let socket = dir.join("svc.sock");
    let server = start_server(&socket, 1);

    let mut stream = UnixStream::connect(&socket).expect("connect");
    // Two Pings and a Stats in a single write: a blocking
    // read_frame/handle/write_frame loop would also survive this, but
    // only because the socket buffered it — the reactor must carve all
    // three out of one readiness event and answer in order.
    let mut batch = frame(&Request::Ping);
    batch.extend_from_slice(&frame(&Request::Stats));
    batch.extend_from_slice(&frame(&Request::Ping));
    stream.write_all(&batch).expect("pipelined write");

    assert!(matches!(read_response(&mut stream), Response::Pong));
    assert!(matches!(read_response(&mut stream), Response::Stats(_)));
    assert!(matches!(read_response(&mut stream), Response::Pong));

    shutdown(&socket, server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn partial_frames_reassemble_across_writes() {
    let dir = tmp_dir("partial");
    let socket = dir.join("svc.sock");
    let server = start_server(&socket, 1);

    let mut stream = UnixStream::connect(&socket).expect("connect");
    let ping = frame(&Request::Ping);
    let stats = frame(&Request::Stats);

    // Dribble the first frame byte-by-byte: the reactor sees many
    // readiness events, none containing a complete frame until the
    // last.
    for b in &ping[..ping.len() - 1] {
        stream.write_all(&[*b]).expect("dribble");
        std::thread::sleep(Duration::from_millis(2));
    }
    // Finish frame one and immediately start frame two, splitting it
    // mid-length-prefix — the nastiest boundary.
    let mut tail = vec![ping[ping.len() - 1]];
    tail.extend_from_slice(&stats[..2]);
    stream.write_all(&tail).expect("tail + partial prefix");
    std::thread::sleep(Duration::from_millis(10));
    stream.write_all(&stats[2..]).expect("rest of second frame");

    assert!(matches!(read_response(&mut stream), Response::Pong));
    assert!(matches!(read_response(&mut stream), Response::Stats(_)));

    shutdown(&socket, server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parked_wait_holds_later_replies_in_order() {
    let dir = tmp_dir("ordered");
    let socket = dir.join("svc.sock");
    let server = start_server(&socket, 2);

    let spec = JobSpec::exec(
        "crc32",
        engines::EngineKind::Wasm3,
        wacc::OptLevel::O0,
        Scale::Test,
    );
    let mut stream = UnixStream::connect(&socket).expect("connect");
    // Submit, then pipeline Wait(id)+Ping before the job can possibly
    // finish... except we don't know the id until Submitted comes back,
    // so submit first, read the id, then pipeline Wait + Ping in one
    // write. The Wait parks (or resolves) server-side; the Pong must
    // not overtake the Result.
    stream
        .write_all(&frame(&Request::Submit(spec, Default::default())))
        .expect("submit");
    let id = match read_response(&mut stream) {
        Response::Submitted(id) => id,
        other => panic!("expected Submitted, got {other:?}"),
    };
    let mut batch = frame(&Request::Wait(id));
    batch.extend_from_slice(&frame(&Request::Ping));
    stream.write_all(&batch).expect("wait + ping");

    match read_response(&mut stream) {
        Response::Result(res) => assert_eq!(res.id, id),
        other => panic!("Result must come before Pong, got {other:?}"),
    }
    assert!(matches!(read_response(&mut stream), Response::Pong));

    shutdown(&socket, server);
    let _ = std::fs::remove_dir_all(&dir);
}

/// An oversized length prefix must drop the connection, not hang it or
/// take the server down.
#[test]
fn oversized_frame_drops_only_that_connection() {
    let dir = tmp_dir("oversized");
    let socket = dir.join("svc.sock");
    let server = start_server(&socket, 1);

    let mut bad = UnixStream::connect(&socket).expect("connect");
    bad.write_all(&(u32::MAX).to_le_bytes()).expect("bad prefix");
    let mut buf = [0u8; 1];
    // The server closes on us: read returns Ok(0) (EOF).
    bad.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    assert_eq!(bad.read(&mut buf).expect("read after bad frame"), 0);

    // The server itself is still healthy.
    let mut c = Client::connect(&socket).expect("connect after bad conn");
    c.ping().expect("ping after bad conn");
    drop(c);

    shutdown(&socket, server);
    let _ = std::fs::remove_dir_all(&dir);
}
