//! End-to-end tests for the resilience layer: retry with backoff,
//! per-engine circuit breakers, graceful degradation under injected
//! compile failures, the protocol v4 `Health` request over a live
//! socket, and stale-socket recovery in the server.

use std::sync::Arc;
use std::time::Duration;

use engines::EngineKind;
use fault::{BreakerConfig, BreakerState, FaultPlan};
use svc::job::{JobMode, JobSpec, JobStatus, Outcome, Scale};
use svc::scheduler::{Config, RetryPolicy, Scheduler};
use wacc::OptLevel;

fn flaky_spec() -> JobSpec {
    JobSpec {
        benchmark: "crc32".to_string(),
        engine: EngineKind::Wasm3,
        level: OptLevel::O0,
        scale: Scale::Test,
        mode: JobMode::SelfTestFlaky,
        warm: false,
    }
}

#[test]
fn flaky_job_is_retried_to_success() {
    let sched = Scheduler::start(Config {
        workers: 1,
        ..Config::default()
    })
    .expect("start");
    let res = sched.wait(sched.submit(flaky_spec()));
    assert!(res.ok(), "retry must rescue the flaky job: {:?}", res.status);
    assert_eq!(res.recovery.attempts, 2, "fails once, succeeds on retry");
    assert_eq!(res.recovery.retries(), 1);
    assert_eq!(res.outcome(), Outcome::Clean, "a retried success is clean");
    assert_eq!(sched.resilience().retries, 1);
}

#[test]
fn retries_are_exhausted_for_persistent_failures() {
    let sched = Scheduler::start(Config {
        workers: 1,
        retry: RetryPolicy {
            max_attempts: 2,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(5),
        },
        ..Config::default()
    })
    .expect("start");
    let res = sched.wait(sched.submit(JobSpec::exec(
        "no-such-benchmark",
        EngineKind::Wasm3,
        OptLevel::O0,
        Scale::Test,
    )));
    assert!(matches!(res.status, JobStatus::Failed(_)));
    assert_eq!(res.recovery.attempts, 2, "both attempts were spent");
    assert_eq!(res.outcome(), Outcome::Failed);
}

#[test]
fn breaker_trips_fast_fails_and_heals() {
    let sched = Scheduler::start(Config {
        workers: 1,
        retry: RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        },
        breaker: BreakerConfig {
            threshold: 3,
            cooldown: Duration::from_millis(300),
        },
        ..Config::default()
    })
    .expect("start");
    let bad = || JobSpec::exec("no-such", EngineKind::Wasmtime, OptLevel::O2, Scale::Test);

    // Three consecutive failures trip the Wasmtime breaker open.
    for _ in 0..3 {
        let res = sched.wait(sched.submit(bad()));
        assert!(matches!(res.status, JobStatus::Failed(_)));
    }
    let health = sched.health();
    let (_, snap) = health
        .breakers
        .iter()
        .find(|(code, _)| *code == EngineKind::Wasmtime.code())
        .expect("wasmtime breaker tracked");
    assert_eq!(snap.state, BreakerState::Open);
    assert_eq!(snap.trips, 1);

    // While open, jobs for that engine fast-fail without running.
    let res = sched.wait(sched.submit(bad()));
    match &res.status {
        JobStatus::Failed(msg) => assert!(
            msg.contains("circuit breaker open"),
            "fast-fail should name the breaker: {msg}"
        ),
        other => panic!("expected fast-fail, got {other:?}"),
    }
    assert_eq!(sched.resilience().breaker_fast_fails, 1);

    // Other engines are unaffected — breakers are per-engine.
    let res = sched.wait(sched.submit(JobSpec::exec(
        "crc32",
        EngineKind::Wasm3,
        OptLevel::O0,
        Scale::Test,
    )));
    assert!(res.ok(), "{:?}", res.status);

    // After the cooldown a half-open probe is admitted; a success
    // closes the breaker again.
    std::thread::sleep(Duration::from_millis(350));
    let res = sched.wait(sched.submit(JobSpec::exec(
        "crc32",
        EngineKind::Wasmtime,
        OptLevel::O2,
        Scale::Test,
    )));
    assert!(res.ok(), "probe should run and succeed: {:?}", res.status);
    let health = sched.health();
    let (_, snap) = health
        .breakers
        .iter()
        .find(|(code, _)| *code == EngineKind::Wasmtime.code())
        .expect("wasmtime breaker tracked");
    assert_eq!(snap.state, BreakerState::Closed, "probe success heals");
    assert_eq!(snap.consecutive_failures, 0);
}

#[test]
fn injected_compile_failure_degrades_exec_but_fails_profiled() {
    // compile=1.0: every JIT compile in scheduler jobs is vetoed.
    let plan = Arc::new(FaultPlan::parse("seed=11,compile=1.0").expect("plan"));
    let sched = Scheduler::start(Config {
        workers: 1,
        retry: RetryPolicy {
            max_attempts: 2,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(5),
        },
        faults: Some(Arc::clone(&plan)),
        ..Config::default()
    })
    .expect("start");

    // Exec: falls back to the interpreter tier — correct checksum,
    // flagged degraded, first attempt (keyed faults make retries
    // pointless, so the fallback engages immediately).
    let res = sched.wait(sched.submit(JobSpec::exec(
        "crc32",
        EngineKind::Wasmtime,
        OptLevel::O2,
        Scale::Test,
    )));
    assert!(res.ok(), "{:?}", res.status);
    assert!(res.degraded());
    assert_eq!(res.outcome(), Outcome::Degraded);
    assert!(res.recovery.compile_fallback);
    assert_eq!(res.recovery.attempts, 1, "fallback happens in-attempt");
    let b = suite::by_name("crc32").unwrap();
    assert_eq!(res.checksum, Some((b.native)(b.sizes.test)));

    // Profiled: measurement fidelity forbids the fallback, so the job
    // fails instead — after exhausting retries (keyed: same verdict).
    let res = sched.wait(sched.submit(JobSpec {
        benchmark: "crc32".to_string(),
        engine: EngineKind::Wasmtime,
        level: OptLevel::O2,
        scale: Scale::Test,
        mode: JobMode::Profiled,
        warm: false,
    }));
    match &res.status {
        JobStatus::Failed(msg) => assert!(
            msg.contains("injected compile failure"),
            "failure should surface the injected fault: {msg}"
        ),
        other => panic!("profiled job must not degrade, got {other:?}"),
    }
    assert_eq!(res.recovery.attempts, 2);

    // An interpreter-only engine never hits the JIT fault point.
    let res = sched.wait(sched.submit(JobSpec::exec(
        "crc32",
        EngineKind::Wasm3,
        OptLevel::O0,
        Scale::Test,
    )));
    assert!(res.ok(), "{:?}", res.status);
    assert_eq!(res.outcome(), Outcome::Clean);

    let stats = sched.resilience();
    assert_eq!(stats.compile_fallbacks, 1);
    assert!(plan.injected_total() >= 2, "both veto sites drew injected");
}

#[cfg(unix)]
mod socket {
    use super::*;
    use std::path::{Path, PathBuf};
    use svc::server::{serve, Client};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wabench-resilience-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create test dir");
        dir
    }

    fn start_server(socket: &Path, cfg: Config) -> std::thread::JoinHandle<std::io::Result<()>> {
        let sched = Arc::new(Scheduler::start(cfg).expect("start scheduler"));
        let path = socket.to_path_buf();
        let handle = std::thread::spawn(move || serve(&path, sched));
        // Wait for the server to actually answer — a pre-existing stale
        // file makes `exists()` useless as a readiness signal.
        for _ in 0..400 {
            if let Ok(mut c) = Client::connect(socket) {
                if c.ping().is_ok() {
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        handle
    }

    #[test]
    fn health_round_trips_over_live_socket() {
        let dir = tmp_dir("health");
        let socket = dir.join("svc.sock");
        let server = start_server(
            &socket,
            Config {
                workers: 1,
                ..Config::default()
            },
        );
        let mut client = Client::connect(&socket).expect("connect");

        // Fresh server: everything zero, no breakers, no faults.
        let health = client.health().expect("health");
        assert_eq!(health.resilience.retries, 0);
        assert!(health.breakers.is_empty());
        assert!(health.faults.is_empty());

        // One flaky job: the retry shows up in the next health report,
        // and the engine's breaker appears (closed — the job recovered).
        let id = client.submit(flaky_spec()).expect("submit");
        let res = client.wait(id).expect("wait");
        assert!(res.ok(), "{:?}", res.status);
        assert_eq!(res.recovery.attempts, 2, "recovery survives the wire");
        let health = client.health().expect("health");
        assert_eq!(health.resilience.retries, 1);
        let (_, snap) = health
            .breakers
            .iter()
            .find(|(code, _)| *code == EngineKind::Wasm3.code())
            .expect("breaker listed after first job");
        assert_eq!(snap.state, BreakerState::Closed);

        client.shutdown().expect("shutdown");
        server.join().expect("join").expect("serve");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_socket_is_unlinked_and_rebound() {
        let dir = tmp_dir("stale");
        let socket = dir.join("svc.sock");
        // Simulate a crashed server: bind a listener, then drop it
        // without removing the file (process death skips cleanup).
        {
            let _dead = std::os::unix::net::UnixListener::bind(&socket).expect("bind");
        }
        assert!(socket.exists(), "stale socket file left behind");

        let server = start_server(
            &socket,
            Config {
                workers: 1,
                ..Config::default()
            },
        );
        let mut client = Client::connect(&socket).expect("connect over reclaimed socket");
        client.ping().expect("ping");
        client.shutdown().expect("shutdown");
        server.join().expect("join").expect("serve");
        assert!(!socket.exists(), "socket removed on clean exit");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_socket_is_not_usurped() {
        let dir = tmp_dir("live");
        let socket = dir.join("svc.sock");
        let server = start_server(
            &socket,
            Config {
                workers: 1,
                ..Config::default()
            },
        );
        // A second server on the same path must refuse, and must NOT
        // delete the live socket out from under the first.
        let sched = Arc::new(
            Scheduler::start(Config {
                workers: 1,
                ..Config::default()
            })
            .expect("start"),
        );
        let err = serve(&socket, sched).expect_err("second bind must fail");
        assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
        assert!(socket.exists(), "first server's socket survives");

        // First server is still healthy.
        let mut client = Client::connect(&socket).expect("connect");
        client.ping().expect("ping");
        client.shutdown().expect("shutdown");
        server.join().expect("join").expect("serve");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
