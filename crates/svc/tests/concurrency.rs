//! Scheduler concurrency tests: the full benchmark × engine matrix run
//! through a multi-worker scheduler must produce the same answers as
//! serial execution, one bad job must not take down the fleet, and
//! simulated counters must be bit-identical regardless of worker count.

use std::time::Duration;

use engines::EngineKind;
use svc::exec::{execute, ExecEnv};
use svc::job::{JobMode, JobSpec, JobStatus, Scale};
use svc::scheduler::{Config, Scheduler};
use wacc::OptLevel;

fn config(workers: usize) -> Config {
    Config {
        workers,
        timeout: Duration::from_secs(120),
        store_dir: None,
        store_cap_bytes: 0,
        ..Config::default()
    }
}

#[test]
fn full_matrix_parallel_matches_native() {
    let sched = Scheduler::start(config(4)).expect("start");
    let mut expected = Vec::new();
    for b in suite::all() {
        for kind in EngineKind::all() {
            sched.submit(JobSpec::exec(b.name, kind, OptLevel::O2, Scale::Test));
            expected.push((b.name, kind, (b.native)(b.sizes.test)));
        }
    }
    let results = sched.drain_sorted();
    assert_eq!(results.len(), expected.len());
    // drain_sorted returns submission order, so results line up with
    // the expectation list even though workers finished out of order.
    for (res, (name, kind, sum)) in results.iter().zip(&expected) {
        assert!(
            res.ok(),
            "{name} on {} failed: {:?}",
            kind.name(),
            res.status
        );
        assert_eq!(res.spec.benchmark, *name);
        assert_eq!(res.spec.engine, *kind);
        assert_eq!(res.checksum, Some(*sum), "{name} on {}", kind.name());
        assert!(res.compile_s > 0.0, "{name} on {} timed no compile", kind.name());
    }
}

#[test]
fn parallel_checksums_equal_serial_execution() {
    // The same specs executed serially (no scheduler) and in parallel
    // must agree on every deterministic field.
    let specs: Vec<JobSpec> = suite::all()
        .iter()
        .take(6)
        .flat_map(|b| {
            [EngineKind::Wasmtime, EngineKind::Wasm3]
                .into_iter()
                .map(|k| JobSpec::exec(b.name, k, OptLevel::O2, Scale::Test))
        })
        .collect();

    let env = ExecEnv::new(None);
    let serial: Vec<_> = specs.iter().map(|s| execute(s, &env)).collect();

    let sched = Scheduler::start(config(3)).expect("start");
    for s in &specs {
        sched.submit(s.clone());
    }
    let parallel = sched.drain_sorted();

    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.spec, p.spec);
        assert_eq!(s.checksum, p.checksum, "{}", s.spec);
        assert_eq!(s.bytes_hash, p.bytes_hash, "{}", s.spec);
        assert!(s.ok() && p.ok());
    }
}

#[test]
fn profiled_counters_are_order_independent() {
    let benches = ["crc32", "sha", "quicksort"];
    let run = |workers: usize| {
        let sched = Scheduler::start(config(workers)).expect("start");
        for b in &benches {
            sched.submit(JobSpec {
                benchmark: (*b).to_string(),
                engine: EngineKind::Wasmtime,
                level: OptLevel::O2,
                scale: Scale::Test,
                mode: JobMode::Profiled,
                warm: false,
            });
        }
        sched.drain_sorted()
    };
    let serial = run(1);
    let parallel = run(4);
    for (s, p) in serial.iter().zip(&parallel) {
        assert!(s.ok() && p.ok(), "{:?} / {:?}", s.status, p.status);
        let (sc, pc) = (s.counters.expect("counters"), p.counters.expect("counters"));
        // The simulator is deterministic: bit-identical counters no
        // matter how many workers raced.
        assert_eq!(format!("{sc:?}"), format!("{pc:?}"), "{}", s.spec);
    }
}

#[test]
fn panicking_job_does_not_take_down_the_fleet() {
    let sched = Scheduler::start(config(2)).expect("start");
    let ok_before = sched.submit(JobSpec::exec(
        "crc32",
        EngineKind::Wasmtime,
        OptLevel::O2,
        Scale::Test,
    ));
    let boom = sched.submit(JobSpec {
        benchmark: "crc32".to_string(),
        engine: EngineKind::Wasmtime,
        level: OptLevel::O2,
        scale: Scale::Test,
        mode: JobMode::SelfTestPanic,
        warm: false,
    });
    let ok_after = sched.submit(JobSpec::exec(
        "sha",
        EngineKind::Wasm3,
        OptLevel::O2,
        Scale::Test,
    ));
    sched.wait_idle();
    let before = sched.wait(ok_before);
    let panicked = sched.wait(boom);
    let after = sched.wait(ok_after);
    assert!(before.ok(), "{:?}", before.status);
    assert!(after.ok(), "{:?}", after.status);
    match &panicked.status {
        JobStatus::Panicked(msg) => {
            assert!(msg.contains("injected failure"), "panic payload lost: {msg}")
        }
        other => panic!("expected Panicked, got {other:?}"),
    }
    let stats = sched.stats();
    assert_eq!(stats.panicked, 1);
    assert_eq!(stats.ok, 2);
    // The fleet is still alive: a fresh job after the panic succeeds.
    let id = sched.submit(JobSpec::exec(
        "crc32",
        EngineKind::Wamr,
        OptLevel::O0,
        Scale::Test,
    ));
    assert!(sched.wait(id).ok());
}
