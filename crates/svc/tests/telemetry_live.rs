//! Protocol v7 live-telemetry behavior over a real socket: trace ids
//! round-trip submit → digest → `TraceDump`, the background sampler
//! feeds a nonempty `Series` window, and the accept loop reaps finished
//! connection handler threads instead of accumulating them.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use svc::job::{JobSpec, Scale, TraceCtx};
use svc::scheduler::{Config, Scheduler};
use svc::server::{serve, serve_threaded, Client};
use svc::telemetry::TelemetryConfig;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "wabench-telemetry-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn start_server(socket: &Path, cfg: Config) -> std::thread::JoinHandle<std::io::Result<()>> {
    let sched = Arc::new(Scheduler::start(cfg).expect("start scheduler"));
    let path = socket.to_path_buf();
    let handle = std::thread::spawn(move || serve(&path, sched));
    for _ in 0..400 {
        if let Ok(mut c) = Client::connect(socket) {
            if c.ping().is_ok() {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    handle
}

fn spec() -> JobSpec {
    JobSpec::exec(
        "crc32",
        engines::EngineKind::Wasmtime,
        wacc::OptLevel::O2,
        Scale::Test,
    )
}

#[test]
fn trace_ids_flow_submit_to_digest_to_dump_and_series_fills() {
    let dir = tmp_dir("trace");
    let socket = dir.join("svc.sock");
    let server = start_server(
        &socket,
        Config {
            workers: 2,
            telemetry: TelemetryConfig {
                sample_interval: Some(Duration::from_millis(20)),
                ..TelemetryConfig::default()
            },
            ..Config::default()
        },
    );
    let mut client = Client::connect(&socket).expect("connect");

    // Traced submits: the result digest must echo the context and carry
    // ordered server-side phase timestamps.
    let ids: Vec<u64> = (1..=5u64).map(|i| 0xfeed_0000 + i).collect();
    for &trace_id in &ids {
        let origin_ns = obs::trace::now_ns();
        let job = client
            .submit_traced(spec(), TraceCtx { trace_id, origin_ns })
            .expect("submit");
        let res = client.wait(job).expect("wait");
        assert!(res.ok(), "{:?}", res.status);
        assert_eq!(res.trace.trace_id, trace_id, "digest echoes the trace id");
        assert_eq!(res.trace.origin_ns, origin_ns, "digest echoes the origin");
        assert!(
            res.trace.enqueue_ns <= res.trace.start_ns
                && res.trace.start_ns <= res.trace.done_ns,
            "phases are ordered: {:?}",
            res.trace
        );
    }

    // TraceDump returns those requests, joinable by trace id.
    let dump = client.trace_dump().expect("trace-dump");
    let dumped: Vec<u64> = dump
        .all_records()
        .iter()
        .map(|r| r.phases.trace_id)
        .collect();
    for id in &ids {
        assert!(dumped.contains(id), "trace {id:#x} missing from dump");
    }

    // The sampler has been running: the window must exist and account
    // for every completed job.
    std::thread::sleep(Duration::from_millis(40));
    let series = client.series().expect("series");
    assert!(series.interval_ns > 0, "sampler advertised its cadence");
    assert!(!series.points.is_empty(), "sampler produced points");
    let completed: u64 = series.points.iter().map(|p| p.completed).sum();
    assert_eq!(completed, ids.len() as u64, "window accounts for all jobs");
    let seqs: Vec<u64> = series.points.iter().map(|p| p.seq).collect();
    assert!(
        seqs.windows(2).all(|w| w[1] == w[0] + 1),
        "window is gap-free: {seqs:?}"
    );

    client.shutdown().expect("shutdown");
    server.join().expect("join").expect("serve");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn untraced_submits_still_work_and_digest_is_zeroed() {
    let dir = tmp_dir("untraced");
    let socket = dir.join("svc.sock");
    let server = start_server(
        &socket,
        Config {
            workers: 1,
            ..Config::default()
        },
    );
    let mut client = Client::connect(&socket).expect("connect");
    let id = client.submit(spec()).expect("submit");
    let res = client.wait(id).expect("wait");
    assert!(res.ok());
    assert_eq!(res.trace.trace_id, 0, "untraced jobs carry the sentinel");
    assert!(res.trace.done_ns >= res.trace.enqueue_ns);
    client.shutdown().expect("shutdown");
    server.join().expect("join").expect("serve");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The *threaded* accept loop must reap finished handler threads as it
/// goes — a long-lived server taking many short connections previously
/// kept every JoinHandle (and thread stack) until shutdown. The
/// default reactor front-end has no handler threads to reap; this
/// pins the `serve_threaded` fallback's behavior.
#[test]
fn accept_loop_reaps_finished_connection_threads() {
    let dir = tmp_dir("reap");
    let socket = dir.join("svc.sock");
    let reaped = obs::metrics::counter("svc.conn.reaped");
    let before = reaped.get();
    let sched = Arc::new(
        Scheduler::start(Config {
            workers: 1,
            ..Config::default()
        })
        .expect("start scheduler"),
    );
    let path = socket.clone();
    let server = std::thread::spawn(move || serve_threaded(&path, sched));
    for _ in 0..400 {
        if let Ok(mut c) = Client::connect(&socket) {
            if c.ping().is_ok() {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    const CONNS: u64 = 60;
    for _ in 0..CONNS {
        // Connect, ping, drop: the handler thread finishes as soon as
        // the stream closes, making it reapable by the next accept.
        let mut c = Client::connect(&socket).expect("connect");
        c.ping().expect("ping");
        drop(c);
    }
    let mut c = Client::connect(&socket).expect("connect");
    c.shutdown().expect("shutdown");
    server.join().expect("join").expect("serve");

    // Each accept reaps every already-finished handler. Closing
    // connection N races the accept of N+1, so allow slack — but the
    // bulk must be reaped long before shutdown.
    let reaped_now = reaped.get() - before;
    assert!(
        reaped_now >= CONNS / 2,
        "only {reaped_now} of {CONNS} short-lived connections were reaped in the accept loop"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
