//! Corrupt and truncated AOT artifacts must be rejected through
//! `Engine::load_artifact` (the untrusted `RegCode::try_new` path), and
//! a warm service job holding a checksum-valid but semantically corrupt
//! artifact must fall back to a cold compile instead of executing it.

use std::time::Duration;

use engines::jit::aot::{from_bytes, to_bytes};
use engines::{Engine, EngineKind};
use svc::job::{JobMode, JobSpec, Scale};
use svc::scheduler::{Config, Scheduler};
use svc::store::{ArtifactKey, ArtifactStore};
use wacc::OptLevel;

fn wasm_bytes() -> Vec<u8> {
    suite::by_name("crc32")
        .expect("crc32 registered")
        .compile(OptLevel::O2)
        .expect("compile")
}

/// A well-framed artifact whose register code fails validation: every
/// function claims a zero-register frame while its ops still name
/// registers.
fn semantically_corrupt_artifact(engine: &Engine, bytes: &[u8]) -> Vec<u8> {
    let good = engine.precompile(bytes).expect("precompile");
    let (mut code, tier) = from_bytes(&good).expect("decode own artifact");
    for f in &mut code.funcs {
        f.nregs = 0;
    }
    to_bytes(&code, tier)
}

#[test]
fn semantically_corrupt_artifact_is_rejected() {
    let bytes = wasm_bytes();
    let engine = Engine::new(EngineKind::Wasmtime);
    let evil = semantically_corrupt_artifact(&engine, &bytes);
    let err = engine.load_artifact(&evil);
    assert!(err.is_err(), "zero-frame artifact must not validate");
}

#[test]
fn truncated_and_mangled_artifacts_are_rejected() {
    let bytes = wasm_bytes();
    let engine = Engine::new(EngineKind::Wavm);
    let artifact = engine.precompile(&bytes).expect("precompile");
    // Round-trips when intact.
    assert!(engine.load_artifact(&artifact).is_ok());
    // Truncated at any of a few cut points: rejected, never panics.
    for cut in [0, 3, artifact.len() / 2, artifact.len() - 1] {
        assert!(
            engine.load_artifact(&artifact[..cut]).is_err(),
            "truncation at {cut} accepted"
        );
    }
    // Bad magic: rejected.
    let mut mangled = artifact.clone();
    mangled[0] ^= 0xff;
    assert!(engine.load_artifact(&mangled).is_err());
}

/// Regression test for store repair: an artifact that rots *on disk*
/// (bit-flip or truncation) must be detected at the next warm lookup,
/// evicted, recompiled, and written back under the same key — and the
/// warm pass after the repair must hit the store again.
#[test]
fn rotten_artifact_is_detected_evicted_and_repaired_in_place() {
    let dir = std::env::temp_dir().join(format!(
        "wabench-svc-repair-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let sched = Scheduler::start(Config {
        workers: 1,
        timeout: Duration::from_secs(120),
        store_dir: Some(dir.clone()),
        store_cap_bytes: 256 << 20,
        ..Config::default()
    })
    .expect("start");
    let warm_spec = |kind: EngineKind| JobSpec {
        benchmark: "crc32".to_string(),
        engine: kind,
        level: OptLevel::O2,
        scale: Scale::Test,
        mode: JobMode::Exec,
        warm: true,
    };
    let bytes = wasm_bytes();

    // Two corruption shapes, one engine each: a flipped payload byte
    // (checksum mismatch) and a truncated file (length mismatch).
    type Mangle = fn(&mut Vec<u8>);
    let rot: [(EngineKind, Mangle); 2] = [
        (EngineKind::Wasmtime, |file| {
            let last = file.len() - 1;
            file[last] ^= 0x40;
        }),
        (EngineKind::Wavm, |file| {
            file.truncate(file.len() / 2);
        }),
    ];
    for (kind, mangle) in rot {
        // Cold warm-mode job: populates the AOT entry.
        let res = sched.wait(sched.submit(warm_spec(kind)));
        assert!(res.ok(), "{:?}", res.status);
        assert!(!res.warm_artifact, "first run is cold");

        // Rot the artifact on disk, keeping the store open — a reopen
        // would drop the bad file during reindexing and turn the
        // corruption into a plain miss.
        let path = dir.join(format!(
            "{}.art",
            ArtifactKey::aot(&bytes, OptLevel::O2, kind).file_stem()
        ));
        let mut file = std::fs::read(&path).expect("artifact file on disk");
        mangle(&mut file);
        std::fs::write(&path, &file).expect("write rotten artifact");

        // Next warm job: detects, evicts, recompiles, repairs in place.
        let res = sched.wait(sched.submit(warm_spec(kind)));
        assert!(res.ok(), "{:?}", res.status);
        assert!(!res.warm_artifact, "repair run compiles cold");
        assert_eq!(
            res.recovery.store_repairs, 1,
            "repair must be surfaced in the result ({})",
            kind.name()
        );

        // The repaired entry serves warm again.
        let res = sched.wait(sched.submit(warm_spec(kind)));
        assert!(res.ok(), "{:?}", res.status);
        assert!(res.warm_artifact, "repaired entry must hit");
        assert_eq!(res.recovery.store_repairs, 0);
    }
    let stats = sched.stats();
    let store = stats.store.expect("store attached");
    assert!(store.corrupt_rejected >= 2, "both rotten reads detected");
    assert_eq!(sched.resilience().store_repairs, 2);
    drop(sched);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_job_falls_back_to_cold_compile_on_corrupt_artifact() {
    let dir = std::env::temp_dir().join(format!(
        "wabench-svc-corrupt-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    // Seed the store with a store-checksum-valid but semantically
    // corrupt artifact under exactly the key a warm job will look up.
    let bytes = wasm_bytes();
    let kind = EngineKind::Wasmtime;
    let engine = Engine::new(kind);
    let evil = semantically_corrupt_artifact(&engine, &bytes);
    {
        let mut store = ArtifactStore::open(&dir, 256 << 20).expect("open store");
        store
            .put(ArtifactKey::aot(&bytes, OptLevel::O2, kind), &evil)
            .expect("seed store");
    }

    let sched = Scheduler::start(Config {
        workers: 1,
        timeout: Duration::from_secs(120),
        store_dir: Some(dir.clone()),
        store_cap_bytes: 256 << 20,
        ..Config::default()
    })
    .expect("start");
    let id = sched.submit(JobSpec {
        benchmark: "crc32".to_string(),
        engine: kind,
        level: OptLevel::O2,
        scale: Scale::Test,
        mode: JobMode::Exec,
        warm: true,
    });
    let res = sched.wait(id);
    assert!(res.ok(), "{:?}", res.status);
    assert!(
        !res.warm_artifact,
        "corrupt artifact must not count as a warm load"
    );
    let b = suite::by_name("crc32").unwrap();
    assert_eq!(res.checksum, Some((b.native)(b.sizes.test)));
    drop(sched);
    let _ = std::fs::remove_dir_all(&dir);
}
