//! Keeps `docs/PROTOCOL.md` honest: the opcode tables and version
//! documented there are parsed out of the markdown and asserted against
//! the actual encodings in `svc::proto`. Renumbering a tag, adding a
//! message, or bumping `PROTO_VERSION` without updating the spec fails
//! this test.

use obs::metrics::HistogramSnapshot;
use svc::job::{JobSpec, JobStatus, Recovery, Scale, TraceCtx, TraceDigest};
use svc::proto::{BackendsReport, BackendStatus, Request, Response, PROTO_VERSION};
use svc::scheduler::{HealthReport, SvcStats, SvcStatsExt};
use svc::telemetry::{AlertReport, ProfileReport, SeriesReport, TraceReport};
use svc::JobResult;

const DOC: &str = include_str!("../../../docs/PROTOCOL.md");

/// Extracts `(tag, name)` rows from the table under the given `##`
/// section heading. Rows look like `` | `7` | `Health` | v4 | — | ``.
fn doc_table(section: &str) -> Vec<(u8, String)> {
    let mut in_section = false;
    let mut rows = Vec::new();
    for line in DOC.lines() {
        if let Some(h) = line.strip_prefix("## ") {
            in_section = h.starts_with(section);
            continue;
        }
        if !in_section || !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        // cells[0] and the last are the empty outsides of the pipes.
        if cells.len() < 4 {
            continue;
        }
        let tag_cell = cells[1].trim_matches('`');
        let name_cell = cells[2].trim_matches('`');
        if let Ok(tag) = tag_cell.parse::<u8>() {
            rows.push((tag, name_cell.to_string()));
        }
    }
    assert!(!rows.is_empty(), "no table rows found under {section:?}");
    rows
}

fn spec() -> JobSpec {
    JobSpec::exec("crc32", engines::EngineKind::Wasm3, wacc::OptLevel::O0, Scale::Test)
}

fn result() -> JobResult {
    JobResult {
        id: 0,
        spec: spec(),
        status: JobStatus::Ok,
        checksum: None,
        bytes_hash: 0,
        compile_s: 0.0,
        exec_s: 0.0,
        aot_compile_s: None,
        counters: None,
        warm_artifact: false,
        wall_s: 0.0,
        recovery: Recovery::default(),
        trace: TraceDigest::default(),
    }
}

fn stats_ext() -> SvcStatsExt {
    SvcStatsExt {
        base: SvcStats::default(),
        queue_depth: 0,
        workers: 0,
        uptime_s: 0.0,
        busy_s: 0.0,
        queue_wait: HistogramSnapshot::default(),
        engine_wall: Vec::new(),
        engine_counters: Vec::new(),
    }
}

#[test]
fn documented_request_tags_match_the_code() {
    let actual: Vec<(u8, &str)> = vec![
        (Request::Ping.encode()[0], "Ping"),
        (Request::Submit(spec(), TraceCtx::default()).encode()[0], "Submit"),
        (Request::Poll(0).encode()[0], "Poll"),
        (Request::Wait(0).encode()[0], "Wait"),
        (Request::Stats.encode()[0], "Stats"),
        (Request::Shutdown.encode()[0], "Shutdown"),
        (Request::StatsExt.encode()[0], "StatsExt"),
        (Request::Health.encode()[0], "Health"),
        (Request::Series(None).encode()[0], "Series"),
        (Request::TraceDump.encode()[0], "TraceDump"),
        (Request::ProfileDump.encode()[0], "ProfileDump"),
        (Request::AlertLog.encode()[0], "AlertLog"),
        (Request::Backends.encode()[0], "Backends"),
    ];
    let documented = doc_table("Requests");
    assert_eq!(
        documented.len(),
        actual.len(),
        "PROTOCOL.md requests table is missing or over-documenting messages"
    );
    for (tag, name) in &actual {
        assert!(
            documented.iter().any(|(t, n)| t == tag && n == name),
            "request {name} (tag {tag}) not documented correctly in PROTOCOL.md"
        );
    }
}

#[test]
fn documented_response_tags_match_the_code() {
    let actual: Vec<(u8, &str)> = vec![
        (Response::Pong.encode()[0], "Pong"),
        (Response::Submitted(0).encode()[0], "Submitted"),
        (Response::Pending.encode()[0], "Pending"),
        (Response::Result(result()).encode()[0], "Result"),
        (Response::Stats(SvcStats::default()).encode()[0], "Stats"),
        (Response::Err(String::new()).encode()[0], "Err"),
        (Response::Bye.encode()[0], "Bye"),
        (Response::StatsExt(Box::new(stats_ext())).encode()[0], "StatsExt"),
        (Response::Health(HealthReport::default()).encode()[0], "Health"),
        (Response::Series(SeriesReport::default()).encode()[0], "Series"),
        (Response::TraceDump(TraceReport::default()).encode()[0], "TraceDump"),
        (Response::ProfileDump(ProfileReport::default()).encode()[0], "ProfileDump"),
        (Response::AlertLog(AlertReport::default()).encode()[0], "AlertLog"),
        (Response::Busy(0).encode()[0], "Busy"),
        (Response::Backends(BackendsReport::default()).encode()[0], "Backends"),
    ];
    let documented = doc_table("Responses");
    assert_eq!(
        documented.len(),
        actual.len(),
        "PROTOCOL.md responses table is missing or over-documenting messages"
    );
    for (tag, name) in &actual {
        assert!(
            documented.iter().any(|(t, n)| t == tag && n == name),
            "response {name} (tag {tag}) not documented correctly in PROTOCOL.md"
        );
    }
}

#[test]
fn documented_version_matches_the_code() {
    let needle = format!("The current protocol version is **{PROTO_VERSION}**.");
    assert!(
        DOC.contains(&needle),
        "PROTOCOL.md must state: {needle}"
    );
}

/// The v6 Health queue-depth trailer must be documented and must match
/// the code: two trailing u64s that v4/v5 frames omit.
#[test]
fn documented_health_queue_trailer_matches_the_code() {
    for field in ["queue_depth", "peak_queue_depth"] {
        assert!(
            DOC.contains(field),
            "PROTOCOL.md must document the Health {field} field"
        );
    }
    let report = HealthReport {
        queue_depth: 4,
        peak_queue_depth: 17,
        ..HealthReport::default()
    };
    let with = Response::Health(report).encode();
    let without = Response::Health(HealthReport::default()).encode();
    assert_eq!(
        with.len(),
        without.len(),
        "the trailer is two fixed-width u64s"
    );
    let trailer = &with[with.len() - 16..];
    assert_eq!(u64::from_le_bytes(trailer[..8].try_into().unwrap()), 4);
    assert_eq!(u64::from_le_bytes(trailer[8..].try_into().unwrap()), 17);
}

/// The v7 trailers must be documented and match the code: a 16-byte
/// trace-context trailer that untraced submits omit entirely, and a
/// fixed 40-byte span digest at the end of every `Result` frame.
#[test]
fn documented_v7_trailers_match_the_code() {
    for field in ["trace_id", "origin_ns", "enqueue_ns", "start_ns", "done_ns"] {
        assert!(
            DOC.contains(field),
            "PROTOCOL.md must document the {field} field"
        );
    }
    let untraced = Request::Submit(spec(), TraceCtx::default()).encode();
    let ctx = TraceCtx {
        trace_id: 0xabc,
        origin_ns: 7,
    };
    let traced = Request::Submit(spec(), ctx).encode();
    assert_eq!(
        traced.len(),
        untraced.len() + 16,
        "the Submit trace-context trailer is two u64s, omitted when untraced"
    );
    let trailer = &traced[traced.len() - 16..];
    assert_eq!(u64::from_le_bytes(trailer[..8].try_into().unwrap()), 0xabc);
    assert_eq!(u64::from_le_bytes(trailer[8..].try_into().unwrap()), 7);

    let mut traced_result = result();
    traced_result.trace = TraceDigest {
        trace_id: 0xabc,
        origin_ns: 7,
        enqueue_ns: 1,
        start_ns: 2,
        done_ns: 3,
    };
    let with = Response::Result(traced_result).encode();
    let without = Response::Result(result()).encode();
    assert_eq!(
        with.len(),
        without.len(),
        "the Result span digest is five fixed-width u64s"
    );
    let digest = &with[with.len() - 40..];
    let vals: Vec<u64> = digest
        .chunks(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    assert_eq!(vals, vec![0xabc, 7, 1, 2, 3]);
}

/// The v8 additions must be documented and match the code: the Series
/// since-cursor (an optional trailing u64 on the request), the sparse
/// latency-bucket trailer on each Series reply point, and the
/// ProfileDump / AlertLog bodies.
#[test]
fn documented_v8_additions_match_the_code() {
    for field in [
        "since",
        "window_ns",
        "self_ns",
        "instructions",
        "cycles",
        "armed",
        "since_ns",
        "threshold",
        "transition",
    ] {
        assert!(
            DOC.contains(field),
            "PROTOCOL.md must document the v8 {field} field"
        );
    }
    // The Series cursor is one trailing u64, omitted when None.
    let bare = Request::Series(None).encode();
    let cursored = Request::Series(Some(0x1122)).encode();
    assert_eq!(cursored.len(), bare.len() + 8);
    let trailer = &cursored[cursored.len() - 8..];
    assert_eq!(u64::from_le_bytes(trailer.try_into().unwrap()), 0x1122);
    // Both v8 replies carry the version head right after the tag.
    for resp in [
        Response::ProfileDump(ProfileReport::default()),
        Response::AlertLog(AlertReport::default()),
    ] {
        let payload = resp.encode();
        assert_eq!(
            payload[1] as u16 | ((payload[2] as u16) << 8),
            PROTO_VERSION
        );
    }
}

/// The v9 routing additions must be documented and match the code: the
/// `Busy` retry hint is one fixed u32, the `Backends` request is bare,
/// and the `Backends` reply carries the version head plus the
/// per-backend status fields.
#[test]
fn documented_v9_additions_match_the_code() {
    for field in [
        "retry_after_ms",
        "watermark",
        "shed",
        "queue_depth",
        "forwarded",
        "failovers",
        "healthy",
    ] {
        assert!(
            DOC.contains(field),
            "PROTOCOL.md must document the v9 {field} field"
        );
    }
    // Busy: tag + u32 retry hint, nothing else.
    let busy = Response::Busy(250).encode();
    assert_eq!(busy.len(), 5);
    assert_eq!(u32::from_le_bytes(busy[1..5].try_into().unwrap()), 250);
    // Backends request is a bare tag.
    assert_eq!(Request::Backends.encode().len(), 1);
    // Backends reply carries the version head right after the tag and
    // round-trips its per-backend rows.
    let report = BackendsReport {
        watermark: 32,
        shed: 2,
        backends: vec![BackendStatus {
            name: "shard-0".to_string(),
            socket: "/tmp/shard0.sock".to_string(),
            healthy: true,
            queue_depth: 3,
            forwarded: 41,
            failovers: 1,
        }],
    };
    let payload = Response::Backends(report.clone()).encode();
    assert_eq!(
        payload[1] as u16 | ((payload[2] as u16) << 8),
        PROTO_VERSION
    );
    match Response::decode(&payload).expect("decode backends") {
        Response::Backends(decoded) => assert_eq!(decoded, report),
        other => panic!("expected Backends, got {other:?}"),
    }
}
