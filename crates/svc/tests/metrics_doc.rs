//! Keeps `docs/METRICS.md` honest: runs a representative workload —
//! warm store, JIT and interpreter engines, an armed fault plan — then
//! walks the process-wide metrics registry and asserts every
//! registered name matches a documented row of the right kind. A
//! metric added without a METRICS.md row fails here.

use std::sync::Arc;
use std::time::Duration;

use engines::EngineKind;
use obs::metrics::MetricValue;
use svc::job::{JobMode, JobSpec, Scale};
use svc::scheduler::{Config, Scheduler};
use svc::telemetry::TelemetryConfig;
use wacc::OptLevel;

const DOC: &str = include_str!("../../../docs/METRICS.md");

/// `(name pattern, kind)` rows from every table in the doc. Patterns
/// may end in a `<placeholder>` segment, which matches any instance
/// sharing the prefix before the `<`.
fn doc_rows() -> Vec<(String, String)> {
    let mut rows = Vec::new();
    for line in DOC.lines() {
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        if cells.len() < 5 {
            continue;
        }
        let name = cells[1].trim_matches('`');
        let kind = cells[2];
        if name.is_empty() || name == "Name" || name.starts_with('-') {
            continue;
        }
        assert!(
            matches!(kind, "counter" | "gauge" | "histogram"),
            "METRICS.md row {name:?} has unknown kind {kind:?}"
        );
        rows.push((name.to_string(), kind.to_string()));
    }
    assert!(
        rows.len() >= 30,
        "METRICS.md tables look truncated ({} rows)",
        rows.len()
    );
    rows
}

fn pattern_matches(pattern: &str, name: &str) -> bool {
    match pattern.find('<') {
        Some(i) => name.len() > i && name.starts_with(&pattern[..i]),
        None => pattern == name,
    }
}

fn kind_of(v: &MetricValue) -> &'static str {
    match v {
        MetricValue::Counter(_) => "counter",
        MetricValue::Gauge(_) => "gauge",
        MetricValue::Histogram(_) => "histogram",
    }
}

#[test]
fn every_registered_metric_is_documented() {
    let rows = doc_rows();
    // The workload: warm jobs through a real store on a JIT engine
    // (store puts/hits, engine + jit histograms) and the interpreter,
    // under an always-firing delay fault (fault.injected.*). The
    // registry is process-global, so this is the file's only #[test]
    // that runs jobs.
    let dir = std::env::temp_dir().join(format!("wabench-metrics-doc-{}", std::process::id()));
    let plan = fault::FaultPlan::parse("seed=7,delay=1.0:1ms").expect("fault plan");
    let sched = Scheduler::start(Config {
        workers: 2,
        store_dir: Some(dir.join("store")),
        store_cap_bytes: 64 << 20,
        faults: Some(Arc::new(plan)),
        telemetry: TelemetryConfig {
            sample_interval: Some(Duration::from_millis(20)),
            ..TelemetryConfig::default()
        },
        ..Config::default()
    })
    .expect("start scheduler");
    let spec = |engine: EngineKind| JobSpec {
        benchmark: "crc32".to_string(),
        engine,
        level: OptLevel::O2,
        scale: Scale::Test,
        mode: JobMode::Exec,
        warm: true,
    };
    for engine in [EngineKind::Wasmtime, EngineKind::Wasm3, EngineKind::Wasmtime] {
        let res = sched.wait(sched.submit(spec(engine)));
        assert!(res.ok(), "workload job failed: {:?}", res.status);
    }

    // The workload must have actually exercised the registry — an
    // empty snapshot would pass the documentation check vacuously.
    let snap = obs::metrics::snapshot();
    for sentinel in [
        "fault.injected.delay",
        "svc.jobs.completed",
        "svc.store.put",
        "svc.queue.depth",
        "svc.job.wall",
    ] {
        assert!(
            snap.iter().any(|(n, _)| n == sentinel),
            "workload did not register {sentinel} — the honesty check has no teeth"
        );
    }
    assert!(
        snap.iter().any(|(n, _)| n.starts_with("engine.compile.")),
        "workload did not register any engine.compile.<engine> histogram"
    );

    let mut undocumented = Vec::new();
    let mut wrong_kind = Vec::new();
    for (name, value) in snap {
        if name.starts_with("test.") {
            continue;
        }
        match rows.iter().find(|(p, _)| pattern_matches(p, &name)) {
            None => undocumented.push(name),
            Some((pattern, kind)) => {
                if kind != kind_of(&value) {
                    wrong_kind.push(format!(
                        "{name} is a {} but METRICS.md row {pattern:?} says {kind}",
                        kind_of(&value)
                    ));
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        undocumented.is_empty(),
        "metrics registered at runtime but missing from docs/METRICS.md: {undocumented:?}"
    );
    assert!(wrong_kind.is_empty(), "{}", wrong_kind.join("\n"));
}

#[test]
fn workload_independent_pattern_rules() {
    // Placeholder rows match instances, not their own literal text or
    // unrelated names; literal rows match exactly.
    assert!(pattern_matches("svc.jobs.engine.<code>", "svc.jobs.engine.3"));
    assert!(!pattern_matches("svc.jobs.engine.<code>", "svc.jobs.engine."));
    assert!(!pattern_matches("svc.jobs.engine.<code>", "svc.jobs.ok"));
    assert!(pattern_matches("svc.job.wall", "svc.job.wall"));
    assert!(!pattern_matches("svc.job.wall", "svc.job.wall.extra"));
}
