//! Live-telemetry plumbing for the service: the scheduler-side registry
//! metrics, the time-series sampler, and the per-request trace log the
//! protocol v7 `Series` / `TraceDump` requests serve.
//!
//! Three pieces, all inert unless explicitly enabled so simulated-figure
//! paths stay bit-identical:
//!
//! - **Registry metrics** ([`JobMetrics`]): jobs-completed/ok/failed
//!   counters (plus per-engine), queue-depth / busy-worker / breaker
//!   gauges, and a job wall-time histogram, updated by the scheduler's
//!   workers. Counters and gauges are cheap atomics; they exist even
//!   when nothing samples them.
//! - **Sampler** ([`obs::series::Sampler`] over [`series_spec`]): a
//!   background thread snapshotting those metrics every N ms into a
//!   bounded delta ring. Started only when
//!   [`TelemetryConfig::sample_interval`] is set (the `serve` path).
//! - **Trace log + exemplars** ([`Telemetry`]): every completed job's
//!   [`TraceRecord`] goes into a bounded recent-requests ring; jobs
//!   whose end-to-end latency meets the slow threshold are additionally
//!   retained in an [`obs::exemplar::ExemplarBuffer`]. `TraceDump`
//!   returns both.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use obs::exemplar::{Exemplar, ExemplarBuffer};
use obs::metrics::{self, Counter, Gauge, Histogram};
use obs::series::{self, HistDelta, Sampler, SeriesSpec};
use obs::stitch::ServerPhases;
use serde::{Deserialize, Serialize};

/// Jobs completed (any status).
pub const JOBS_COMPLETED: &str = "svc.jobs.completed";
/// Jobs completed with status `Ok`.
pub const JOBS_OK: &str = "svc.jobs.ok";
/// Jobs completed with any non-`Ok` status (failed, panicked, timed
/// out) — the numerator of the availability burn rate.
pub const JOBS_FAILED: &str = "svc.jobs.failed";
/// Jobs queued but not yet picked up by a worker (gauge).
pub const QUEUE_DEPTH: &str = "svc.queue.depth";
/// Workers currently running a job (gauge).
pub const WORKERS_BUSY: &str = "svc.workers.busy";
/// End-to-end job wall time (histogram, ns).
pub const JOB_WALL: &str = "svc.job.wall";

/// Every engine wire code ([`engines::EngineKind::code`]), including the
/// Wasmer backend variants.
pub const ENGINE_CODES: [u8; 7] = [0, 1, 2, 3, 4, 5, 6];

const FIXED_COUNTERS: usize = 3;
const FIXED_GAUGES: usize = 2;

/// Per-engine completed-jobs counter name.
pub fn engine_jobs_name(code: u8) -> String {
    format!("svc.jobs.engine.{code}")
}

/// Per-engine breaker-state gauge name (value =
/// [`fault::BreakerState::byte`]: 0 closed, 1 open, 2 half-open).
pub fn breaker_state_name(code: u8) -> String {
    format!("svc.breaker.state.{code}")
}

/// The fixed sampler spec: counters `[completed, ok, failed,
/// engine 0..=6]`, gauges `[queue depth, busy workers, breaker 0..=6]`,
/// histograms `[job wall]`. [`svc_point`] depends on exactly this
/// layout.
pub fn series_spec() -> SeriesSpec {
    let mut counters = vec![
        JOBS_COMPLETED.to_string(),
        JOBS_OK.to_string(),
        JOBS_FAILED.to_string(),
    ];
    let mut gauges = vec![QUEUE_DEPTH.to_string(), WORKERS_BUSY.to_string()];
    for code in ENGINE_CODES {
        counters.push(engine_jobs_name(code));
        gauges.push(breaker_state_name(code));
    }
    SeriesSpec {
        counters,
        gauges,
        histograms: vec![JOB_WALL.to_string()],
    }
}

/// Resolved registry handles for the scheduler's per-job hot path, so
/// workers touch atomics, not the name→handle map.
#[derive(Debug)]
pub struct JobMetrics {
    /// [`JOBS_COMPLETED`].
    pub completed: Arc<Counter>,
    /// [`JOBS_OK`].
    pub ok: Arc<Counter>,
    /// [`JOBS_FAILED`].
    pub failed: Arc<Counter>,
    /// Per-engine completed counters, indexed by engine code.
    pub engines: Vec<Arc<Counter>>,
    /// [`QUEUE_DEPTH`].
    pub queue_depth: Arc<Gauge>,
    /// [`WORKERS_BUSY`].
    pub busy: Arc<Gauge>,
    /// Per-engine breaker-state gauges, indexed by engine code.
    pub breakers: Vec<Arc<Gauge>>,
    /// [`JOB_WALL`].
    pub wall: Arc<Histogram>,
}

impl JobMetrics {
    /// Resolves (registering on first use) every handle.
    pub fn resolve() -> JobMetrics {
        JobMetrics {
            completed: metrics::counter(JOBS_COMPLETED),
            ok: metrics::counter(JOBS_OK),
            failed: metrics::counter(JOBS_FAILED),
            engines: ENGINE_CODES
                .iter()
                .map(|c| metrics::counter(&engine_jobs_name(*c)))
                .collect(),
            queue_depth: metrics::gauge(QUEUE_DEPTH),
            busy: metrics::gauge(WORKERS_BUSY),
            breakers: ENGINE_CODES
                .iter()
                .map(|c| metrics::gauge(&breaker_state_name(*c)))
                .collect(),
            wall: metrics::histogram(JOB_WALL),
        }
    }
}

/// One interval of the service time series, in service terms (protocol
/// v7 `Series` reply element). Derived from a generic
/// [`obs::series::SeriesPoint`] laid out by [`series_spec`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Monotone sample number since the sampler started (a gap-free
    /// window starts at the client's previously seen seq + 1).
    pub seq: u64,
    /// Sample time on the server trace clock, ns.
    pub t_ns: u64,
    /// Nanoseconds this sample covers.
    pub interval_ns: u64,
    /// Jobs completed during the interval.
    pub completed: u64,
    /// ... of which ok.
    pub ok: u64,
    /// ... of which failed (any non-ok status).
    pub failed: u64,
    /// Queue depth at sample time.
    pub queue_depth: u64,
    /// Workers running a job at sample time.
    pub busy_workers: u64,
    /// Job wall-time distribution over the interval.
    pub lat: HistDelta,
    /// Engines with completions this interval: `(engine code, jobs)`,
    /// zero-delta engines omitted.
    pub engines: Vec<(u8, u64)>,
    /// Breakers not in the closed state at sample time:
    /// `(engine code, state byte)`, closed breakers omitted.
    pub breakers: Vec<(u8, u8)>,
}

impl SeriesPoint {
    /// Completions per second over the interval (0 for an empty
    /// interval).
    pub fn qps(&self) -> f64 {
        if self.interval_ns == 0 {
            0.0
        } else {
            self.completed as f64 * 1e9 / self.interval_ns as f64
        }
    }
}

/// The protocol v7 `Series` reply: the buffered sample window plus the
/// server clock for offset estimation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeriesReport {
    /// Server trace clock at reply time ([`obs::trace::now_ns`]).
    pub server_now_ns: u64,
    /// Sampler cadence, ns.
    pub interval_ns: u64,
    /// Buffered points, oldest first (already includes a closing sample
    /// taken at request time).
    pub points: Vec<SeriesPoint>,
}

/// The protocol v8 `ProfileDump` reply: the continuous profiler's
/// retained windows.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Server trace clock at reply time ([`obs::trace::now_ns`]).
    pub server_now_ns: u64,
    /// Configured window span, ns; 0 when the profiler is off (and
    /// `windows` is empty).
    pub window_ns: u64,
    /// Retained windows, oldest first (the sealed ring plus the
    /// in-progress window).
    pub windows: Vec<obs::contprof::ProfileWindow>,
}

/// The protocol v8 `AlertLog` reply: the alert engine's current firing
/// set and recent transition events.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AlertReport {
    /// Server trace clock at reply time ([`obs::trace::now_ns`]).
    pub server_now_ns: u64,
    /// Whether an alert engine is armed (`--alerts` was given). When
    /// false both lists are empty — distinguishable from "armed and
    /// healthy".
    pub armed: bool,
    /// Currently firing alerts.
    pub firing: Vec<obs::alert::FiringAlert>,
    /// Recent pending/firing/resolved transitions, oldest first
    /// (bounded log).
    pub events: Vec<obs::alert::AlertEvent>,
}

/// Maps a generic sampler point laid out by [`series_spec`] into
/// service terms.
pub fn svc_point(p: &series::SeriesPoint) -> SeriesPoint {
    debug_assert_eq!(p.counters.len(), FIXED_COUNTERS + ENGINE_CODES.len());
    debug_assert_eq!(p.gauges.len(), FIXED_GAUGES + ENGINE_CODES.len());
    debug_assert_eq!(p.hists.len(), 1);
    let engines = ENGINE_CODES
        .iter()
        .enumerate()
        .filter_map(|(i, code)| {
            let jobs = p.counters.get(FIXED_COUNTERS + i).copied().unwrap_or(0);
            (jobs > 0).then_some((*code, jobs))
        })
        .collect();
    let breakers = ENGINE_CODES
        .iter()
        .enumerate()
        .filter_map(|(i, code)| {
            let state = p.gauges.get(FIXED_GAUGES + i).copied().unwrap_or(0);
            (state != 0).then_some((*code, state as u8))
        })
        .collect();
    SeriesPoint {
        seq: p.seq,
        t_ns: p.t_ns,
        interval_ns: p.interval_ns,
        completed: p.counters.first().copied().unwrap_or(0),
        ok: p.counters.get(1).copied().unwrap_or(0),
        failed: p.counters.get(2).copied().unwrap_or(0),
        queue_depth: p.gauges.first().copied().unwrap_or(0),
        busy_workers: p.gauges.get(1).copied().unwrap_or(0),
        lat: p.hists.first().cloned().unwrap_or_default(),
        engines,
        breakers,
    }
}

/// One completed request's server-side trace, as retained by the trace
/// log and the exemplar buffer and served by `TraceDump`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Human label: the job spec's display form.
    pub label: String,
    /// Whether the job finished `Ok`.
    pub ok: bool,
    /// Phase timestamps/durations on the server trace clock, keyed by
    /// the client trace id (0 = untraced submit).
    pub phases: ServerPhases,
}

/// The protocol v7 `TraceDump` reply.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceReport {
    /// Server trace clock at reply time ([`obs::trace::now_ns`]) — the
    /// third input to [`obs::stitch::clock_offset_ns`].
    pub server_now_ns: u64,
    /// The exemplar retention threshold, ns.
    pub slow_threshold_ns: u64,
    /// Recently completed requests, oldest first (bounded ring).
    pub recent: Vec<TraceRecord>,
    /// Slow-request exemplars at or above the threshold, oldest first.
    pub exemplars: Vec<TraceRecord>,
}

impl TraceReport {
    /// `recent` ∪ `exemplars` deduplicated, preferring `recent` order —
    /// what a stitcher should join client spans against (exemplars
    /// outlive the recent ring, so slow old requests stay joinable).
    pub fn all_records(&self) -> Vec<TraceRecord> {
        let mut out = self.recent.clone();
        for e in &self.exemplars {
            if !out
                .iter()
                .any(|r| r.phases.trace_id == e.phases.trace_id && r.phases == e.phases)
            {
                out.push(e.clone());
            }
        }
        out
    }
}

/// Telemetry tuning for a scheduler.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Sampler cadence; `None` (the default) starts no sampler thread
    /// and `Series` reports an empty window.
    pub sample_interval: Option<Duration>,
    /// Sample points retained (ring capacity).
    pub series_cap: usize,
    /// End-to-end latency at or above which a request's trace is kept
    /// as a slow exemplar.
    pub slow_threshold: Duration,
    /// Recently-completed-request records retained for `TraceDump`.
    pub trace_log_cap: usize,
    /// Slow exemplars retained.
    pub exemplar_cap: usize,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            sample_interval: None,
            series_cap: 600,
            slow_threshold: Duration::from_millis(250),
            trace_log_cap: 512,
            exemplar_cap: 64,
        }
    }
}

/// The scheduler's telemetry state: optional sampler, recent-request
/// trace log, slow-request exemplars.
#[derive(Debug)]
pub struct Telemetry {
    sampler: Mutex<Option<Sampler>>,
    trace_log: Mutex<VecDeque<TraceRecord>>,
    log_cap: usize,
    exemplars: ExemplarBuffer,
}

impl Telemetry {
    /// Builds telemetry state, starting the sampler thread if
    /// `cfg.sample_interval` is set.
    pub fn new(cfg: &TelemetryConfig) -> Telemetry {
        let sampler = cfg
            .sample_interval
            .map(|every| Sampler::start(series_spec(), every, cfg.series_cap.max(2)));
        Telemetry {
            sampler: Mutex::new(sampler),
            trace_log: Mutex::new(VecDeque::new()),
            log_cap: cfg.trace_log_cap.max(1),
            exemplars: ExemplarBuffer::new(
                cfg.slow_threshold.as_nanos() as u64,
                cfg.exemplar_cap.max(1),
            ),
        }
    }

    /// Whether a sampler thread is running.
    pub fn sampling(&self) -> bool {
        self.sampler.lock().expect("sampler slot").is_some()
    }

    /// Folds a completed request into the trace log (bounded FIFO) and
    /// offers it to the exemplar buffer.
    pub fn record(&self, rec: TraceRecord) {
        self.exemplars.offer(Exemplar {
            label: rec.label.clone(),
            phases: rec.phases,
        });
        let mut log = self.trace_log.lock().expect("trace log");
        if log.len() == self.log_cap {
            log.pop_front();
        }
        log.push_back(rec);
    }

    /// The `Series` reply: takes a closing sample, then maps the whole
    /// window. Empty (but well-formed) when no sampler is running.
    pub fn series(&self) -> SeriesReport {
        let slot = self.sampler.lock().expect("sampler slot");
        let (interval_ns, points) = match slot.as_ref() {
            Some(sampler) => {
                sampler.sample_now();
                let (_, window) = sampler.window();
                (
                    sampler.interval().as_nanos() as u64,
                    window.iter().map(svc_point).collect(),
                )
            }
            None => (0, Vec::new()),
        };
        SeriesReport {
            server_now_ns: obs::trace::now_ns(),
            interval_ns,
            points,
        }
    }

    /// The `TraceDump` reply: recent requests plus slow exemplars.
    pub fn trace_dump(&self) -> TraceReport {
        TraceReport {
            server_now_ns: obs::trace::now_ns(),
            slow_threshold_ns: self.exemplars.threshold_ns(),
            recent: self
                .trace_log
                .lock()
                .expect("trace log")
                .iter()
                .cloned()
                .collect(),
            exemplars: self
                .exemplars
                .window()
                .into_iter()
                .map(|e| TraceRecord {
                    label: e.label,
                    ok: true,
                    phases: e.phases,
                })
                .collect(),
        }
    }

    /// Stops and joins the sampler thread, if any (idempotent).
    pub fn stop(&self) {
        if let Some(mut sampler) = self.sampler.lock().expect("sampler slot").take() {
            sampler.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_layout_matches_svc_point_mapping() {
        let spec = series_spec();
        assert_eq!(spec.counters.len(), FIXED_COUNTERS + ENGINE_CODES.len());
        assert_eq!(spec.gauges.len(), FIXED_GAUGES + ENGINE_CODES.len());
        assert_eq!(spec.histograms, vec![JOB_WALL.to_string()]);
        assert_eq!(spec.counters[0], JOBS_COMPLETED);
        assert_eq!(spec.counters[FIXED_COUNTERS], engine_jobs_name(0));
        assert_eq!(spec.gauges[FIXED_GAUGES + 6], breaker_state_name(6));

        let mut generic = series::SeriesPoint {
            seq: 9,
            t_ns: 1_000,
            interval_ns: 500_000_000,
            counters: vec![0; spec.counters.len()],
            gauges: vec![0; spec.gauges.len()],
            hists: vec![HistDelta {
                count: 4,
                sum_ns: 4_000,
                p50_ns: 900,
                p99_ns: 1_800,
                buckets: vec![(9, 4)],
            }],
        };
        generic.counters[0] = 5; // completed
        generic.counters[1] = 4; // ok
        generic.counters[2] = 1; // failed
        generic.counters[FIXED_COUNTERS + 5] = 5; // engine code 5
        generic.gauges[0] = 3; // queue depth
        generic.gauges[1] = 2; // busy
        generic.gauges[FIXED_GAUGES + 1] = 1; // breaker code 1 open

        let p = svc_point(&generic);
        assert_eq!(p.seq, 9);
        assert_eq!((p.completed, p.ok, p.failed), (5, 4, 1));
        assert_eq!((p.queue_depth, p.busy_workers), (3, 2));
        assert_eq!(p.engines, vec![(5u8, 5u64)], "zero-delta engines omitted");
        assert_eq!(p.breakers, vec![(1u8, 1u8)], "closed breakers omitted");
        assert_eq!(p.lat.count, 4);
        assert_eq!(p.lat.buckets, vec![(9, 4)], "bucket deltas pass through");
        assert!((p.qps() - 10.0).abs() < 1e-9, "5 jobs / 0.5s");
    }

    #[test]
    fn telemetry_off_is_empty_but_well_formed() {
        let t = Telemetry::new(&TelemetryConfig::default());
        assert!(!t.sampling());
        let s = t.series();
        assert_eq!(s.interval_ns, 0);
        assert!(s.points.is_empty());
        assert!(s.server_now_ns > 0);
        t.stop(); // idempotent no-op
    }

    #[test]
    fn trace_log_bounds_and_exemplars_gate() {
        let cfg = TelemetryConfig {
            trace_log_cap: 3,
            slow_threshold: Duration::from_millis(1),
            exemplar_cap: 8,
            ..TelemetryConfig::default()
        };
        let t = Telemetry::new(&cfg);
        for i in 0..5u64 {
            let slow = i == 4; // only the last one crosses 1ms
            t.record(TraceRecord {
                label: format!("job-{i}"),
                ok: true,
                phases: ServerPhases {
                    trace_id: 100 + i,
                    enqueue_ns: 1_000,
                    start_ns: 2_000,
                    done_ns: 1_000 + if slow { 2_000_000 } else { 10_000 },
                    ..ServerPhases::default()
                },
            });
        }
        let dump = t.trace_dump();
        assert_eq!(dump.slow_threshold_ns, 1_000_000);
        assert_eq!(dump.recent.len(), 3, "log is bounded");
        let ids: Vec<u64> = dump.recent.iter().map(|r| r.phases.trace_id).collect();
        assert_eq!(ids, vec![102, 103, 104], "oldest evicted");
        assert_eq!(dump.exemplars.len(), 1, "only the slow request kept");
        assert_eq!(dump.exemplars[0].phases.trace_id, 104);
        // 104 is in both recent and exemplars; all_records dedups it.
        assert_eq!(dump.all_records().len(), 3);
    }
}
