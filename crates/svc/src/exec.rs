//! Job execution: one [`JobSpec`] in, one [`JobResult`] out.
//!
//! Engine state (`CompiledModule`, instances) is `Rc`-based and not
//! `Send`; everything here is built and dropped on the calling thread.
//! Only `Send` data enters and leaves: the spec, shared wasm bytes
//! (`Arc<[u8]>`), the artifact store behind a `Mutex`, and the result.
//!
//! Measurement fidelity: a non-`warm` `Exec` job times a *fresh*
//! compile, exactly like the serial harness runner, so results primed
//! into the harness caches mean the same thing serial measurements do.
//! A `warm` job is the serving path: it consults the artifact store and
//! times the artifact *load* instead when a valid artifact exists.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use engines::faultpoint::ScopedCompileFault;
use engines::{Engine, EngineKind};
use fault::{FaultPlan, Site};
use suite::Benchmark;
use wacc::OptLevel;
use wasi_rt::WasiCtx;
use wasm_core::types::Value;

use crate::hash::fnv64;
use crate::job::{JobMode, JobResult, JobSpec, JobStatus, Recovery};
use crate::store::{ArtifactKey, ArtifactStore, GetOutcome};

/// Compiled-wasm cache shared by all workers, keyed (benchmark, level).
type BytesCache = Mutex<HashMap<(String, OptLevel), Arc<[u8]>>>;

/// Shared, thread-safe execution environment.
#[derive(Debug)]
pub struct ExecEnv {
    /// Optional on-disk artifact store.
    pub store: Option<Mutex<ArtifactStore>>,
    /// In-memory compiled-wasm cache shared by all workers. `Arc<[u8]>`
    /// so a hit hands out a refcount bump, never a byte copy.
    pub bytes_cache: BytesCache,
    /// Optional fault-injection plan. Only jobs executed through this
    /// environment see injected faults — the serial harness runner never
    /// installs one, which is what keeps its recomputations clean.
    pub faults: Option<Arc<FaultPlan>>,
}

impl ExecEnv {
    /// A store-less environment.
    pub fn new(store: Option<ArtifactStore>) -> ExecEnv {
        ExecEnv::with_faults(store, None)
    }

    /// An environment with a fault plan threaded through job execution
    /// and the artifact store.
    pub fn with_faults(store: Option<ArtifactStore>, faults: Option<Arc<FaultPlan>>) -> ExecEnv {
        let store = store.map(|mut s| {
            s.set_faults(faults.clone());
            Mutex::new(s)
        });
        ExecEnv {
            store,
            bytes_cache: Mutex::new(HashMap::new()),
            faults,
        }
    }

    /// Snapshot of the compiled-wasm cache (name, level, bytes).
    pub fn bytes_snapshot(&self) -> Vec<(String, OptLevel, Arc<[u8]>)> {
        self.bytes_cache
            .lock()
            .expect("bytes cache lock")
            .iter()
            .map(|((name, level), bytes)| (name.clone(), *level, bytes.clone()))
            .collect()
    }

    /// Compiled wasm bytes for a benchmark, via cache → store → WaCC.
    pub fn wasm_bytes(&self, b: &Benchmark, level: OptLevel) -> Result<Arc<[u8]>, String> {
        self.wasm_bytes_recovering(b, level, &mut Recovery::default())
    }

    /// [`wasm_bytes`](Self::wasm_bytes) that additionally records store
    /// repairs (corrupt entry detected → recompiled → written back) into
    /// `rec`.
    pub fn wasm_bytes_recovering(
        &self,
        b: &Benchmark,
        level: OptLevel,
        rec: &mut Recovery,
    ) -> Result<Arc<[u8]>, String> {
        let key = (b.name.to_string(), level);
        if let Some(hit) = self.bytes_cache.lock().expect("bytes cache lock").get(&key) {
            return Ok(hit.clone());
        }
        let bytes: Arc<[u8]> = match &self.store {
            Some(store) => {
                let skey = ArtifactKey::wasm(&b.full_source(), level);
                let mut store = store.lock().expect("store lock");
                match store.get_outcome(&skey) {
                    GetOutcome::Hit(payload) => payload.into(),
                    outcome => {
                        let fresh = b.compile(level).map_err(|e| e.to_string())?;
                        // Best effort: a full disk must not fail the job.
                        if store.put(skey, &fresh).is_ok() && outcome == GetOutcome::Corrupt {
                            rec.store_repairs += 1;
                            obs::metrics::counter("svc.store.repair").inc();
                        }
                        fresh.into()
                    }
                }
            }
            None => b.compile(level).map_err(|e| e.to_string())?.into(),
        };
        self.bytes_cache
            .lock()
            .expect("bytes cache lock")
            .insert(key, bytes.clone());
        Ok(bytes)
    }
}

/// Executes a job on the current thread. Never panics for *failures*
/// (they become [`JobStatus::Failed`]); a checksum mismatch panics by
/// design and is caught at the scheduler's job boundary.
pub fn execute(spec: &JobSpec, env: &ExecEnv) -> JobResult {
    execute_attempt(spec, env, 1)
}

/// [`execute`] with the scheduler's attempt number (1-based) threaded
/// in, so self-test modes and transient fault draws can distinguish a
/// first run from a retry. `res.recovery.attempts` is set by the
/// scheduler, not here.
pub fn execute_attempt(spec: &JobSpec, env: &ExecEnv, attempt: u32) -> JobResult {
    let _span = obs::span!(
        "svc.job.exec",
        bench = spec.benchmark,
        engine = spec.engine.name(),
        level = spec.level,
        mode = format_args!("{:?}", spec.mode)
    );
    // With a fault plan active, JIT compiles in this job may be vetoed
    // deterministically (keyed by module bytes × engine, so a retry
    // hits the same verdict and the fallback path must engage). The
    // hook is thread-local and scoped to this job.
    let _hook = env.faults.as_ref().map(|plan| {
        let plan = Arc::clone(plan);
        ScopedCompileFault::install(move |kind, bytes| {
            (kind.tier().is_some()
                && plan.keyed(Site::CompileFail, fnv64(bytes) ^ kind.code() as u64))
            .then(|| format!("injected compile failure ({})", kind.name()))
        })
    });
    let t0 = Instant::now();
    let mut res = JobResult {
        id: 0,
        spec: spec.clone(),
        status: JobStatus::Ok,
        checksum: None,
        bytes_hash: 0,
        compile_s: 0.0,
        exec_s: 0.0,
        aot_compile_s: None,
        counters: None,
        warm_artifact: false,
        wall_s: 0.0,
        recovery: Recovery::default(),
        trace: crate::job::TraceDigest::default(),
    };
    if let Err(msg) = run(spec, env, attempt, &mut res) {
        res.status = JobStatus::Failed(msg);
    }
    res.wall_s = t0.elapsed().as_secs_f64();
    res
}

fn run(spec: &JobSpec, env: &ExecEnv, attempt: u32, res: &mut JobResult) -> Result<(), String> {
    match spec.mode {
        JobMode::SelfTestPanic => panic!("injected failure (svc self-test)"),
        JobMode::SelfTestHang => {
            std::thread::sleep(std::time::Duration::from_secs(2));
            return Ok(());
        }
        JobMode::SelfTestFlaky => {
            if attempt == 1 {
                panic!("injected flaky failure (svc self-test, attempt 1)");
            }
            return Ok(());
        }
        _ => {}
    }
    // Injected worker panic: transient, so the scheduler's retry draws
    // afresh and normally clears it. Caught at the job boundary like
    // any other panic.
    if let Some(plan) = &env.faults {
        if plan.transient(Site::WorkerPanic) {
            panic!("injected worker panic (fault plan, attempt {attempt})");
        }
    }
    let b = suite::by_name(&spec.benchmark)
        .ok_or_else(|| format!("unknown benchmark {:?}", spec.benchmark))?;
    let n = spec.scale.arg(b);
    let bytes = env.wasm_bytes_recovering(b, spec.level, &mut res.recovery)?;
    res.bytes_hash = fnv64(&bytes);
    match spec.mode {
        JobMode::Exec => exec_job(spec, b, n, &bytes, env, res),
        JobMode::ExecAot => exec_aot_job(spec, b, n, &bytes, res),
        JobMode::Profiled => profiled_job(spec, b, n, &bytes, res),
        JobMode::ProfiledNative => profiled_native_job(b, n, &bytes, res),
        JobMode::SelfTestPanic | JobMode::SelfTestHang | JobMode::SelfTestFlaky => {
            unreachable!("handled above")
        }
    }
}

fn invoke_checked(
    compiled: &engines::CompiledModule,
    b: &Benchmark,
    n: i32,
) -> Result<(i32, f64), String> {
    let t = Instant::now();
    let mut inst = compiled
        .instantiate(&wasi_rt::imports(), Box::new(WasiCtx::new()))
        .map_err(|e| format!("instantiate: {e}"))?;
    let out = inst
        .invoke("run", &[Value::I32(n)])
        .map_err(|e| format!("run: {e}"))?;
    let exec_s = t.elapsed().as_secs_f64();
    let got = match out {
        Some(Value::I32(v)) => v,
        other => return Err(format!("run() returned {other:?}")),
    };
    let expected = (b.native)(n);
    // A wrong checksum means the measurement is meaningless — panic, as
    // the serial runner does. The scheduler catches it at the job
    // boundary: this job fails, the fleet keeps running.
    assert_eq!(
        got, expected,
        "{} checksum mismatch on {}",
        b.name,
        compiled.kind().name()
    );
    Ok((got, exec_s))
}

fn exec_job(
    spec: &JobSpec,
    b: &Benchmark,
    n: i32,
    bytes: &Arc<[u8]>,
    env: &ExecEnv,
    res: &mut JobResult,
) -> Result<(), String> {
    let engine = Engine::new(spec.engine);
    let akey = ArtifactKey::aot(bytes, spec.level, spec.engine);
    let mut compiled = None;
    // A corrupt store entry (detected by checksum at the store, or by
    // the semantic RegCode::try_new re-validation at load) is *repaired*:
    // the cold path below recompiles and puts a fresh artifact back
    // under the same key.
    let mut repair_needed = false;
    if spec.warm && spec.engine.tier().is_some() {
        if let Some(store) = &env.store {
            let outcome = store.lock().expect("store lock").get_outcome(&akey);
            match outcome {
                GetOutcome::Hit(artifact) => {
                    let t = Instant::now();
                    // A checksum-valid but semantically corrupt artifact
                    // is rejected here by the untrusted RegCode::try_new
                    // path; fall back to a cold compile + repair.
                    if let Ok(c) = engine.load_artifact(&artifact) {
                        res.compile_s = t.elapsed().as_secs_f64();
                        res.warm_artifact = true;
                        compiled = Some(c);
                    } else {
                        repair_needed = true;
                    }
                }
                GetOutcome::Corrupt => repair_needed = true,
                GetOutcome::Miss => {}
            }
        }
    }
    let compiled = match compiled {
        Some(c) => c,
        None => {
            let t = Instant::now();
            let c = match engine.compile(bytes) {
                Ok(c) => c,
                // Graceful degradation: a JIT whose compile fails hands
                // the job to the interpreter tier. The checksum is still
                // verified, but the timings now measure the wrong tier —
                // the result is flagged degraded so callers can tell.
                Err(e) if spec.engine.tier().is_some() => {
                    let fallback = Engine::new(EngineKind::Wasm3);
                    match fallback.compile(bytes) {
                        Ok(c) => {
                            res.recovery.compile_fallback = true;
                            obs::metrics::counter("svc.fallback.interp").inc();
                            obs::warn!(
                                "{}: compile failed on {} ({e}); degraded to {}",
                                spec.benchmark,
                                spec.engine.name(),
                                fallback.kind().name()
                            );
                            c
                        }
                        Err(_) => return Err(format!("compile: {e}")),
                    }
                }
                Err(e) => return Err(format!("compile: {e}")),
            };
            res.compile_s = t.elapsed().as_secs_f64();
            if spec.warm && spec.engine.tier().is_some() && !res.recovery.compile_fallback {
                if let Some(store) = &env.store {
                    if let Ok(artifact) = engine.precompile(bytes) {
                        let repaired = store
                            .lock()
                            .expect("store lock")
                            .put(akey, &artifact)
                            .is_ok();
                        if repaired && repair_needed {
                            res.recovery.store_repairs += 1;
                            obs::metrics::counter("svc.store.repair").inc();
                        }
                    }
                }
            }
            c
        }
    };
    let (sum, exec_s) = invoke_checked(&compiled, b, n)?;
    res.checksum = Some(sum);
    res.exec_s = exec_s;
    Ok(())
}

fn exec_aot_job(
    spec: &JobSpec,
    b: &Benchmark,
    n: i32,
    bytes: &Arc<[u8]>,
    res: &mut JobResult,
) -> Result<(), String> {
    let engine = Engine::new(spec.engine);
    let t = Instant::now();
    let artifact = engine
        .precompile(bytes)
        .map_err(|e| format!("precompile: {e}"))?;
    res.aot_compile_s = Some(t.elapsed().as_secs_f64());
    let t = Instant::now();
    let compiled = engine
        .load_artifact(&artifact)
        .map_err(|e| format!("load artifact: {e}"))?;
    res.compile_s = t.elapsed().as_secs_f64();
    let (sum, exec_s) = invoke_checked(&compiled, b, n)?;
    res.checksum = Some(sum);
    res.exec_s = exec_s;
    Ok(())
}

fn profiled_job(
    spec: &JobSpec,
    b: &Benchmark,
    n: i32,
    bytes: &Arc<[u8]>,
    res: &mut JobResult,
) -> Result<(), String> {
    let mut sim = archsim::ArchSim::new();
    let engine = Engine::new(spec.engine);
    let compiled = engine
        .compile_profiled(bytes, &mut sim)
        .map_err(|e| format!("compile: {e}"))?;
    let mut inst = compiled
        .instantiate(&wasi_rt::imports(), Box::new(WasiCtx::new()))
        .map_err(|e| format!("instantiate: {e}"))?;
    let out = inst
        .invoke_profiled("run", &[Value::I32(n)], &mut sim)
        .map_err(|e| format!("run: {e}"))?;
    if let Some(Value::I32(got)) = out {
        assert_eq!(
            got,
            (b.native)(n),
            "{} checksum mismatch on {} (profiled)",
            b.name,
            spec.engine.name()
        );
        res.checksum = Some(got);
    }
    res.counters = Some(sim.counters());
    Ok(())
}

fn profiled_native_job(
    _b: &Benchmark,
    n: i32,
    bytes: &Arc<[u8]>,
    res: &mut JobResult,
) -> Result<(), String> {
    let mut sim = archsim::ArchSim::new();
    let engine = Engine::new(engines::EngineKind::Wavm);
    let compiled = engine.compile(bytes).map_err(|e| format!("compile: {e}"))?;
    let mut inst = compiled
        .instantiate(&wasi_rt::imports(), Box::new(WasiCtx::new()))
        .map_err(|e| format!("instantiate: {e}"))?;
    inst.invoke_profiled("run", &[Value::I32(n)], &mut sim)
        .map_err(|e| format!("run: {e}"))?;
    res.counters = Some(sim.counters());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Scale;
    use engines::EngineKind;

    #[test]
    fn exec_job_produces_native_checksum() {
        let env = ExecEnv::new(None);
        let spec = JobSpec::exec("crc32", EngineKind::Wasmtime, OptLevel::O2, Scale::Test);
        let res = execute(&spec, &env);
        assert!(res.ok(), "{:?}", res.status);
        let b = suite::by_name("crc32").unwrap();
        assert_eq!(res.checksum, Some((b.native)(b.sizes.test)));
        assert!(res.compile_s > 0.0 && res.exec_s > 0.0);
        assert_ne!(res.bytes_hash, 0);
    }

    #[test]
    fn unknown_benchmark_fails_cleanly() {
        let env = ExecEnv::new(None);
        let spec = JobSpec::exec("no-such", EngineKind::Wasm3, OptLevel::O0, Scale::Test);
        let res = execute(&spec, &env);
        assert!(matches!(res.status, JobStatus::Failed(_)));
    }

    #[test]
    fn bytes_cache_shares_one_compile() {
        let env = ExecEnv::new(None);
        let b = suite::by_name("crc32").unwrap();
        let first = env.wasm_bytes(b, OptLevel::O2).unwrap();
        let second = env.wasm_bytes(b, OptLevel::O2).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "hit must not copy");
    }
}
