//! `wabench-top` — live terminal view of a running `wabench-served`.
//!
//! ```text
//! wabench-top --socket PATH [--interval-ms N] [--iterations N] [--once]
//!             [--slo-target F] [--log LEVEL]
//! ```
//!
//! Polls the protocol v7 `Series` request (plus `Health` and `StatsExt`
//! for breaker states and worker counts) and prints one status line per
//! tick, vmstat-style: live QPS, p50/p99 job latency, queue depth,
//! worker utilization, breaker states, and a rolling SLO burn-rate
//! column (error-budget consumption relative to `--slo-target`, default
//! 0.999 availability — burn 1.0 means failing at exactly the budgeted
//! rate, above 1.0 the budget is being consumed faster than allotted).
//!
//! `--once` instead fetches a single window and prints machine-readable
//! `key=value` lines aggregated over the whole buffered window — the
//! mode scripts and the verify smoke use. Exit code is 0 when the
//! server answered, 1 on connection or protocol errors, 2 on usage
//! errors.
//!
//! The server must be sampling (`wabench-served serve --sample-ms`,
//! on by default) for the window to be nonempty; against a sampler-less
//! server `wabench-top` reports an empty window rather than failing.

use std::path::PathBuf;
use std::process::exit;
use std::time::Duration;

use engines::EngineKind;
use svc::server::Client;
use svc::telemetry::{SeriesPoint, SeriesReport};

fn usage() -> ! {
    obs::error!(
        "usage: wabench-top --socket PATH [--interval-ms N] [--iterations N] [--once]\n\
         \u{20}                  [--slo-target F] [--log error|warn|info|debug]\n\
         \n\
         --interval-ms  poll cadence (default 1000)\n\
         --iterations   stop after N ticks (default: run until interrupted)\n\
         --once         fetch one window, print key=value lines, exit\n\
         --slo-target   availability SLO for the burn-rate column (default 0.999)"
    );
    exit(2);
}

fn take_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    match args.get(*i) {
        Some(v) => v.clone(),
        None => {
            obs::error!("missing value for {flag}");
            usage();
        }
    }
}

struct Opts {
    socket: PathBuf,
    interval: Duration,
    iterations: Option<u64>,
    once: bool,
    slo_target: f64,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut socket = None;
    let mut interval = Duration::from_millis(1000);
    let mut iterations = None;
    let mut once = false;
    let mut slo_target = 0.999;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--socket" => socket = Some(PathBuf::from(take_value(args, &mut i, "--socket"))),
            "--interval-ms" => {
                let ms: u64 = take_value(args, &mut i, "--interval-ms")
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| {
                        obs::error!("--interval-ms needs a positive integer");
                        usage();
                    });
                interval = Duration::from_millis(ms);
            }
            "--iterations" => {
                iterations = Some(
                    take_value(args, &mut i, "--iterations")
                        .parse()
                        .ok()
                        .filter(|n| *n > 0)
                        .unwrap_or_else(|| {
                            obs::error!("--iterations needs a positive integer");
                            usage();
                        }),
                )
            }
            "--once" => once = true,
            "--slo-target" => {
                slo_target = take_value(args, &mut i, "--slo-target")
                    .parse()
                    .ok()
                    .filter(|f| (0.0..1.0).contains(f))
                    .unwrap_or_else(|| {
                        obs::error!("--slo-target needs a fraction in [0, 1)");
                        usage();
                    })
            }
            "--log" => {
                let v = take_value(args, &mut i, "--log");
                match obs::logger::Level::parse(&v) {
                    Some(lvl) => obs::logger::set_level(lvl),
                    None => {
                        obs::error!("unknown log level {v:?} (use error|warn|info|debug)");
                        usage();
                    }
                }
            }
            other => {
                obs::error!("unknown option {other:?}");
                usage();
            }
        }
        i += 1;
    }
    let Some(socket) = socket else {
        obs::error!("--socket is required");
        usage();
    };
    Opts {
        socket,
        interval,
        iterations,
        once,
        slo_target,
    }
}

/// Whole-window aggregate of a series reply.
#[derive(Debug, Default)]
struct WindowAgg {
    completed: u64,
    ok: u64,
    failed: u64,
    lat_count: u64,
    lat_sum_ns: u64,
    /// Count-weighted p50 numerator (Σ count·p50).
    p50_weighted: u128,
    /// Max interval p99 — a conservative window tail.
    p99_max_ns: u64,
    span_ns: u64,
}

impl WindowAgg {
    fn over(points: &[SeriesPoint]) -> WindowAgg {
        let mut a = WindowAgg::default();
        for p in points {
            a.completed += p.completed;
            a.ok += p.ok;
            a.failed += p.failed;
            a.lat_count += p.lat.count;
            a.lat_sum_ns += p.lat.sum_ns;
            a.p50_weighted += u128::from(p.lat.count) * u128::from(p.lat.p50_ns);
            a.p99_max_ns = a.p99_max_ns.max(p.lat.p99_ns);
            a.span_ns += p.interval_ns;
        }
        a
    }

    fn qps(&self) -> f64 {
        if self.span_ns == 0 {
            0.0
        } else {
            self.completed as f64 * 1e9 / self.span_ns as f64
        }
    }

    fn p50_ns(&self) -> u64 {
        if self.lat_count == 0 {
            0
        } else {
            (self.p50_weighted / u128::from(self.lat_count)) as u64
        }
    }

    /// Error-budget burn: (observed failure ratio) / (allotted failure
    /// ratio). 0 when nothing completed.
    fn burn_rate(&self, slo_target: f64) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        let budget = 1.0 - slo_target;
        (self.failed as f64 / self.completed as f64) / budget
    }
}

fn breaker_summary(breakers: &[(u8, fault::BreakerSnapshot)]) -> String {
    let open: Vec<String> = breakers
        .iter()
        .filter(|(_, b)| b.state != fault::BreakerState::Closed)
        .map(|(code, b)| {
            let name = EngineKind::from_code(*code).map_or("unknown", |k| k.name());
            format!("{name}:{}", b.state.name())
        })
        .collect();
    if open.is_empty() {
        "all-closed".to_string()
    } else {
        open.join(",")
    }
}

fn connect(socket: &std::path::Path) -> Client {
    Client::connect(socket).unwrap_or_else(|e| {
        obs::error!("connect {}: {e}", socket.display());
        exit(1);
    })
}

fn fetch<T>(what: &str, r: std::io::Result<T>) -> T {
    r.unwrap_or_else(|e| {
        obs::error!("{what}: {e}");
        exit(1);
    })
}

/// One fetch, machine-readable, aggregated over the buffered window.
fn cmd_once(o: &Opts) {
    let mut client = connect(&o.socket);
    let series = fetch("series", client.series());
    let health = fetch("health", client.health());
    let ext = fetch("stats-ext", client.stats_ext());
    let agg = WindowAgg::over(&series.points);
    let last = series.points.last();
    println!("sampling={}", u8::from(!series.points.is_empty()));
    println!("points={}", series.points.len());
    println!("interval_ns={}", series.interval_ns);
    println!("window_ns={}", agg.span_ns);
    println!("completed={}", agg.completed);
    println!("ok={}", agg.ok);
    println!("failed={}", agg.failed);
    println!("qps={:.3}", agg.qps());
    println!("p50_ns={}", agg.p50_ns());
    println!("p99_ns={}", agg.p99_max_ns);
    println!("queue_depth={}", last.map_or(0, |p| p.queue_depth));
    println!("busy_workers={}", last.map_or(0, |p| p.busy_workers));
    println!("workers={}", ext.workers);
    println!("utilization={:.3}", ext.utilization());
    println!("burn_rate={:.3}", agg.burn_rate(o.slo_target));
    println!("slo_target={}", o.slo_target);
    println!("breakers={}", breaker_summary(&health.breakers));
}

fn header() {
    println!(
        "{:>8}  {:>8}  {:>9}  {:>9}  {:>5}  {:>9}  {:>7}  breakers",
        "time", "qps", "p50", "p99", "queue", "busy", "burn"
    );
}

/// Poll loop: one status line per tick from the newest sample deltas.
fn cmd_watch(o: &Opts) {
    let mut client = connect(&o.socket);
    // Redraw the header periodically so it survives scrollback.
    const HEADER_EVERY: u64 = 20;
    let mut last_seq: Option<u64> = None;
    let mut tick = 0u64;
    loop {
        if tick.is_multiple_of(HEADER_EVERY) {
            header();
        }
        let series: SeriesReport = fetch("series", client.series());
        let health = fetch("health", client.health());
        let ext = fetch("stats-ext", client.stats_ext());
        // Only the samples that landed since the last tick.
        let fresh: Vec<SeriesPoint> = series
            .points
            .iter()
            .filter(|p| last_seq.is_none_or(|s| p.seq > s))
            .cloned()
            .collect();
        if let Some(p) = series.points.last() {
            last_seq = Some(p.seq);
        }
        let agg = WindowAgg::over(&fresh);
        let last = fresh.last().or(series.points.last());
        let busy = last.map_or(0, |p| p.busy_workers);
        println!(
            "{:>8.1}  {:>8.1}  {:>7.2}ms  {:>7.2}ms  {:>5}  {:>4}/{:<4}  {:>6.2}x  {}",
            series.server_now_ns as f64 / 1e9,
            agg.qps(),
            agg.p50_ns() as f64 / 1e6,
            agg.p99_max_ns as f64 / 1e6,
            last.map_or(0, |p| p.queue_depth),
            busy,
            ext.workers,
            agg.burn_rate(o.slo_target),
            breaker_summary(&health.breakers),
        );
        tick += 1;
        if o.iterations.is_some_and(|n| tick >= n) {
            break;
        }
        std::thread::sleep(o.interval);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = parse_opts(&args);
    if o.once {
        cmd_once(&o);
    } else {
        cmd_watch(&o);
    }
}
