//! `wabench-top` — live terminal view of a running `wabench-served`.
//!
//! ```text
//! wabench-top --socket PATH [--interval-ms N] [--iterations N] [--once]
//!             [--slo-target F] [--log LEVEL]
//! ```
//!
//! Polls the protocol v7 `Series` request (plus `Health` and `StatsExt`
//! for breaker states and worker counts) and prints one status line per
//! tick, vmstat-style: live QPS, p50/p99 job latency, queue depth,
//! worker utilization, breaker states, and a rolling SLO burn-rate
//! column (error-budget consumption relative to `--slo-target`, default
//! 0.999 availability — burn 1.0 means failing at exactly the budgeted
//! rate, above 1.0 the budget is being consumed faster than allotted).
//!
//! `--once` instead fetches a single window and prints machine-readable
//! `key=value` lines aggregated over the whole buffered window — the
//! mode scripts and the verify smoke use. Exit code is 0 when the
//! server answered, 1 on connection or protocol errors, 2 on usage
//! errors.
//!
//! The server must be sampling (`wabench-served serve --sample-ms`,
//! on by default) for the window to be nonempty; against a sampler-less
//! server `wabench-top` reports an empty window rather than failing.
//! Pointed at a `wabench-router` socket the per-shard requests
//! (`Series`, `StatsExt`) are refused by the router; `wabench-top`
//! warns once and shows the fleet aggregates (`Health`) with empty
//! per-shard columns instead of erroring — watch an individual shard's
//! socket for full detail (see docs/DEPLOYMENT.md).

use std::path::PathBuf;
use std::process::exit;
use std::time::Duration;

use engines::EngineKind;
use obs::metrics::{HistogramSnapshot, BUCKETS};
use svc::server::Client;
use svc::telemetry::{SeriesPoint, SeriesReport};

fn usage() -> ! {
    obs::error!(
        "usage: wabench-top --socket PATH [--interval-ms N] [--iterations N] [--once]\n\
         \u{20}                  [--slo-target F] [--log error|warn|info|debug]\n\
         \n\
         --interval-ms  poll cadence (default 1000)\n\
         --iterations   stop after N ticks (default: run until interrupted)\n\
         --once         fetch one window, print key=value lines, exit\n\
         --slo-target   availability SLO for the burn-rate column (default 0.999)"
    );
    exit(2);
}

fn take_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    match args.get(*i) {
        Some(v) => v.clone(),
        None => {
            obs::error!("missing value for {flag}");
            usage();
        }
    }
}

struct Opts {
    socket: PathBuf,
    interval: Duration,
    iterations: Option<u64>,
    once: bool,
    slo_target: f64,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut socket = None;
    let mut interval = Duration::from_millis(1000);
    let mut iterations = None;
    let mut once = false;
    let mut slo_target = 0.999;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--socket" => socket = Some(PathBuf::from(take_value(args, &mut i, "--socket"))),
            "--interval-ms" => {
                let ms: u64 = take_value(args, &mut i, "--interval-ms")
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| {
                        obs::error!("--interval-ms needs a positive integer");
                        usage();
                    });
                interval = Duration::from_millis(ms);
            }
            "--iterations" => {
                iterations = Some(
                    take_value(args, &mut i, "--iterations")
                        .parse()
                        .ok()
                        .filter(|n| *n > 0)
                        .unwrap_or_else(|| {
                            obs::error!("--iterations needs a positive integer");
                            usage();
                        }),
                )
            }
            "--once" => once = true,
            "--slo-target" => {
                slo_target = take_value(args, &mut i, "--slo-target")
                    .parse()
                    .ok()
                    .filter(|f| (0.0..1.0).contains(f))
                    .unwrap_or_else(|| {
                        obs::error!("--slo-target needs a fraction in [0, 1)");
                        usage();
                    })
            }
            "--log" => {
                let v = take_value(args, &mut i, "--log");
                match obs::logger::Level::parse(&v) {
                    Some(lvl) => obs::logger::set_level(lvl),
                    None => {
                        obs::error!("unknown log level {v:?} (use error|warn|info|debug)");
                        usage();
                    }
                }
            }
            other => {
                obs::error!("unknown option {other:?}");
                usage();
            }
        }
        i += 1;
    }
    let Some(socket) = socket else {
        obs::error!("--socket is required");
        usage();
    };
    Opts {
        socket,
        interval,
        iterations,
        once,
        slo_target,
    }
}

/// Whole-window aggregate of a series reply.
#[derive(Debug, Default)]
struct WindowAgg {
    completed: u64,
    ok: u64,
    failed: u64,
    lat_count: u64,
    lat_sum_ns: u64,
    /// Count-weighted p50 numerator (Σ count·p50).
    p50_weighted: u128,
    /// Max interval p99 — a conservative window tail.
    p99_max_ns: u64,
    /// Merged interval bucket deltas (v8 sparse trailers summed) and
    /// how many observations they cover.
    lat_buckets: [u64; BUCKETS],
    lat_bucket_count: u64,
    span_ns: u64,
}

impl WindowAgg {
    fn over(points: &[SeriesPoint]) -> WindowAgg {
        let mut a = WindowAgg::default();
        for p in points {
            a.completed += p.completed;
            a.ok += p.ok;
            a.failed += p.failed;
            a.lat_count += p.lat.count;
            a.lat_sum_ns += p.lat.sum_ns;
            a.p50_weighted += u128::from(p.lat.count) * u128::from(p.lat.p50_ns);
            a.p99_max_ns = a.p99_max_ns.max(p.lat.p99_ns);
            for (i, c) in &p.lat.buckets {
                if let Some(slot) = a.lat_buckets.get_mut(*i as usize) {
                    *slot += c;
                    a.lat_bucket_count += c;
                }
            }
            a.span_ns += p.interval_ns;
        }
        a
    }

    fn qps(&self) -> f64 {
        if self.span_ns == 0 {
            0.0
        } else {
            self.completed as f64 * 1e9 / self.span_ns as f64
        }
    }

    fn p50_ns(&self) -> u64 {
        if self.lat_count == 0 {
            0
        } else {
            (self.p50_weighted / u128::from(self.lat_count)) as u64
        }
    }

    /// Honest whole-window p99: merge the per-interval bucket deltas
    /// into one histogram and interpolate, instead of taking the max
    /// of interval p99s (which over-reports whenever one thin interval
    /// has a bad tail). Falls back to the interval max against pre-v8
    /// servers that ship no bucket deltas.
    fn p99_ns(&self) -> u64 {
        if self.lat_bucket_count == 0 {
            return self.p99_max_ns;
        }
        let merged = HistogramSnapshot {
            buckets: self.lat_buckets,
            count: self.lat_bucket_count,
            sum_ns: self.lat_sum_ns,
            // No exact extremes survive the merge; zero max_ns keeps
            // quantile_ns on pure bucket interpolation.
            min_ns: 0,
            max_ns: 0,
        };
        merged.quantile_ns(0.99)
    }

    /// Error-budget burn: (observed failure ratio) / (allotted failure
    /// ratio). 0 when nothing completed.
    fn burn_rate(&self, slo_target: f64) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        let budget = 1.0 - slo_target;
        (self.failed as f64 / self.completed as f64) / budget
    }
}

fn breaker_summary(breakers: &[(u8, fault::BreakerSnapshot)]) -> String {
    let open: Vec<String> = breakers
        .iter()
        .filter(|(_, b)| b.state != fault::BreakerState::Closed)
        .map(|(code, b)| {
            let name = EngineKind::from_code(*code).map_or("unknown", |k| k.name());
            format!("{name}:{}", b.state.name())
        })
        .collect();
    if open.is_empty() {
        "all-closed".to_string()
    } else {
        open.join(",")
    }
}

fn connect(socket: &std::path::Path) -> Client {
    Client::connect(socket).unwrap_or_else(|e| {
        obs::error!("connect {}: {e}", socket.display());
        exit(1);
    })
}

fn fetch<T>(what: &str, r: std::io::Result<T>) -> T {
    r.unwrap_or_else(|e| {
        obs::error!("{what}: {e}");
        exit(1);
    })
}

/// Like [`fetch`], but a `wabench-router` target's documented per-shard
/// refusal (an `Err` reply prefixed `router:`, see PROTOCOL.md) degrades
/// to a default value instead of exiting — pointing `wabench-top` at a
/// router shows fleet aggregates (`Health`, `Stats`) with empty
/// per-shard columns rather than dying. Warns once per refused request
/// kind; genuine transport errors still exit 1.
fn fetch_routed<T: Default>(what: &str, r: std::io::Result<T>, warned: &mut bool) -> T {
    match r {
        Ok(v) => v,
        Err(e) if e.to_string().contains("router:") => {
            if !*warned {
                obs::warn!(
                    "{what} is per-shard and the target is a router; showing fleet \
                     aggregates only (query a shard socket for {what}, see docs/DEPLOYMENT.md)"
                );
                *warned = true;
            }
            T::default()
        }
        Err(e) => {
            obs::error!("{what}: {e}");
            exit(1);
        }
    }
}

/// One fetch, machine-readable, aggregated over the buffered window.
fn cmd_once(o: &Opts) {
    let mut client = connect(&o.socket);
    let mut warned = (false, false);
    let series = fetch_routed("series", client.series(), &mut warned.0);
    let health = fetch("health", client.health());
    let ext = fetch_routed("stats-ext", client.stats_ext(), &mut warned.1);
    let agg = WindowAgg::over(&series.points);
    let last = series.points.last();
    println!("sampling={}", u8::from(!series.points.is_empty()));
    println!("points={}", series.points.len());
    println!("interval_ns={}", series.interval_ns);
    println!("window_ns={}", agg.span_ns);
    println!("completed={}", agg.completed);
    println!("ok={}", agg.ok);
    println!("failed={}", agg.failed);
    println!("qps={:.3}", agg.qps());
    println!("p50_ns={}", agg.p50_ns());
    println!("p99_ns={}", agg.p99_ns());
    println!("p99_max={}", agg.p99_max_ns);
    println!("queue_depth={}", last.map_or(0, |p| p.queue_depth));
    println!("busy_workers={}", last.map_or(0, |p| p.busy_workers));
    println!("workers={}", ext.workers);
    println!("utilization={:.3}", ext.utilization());
    println!("burn_rate={:.3}", agg.burn_rate(o.slo_target));
    println!("slo_target={}", o.slo_target);
    println!("breakers={}", breaker_summary(&health.breakers));
    // v8 servers report the alert engine; older ones answer Err.
    if let Ok(a) = client.alert_log() {
        println!("alerts_armed={}", u8::from(a.armed));
        println!("alerts_firing={}", a.firing.len());
        for f in &a.firing {
            println!(
                "alert_firing={} value={:.4} threshold={:.4}",
                f.rule, f.value, f.threshold
            );
        }
    }
}

fn header() {
    println!(
        "{:>8}  {:>8}  {:>9}  {:>9}  {:>5}  {:>9}  {:>7}  breakers",
        "time", "qps", "p50", "p99", "queue", "busy", "burn"
    );
}

/// Poll loop: one status line per tick from the newest sample deltas.
/// Uses the v8 `since` cursor so the server only ships fresh samples;
/// a cursorless first fetch seeds the cursor from the buffered window.
fn cmd_watch(o: &Opts) {
    let mut client = connect(&o.socket);
    // Redraw the header periodically so it survives scrollback.
    const HEADER_EVERY: u64 = 20;
    let mut last_seq: Option<u64> = None;
    let mut last_point: Option<SeriesPoint> = None;
    let mut tick = 0u64;
    let mut warned = (false, false);
    loop {
        if tick.is_multiple_of(HEADER_EVERY) {
            header();
        }
        let series: SeriesReport =
            fetch_routed("series", client.series_since(last_seq), &mut warned.0);
        let health = fetch("health", client.health());
        let ext = fetch_routed("stats-ext", client.stats_ext(), &mut warned.1);
        if let Some(p) = series.points.last() {
            last_seq = Some(p.seq);
            last_point = Some(p.clone());
        }
        let agg = WindowAgg::over(&series.points);
        let last = series.points.last().or(last_point.as_ref());
        let firing = client
            .alert_log()
            .map(|a| {
                a.firing
                    .iter()
                    .map(|f| f.rule.clone())
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .unwrap_or_default();
        println!(
            "{:>8.1}  {:>8.1}  {:>7.2}ms  {:>7.2}ms  {:>5}  {:>4}/{:<4}  {:>6.2}x  {}{}",
            series.server_now_ns as f64 / 1e9,
            agg.qps(),
            agg.p50_ns() as f64 / 1e6,
            agg.p99_ns() as f64 / 1e6,
            last.map_or(0, |p| p.queue_depth),
            last.map_or(0, |p| p.busy_workers),
            ext.workers,
            agg.burn_rate(o.slo_target),
            breaker_summary(&health.breakers),
            if firing.is_empty() {
                String::new()
            } else {
                format!("  ALERT[{firing}]")
            },
        );
        tick += 1;
        if o.iterations.is_some_and(|n| tick >= n) {
            break;
        }
        std::thread::sleep(o.interval);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = parse_opts(&args);
    if o.once {
        cmd_once(&o);
    } else {
        cmd_watch(&o);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::series::HistDelta;

    fn point(seq: u64, count: u64, p50_ns: u64, p99_ns: u64, buckets: Vec<(u8, u64)>) -> SeriesPoint {
        SeriesPoint {
            seq,
            interval_ns: 1_000_000_000,
            completed: count,
            ok: count,
            lat: HistDelta {
                count,
                sum_ns: count * p50_ns,
                p50_ns,
                p99_ns,
                buckets,
            },
            ..SeriesPoint::default()
        }
    }

    /// The satellite regression: 99 fast jobs in one interval plus one
    /// 500ms straggler in a thin interval. Max-of-interval-p99s reports
    /// the straggler (500ms-ish) as the window p99; the merged
    /// histogram knows it is 1 job in 100 — beyond rank 99 — and
    /// reports a fast-bucket p99 instead.
    #[test]
    fn window_p99_merges_bucket_deltas_instead_of_taking_the_interval_max() {
        let fast_ms = 1_000_000u64; // bucket 12, bound 2^20 ns
        let slow_ms = 500_000_000u64; // bucket 21, bound 2^29 ns
        let points = vec![
            point(1, 99, fast_ms, fast_ms, vec![(12, 99)]),
            point(2, 1, slow_ms, slow_ms, vec![(21, 1)]),
        ];
        let agg = WindowAgg::over(&points);
        assert_eq!(agg.lat_count, 100);
        assert_eq!(agg.lat_bucket_count, 100);
        assert_eq!(agg.p99_max_ns, slow_ms, "old max aggregation kept as p99_max");
        let merged = agg.p99_ns();
        assert!(
            merged <= obs::metrics::bucket_bound_ns(12),
            "merged p99 ({merged}ns) must come from the fast bucket, not the straggler"
        );
        assert!(merged > 0, "merged p99 interpolates a nonzero estimate");
    }

    /// Against a pre-v8 server no bucket deltas arrive; the aggregate
    /// falls back to the conservative interval max.
    #[test]
    fn window_p99_falls_back_to_interval_max_without_bucket_deltas() {
        let points = vec![
            point(1, 99, 1_000_000, 1_000_000, Vec::new()),
            point(2, 1, 500_000_000, 500_000_000, Vec::new()),
        ];
        let agg = WindowAgg::over(&points);
        assert_eq!(agg.lat_bucket_count, 0);
        assert_eq!(agg.p99_ns(), 500_000_000);
    }

    /// Out-of-range bucket indices (a corrupt or future-version point)
    /// are ignored rather than panicking.
    #[test]
    fn window_agg_ignores_out_of_range_bucket_indices() {
        let points = vec![point(1, 5, 1_000_000, 1_000_000, vec![(BUCKETS as u8, 5)])];
        let agg = WindowAgg::over(&points);
        assert_eq!(agg.lat_bucket_count, 0);
    }
}
