//! `wabench-served` — the benchmark-execution service daemon.
//!
//! ```text
//! wabench-served serve  --socket PATH [--workers N] [--store DIR] [--store-cap-mb M] [--timeout-s S]
//!                       [--faults PLAN] [--sample-ms N] [--series-cap N] [--slow-ms N]
//!                       [--profile-ms N] [--alerts SPEC] [--postmortem-dir DIR]
//! wabench-served submit --socket PATH --bench NAME [--engine E] [--level O0..O3]
//!                       [--scale test|profile|timing] [--mode exec|aot|profiled] [--warm]
//! wabench-served stats  --socket PATH
//! wabench-served stats-ext --socket PATH
//! wabench-served health --socket PATH
//! wabench-served series --socket PATH
//! wabench-served trace-dump --socket PATH
//! wabench-served alerts --socket PATH
//! wabench-served shutdown --socket PATH
//! wabench-served smoke  [--dir DIR] [--jobs N]
//! ```
//!
//! `stats-ext` speaks protocol v3: besides the classic counters it
//! reports queue depth, worker utilization, queue-wait/per-engine
//! latency histograms (min/p50/p95/p99/max), and — once profiled jobs
//! have run — per-engine simulated IPC/MPKI aggregates. Older servers
//! answer `Err` (v1) or omit the v3 fields (v2).
//!
//! `health` speaks protocol v4: resilience counters (retries,
//! interpreter fallbacks, store repairs, breaker fast-fails), circuit
//! breaker states per engine, and any active fault-injection sites.
//! `--faults PLAN` (or the `WABENCH_FAULTS` env var) arms deterministic
//! fault injection for chaos testing; see `docs/OPERATIONS.md`.
//!
//! `series` and `trace-dump` speak protocol v7: the serve path runs a
//! background telemetry sampler (`--sample-ms`, 0 disables) whose delta
//! window `series` fetches, and keeps recent plus slow-request
//! (`--slow-ms` threshold) span digests that `trace-dump` fetches for
//! client-side stitching. `wabench-top` builds a live view on top.
//!
//! `alerts` speaks protocol v8: `--alerts SPEC` (or `WABENCH_ALERTS`)
//! arms the SLO alert engine — burn-rate, p99-ceiling, queue-depth,
//! breaker-open and profile-drift rules evaluated against the sampled
//! series — and `--postmortem-dir DIR` makes every pending→firing
//! transition snapshot a flight-recorder bundle for `wabench-doctor`.
//! `--profile-ms N` arms the continuous profiler whose windows
//! `wabench-prof windows` / `wdiff` fetch. All three are off by
//! default and cost nothing when disarmed.
//!
//! `smoke` is self-contained: it starts a scheduler + server on a
//! scratch socket, drives it through a real client twice — a cold pass
//! that compiles and populates the artifact store, then a warm pass
//! that loads artifacts — asserts every job succeeded, and prints the
//! cold-vs-warm compile times from `stats`. Exit code 0 only if all
//! jobs succeeded and the warm pass hit the store.

use std::path::PathBuf;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

use engines::EngineKind;
use obs::alert::AlertSpec;
use svc::job::{JobMode, JobSpec, Scale};
use svc::scheduler::{Config, HealthReport, Scheduler, SvcStats, SvcStatsExt};
use svc::server::{serve, serve_threaded, Client};
use svc::telemetry::{AlertReport, SeriesReport, TelemetryConfig, TraceReport};
use wacc::OptLevel;

fn usage() -> ! {
    obs::error!(
        "usage: wabench-served <serve|submit|stats|stats-ext|health|series|trace-dump|alerts|shutdown|smoke> [options]\n\
         \n\
         serve      --socket PATH [--workers N] [--store DIR] [--store-cap-mb M] [--timeout-s S] [--trace-out FILE] [--faults PLAN]\n\
         \u{20}          [--sample-ms N] [--series-cap N] [--slow-ms N] [--profile-ms N] [--alerts SPEC] [--postmortem-dir DIR] [--threaded]\n\
         submit     --socket PATH --bench NAME [--engine E] [--level O2] [--scale test] [--mode exec|aot|profiled] [--warm]\n\
         stats      --socket PATH\n\
         stats-ext  --socket PATH\n\
         health     --socket PATH\n\
         series     --socket PATH\n\
         trace-dump --socket PATH\n\
         alerts     --socket PATH\n\
         shutdown   --socket PATH\n\
         smoke      [--dir DIR] [--jobs N]\n\
         \n\
         common: --log error|warn|info|debug (overrides WABENCH_LOG)\n\
         PLAN is a comma list like 'seed=7,compile=0.05,store.read=0.02'\n\
         (also read from WABENCH_FAULTS; see docs/OPERATIONS.md)\n\
         SPEC is a comma list like 'slo=0.99,burn=14:5m:1h,p99=250ms:1m'\n\
         (also read from WABENCH_ALERTS; see docs/OPERATIONS.md)"
    );
    exit(2);
}

/// Consumes the value of `--flag VALUE`; exits with usage on a trailing
/// flag with no value.
fn take_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    match args.get(*i) {
        Some(v) => v.clone(),
        None => {
            obs::error!("missing value for {flag}");
            usage();
        }
    }
}

#[derive(Debug)]
struct Opts {
    socket: Option<PathBuf>,
    workers: usize,
    store: Option<PathBuf>,
    store_cap_mb: u64,
    timeout_s: u64,
    bench: Option<String>,
    engine: EngineKind,
    level: OptLevel,
    scale: Scale,
    mode: JobMode,
    warm: bool,
    dir: Option<PathBuf>,
    jobs: usize,
    trace_out: Option<PathBuf>,
    faults: Option<String>,
    sample_ms: u64,
    series_cap: usize,
    slow_ms: u64,
    profile_ms: u64,
    alerts: Option<String>,
    postmortem_dir: Option<PathBuf>,
    threaded: bool,
}

impl Opts {
    fn base() -> Opts {
        Opts {
            socket: None,
            workers: 4,
            store: None,
            store_cap_mb: 256,
            timeout_s: 120,
            bench: None,
            engine: EngineKind::Wasmtime,
            level: OptLevel::O2,
            scale: Scale::Test,
            mode: JobMode::Exec,
            warm: false,
            dir: None,
            jobs: 4,
            trace_out: None,
            faults: None,
            sample_ms: 250,
            series_cap: 600,
            slow_ms: 250,
            profile_ms: 0,
            alerts: None,
            postmortem_dir: None,
            threaded: false,
        }
    }
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts::base();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--socket" => o.socket = Some(PathBuf::from(take_value(args, &mut i, "--socket"))),
            "--workers" => {
                o.workers = take_value(args, &mut i, "--workers")
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| {
                        obs::error!("--workers needs a positive integer");
                        usage();
                    })
            }
            "--store" => o.store = Some(PathBuf::from(take_value(args, &mut i, "--store"))),
            "--store-cap-mb" => {
                o.store_cap_mb = take_value(args, &mut i, "--store-cap-mb")
                    .parse()
                    .unwrap_or_else(|_| {
                        obs::error!("--store-cap-mb needs an integer");
                        usage();
                    })
            }
            "--timeout-s" => {
                o.timeout_s = take_value(args, &mut i, "--timeout-s")
                    .parse()
                    .unwrap_or_else(|_| {
                        obs::error!("--timeout-s needs an integer");
                        usage();
                    })
            }
            "--bench" => o.bench = Some(take_value(args, &mut i, "--bench")),
            "--engine" => {
                let v = take_value(args, &mut i, "--engine");
                o.engine = EngineKind::parse(&v).unwrap_or_else(|| {
                    obs::error!("unknown engine {v:?}");
                    usage();
                })
            }
            "--level" => {
                let v = take_value(args, &mut i, "--level");
                o.level = match v.trim_start_matches('-') {
                    "O0" => OptLevel::O0,
                    "O1" => OptLevel::O1,
                    "O2" => OptLevel::O2,
                    "O3" => OptLevel::O3,
                    _ => {
                        obs::error!("unknown level {v:?} (use O0..O3)");
                        usage();
                    }
                }
            }
            "--scale" => {
                let v = take_value(args, &mut i, "--scale");
                o.scale = Scale::parse(&v).unwrap_or_else(|| {
                    obs::error!("unknown scale {v:?} (use test|profile|timing)");
                    usage();
                })
            }
            "--mode" => {
                let v = take_value(args, &mut i, "--mode");
                o.mode = match v.as_str() {
                    "exec" => JobMode::Exec,
                    "aot" => JobMode::ExecAot,
                    "profiled" => JobMode::Profiled,
                    _ => {
                        obs::error!("unknown mode {v:?} (use exec|aot|profiled)");
                        usage();
                    }
                }
            }
            "--warm" => o.warm = true,
            "--trace-out" => {
                o.trace_out = Some(PathBuf::from(take_value(args, &mut i, "--trace-out")))
            }
            "--faults" => o.faults = Some(take_value(args, &mut i, "--faults")),
            "--log" => {
                let v = take_value(args, &mut i, "--log");
                match obs::logger::Level::parse(&v) {
                    Some(lvl) => obs::logger::set_level(lvl),
                    None => {
                        obs::error!("unknown log level {v:?} (use error|warn|info|debug)");
                        usage();
                    }
                }
            }
            "--sample-ms" => {
                o.sample_ms = take_value(args, &mut i, "--sample-ms")
                    .parse()
                    .unwrap_or_else(|_| {
                        obs::error!("--sample-ms needs an integer (0 disables sampling)");
                        usage();
                    })
            }
            "--series-cap" => {
                o.series_cap = take_value(args, &mut i, "--series-cap")
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| {
                        obs::error!("--series-cap needs a positive integer");
                        usage();
                    })
            }
            "--slow-ms" => {
                o.slow_ms = take_value(args, &mut i, "--slow-ms")
                    .parse()
                    .unwrap_or_else(|_| {
                        obs::error!("--slow-ms needs an integer");
                        usage();
                    })
            }
            "--profile-ms" => {
                o.profile_ms = take_value(args, &mut i, "--profile-ms")
                    .parse()
                    .unwrap_or_else(|_| {
                        obs::error!("--profile-ms needs an integer (0 disables profiling)");
                        usage();
                    })
            }
            "--alerts" => o.alerts = Some(take_value(args, &mut i, "--alerts")),
            "--threaded" => o.threaded = true,
            "--postmortem-dir" => {
                o.postmortem_dir =
                    Some(PathBuf::from(take_value(args, &mut i, "--postmortem-dir")))
            }
            "--dir" => o.dir = Some(PathBuf::from(take_value(args, &mut i, "--dir"))),
            "--jobs" => {
                o.jobs = take_value(args, &mut i, "--jobs")
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| {
                        obs::error!("--jobs needs a positive integer");
                        usage();
                    })
            }
            other => {
                obs::error!("unknown option {other:?}");
                usage();
            }
        }
        i += 1;
    }
    o
}

fn need_socket(o: &Opts) -> PathBuf {
    o.socket.clone().unwrap_or_else(|| {
        obs::error!("--socket is required");
        usage();
    })
}

fn print_stats(s: &SvcStats) {
    println!(
        "jobs: submitted {} completed {} (ok {}, failed {}, panicked {}, timed-out {})",
        s.submitted, s.completed, s.ok, s.failed, s.panicked, s.timed_out
    );
    println!(
        "compile: cold {} avg {:.3}ms | warm artifact loads {} avg {:.3}ms",
        s.cold_compiles,
        s.cold_compile_avg_s() * 1e3,
        s.warm_loads,
        s.warm_load_avg_s() * 1e3
    );
    match &s.store {
        Some(st) => println!(
            "store: {} hits, {} misses, {} puts, {} evictions, {} corrupt rejected",
            st.hits, st.misses, st.puts, st.evictions, st.corrupt_rejected
        ),
        None => println!("store: none attached"),
    }
}

fn print_stats_ext(s: &SvcStatsExt) {
    print_stats(&s.base);
    println!(
        "service: queue depth {}, {} workers, uptime {:.1}s, utilization {:.1}%",
        s.queue_depth,
        s.workers,
        s.uptime_s,
        s.utilization() * 100.0
    );
    println!("queue wait: {}", s.queue_wait.summary());
    for (code, hist) in &s.engine_wall {
        let name = EngineKind::from_code(*code).map_or("unknown", |k| k.name());
        println!("engine {name}: wall {}", hist.summary());
    }
    for (code, agg) in &s.engine_counters {
        let name = EngineKind::from_code(*code).map_or("unknown", |k| k.name());
        let c = &agg.counters;
        println!(
            "engine {name}: {} profiled jobs, {} instrs, ipc {:.3}, mpki branch {:.2} l1d {:.2} llc {:.2}",
            agg.jobs,
            c.instructions,
            c.ipc(),
            c.branch_mpki(),
            c.l1d_mpki(),
            c.llc_mpki()
        );
    }
}

fn print_health(h: &HealthReport) {
    let r = &h.resilience;
    println!(
        "resilience: {} retries, {} interpreter fallbacks, {} store repairs, {} breaker fast-fails",
        r.retries, r.compile_fallbacks, r.store_repairs, r.breaker_fast_fails
    );
    println!(
        "queue: depth {} (peak {})",
        h.queue_depth, h.peak_queue_depth
    );
    if h.breakers.is_empty() {
        println!("breakers: none (no jobs yet)");
    }
    for (code, b) in &h.breakers {
        let name = EngineKind::from_code(*code).map_or("unknown", |k| k.name());
        println!(
            "breaker {name}: {} ({} consecutive failures, {} trips)",
            b.state.name(),
            b.consecutive_failures,
            b.trips
        );
    }
    if h.faults.is_empty() {
        println!("faults: none armed");
    }
    for (site, rate, injected) in &h.faults {
        let name = fault::Site::from_code(*site).map_or("unknown", |s| s.key());
        println!("fault {name}: rate {rate} ({injected} injected)");
    }
}

fn print_series(s: &SeriesReport) {
    if s.points.is_empty() {
        println!("series: empty (server running without a sampler?)");
        return;
    }
    println!(
        "series: {} points at {}ms intervals",
        s.points.len(),
        s.interval_ns / 1_000_000
    );
    for p in &s.points {
        let mut line = format!(
            "#{:>5}  qps {:>8.1}  ok {:>4} fail {:>3}  queue {:>3} busy {:>2}",
            p.seq,
            p.qps(),
            p.ok,
            p.failed,
            p.queue_depth,
            p.busy_workers
        );
        if p.lat.count > 0 {
            line.push_str(&format!(
                "  p50 {:.2}ms p99 {:.2}ms",
                p.lat.p50_ns as f64 / 1e6,
                p.lat.p99_ns as f64 / 1e6
            ));
        }
        println!("{line}");
    }
}

fn print_trace_report(t: &TraceReport) {
    println!(
        "traces: {} recent, {} slow (threshold {:.1}ms)",
        t.recent.len(),
        t.exemplars.len(),
        t.slow_threshold_ns as f64 / 1e6
    );
    for rec in t.all_records() {
        let p = &rec.phases;
        println!(
            "trace {:#018x} [{}] {}: queue {:.2}ms compile {:.2}ms exec {:.2}ms wall {:.2}ms{}{}",
            p.trace_id,
            rec.label,
            if rec.ok { "ok" } else { "FAILED" },
            p.start_ns.saturating_sub(p.enqueue_ns) as f64 / 1e6,
            p.compile_ns as f64 / 1e6,
            p.exec_ns as f64 / 1e6,
            p.done_ns.saturating_sub(p.enqueue_ns) as f64 / 1e6,
            if p.attempts > 1 {
                format!(" ({} attempts)", p.attempts)
            } else {
                String::new()
            },
            if p.compile_fallback { " (fallback)" } else { "" },
        );
    }
}

fn print_result(res: &svc::JobResult) {
    println!(
        "job {} [{}]: {:?} checksum={:?} compile {:.3}ms{} exec {:.3}ms wall {:.3}ms",
        res.id,
        res.spec,
        res.status,
        res.checksum,
        res.compile_s * 1e3,
        if res.warm_artifact { " (warm)" } else { "" },
        res.exec_s * 1e3,
        res.wall_s * 1e3,
    );
}

fn print_alert_report(a: &AlertReport) {
    println!(
        "alerts: {} ({} firing, {} logged transitions)",
        if a.armed { "armed" } else { "disarmed" },
        a.firing.len(),
        a.events.len()
    );
    for f in &a.firing {
        println!(
            "firing {}: value {:.4} threshold {:.4} since {:.1}s ({})",
            f.rule,
            f.value,
            f.threshold,
            a.server_now_ns.saturating_sub(f.since_ns) as f64 / 1e9,
            f.detail
        );
    }
    for e in &a.events {
        println!(
            "event #{:<4} {:>9.1}s {:>8} {}: value {:.4} threshold {:.4} ({})",
            e.seq,
            e.t_ns as f64 / 1e9,
            e.transition.name(),
            e.rule,
            e.value,
            e.threshold,
            e.detail
        );
    }
}

/// Resolves the alert spec: `--alerts` wins, else `WABENCH_ALERTS`,
/// else none. A malformed spec is a usage error.
fn alert_spec(o: &Opts) -> Option<AlertSpec> {
    let parsed = match &o.alerts {
        Some(spec) => AlertSpec::parse(spec).map(Some),
        None => AlertSpec::from_env(),
    };
    parsed.unwrap_or_else(|e| {
        obs::error!("bad alert spec: {e}");
        usage();
    })
}

/// Resolves the fault plan: `--faults` wins, else `WABENCH_FAULTS`,
/// else none. A malformed plan is a usage error.
fn fault_plan(o: &Opts) -> Option<Arc<fault::FaultPlan>> {
    let parsed = match &o.faults {
        Some(spec) => fault::FaultPlan::parse(spec).map(Some),
        None => fault::FaultPlan::from_env(),
    };
    parsed
        .unwrap_or_else(|e| {
            obs::error!("bad fault plan: {e}");
            usage();
        })
        .map(Arc::new)
}

fn cmd_serve(o: &Opts) {
    let socket = need_socket(o);
    if o.trace_out.is_some() {
        obs::trace::install(obs::trace::Sink::Ring);
    }
    let faults = fault_plan(o);
    if let Some(plan) = &faults {
        obs::warn!("fault injection armed: {plan}");
    }
    let alerts = alert_spec(o);
    if let Some(spec) = &alerts {
        if o.sample_ms == 0 {
            obs::warn!("--alerts armed but --sample-ms is 0: no samples, no evaluations");
        }
        obs::info!("alert engine armed: {spec}");
    }
    let sched = Scheduler::start(Config {
        workers: o.workers,
        timeout: Duration::from_secs(o.timeout_s),
        store_dir: o.store.clone(),
        store_cap_bytes: o.store_cap_mb << 20,
        faults,
        telemetry: TelemetryConfig {
            sample_interval: (o.sample_ms > 0).then(|| Duration::from_millis(o.sample_ms)),
            series_cap: o.series_cap,
            slow_threshold: Duration::from_millis(o.slow_ms),
            ..TelemetryConfig::default()
        },
        alerts,
        postmortem_dir: o.postmortem_dir.clone(),
        profile_window: (o.profile_ms > 0).then(|| Duration::from_millis(o.profile_ms)),
        ..Config::default()
    })
    .unwrap_or_else(|e| {
        obs::error!("failed to start scheduler: {e}");
        exit(1);
    });
    obs::info!(
        "wabench-served: listening on {} ({} workers{}, {} front-end)",
        socket.display(),
        o.workers,
        match &o.store {
            Some(d) => format!(", store {}", d.display()),
            None => String::new(),
        },
        if o.threaded { "thread-per-conn" } else { "reactor" }
    );
    let outcome = if o.threaded {
        serve_threaded(&socket, Arc::new(sched))
    } else {
        serve(&socket, Arc::new(sched))
    };
    if let Err(e) = outcome {
        obs::error!("server error: {e}");
        exit(1);
    }
    if let Some(path) = &o.trace_out {
        let trace = obs::trace::drain();
        obs::trace::install(obs::trace::Sink::Null);
        match obs::chrome::export_file(&trace, path) {
            Ok(()) => obs::info!("wrote {} ({} spans)", path.display(), trace.span_count()),
            Err(e) => {
                obs::error!("{}: {e}", path.display());
                exit(1);
            }
        }
    }
}

fn cmd_submit(o: &Opts) {
    let socket = need_socket(o);
    let bench = o.bench.clone().unwrap_or_else(|| {
        obs::error!("--bench is required");
        usage();
    });
    let spec = JobSpec {
        benchmark: bench,
        engine: o.engine,
        level: o.level,
        scale: o.scale,
        mode: o.mode,
        warm: o.warm,
    };
    let mut client = Client::connect(&socket).unwrap_or_else(|e| {
        obs::error!("connect {}: {e}", socket.display());
        exit(1);
    });
    let id = client.submit(spec).expect("submit");
    let res = client.wait(id).expect("wait");
    print_result(&res);
    exit(if res.ok() { 0 } else { 1 });
}

fn cmd_stats(o: &Opts) {
    let socket = need_socket(o);
    let mut client = Client::connect(&socket).unwrap_or_else(|e| {
        obs::error!("connect {}: {e}", socket.display());
        exit(1);
    });
    print_stats(&client.stats().expect("stats"));
}

fn cmd_stats_ext(o: &Opts) {
    let socket = need_socket(o);
    let mut client = Client::connect(&socket).unwrap_or_else(|e| {
        obs::error!("connect {}: {e}", socket.display());
        exit(1);
    });
    print_stats_ext(&client.stats_ext().expect("stats-ext"));
}

fn cmd_health(o: &Opts) {
    let socket = need_socket(o);
    let mut client = Client::connect(&socket).unwrap_or_else(|e| {
        obs::error!("connect {}: {e}", socket.display());
        exit(1);
    });
    print_health(&client.health().expect("health"));
    // v8 servers also report firing alerts; older servers answer Err.
    if let Ok(a) = client.alert_log() {
        if a.armed && a.firing.is_empty() {
            println!("alerts: armed, none firing");
        }
        for f in &a.firing {
            println!(
                "ALERT {} firing: value {:.4} threshold {:.4} ({})",
                f.rule, f.value, f.threshold, f.detail
            );
        }
    }
}

fn cmd_alerts(o: &Opts) {
    let socket = need_socket(o);
    let mut client = Client::connect(&socket).unwrap_or_else(|e| {
        obs::error!("connect {}: {e}", socket.display());
        exit(1);
    });
    print_alert_report(&client.alert_log().expect("alerts"));
}

fn cmd_series(o: &Opts) {
    let socket = need_socket(o);
    let mut client = Client::connect(&socket).unwrap_or_else(|e| {
        obs::error!("connect {}: {e}", socket.display());
        exit(1);
    });
    print_series(&client.series().expect("series"));
}

fn cmd_trace_dump(o: &Opts) {
    let socket = need_socket(o);
    let mut client = Client::connect(&socket).unwrap_or_else(|e| {
        obs::error!("connect {}: {e}", socket.display());
        exit(1);
    });
    print_trace_report(&client.trace_dump().expect("trace-dump"));
}

fn cmd_shutdown(o: &Opts) {
    let socket = need_socket(o);
    let mut client = Client::connect(&socket).unwrap_or_else(|e| {
        obs::error!("connect {}: {e}", socket.display());
        exit(1);
    });
    client.shutdown().expect("shutdown");
    println!("server stopped");
}

/// Self-contained socket smoke test; exits nonzero on any failure.
fn cmd_smoke(o: &Opts) {
    let dir = o.dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("wabench-smoke-{}", std::process::id()))
    });
    std::fs::create_dir_all(&dir).expect("create smoke dir");
    let socket = dir.join("wabench.sock");
    let store = dir.join("store");

    // The smoke jobs: the three compiling engines on one benchmark, in
    // service (warm) mode, so the second pass exercises artifact loads.
    let jits = [
        EngineKind::Wasmtime,
        EngineKind::Wavm,
        EngineKind::Wasmer(engines::Backend::Cranelift),
    ];
    let spec = |kind: EngineKind| JobSpec {
        benchmark: "crc32".to_string(),
        engine: kind,
        level: OptLevel::O2,
        scale: Scale::Test,
        mode: JobMode::Exec,
        warm: true,
    };

    let run_pass = |label: &str, jobs: usize| -> (u64, SvcStats) {
        let sched = Scheduler::start(Config {
            workers: jobs,
            timeout: Duration::from_secs(120),
            store_dir: Some(store.clone()),
            store_cap_bytes: 256 << 20,
            ..Config::default()
        })
        .expect("start scheduler");
        let sched = Arc::new(sched);
        let server_sched = Arc::clone(&sched);
        let server_socket = socket.clone();
        let server = std::thread::spawn(move || serve(&server_socket, server_sched));
        // Wait for the socket to appear.
        for _ in 0..200 {
            if socket.exists() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut client = Client::connect(&socket).expect("connect");
        client.ping().expect("ping");
        let ids: Vec<u64> = jits.iter().map(|k| client.submit(spec(*k)).expect("submit")).collect();
        let mut ok = 0u64;
        for id in &ids {
            let res = client.wait(*id).expect("wait");
            print_result(&res);
            if res.ok() {
                ok += 1;
            }
        }
        let stats = client.stats().expect("stats");
        // Exercise the protocol-v2 path over the real socket too.
        let ext = client.stats_ext().expect("stats-ext");
        assert_eq!(ext.base.completed, stats.completed, "stats-ext disagrees");
        // And the v4 health path: no faults armed, so everything clean.
        let health = client.health().expect("health");
        assert_eq!(health.resilience.retries, 0, "unexpected retries in smoke");
        assert!(health.faults.is_empty(), "no fault plan was armed");
        println!(
            "[{label}] utilization {:.1}%, queue wait {}",
            ext.utilization() * 100.0,
            ext.queue_wait.summary()
        );
        client.shutdown().expect("shutdown");
        server.join().expect("server join").expect("serve");
        println!("[{label}] {ok}/{} jobs ok", ids.len());
        (ok, stats)
    };

    println!("== smoke: cold pass (socket {}) ==", socket.display());
    let (cold_ok, cold_stats) = run_pass("cold", o.jobs);
    println!("== smoke: warm pass ==");
    let (warm_ok, warm_stats) = run_pass("warm", o.jobs);

    print_stats(&warm_stats);
    let mut failures = Vec::new();
    if cold_ok != 3 || warm_ok != 3 {
        failures.push(format!("expected 3 ok jobs per pass, got {cold_ok}/{warm_ok}"));
    }
    if cold_stats.cold_compiles != 3 {
        failures.push(format!(
            "cold pass should compile 3 modules, compiled {}",
            cold_stats.cold_compiles
        ));
    }
    if warm_stats.warm_loads != 3 {
        failures.push(format!(
            "warm pass should load 3 artifacts, loaded {}",
            warm_stats.warm_loads
        ));
    }
    let cold_avg = cold_stats.cold_compile_avg_s();
    let warm_avg = warm_stats.warm_load_avg_s();
    println!(
        "cold compile avg {:.3}ms vs warm artifact load avg {:.3}ms",
        cold_avg * 1e3,
        warm_avg * 1e3
    );
    if warm_stats.warm_loads == 3 && warm_avg >= cold_avg {
        failures.push(format!(
            "warm load ({:.3}ms) not faster than cold compile ({:.3}ms)",
            warm_avg * 1e3,
            cold_avg * 1e3
        ));
    }
    if o.dir.is_none() {
        let _ = std::fs::remove_dir_all(&dir);
    }
    if failures.is_empty() {
        println!("smoke OK");
    } else {
        for f in &failures {
            obs::error!("smoke FAILED: {f}");
        }
        exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let opts = parse_opts(&args[1..]);
    match cmd.as_str() {
        "serve" => cmd_serve(&opts),
        "submit" => cmd_submit(&opts),
        "stats" => cmd_stats(&opts),
        "stats-ext" => cmd_stats_ext(&opts),
        "health" => cmd_health(&opts),
        "series" => cmd_series(&opts),
        "trace-dump" => cmd_trace_dump(&opts),
        "alerts" => cmd_alerts(&opts),
        "shutdown" => cmd_shutdown(&opts),
        "smoke" => cmd_smoke(&opts),
        _ => usage(),
    }
}
