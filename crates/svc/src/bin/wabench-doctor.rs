//! `wabench-doctor` — postmortem and live-service diagnosis.
//!
//! ```text
//! wabench-doctor --bundle FILE   [--top N] [--log LEVEL]
//! wabench-doctor --socket PATH   [--top N] [--log LEVEL]
//! ```
//!
//! Reads either a flight-recorder bundle (written by `wabench-served`
//! when an alert starts firing, `--postmortem-dir`) or a live server
//! over the v8 protocol, correlates the evidence — firing alerts,
//! armed fault sites, resilience counters, breaker trips, queue
//! saturation, the hottest profile phase, slowest exemplars — and
//! prints a ranked diagnosis: one human paragraph followed by
//! machine-readable `finding rank=N kind=... ` lines scripts can grep.
//!
//! Exit code 0 when nothing looks wrong, 1 when there is at least one
//! finding, 2 on usage or I/O errors.

use std::cmp::Reverse;
use std::path::{Path, PathBuf};
use std::process::exit;

use obs::json::Value;
use svc::server::Client;

fn usage() -> ! {
    obs::error!(
        "usage: wabench-doctor (--bundle FILE | --socket PATH) [--top N] [--log error|warn|info|debug]\n\
         \n\
         --bundle  diagnose a flight-recorder bundle written by wabench-served\n\
         --socket  diagnose a live server over the v8 protocol\n\
         --top     cap the number of findings printed (default 8)"
    );
    exit(2);
}

fn take_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    match args.get(*i) {
        Some(v) => v.clone(),
        None => {
            obs::error!("missing value for {flag}");
            usage();
        }
    }
}

struct Opts {
    bundle: Option<PathBuf>,
    socket: Option<PathBuf>,
    top: usize,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        bundle: None,
        socket: None,
        top: 8,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--bundle" => o.bundle = Some(PathBuf::from(take_value(args, &mut i, "--bundle"))),
            "--socket" => o.socket = Some(PathBuf::from(take_value(args, &mut i, "--socket"))),
            "--top" => {
                o.top = take_value(args, &mut i, "--top")
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| {
                        obs::error!("--top needs a positive integer");
                        usage();
                    })
            }
            "--log" => {
                let v = take_value(args, &mut i, "--log");
                match obs::logger::Level::parse(&v) {
                    Some(lvl) => obs::logger::set_level(lvl),
                    None => {
                        obs::error!("unknown log level {v:?} (use error|warn|info|debug)");
                        usage();
                    }
                }
            }
            other => {
                obs::error!("unknown option {other:?}");
                usage();
            }
        }
        i += 1;
    }
    if o.bundle.is_some() == o.socket.is_some() {
        obs::error!("exactly one of --bundle or --socket is required");
        usage();
    }
    o
}

/// Everything the ranker looks at, normalized from either source.
#[derive(Debug, Default)]
struct Evidence {
    source: String,
    /// The transition that triggered the snapshot (bundles only).
    alert: Option<Firing>,
    firing: Vec<Firing>,
    /// `(site, configured rate, injected count)`.
    faults: Vec<(String, f64, u64)>,
    retries: u64,
    compile_fallbacks: u64,
    store_repairs: u64,
    breaker_fast_fails: u64,
    queue_depth: u64,
    peak_queue_depth: u64,
    /// `(engine, state, trips)` for breakers not currently closed or
    /// with at least one trip.
    breakers: Vec<(String, String, u64)>,
    /// `(stack, share of window self-time)`, hottest first.
    profile: Vec<(String, f64)>,
    /// `(label, total_ns)` slow exemplars, slowest first.
    exemplars: Vec<(String, u64)>,
}

#[derive(Debug, Clone, Default)]
struct Firing {
    rule: String,
    value: f64,
    threshold: f64,
    detail: String,
}

/// One ranked diagnosis entry: a machine `kind=.. key=val` tail plus a
/// human sentence.
struct Finding {
    severity: u8,
    kind: &'static str,
    machine: String,
    human: String,
}

fn num(v: &Value, key: &str) -> f64 {
    v.get(key).and_then(Value::as_num).unwrap_or(0.0)
}

fn text(v: &Value, key: &str) -> String {
    v.get(key)
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_string()
}

fn firing_of(v: &Value) -> Firing {
    Firing {
        rule: text(v, "rule"),
        value: num(v, "value"),
        threshold: num(v, "threshold"),
        detail: text(v, "detail"),
    }
}

/// Hottest-first shares parsed from a collapsed-stack body
/// (`stack weight` per line).
fn shares_of_folded(folded: &str) -> Vec<(String, f64)> {
    let mut phases: Vec<(String, u64)> = folded
        .lines()
        .filter_map(|line| {
            let (stack, weight) = line.rsplit_once(' ')?;
            Some((stack.to_string(), weight.parse().ok()?))
        })
        .collect();
    let total: u64 = phases.iter().map(|(_, w)| *w).sum();
    if total == 0 {
        return Vec::new();
    }
    phases.sort_by_key(|(_, w)| Reverse(*w));
    phases
        .into_iter()
        .map(|(stack, w)| (stack, w as f64 / total as f64))
        .collect()
}

fn evidence_from_bundle(path: &Path) -> Result<Evidence, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let root = obs::json::parse(&body).map_err(|e| format!("{}: {e}", path.display()))?;
    if text(&root, "schema") != "wabench-postmortem" {
        return Err(format!("{}: not a wabench-postmortem bundle", path.display()));
    }
    let mut ev = Evidence {
        source: format!("bundle {}", path.display()),
        ..Evidence::default()
    };
    ev.alert = root.get("alert").map(firing_of);
    if let Some(arr) = root.get("firing").and_then(Value::as_arr) {
        ev.firing = arr.iter().map(firing_of).collect();
    }
    if let Some(h) = root.get("health") {
        ev.retries = num(h, "retries") as u64;
        ev.compile_fallbacks = num(h, "compile_fallbacks") as u64;
        ev.store_repairs = num(h, "store_repairs") as u64;
        ev.breaker_fast_fails = num(h, "breaker_fast_fails") as u64;
        ev.queue_depth = num(h, "queue_depth") as u64;
        ev.peak_queue_depth = num(h, "peak_queue_depth") as u64;
        if let Some(arr) = h.get("faults").and_then(Value::as_arr) {
            ev.faults = arr
                .iter()
                .map(|f| (text(f, "site"), num(f, "rate"), num(f, "injected") as u64))
                .collect();
        }
        if let Some(arr) = h.get("breakers").and_then(Value::as_arr) {
            ev.breakers = arr
                .iter()
                .map(|b| {
                    let code = num(b, "engine") as u8;
                    let name = engines::EngineKind::from_code(code)
                        .map_or_else(|| format!("engine#{code}"), |k| k.name().to_string());
                    (name, text(b, "state"), num(b, "trips") as u64)
                })
                .filter(|(_, state, trips)| state != "closed" || *trips > 0)
                .collect();
        }
    }
    if let Some(p) = root.get("profile") {
        ev.profile = shares_of_folded(&text(p, "folded"));
    }
    if let Some(arr) = root.get("exemplars").and_then(Value::as_arr) {
        ev.exemplars = arr
            .iter()
            .map(|e| (text(e, "label"), num(e, "total_ns") as u64))
            .collect();
        ev.exemplars.sort_by_key(|(_, ns)| Reverse(*ns));
    }
    Ok(ev)
}

fn evidence_from_socket(path: &Path) -> Result<Evidence, String> {
    let mut client =
        Client::connect(path).map_err(|e| format!("connect {}: {e}", path.display()))?;
    let health = client.health().map_err(|e| format!("health: {e}"))?;
    let mut ev = Evidence {
        source: format!("live {}", path.display()),
        retries: health.resilience.retries,
        compile_fallbacks: health.resilience.compile_fallbacks,
        store_repairs: health.resilience.store_repairs,
        breaker_fast_fails: health.resilience.breaker_fast_fails,
        queue_depth: health.queue_depth,
        peak_queue_depth: health.peak_queue_depth,
        ..Evidence::default()
    };
    ev.faults = health
        .faults
        .iter()
        .map(|(code, rate, injected)| {
            let site = fault::Site::from_code(*code).map_or("unknown", fault::Site::key);
            (site.to_string(), *rate, *injected)
        })
        .collect();
    ev.breakers = health
        .breakers
        .iter()
        .filter(|(_, b)| b.state != fault::BreakerState::Closed || b.trips > 0)
        .map(|(code, b)| {
            let name = engines::EngineKind::from_code(*code)
                .map_or_else(|| format!("engine#{code}"), |k| k.name().to_string());
            (name, b.state.name().to_string(), b.trips)
        })
        .collect();
    // v8 extras; older servers answer Err and the sections stay empty.
    // A wabench-router target refuses these per-shard requests with a
    // `router:`-prefixed Err (see PROTOCOL.md): same degradation, but
    // say so — the diagnosis then covers fleet aggregates only.
    let mut router_refusals = 0u32;
    let mut note_refusal = |e: std::io::Error| {
        if e.to_string().contains("router:") {
            router_refusals += 1;
        }
    };
    match client.alert_log() {
        Ok(a) => {
            ev.firing = a
                .firing
                .iter()
                .map(|f| Firing {
                    rule: f.rule.clone(),
                    value: f.value,
                    threshold: f.threshold,
                    detail: f.detail.clone(),
                })
                .collect();
        }
        Err(e) => note_refusal(e),
    }
    match client.profile_dump() {
        Ok(p) => {
            if let Some(w) = p.windows.last() {
                ev.profile = w.shares();
                ev.profile.sort_by(|a, b| b.1.total_cmp(&a.1));
            }
        }
        Err(e) => note_refusal(e),
    }
    match client.trace_dump() {
        Ok(t) => {
            ev.exemplars = t
                .exemplars
                .iter()
                .map(|rec| {
                    (
                        rec.label.clone(),
                        rec.phases.done_ns.saturating_sub(rec.phases.enqueue_ns),
                    )
                })
                .collect();
            ev.exemplars.sort_by_key(|(_, ns)| Reverse(*ns));
        }
        Err(e) => note_refusal(e),
    }
    if router_refusals > 0 {
        obs::warn!(
            "target is a router: {router_refusals} per-shard request(s) \
             (alerts/profile/trace) were refused; diagnosing fleet aggregates only — \
             point --socket at a shard for full detail (see docs/DEPLOYMENT.md)"
        );
    }
    Ok(ev)
}

/// The ranked correlation pass. Severity buckets (higher = earlier):
/// firing alerts (5) > armed faults actually injecting (4) > fallback
/// and repair counters (3) > breaker / retry / queue pressure (2) >
/// profile hot-spot context (1).
fn diagnose(ev: &Evidence) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in &ev.firing {
        findings.push(Finding {
            severity: 5,
            kind: "alert",
            machine: format!(
                "rule={} value={:.4} threshold={:.4}",
                f.rule, f.value, f.threshold
            ),
            human: format!(
                "alert `{}` is firing: value {:.4} vs threshold {:.4} ({})",
                f.rule, f.value, f.threshold, f.detail
            ),
        });
    }
    for (site, rate, injected) in &ev.faults {
        if *injected > 0 {
            findings.push(Finding {
                severity: 4,
                kind: "fault",
                machine: format!("site={site} rate={rate} injected={injected}"),
                human: format!(
                    "fault injection at `{site}` (rate {rate}) has fired {injected} times — \
                     the most likely root cause of any latency or failure alert"
                ),
            });
        }
    }
    if ev.compile_fallbacks > 0 {
        findings.push(Finding {
            severity: 3,
            kind: "fallback",
            machine: format!("compile_fallbacks={}", ev.compile_fallbacks),
            human: format!(
                "{} job(s) degraded to the interpreter tier after JIT compile failures — \
                 expect an order-of-magnitude execution slowdown on those jobs",
                ev.compile_fallbacks
            ),
        });
    }
    if ev.store_repairs > 0 {
        findings.push(Finding {
            severity: 3,
            kind: "store",
            machine: format!("store_repairs={}", ev.store_repairs),
            human: format!(
                "{} corrupt artifact(s) were recompiled in place — check the store volume",
                ev.store_repairs
            ),
        });
    }
    for (engine, state, trips) in &ev.breakers {
        findings.push(Finding {
            severity: 2,
            kind: "breaker",
            machine: format!("engine={engine} state={state} trips={trips}"),
            human: format!(
                "circuit breaker for `{engine}` is {state} ({trips} trip(s)); \
                 {} fast-fail(s) were rejected without running",
                ev.breaker_fast_fails
            ),
        });
    }
    if ev.retries > 0 {
        findings.push(Finding {
            severity: 2,
            kind: "retries",
            machine: format!("retries={}", ev.retries),
            human: format!("{} retry attempt(s) beyond first tries", ev.retries),
        });
    }
    if ev.queue_depth > 0 && ev.queue_depth >= ev.peak_queue_depth.max(1) / 2 {
        findings.push(Finding {
            severity: 2,
            kind: "queue",
            machine: format!(
                "queue_depth={} peak_queue_depth={}",
                ev.queue_depth, ev.peak_queue_depth
            ),
            human: format!(
                "queue depth {} is at or near its high-water mark {} — arrivals are \
                 outrunning service capacity",
                ev.queue_depth, ev.peak_queue_depth
            ),
        });
    }
    if let Some((stack, share)) = ev.profile.first() {
        if !ev.firing.is_empty() || findings.iter().any(|f| f.severity >= 3) {
            findings.push(Finding {
                severity: 1,
                kind: "profile",
                machine: format!("phase={stack} share={share:.3}"),
                human: format!(
                    "the continuous profile puts {:.1}% of recent self-time in `{stack}`",
                    share * 100.0
                ),
            });
        }
    }
    findings.sort_by_key(|f| Reverse(f.severity));
    findings
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = parse_opts(&args);
    let ev = match (&o.bundle, &o.socket) {
        (Some(path), None) => evidence_from_bundle(path),
        (None, Some(path)) => evidence_from_socket(path),
        _ => unreachable!("parse_opts enforces exactly one source"),
    }
    .unwrap_or_else(|e| {
        obs::error!("{e}");
        exit(2);
    });

    println!("wabench-doctor: {}", ev.source);
    if let Some(a) = &ev.alert {
        println!(
            "snapshot trigger: `{}` fired at value {:.4} vs threshold {:.4} ({})",
            a.rule, a.value, a.threshold, a.detail
        );
    }
    let findings = diagnose(&ev);
    if findings.is_empty() {
        println!("diagnosis: healthy — no firing alerts, injected faults, fallbacks, or saturation");
        exit(0);
    }
    println!(
        "diagnosis: {} finding(s), most severe first",
        findings.len()
    );
    for (rank, f) in findings.iter().take(o.top).enumerate() {
        println!("  {}. {}", rank + 1, f.human);
    }
    if findings.len() > o.top {
        println!("  ... {} more (raise --top)", findings.len() - o.top);
    }
    if let Some((label, total_ns)) = ev.exemplars.first() {
        println!(
            "slowest exemplar: {} at {:.2}ms end-to-end",
            label,
            *total_ns as f64 / 1e6
        );
    }
    for (rank, f) in findings.iter().take(o.top).enumerate() {
        println!("finding rank={} kind={} {}", rank + 1, f.kind, f.machine);
    }
    exit(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bundle_evidence(body: &str) -> Evidence {
        let dir = std::env::temp_dir().join(format!("wabench-doctor-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create test dir");
        let path = dir.join("bundle.json");
        std::fs::write(&path, body).expect("write bundle");
        let ev = evidence_from_bundle(&path).expect("parse bundle");
        let _ = std::fs::remove_dir_all(&dir);
        ev
    }

    const BUNDLE: &str = r#"{
        "schema": "wabench-postmortem", "version": 1,
        "alert": {"seq": 3, "t_ns": 9, "rule": "p99", "value": 0.02, "threshold": 0.005, "detail": "p99 over ceiling"},
        "firing": [{"rule": "p99", "since_ns": 5, "value": 0.02, "threshold": 0.005, "detail": "p99 over ceiling"}],
        "series": [], "exemplars": [{"label": "crc32/wasm3", "total_ns": 21000000, "attempts": 1, "compile_fallback": false}],
        "trace_tail": [],
        "profile": {"window_ns": 50000000, "seq": 2, "folded": "wasm3;exec 900\nwasm3;compile 100\n"},
        "health": {"retries": 0, "compile_fallbacks": 0, "store_repairs": 0, "breaker_fast_fails": 0,
                   "queue_depth": 0, "peak_queue_depth": 4, "breakers": [],
                   "faults": [{"site": "delay", "rate": 1.0, "injected": 12}]}
    }"#;

    #[test]
    fn bundle_diagnosis_ranks_the_firing_alert_then_the_fault_site() {
        let ev = bundle_evidence(BUNDLE);
        assert_eq!(ev.alert.as_ref().map(|a| a.rule.as_str()), Some("p99"));
        let findings = diagnose(&ev);
        assert!(findings.len() >= 2, "alert + fault at minimum");
        assert_eq!(findings[0].kind, "alert");
        assert!(findings[0].machine.contains("rule=p99"));
        assert_eq!(findings[1].kind, "fault");
        assert!(
            findings[1].machine.contains("site=delay"),
            "the injected fault site must be named: {}",
            findings[1].machine
        );
    }

    #[test]
    fn profile_context_names_the_hottest_phase() {
        let ev = bundle_evidence(BUNDLE);
        assert_eq!(ev.profile.first().map(|(s, _)| s.as_str()), Some("wasm3;exec"));
        let findings = diagnose(&ev);
        let prof = findings.iter().find(|f| f.kind == "profile").expect("profile finding");
        assert!(prof.machine.contains("phase=wasm3;exec"));
        assert!(prof.machine.contains("share=0.900"));
    }

    #[test]
    fn healthy_evidence_yields_no_findings() {
        let ev = bundle_evidence(
            r#"{"schema": "wabench-postmortem", "version": 1, "firing": [], "series": [],
                "exemplars": [], "trace_tail": [], "profile": null,
                "health": {"retries": 0, "compile_fallbacks": 0, "store_repairs": 0,
                           "breaker_fast_fails": 0, "queue_depth": 0, "peak_queue_depth": 0,
                           "breakers": [], "faults": []}}"#,
        );
        assert!(diagnose(&ev).is_empty());
    }

    #[test]
    fn non_bundle_json_is_rejected() {
        let dir = std::env::temp_dir().join(format!("wabench-doctor-rej-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create test dir");
        let path = dir.join("other.json");
        std::fs::write(&path, r#"{"schema": "something-else"}"#).expect("write");
        let err = evidence_from_bundle(&path).expect_err("must reject");
        assert!(err.contains("not a wabench-postmortem bundle"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn folded_shares_sort_hottest_first_and_skip_garbage_lines() {
        let shares = shares_of_folded("a;x 100\nnot-a-line\nb;y 300\n");
        assert_eq!(shares[0].0, "b;y");
        assert!((shares[0].1 - 0.75).abs() < 1e-9);
        assert_eq!(shares.len(), 2);
    }
}
