//! A single-threaded nonblocking event loop over a Unix-domain
//! listener.
//!
//! The thread-per-connection front end spent one OS thread (stack,
//! scheduler slot, join bookkeeping) per client; under hundreds of
//! load-generator connections the accept loop itself became the
//! bottleneck. This reactor multiplexes every connection on one thread
//! with `poll(2)`: per-connection read buffers make **pipelining**
//! first-class (a client may write many frames back-to-back and read
//! the responses later; partial frames are reassembled across reads),
//! and per-connection write buffers absorb slow readers without
//! blocking the loop.
//!
//! The loop is deliberately protocol-agnostic: a [`Handler`] decodes
//! payloads and produces responses, so both `wabench-served` (scheduler
//! front end) and `wabench-router` (shard multiplexer) run on the same
//! reactor. Responses stay **in request order per connection** — the
//! wire contract ("one response per request, in order") is enforced
//! here with ordered response slots, not left to handlers: a handler
//! may *park* a request (e.g. `Wait` for an unfinished job) and resolve
//! it later from [`Handler::tick`]; frames queued behind the parked
//! slot are held until it fills.
//!
//! No epoll and no external crates: `poll(2)` is declared directly
//! (the workspace builds offline and deliberately avoids a libc
//! dependency), and the fd sets here are small enough that O(n) scans
//! are irrelevant next to job execution times.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::os::fd::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};

use crate::wire::MAX_FRAME;

/// `struct pollfd` from `<poll.h>`; layout is identical on every
/// platform this workspace targets (Linux/macOS).
#[repr(C)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: u64, timeout_ms: i32) -> i32;
}

/// Blocks until any registered fd is ready or the timeout elapses,
/// retrying on EINTR.
fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<()> {
    loop {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // correctly laid-out `pollfd` records for the whole call.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if rc >= 0 {
            return Ok(());
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// Identifies one in-order response slot: the `slot`-th request ever
/// received on connection `conn`. Handlers hand tokens back when they
/// resolve parked requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token {
    /// Reactor-assigned connection id (stable for the connection's
    /// lifetime, never reused within a run).
    pub conn: u64,
    /// Per-connection request sequence number.
    pub slot: u64,
}

/// What a handler does with one decoded request payload.
pub enum Action {
    /// Answer immediately with this frame payload.
    Respond(Vec<u8>),
    /// No answer yet; the handler will resolve the token from a later
    /// [`Handler::tick`]. Responses to later requests on the same
    /// connection are held behind the parked slot.
    Park,
    /// Answer with this frame payload, then shut the reactor down once
    /// every connection's pending responses are flushed.
    Bye(Vec<u8>),
}

/// One resolved parked request, produced by [`Handler::tick`].
pub enum Resolution {
    /// The response frame payload.
    Respond(Vec<u8>),
    /// The response frame payload, plus a shutdown of the reactor after
    /// all write buffers flush (used for drain-then-stop semantics).
    Bye(Vec<u8>),
}

/// Protocol logic plugged into the reactor. All methods run on the
/// reactor thread and must not block.
pub trait Handler {
    /// Process one complete frame payload from `token.conn`.
    fn handle(&mut self, token: Token, payload: &[u8]) -> Action;

    /// Called once per loop iteration: resolve any parked requests that
    /// have become answerable by pushing `(token, resolution)` pairs.
    fn tick(&mut self, done: &mut Vec<(Token, Resolution)>);

    /// The connection is gone (EOF or error); drop any parked state for
    /// it. Resolutions for its tokens are silently discarded.
    fn conn_closed(&mut self, conn: u64);

    /// Whether any request is currently parked. Governs the poll
    /// timeout: parked work is re-checked on a short tick.
    fn parked(&self) -> bool;
}

struct Conn {
    id: u64,
    stream: UnixStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    /// In-order response slots, front = oldest pending request.
    /// `Some(frame)` is ready to flush; `None` is parked.
    slots: VecDeque<Option<Vec<u8>>>,
    /// Slot id of `slots.front()`.
    head_slot: u64,
    /// Slot id handed to the next incoming request.
    next_slot: u64,
    /// Read side saw EOF (flush what's pending, then drop).
    eof: bool,
}

impl Conn {
    /// Fills the slot a resolution addresses; ignores slots already
    /// flushed (can happen if a handler double-resolves).
    fn fill(&mut self, slot: u64, frame: Vec<u8>) {
        if slot < self.head_slot {
            return;
        }
        let idx = (slot - self.head_slot) as usize;
        if let Some(entry) = self.slots.get_mut(idx) {
            *entry = Some(frame);
        }
    }

    /// Moves every leading ready slot into the write buffer, preserving
    /// request order.
    fn flush_ready(&mut self) {
        while matches!(self.slots.front(), Some(Some(_))) {
            let frame = self.slots.pop_front().flatten().expect("ready slot");
            self.wbuf.extend_from_slice(&(frame.len() as u32).to_le_bytes());
            self.wbuf.extend_from_slice(&frame);
            self.head_slot += 1;
        }
    }

    /// A connection is finished when its read side is closed and
    /// nothing remains to write.
    fn finished(&self) -> bool {
        self.eof && self.wbuf.is_empty()
    }
}

/// Runs the event loop on an already-bound listener until a handler
/// returns [`Action::Bye`] / [`Resolution::Bye`] and all responses are
/// flushed.
///
/// # Errors
///
/// Fatal I/O errors on the listener or `poll(2)` itself. Per-connection
/// errors (resets, oversized frames) just drop that connection.
pub fn run(listener: &UnixListener, handler: &mut dyn Handler) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut conns: Vec<Conn> = Vec::new();
    let mut next_conn_id: u64 = 0;
    let mut draining = false;
    let mut done: Vec<(Token, Resolution)> = Vec::new();
    let accepted = obs::metrics::counter("svc.conn.accepted");
    let pipelined = obs::metrics::counter("svc.frames.pipelined");

    loop {
        // 1. Give parked requests a chance to resolve.
        done.clear();
        handler.tick(&mut done);
        for (token, res) in done.drain(..) {
            let frame = match res {
                Resolution::Respond(f) => f,
                Resolution::Bye(f) => {
                    draining = true;
                    f
                }
            };
            if let Some(conn) = conns.iter_mut().find(|c| c.id == token.conn) {
                conn.fill(token.slot, frame);
                conn.flush_ready();
            }
        }

        // 2. Opportunistic writes (newly ready frames), then reap.
        let mut i = 0;
        while i < conns.len() {
            let conn = &mut conns[i];
            if !conn.wbuf.is_empty() {
                if let Err(e) = write_some(conn) {
                    if e.kind() != io::ErrorKind::WouldBlock {
                        let id = conn.id;
                        conns.swap_remove(i);
                        handler.conn_closed(id);
                        continue;
                    }
                }
            }
            if conn.finished() {
                let id = conn.id;
                conns.swap_remove(i);
                handler.conn_closed(id);
                continue;
            }
            i += 1;
        }

        // 3. Draining and everything flushed: stop.
        if draining && conns.iter().all(|c| c.wbuf.is_empty()) {
            return Ok(());
        }

        // 4. Wait for readiness. Parked work and draining re-check on a
        // short tick; an idle server sleeps longer.
        let mut fds: Vec<PollFd> = Vec::with_capacity(conns.len() + 1);
        fds.push(PollFd {
            fd: listener.as_raw_fd(),
            events: if draining { 0 } else { POLLIN },
            revents: 0,
        });
        for conn in &conns {
            let mut events = 0i16;
            if !conn.eof && !draining {
                events |= POLLIN;
            }
            if !conn.wbuf.is_empty() {
                events |= POLLOUT;
            }
            fds.push(PollFd {
                fd: conn.stream.as_raw_fd(),
                events,
                revents: 0,
            });
        }
        let timeout_ms = if handler.parked() || draining { 2 } else { 250 };
        poll_fds(&mut fds, timeout_ms)?;

        // 5. Accept every pending connection.
        if fds[0].revents & (POLLIN | POLLERR) != 0 {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(true)?;
                        accepted.inc();
                        conns.push(Conn {
                            id: next_conn_id,
                            stream,
                            rbuf: Vec::new(),
                            wbuf: Vec::new(),
                            slots: VecDeque::new(),
                            head_slot: 0,
                            next_slot: 0,
                            eof: false,
                        });
                        next_conn_id += 1;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
        }

        // 6. Service ready connections (fds[i+1] maps to conns[i] —
        // both were frozen together above; removals happen after).
        let mut dead: Vec<u64> = Vec::new();
        for (i, fd) in fds.iter().enumerate().skip(1) {
            let conn = &mut conns[i - 1];
            if fd.revents & (POLLERR | POLLNVAL) != 0 {
                dead.push(conn.id);
                continue;
            }
            if fd.revents & (POLLIN | POLLHUP) != 0 && !conn.eof {
                match read_and_dispatch(conn, handler, &pipelined) {
                    Ok(keep) => {
                        if !keep {
                            draining = true;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(_) => {
                        dead.push(conn.id);
                        continue;
                    }
                }
            }
            if fd.revents & POLLOUT != 0 && !conn.wbuf.is_empty() {
                if let Err(e) = write_some(conn) {
                    if e.kind() != io::ErrorKind::WouldBlock {
                        dead.push(conn.id);
                    }
                }
            }
        }
        if !dead.is_empty() {
            conns.retain(|c| !dead.contains(&c.id));
            for id in dead {
                handler.conn_closed(id);
            }
        }
    }
}

/// Drains the socket into the connection's read buffer, carves out
/// every complete frame, and dispatches each to the handler. Returns
/// `Ok(false)` when a handler answered [`Action::Bye`].
///
/// # Errors
///
/// Read errors, oversized frames, or a frame length lying beyond
/// `MAX_FRAME` — all of which drop the connection.
fn read_and_dispatch(
    conn: &mut Conn,
    handler: &mut dyn Handler,
    pipelined: &obs::metrics::Counter,
) -> io::Result<bool> {
    let mut keep = true;
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.eof = true;
                break;
            }
            Ok(n) => conn.rbuf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    // Extract complete frames; anything partial waits for the next
    // readiness event. More than one frame per pass is a pipelined
    // batch.
    let mut frames_this_pass = 0u64;
    while conn.rbuf.len() >= 4 {
        let len = u32::from_le_bytes(conn.rbuf[..4].try_into().expect("4 bytes")) as usize;
        if len as u32 > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame exceeds MAX_FRAME",
            ));
        }
        if conn.rbuf.len() < 4 + len {
            break;
        }
        let payload: Vec<u8> = conn.rbuf[4..4 + len].to_vec();
        conn.rbuf.drain(..4 + len);
        frames_this_pass += 1;
        let token = Token {
            conn: conn.id,
            slot: conn.next_slot,
        };
        conn.next_slot += 1;
        match handler.handle(token, &payload) {
            Action::Respond(frame) => conn.slots.push_back(Some(frame)),
            Action::Park => conn.slots.push_back(None),
            Action::Bye(frame) => {
                conn.slots.push_back(Some(frame));
                keep = false;
            }
        }
    }
    if frames_this_pass > 1 {
        pipelined.add(frames_this_pass - 1);
    }
    conn.flush_ready();
    if !conn.wbuf.is_empty() {
        // Try to push responses out right away; WouldBlock just leaves
        // the rest for POLLOUT.
        match write_some(conn) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
            Err(e) => return Err(e),
        }
    }
    Ok(keep)
}

/// Writes as much buffered response data as the socket accepts.
///
/// # Errors
///
/// `WouldBlock` when the socket is full (retry on POLLOUT); anything
/// else is fatal for the connection.
fn write_some(conn: &mut Conn) -> io::Result<()> {
    while !conn.wbuf.is_empty() {
        match conn.stream.write(&conn.wbuf) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "socket accepted zero bytes",
                ))
            }
            Ok(n) => {
                conn.wbuf.drain(..n);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}
