//! The `wabench-served` request/response protocol.
//!
//! Messages travel as length-prefixed frames ([`crate::wire`]); the
//! payload is a tag byte plus the message body. Decoding treats every
//! payload as untrusted and must consume it exactly.

use engines::EngineKind;
use obs::metrics::{HistogramSnapshot, BUCKETS};
use serde::{Deserialize, Serialize};

use fault::{BreakerSnapshot, BreakerState};

use crate::job::{JobMode, JobResult, JobSpec, JobStatus, Recovery, Scale, TraceCtx, TraceDigest};
use crate::scheduler::{EngineCounters, HealthReport, ResilienceStats, SvcStats, SvcStatsExt};
use crate::store::StoreStats;
use crate::telemetry::{
    AlertReport, ProfileReport, SeriesPoint, SeriesReport, TraceRecord, TraceReport,
};
use crate::wire::{level_byte, level_from_byte, WireError, WireReader, WireWriter};

/// Protocol version, carried at the head of the `StatsExt` and `Health`
/// replies. Version history:
///
/// - v1: Ping/Submit/Poll/Wait/Stats/Shutdown (implicit — v1 frames
///   carry no version field, and none of those messages changed).
/// - v2: adds `StatsExt` (request tag 6, response tag 7) with queue
///   depth, worker utilization, and latency histogram snapshots.
/// - v3: histogram snapshots carry exact `min_ns`/`max_ns`, and the
///   `StatsExt` reply ends with per-engine simulated-counter
///   aggregates (jobs + the ten perf-stat counters). Decoding still
///   accepts v2 frames: the extras default to zero/empty.
/// - v4: adds `Health` (request tag 7, response tag 8) reporting
///   per-engine circuit-breaker states and resilience counters, and the
///   `Result` response gains a recovery trailer (attempts, interpreter
///   fallback, store repairs). `Result` frames without the trailer (v3
///   peers) still decode with a default recovery; `StatsExt` is
///   unchanged from v3.
/// - v5: adds the `checks_skipped` simulated counter (safety checks
///   removed by static elimination proofs). The ten-u64 counter block
///   is frozen; the new counter is appended frame-final to `Result`
///   (after the v4 recovery trailer) and version-gated behind each
///   per-engine aggregate in `StatsExt`. v4 frames still decode, with
///   the counter defaulting to zero.
/// - v6: the `Health` reply gains a frame-final queue-depth trailer
///   (`u64` current depth, `u64` peak depth) so load generators can
///   detect scheduler saturation. Gated on the version head: v4/v5
///   frames still decode with both depths defaulting to zero.
/// - v7: end-to-end tracing and live telemetry. `Submit` gains an
///   optional frame-final trace-context trailer (client trace id +
///   origin timestamp, 16 bytes) — omitted entirely for untraced
///   submits, which therefore stay byte-identical to v6, and absent
///   trailers decode as "untraced". The `Result` response gains a
///   frame-final 40-byte span-digest trailer (echoed trace context
///   plus enqueue/start/done timestamps on the server trace clock);
///   v4–v6 frames decode with an all-zero digest. Two new messages:
///   `Series` (request tag 8, response tag 9) returns the live
///   telemetry sample window, and `TraceDump` (request tag 9, response
///   tag 10) returns recent and slow-request server span digests; both
///   replies carry the version head.
/// - v8: continuous profiling and SLO alerting. The `Series` request
///   gains an optional frame-final `since` cursor (u64 sequence number;
///   only points with a greater seq are returned) — omitted entirely
///   for whole-window fetches, which stay byte-identical to v7, and
///   absent cursors decode as "whole window". Each `Series` reply point
///   gains a sparse latency-bucket trailer (u32 pair count, then
///   `(u8 bucket index, u64 count)` pairs), gated on the version head
///   so v7 frames still decode with empty buckets. Two new messages:
///   `ProfileDump` (request tag 10, response tag 11) returns the
///   continuous profiler's retained windows, and `AlertLog` (request
///   tag 11, response tag 12) returns the alert engine's firing set and
///   transition log; both replies carry the version head.
/// - v9: multi-node serving. `Busy` (response tag 13) is an explicit
///   admission-control rejection carrying a `u32` retry-after hint in
///   milliseconds — `wabench-router` sheds load with it when aggregate
///   shard queue depth crosses its watermark (a single-node
///   `wabench-served` never sends it). `Backends` (request tag 12,
///   response tag 14) reports a router's per-backend routing table:
///   health, cached queue depth, jobs forwarded, and failovers; the
///   reply carries the version head. A plain `wabench-served` answers
///   `Backends` with `Err`, which is how clients tell a shard from a
///   router.
pub const PROTO_VERSION: u16 = 9;

/// Client → server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Enqueue a job; answered with `Submitted(id)`. The trace context
    /// (protocol v7) joins the job's server-side spans to the client's;
    /// a default context means "untraced" and encodes exactly like v6.
    Submit(JobSpec, TraceCtx),
    /// Non-blocking result query; `Pending` or `Result`.
    Poll(u64),
    /// Blocking result query; answered with `Result`.
    Wait(u64),
    /// Service statistics.
    Stats,
    /// Stop the server (drains queued jobs first).
    Shutdown,
    /// Extended statistics (protocol v2; older servers answer `Err`).
    StatsExt,
    /// Resilience health: breaker states and fault/retry counters
    /// (protocol v4; older servers answer `Err`).
    Health,
    /// Live telemetry time series: the sampler's buffered delta window
    /// (protocol v7; older servers answer `Err`). The optional cursor
    /// (protocol v8) limits the reply to points with a greater sequence
    /// number; `None` fetches the whole window and encodes exactly like
    /// v7.
    Series(Option<u64>),
    /// Recent and slow-request server span digests for client-side
    /// stitching (protocol v7; older servers answer `Err`).
    TraceDump,
    /// The continuous profiler's retained windows (protocol v8; older
    /// servers answer `Err`).
    ProfileDump,
    /// The SLO alert engine's firing set and transition log (protocol
    /// v8; older servers answer `Err`).
    AlertLog,
    /// The routing table of a `wabench-router`: per-backend health,
    /// forward counts, and failovers (protocol v9). A plain
    /// `wabench-served` answers `Err` — the cheap way to distinguish a
    /// shard from a router.
    Backends,
}

/// Server → client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// `Ping` reply.
    Pong,
    /// Job accepted under this id.
    Submitted(u64),
    /// Job not finished yet.
    Pending,
    /// A completed job's record.
    Result(JobResult),
    /// Statistics snapshot.
    Stats(SvcStats),
    /// The request could not be served.
    Err(String),
    /// Acknowledges `Shutdown`.
    Bye,
    /// Extended statistics snapshot (protocol v2). Boxed: the inline
    /// histogram bucket arrays dwarf every other variant.
    StatsExt(Box<SvcStatsExt>),
    /// Resilience health snapshot (protocol v4).
    Health(HealthReport),
    /// Live telemetry sample window (protocol v7).
    Series(SeriesReport),
    /// Recent/slow-request span digests (protocol v7).
    TraceDump(TraceReport),
    /// Continuous-profile windows (protocol v8).
    ProfileDump(ProfileReport),
    /// Alert firing set and transition log (protocol v8).
    AlertLog(AlertReport),
    /// Admission-control rejection (protocol v9): the tier is saturated
    /// and the job was *not* enqueued. Carries a retry-after hint in
    /// milliseconds. Only routers send this; it is not an error — the
    /// client should back off and resubmit.
    Busy(u32),
    /// A router's routing table (protocol v9).
    Backends(BackendsReport),
}

/// The protocol v9 `Backends` reply: a router's view of its shard
/// fleet plus its own admission-control state.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackendsReport {
    /// Aggregate queue-depth watermark above which the router sheds
    /// load with `Busy` (0 = admission control off).
    pub watermark: u64,
    /// Jobs shed with `Busy` since the router started.
    pub shed: u64,
    /// Per-backend status, in ring order.
    pub backends: Vec<BackendStatus>,
}

/// One backend row of a [`BackendsReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackendStatus {
    /// Human name (`shard0`, ...).
    pub name: String,
    /// Socket path the router forwards to.
    pub socket: String,
    /// Last health probe succeeded.
    pub healthy: bool,
    /// Queue depth from the last successful probe.
    pub queue_depth: u64,
    /// Jobs forwarded to this backend.
    pub forwarded: u64,
    /// Failovers *away* from this backend (submit or poll failures that
    /// re-routed a job to the next ring replica).
    pub failovers: u64,
}

fn encode_backends(w: &mut WireWriter, b: &BackendsReport) {
    w.u8((PROTO_VERSION & 0xff) as u8);
    w.u8((PROTO_VERSION >> 8) as u8);
    w.u64(b.watermark);
    w.u64(b.shed);
    w.u32(b.backends.len() as u32);
    for be in &b.backends {
        w.str(&be.name);
        w.str(&be.socket);
        w.bool(be.healthy);
        w.u64(be.queue_depth);
        w.u64(be.forwarded);
        w.u64(be.failovers);
    }
}

fn decode_backends(r: &mut WireReader<'_>) -> Result<BackendsReport, WireError> {
    let version = r.u8()? as u16 | ((r.u8()? as u16) << 8);
    if !(9..=PROTO_VERSION).contains(&version) {
        return Err(bad("unsupported backends version"));
    }
    let watermark = r.u64()?;
    let shed = r.u64()?;
    let n = r.u32()?;
    let mut backends = Vec::with_capacity(n.min(1024) as usize);
    for _ in 0..n {
        backends.push(BackendStatus {
            name: r.str()?,
            socket: r.str()?,
            healthy: r.bool()?,
            queue_depth: r.u64()?,
            forwarded: r.u64()?,
            failovers: r.u64()?,
        });
    }
    Ok(BackendsReport {
        watermark,
        shed,
        backends,
    })
}

fn bad(msg: &str) -> WireError {
    WireError(msg.to_string())
}

fn encode_spec(w: &mut WireWriter, spec: &JobSpec) {
    w.str(&spec.benchmark);
    w.u8(spec.engine.code());
    w.u8(level_byte(spec.level));
    w.u8(spec.scale.byte());
    w.u8(spec.mode.byte());
    w.bool(spec.warm);
}

fn decode_spec(r: &mut WireReader<'_>) -> Result<JobSpec, WireError> {
    let benchmark = r.str()?;
    let engine = EngineKind::from_code(r.u8()?).ok_or_else(|| bad("bad engine"))?;
    let level = level_from_byte(r.u8()?).ok_or_else(|| bad("bad level"))?;
    let scale = Scale::from_byte(r.u8()?).ok_or_else(|| bad("bad scale"))?;
    let mode = JobMode::from_byte(r.u8()?).ok_or_else(|| bad("bad mode"))?;
    let warm = r.bool()?;
    Ok(JobSpec {
        benchmark,
        engine,
        level,
        scale,
        mode,
        warm,
    })
}

fn encode_status(w: &mut WireWriter, status: &JobStatus) {
    match status {
        JobStatus::Ok => w.u8(0),
        JobStatus::Failed(msg) => {
            w.u8(1);
            w.str(msg);
        }
        JobStatus::Panicked(msg) => {
            w.u8(2);
            w.str(msg);
        }
        JobStatus::TimedOut => w.u8(3),
    }
}

fn decode_status(r: &mut WireReader<'_>) -> Result<JobStatus, WireError> {
    Ok(match r.u8()? {
        0 => JobStatus::Ok,
        1 => JobStatus::Failed(r.str()?),
        2 => JobStatus::Panicked(r.str()?),
        3 => JobStatus::TimedOut,
        _ => return Err(bad("bad status tag")),
    })
}

fn encode_counters(w: &mut WireWriter, c: &archsim::Counters) {
    for v in [
        c.instructions,
        c.cycles,
        c.branches,
        c.branch_misses,
        c.cache_references,
        c.cache_misses,
        c.l1d_accesses,
        c.l1d_misses,
        c.l1i_accesses,
        c.l1i_misses,
    ] {
        w.u64(v);
    }
}

fn decode_counters(r: &mut WireReader<'_>) -> Result<archsim::Counters, WireError> {
    Ok(archsim::Counters {
        instructions: r.u64()?,
        cycles: r.u64()?,
        branches: r.u64()?,
        branch_misses: r.u64()?,
        cache_references: r.u64()?,
        cache_misses: r.u64()?,
        l1d_accesses: r.u64()?,
        l1d_misses: r.u64()?,
        l1i_accesses: r.u64()?,
        l1i_misses: r.u64()?,
        // v5 appends checks_skipped outside this block (frame-final in
        // `Result`, version-gated in `StatsExt`) so v4 frames decode.
        checks_skipped: 0,
    })
}

fn encode_result(w: &mut WireWriter, res: &JobResult) {
    w.u64(res.id);
    encode_spec(w, &res.spec);
    encode_status(w, &res.status);
    match res.checksum {
        Some(v) => {
            w.bool(true);
            w.i32(v);
        }
        None => w.bool(false),
    }
    w.u64(res.bytes_hash);
    w.f64(res.compile_s);
    w.f64(res.exec_s);
    match res.aot_compile_s {
        Some(v) => {
            w.bool(true);
            w.f64(v);
        }
        None => w.bool(false),
    }
    match &res.counters {
        Some(c) => {
            w.bool(true);
            encode_counters(w, c);
        }
        None => w.bool(false),
    }
    w.bool(res.warm_artifact);
    w.f64(res.wall_s);
    // v4 recovery trailer. Result is the last field of its frame, so a
    // v3 decoder reading a v4 frame stops cleanly before the trailer,
    // and a v4 decoder detects a v3 frame by the missing bytes.
    w.u32(res.recovery.attempts);
    w.bool(res.recovery.compile_fallback);
    w.u32(res.recovery.store_repairs);
    // v5 trailer: checks skipped by static elimination proofs, zero for
    // unprofiled jobs. Frame-final like the recovery trailer, so a v4
    // frame's absence is detectable from the frame length.
    w.u64(res.counters.as_ref().map_or(0, |c| c.checks_skipped));
    // v7 trailer: the per-job span digest (echoed trace context plus
    // the queue/run timestamps on the server trace clock). Five u64s =
    // 40 bytes, frame-final, so v6 frames are detectable by length.
    w.u64(res.trace.trace_id);
    w.u64(res.trace.origin_ns);
    w.u64(res.trace.enqueue_ns);
    w.u64(res.trace.start_ns);
    w.u64(res.trace.done_ns);
}

fn decode_result(r: &mut WireReader<'_>) -> Result<JobResult, WireError> {
    let id = r.u64()?;
    let spec = decode_spec(r)?;
    let status = decode_status(r)?;
    let checksum = if r.bool()? { Some(r.i32()?) } else { None };
    let bytes_hash = r.u64()?;
    let compile_s = r.f64()?;
    let exec_s = r.f64()?;
    let aot_compile_s = if r.bool()? { Some(r.f64()?) } else { None };
    let mut counters = if r.bool()? {
        Some(decode_counters(r)?)
    } else {
        None
    };
    let warm_artifact = r.bool()?;
    let wall_s = r.f64()?;
    // v3 peers end the frame here; their results carry no recovery.
    let recovery = if r.remaining() > 0 {
        Recovery {
            attempts: r.u32()?,
            compile_fallback: r.bool()?,
            store_repairs: r.u32()?,
        }
    } else {
        Recovery::default()
    };
    // v4 frames end here; their profiled results predate the counter.
    if r.remaining() >= 8 {
        let checks_skipped = r.u64()?;
        if let Some(c) = &mut counters {
            c.checks_skipped = checks_skipped;
        }
    }
    // v5/v6 frames end here; their results carry no span digest.
    let trace = if r.remaining() >= 40 {
        TraceDigest {
            trace_id: r.u64()?,
            origin_ns: r.u64()?,
            enqueue_ns: r.u64()?,
            start_ns: r.u64()?,
            done_ns: r.u64()?,
        }
    } else {
        TraceDigest::default()
    };
    Ok(JobResult {
        id,
        spec,
        status,
        checksum,
        bytes_hash,
        compile_s,
        exec_s,
        aot_compile_s,
        counters,
        warm_artifact,
        wall_s,
        recovery,
        trace,
    })
}

fn encode_stats(w: &mut WireWriter, s: &SvcStats) {
    for v in [
        s.submitted,
        s.completed,
        s.ok,
        s.failed,
        s.panicked,
        s.timed_out,
        s.cold_compiles,
        s.warm_loads,
    ] {
        w.u64(v);
    }
    w.f64(s.cold_compile_s);
    w.f64(s.warm_load_s);
    match &s.store {
        Some(st) => {
            w.bool(true);
            for v in [st.hits, st.misses, st.puts, st.evictions, st.corrupt_rejected] {
                w.u64(v);
            }
        }
        None => w.bool(false),
    }
}

fn decode_stats(r: &mut WireReader<'_>) -> Result<SvcStats, WireError> {
    let submitted = r.u64()?;
    let completed = r.u64()?;
    let ok = r.u64()?;
    let failed = r.u64()?;
    let panicked = r.u64()?;
    let timed_out = r.u64()?;
    let cold_compiles = r.u64()?;
    let warm_loads = r.u64()?;
    let cold_compile_s = r.f64()?;
    let warm_load_s = r.f64()?;
    let store = if r.bool()? {
        Some(StoreStats {
            hits: r.u64()?,
            misses: r.u64()?,
            puts: r.u64()?,
            evictions: r.u64()?,
            corrupt_rejected: r.u64()?,
        })
    } else {
        None
    };
    Ok(SvcStats {
        submitted,
        completed,
        ok,
        failed,
        panicked,
        timed_out,
        cold_compiles,
        cold_compile_s,
        warm_loads,
        warm_load_s,
        store,
    })
}

/// Histograms go over the wire sparsely: most of the 32 buckets are
/// empty for any one engine, so we send (index, count) pairs.
fn encode_histogram(w: &mut WireWriter, h: &HistogramSnapshot) {
    w.u64(h.count);
    w.u64(h.sum_ns);
    // v3: exact extremes travel alongside the bucketed shape.
    w.u64(h.min_ns);
    w.u64(h.max_ns);
    let nonzero: Vec<(usize, u64)> = h
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, c)| **c != 0)
        .map(|(i, c)| (i, *c))
        .collect();
    w.u32(nonzero.len() as u32);
    for (i, c) in nonzero {
        w.u8(i as u8);
        w.u64(c);
    }
}

fn decode_histogram(r: &mut WireReader<'_>, version: u16) -> Result<HistogramSnapshot, WireError> {
    let count = r.u64()?;
    let sum_ns = r.u64()?;
    let (min_ns, max_ns) = if version >= 3 {
        (r.u64()?, r.u64()?)
    } else {
        (0, 0)
    };
    let mut snapshot = HistogramSnapshot {
        count,
        sum_ns,
        min_ns,
        max_ns,
        ..HistogramSnapshot::default()
    };
    let n = r.u32()?;
    for _ in 0..n {
        let i = r.u8()? as usize;
        if i >= BUCKETS {
            return Err(bad("bad histogram bucket index"));
        }
        snapshot.buckets[i] = r.u64()?;
    }
    Ok(snapshot)
}

fn encode_stats_ext(w: &mut WireWriter, s: &SvcStatsExt) {
    // Version first, so future layout changes are detectable without
    // guessing from payload length.
    w.u8((PROTO_VERSION & 0xff) as u8);
    w.u8((PROTO_VERSION >> 8) as u8);
    encode_stats(w, &s.base);
    w.u64(s.queue_depth);
    w.u64(s.workers);
    w.f64(s.uptime_s);
    w.f64(s.busy_s);
    encode_histogram(w, &s.queue_wait);
    w.u32(s.engine_wall.len() as u32);
    for (code, h) in &s.engine_wall {
        w.u8(*code);
        encode_histogram(w, h);
    }
    // v3: per-engine simulated-counter aggregates.
    w.u32(s.engine_counters.len() as u32);
    for (code, agg) in &s.engine_counters {
        w.u8(*code);
        w.u64(agg.jobs);
        encode_counters(w, &agg.counters);
        // v5: checks_skipped rides behind the frozen ten-u64 block.
        w.u64(agg.counters.checks_skipped);
    }
}

fn decode_stats_ext(r: &mut WireReader<'_>) -> Result<SvcStatsExt, WireError> {
    let version = r.u8()? as u16 | ((r.u8()? as u16) << 8);
    if !(2..=PROTO_VERSION).contains(&version) {
        return Err(bad("unsupported stats-ext version"));
    }
    let base = decode_stats(r)?;
    let queue_depth = r.u64()?;
    let workers = r.u64()?;
    let uptime_s = r.f64()?;
    let busy_s = r.f64()?;
    let queue_wait = decode_histogram(r, version)?;
    let n = r.u32()?;
    let mut engine_wall = Vec::with_capacity(n.min(64) as usize);
    for _ in 0..n {
        let code = r.u8()?;
        engine_wall.push((code, decode_histogram(r, version)?));
    }
    let engine_counters = if version >= 3 {
        let n = r.u32()?;
        let mut aggs = Vec::with_capacity(n.min(64) as usize);
        for _ in 0..n {
            let code = r.u8()?;
            let jobs = r.u64()?;
            let mut counters = decode_counters(r)?;
            if version >= 5 {
                counters.checks_skipped = r.u64()?;
            }
            aggs.push((code, EngineCounters { jobs, counters }));
        }
        aggs
    } else {
        Vec::new()
    };
    Ok(SvcStatsExt {
        base,
        queue_depth,
        workers,
        uptime_s,
        busy_s,
        queue_wait,
        engine_wall,
        engine_counters,
    })
}

fn encode_health(w: &mut WireWriter, h: &HealthReport) {
    // Version first, like StatsExt, so layout changes stay detectable.
    w.u8((PROTO_VERSION & 0xff) as u8);
    w.u8((PROTO_VERSION >> 8) as u8);
    for v in [
        h.resilience.retries,
        h.resilience.compile_fallbacks,
        h.resilience.store_repairs,
        h.resilience.breaker_fast_fails,
    ] {
        w.u64(v);
    }
    w.u32(h.breakers.len() as u32);
    for (code, b) in &h.breakers {
        w.u8(*code);
        w.u8(b.state.byte());
        w.u32(b.consecutive_failures);
        w.u64(b.trips);
    }
    w.u32(h.faults.len() as u32);
    for (site, rate, injected) in &h.faults {
        w.u8(*site);
        w.f64(*rate);
        w.u64(*injected);
    }
    // v6 queue-depth trailer, gated on the version head above.
    w.u64(h.queue_depth);
    w.u64(h.peak_queue_depth);
}

fn decode_health(r: &mut WireReader<'_>) -> Result<HealthReport, WireError> {
    let version = r.u8()? as u16 | ((r.u8()? as u16) << 8);
    if !(4..=PROTO_VERSION).contains(&version) {
        return Err(bad("unsupported health version"));
    }
    let resilience = ResilienceStats {
        retries: r.u64()?,
        compile_fallbacks: r.u64()?,
        store_repairs: r.u64()?,
        breaker_fast_fails: r.u64()?,
    };
    let n = r.u32()?;
    let mut breakers = Vec::with_capacity(n.min(64) as usize);
    for _ in 0..n {
        let code = r.u8()?;
        let state = BreakerState::from_byte(r.u8()?).ok_or_else(|| bad("bad breaker state"))?;
        let consecutive_failures = r.u32()?;
        let trips = r.u64()?;
        breakers.push((
            code,
            BreakerSnapshot {
                state,
                consecutive_failures,
                trips,
            },
        ));
    }
    let n = r.u32()?;
    let mut faults = Vec::with_capacity(n.min(64) as usize);
    for _ in 0..n {
        let site = r.u8()?;
        let rate = r.f64()?;
        let injected = r.u64()?;
        faults.push((site, rate, injected));
    }
    // v6 trailer; absent from v4/v5 frames, where depths default to 0.
    let (queue_depth, peak_queue_depth) = if version >= 6 {
        (r.u64()?, r.u64()?)
    } else {
        (0, 0)
    };
    Ok(HealthReport {
        resilience,
        breakers,
        faults,
        queue_depth,
        peak_queue_depth,
    })
}

fn encode_series(w: &mut WireWriter, s: &SeriesReport) {
    // Version first, like StatsExt/Health, so layout changes stay
    // detectable.
    w.u8((PROTO_VERSION & 0xff) as u8);
    w.u8((PROTO_VERSION >> 8) as u8);
    w.u64(s.server_now_ns);
    w.u64(s.interval_ns);
    w.u32(s.points.len() as u32);
    for p in &s.points {
        for v in [
            p.seq,
            p.t_ns,
            p.interval_ns,
            p.completed,
            p.ok,
            p.failed,
            p.queue_depth,
            p.busy_workers,
            p.lat.count,
            p.lat.sum_ns,
            p.lat.p50_ns,
            p.lat.p99_ns,
        ] {
            w.u64(v);
        }
        w.u32(p.engines.len() as u32);
        for (code, jobs) in &p.engines {
            w.u8(*code);
            w.u64(*jobs);
        }
        w.u32(p.breakers.len() as u32);
        for (code, state) in &p.breakers {
            w.u8(*code);
            w.u8(*state);
        }
        // v8: the interval's sparse latency-bucket deltas, so clients
        // can merge intervals into an honest aggregate p99 instead of
        // maxing the per-interval ones.
        w.u32(p.lat.buckets.len() as u32);
        for (i, c) in &p.lat.buckets {
            w.u8(*i);
            w.u64(*c);
        }
    }
}

fn decode_series(r: &mut WireReader<'_>) -> Result<SeriesReport, WireError> {
    let version = r.u8()? as u16 | ((r.u8()? as u16) << 8);
    if !(7..=PROTO_VERSION).contains(&version) {
        return Err(bad("unsupported series version"));
    }
    let server_now_ns = r.u64()?;
    let interval_ns = r.u64()?;
    let n = r.u32()?;
    let mut points = Vec::with_capacity(n.min(1024) as usize);
    for _ in 0..n {
        let seq = r.u64()?;
        let t_ns = r.u64()?;
        let point_interval_ns = r.u64()?;
        let completed = r.u64()?;
        let ok = r.u64()?;
        let failed = r.u64()?;
        let queue_depth = r.u64()?;
        let busy_workers = r.u64()?;
        let mut lat = obs::series::HistDelta {
            count: r.u64()?,
            sum_ns: r.u64()?,
            p50_ns: r.u64()?,
            p99_ns: r.u64()?,
            buckets: Vec::new(),
        };
        let m = r.u32()?;
        let mut engines = Vec::with_capacity(m.min(64) as usize);
        for _ in 0..m {
            let code = r.u8()?;
            engines.push((code, r.u64()?));
        }
        let m = r.u32()?;
        let mut breakers = Vec::with_capacity(m.min(64) as usize);
        for _ in 0..m {
            let code = r.u8()?;
            breakers.push((code, r.u8()?));
        }
        // v8 bucket trailer; v7 peers never wrote it.
        if version >= 8 {
            let m = r.u32()?;
            let mut buckets = Vec::with_capacity(m.min(BUCKETS as u32) as usize);
            for _ in 0..m {
                let i = r.u8()?;
                if i as usize >= BUCKETS {
                    return Err(bad("bad series bucket index"));
                }
                buckets.push((i, r.u64()?));
            }
            lat.buckets = buckets;
        }
        points.push(SeriesPoint {
            seq,
            t_ns,
            interval_ns: point_interval_ns,
            completed,
            ok,
            failed,
            queue_depth,
            busy_workers,
            lat,
            engines,
            breakers,
        });
    }
    Ok(SeriesReport {
        server_now_ns,
        interval_ns,
        points,
    })
}

fn encode_profile_report(w: &mut WireWriter, p: &ProfileReport) {
    // Version first, like the other evolving replies.
    w.u8((PROTO_VERSION & 0xff) as u8);
    w.u8((PROTO_VERSION >> 8) as u8);
    w.u64(p.server_now_ns);
    w.u64(p.window_ns);
    w.u32(p.windows.len() as u32);
    for win in &p.windows {
        w.u64(win.seq);
        w.u64(win.start_ns);
        w.u64(win.end_ns);
        w.u32(win.phases.len() as u32);
        for (stack, s) in &win.phases {
            w.str(stack);
            w.u64(s.count);
            w.u64(s.self_ns);
            w.u64(s.instructions);
            w.u64(s.cycles);
        }
    }
}

fn decode_profile_report(r: &mut WireReader<'_>) -> Result<ProfileReport, WireError> {
    let version = r.u8()? as u16 | ((r.u8()? as u16) << 8);
    if !(8..=PROTO_VERSION).contains(&version) {
        return Err(bad("unsupported profile-dump version"));
    }
    let server_now_ns = r.u64()?;
    let window_ns = r.u64()?;
    let n = r.u32()?;
    let mut windows = Vec::with_capacity(n.min(1024) as usize);
    for _ in 0..n {
        let seq = r.u64()?;
        let start_ns = r.u64()?;
        let end_ns = r.u64()?;
        let m = r.u32()?;
        let mut phases = std::collections::BTreeMap::new();
        for _ in 0..m {
            let stack = r.str()?;
            let stat = obs::contprof::PhaseStat {
                count: r.u64()?,
                self_ns: r.u64()?,
                instructions: r.u64()?,
                cycles: r.u64()?,
            };
            phases.insert(stack, stat);
        }
        windows.push(obs::contprof::ProfileWindow {
            seq,
            start_ns,
            end_ns,
            phases,
        });
    }
    Ok(ProfileReport {
        server_now_ns,
        window_ns,
        windows,
    })
}

fn encode_alert_report(w: &mut WireWriter, a: &AlertReport) {
    w.u8((PROTO_VERSION & 0xff) as u8);
    w.u8((PROTO_VERSION >> 8) as u8);
    w.u64(a.server_now_ns);
    w.bool(a.armed);
    w.u32(a.firing.len() as u32);
    for f in &a.firing {
        w.str(&f.rule);
        w.u64(f.since_ns);
        w.f64(f.value);
        w.f64(f.threshold);
        w.str(&f.detail);
    }
    w.u32(a.events.len() as u32);
    for e in &a.events {
        w.u64(e.seq);
        w.u64(e.t_ns);
        w.u8(e.transition.byte());
        w.str(&e.rule);
        w.f64(e.value);
        w.f64(e.threshold);
        w.str(&e.detail);
    }
}

fn decode_alert_report(r: &mut WireReader<'_>) -> Result<AlertReport, WireError> {
    let version = r.u8()? as u16 | ((r.u8()? as u16) << 8);
    if !(8..=PROTO_VERSION).contains(&version) {
        return Err(bad("unsupported alert-log version"));
    }
    let server_now_ns = r.u64()?;
    let armed = r.bool()?;
    let n = r.u32()?;
    let mut firing = Vec::with_capacity(n.min(64) as usize);
    for _ in 0..n {
        firing.push(obs::alert::FiringAlert {
            rule: r.str()?,
            since_ns: r.u64()?,
            value: r.f64()?,
            threshold: r.f64()?,
            detail: r.str()?,
        });
    }
    let n = r.u32()?;
    let mut events = Vec::with_capacity(n.min(1024) as usize);
    for _ in 0..n {
        let seq = r.u64()?;
        let t_ns = r.u64()?;
        let transition = obs::alert::Transition::from_byte(r.u8()?)
            .ok_or_else(|| bad("bad alert transition"))?;
        events.push(obs::alert::AlertEvent {
            seq,
            t_ns,
            rule: r.str()?,
            transition,
            value: r.f64()?,
            threshold: r.f64()?,
            detail: r.str()?,
        });
    }
    Ok(AlertReport {
        server_now_ns,
        armed,
        firing,
        events,
    })
}

fn encode_trace_record(w: &mut WireWriter, rec: &TraceRecord) {
    w.str(&rec.label);
    w.bool(rec.ok);
    for v in [
        rec.phases.trace_id,
        rec.phases.enqueue_ns,
        rec.phases.start_ns,
        rec.phases.done_ns,
        rec.phases.compile_ns,
        rec.phases.exec_ns,
    ] {
        w.u64(v);
    }
    w.u32(rec.phases.attempts);
    w.bool(rec.phases.compile_fallback);
    w.u32(rec.phases.store_repairs);
}

fn decode_trace_record(r: &mut WireReader<'_>) -> Result<TraceRecord, WireError> {
    let label = r.str()?;
    let ok = r.bool()?;
    Ok(TraceRecord {
        label,
        ok,
        phases: obs::stitch::ServerPhases {
            trace_id: r.u64()?,
            enqueue_ns: r.u64()?,
            start_ns: r.u64()?,
            done_ns: r.u64()?,
            compile_ns: r.u64()?,
            exec_ns: r.u64()?,
            attempts: r.u32()?,
            compile_fallback: r.bool()?,
            store_repairs: r.u32()?,
        },
    })
}

fn encode_trace_report(w: &mut WireWriter, t: &TraceReport) {
    w.u8((PROTO_VERSION & 0xff) as u8);
    w.u8((PROTO_VERSION >> 8) as u8);
    w.u64(t.server_now_ns);
    w.u64(t.slow_threshold_ns);
    w.u32(t.recent.len() as u32);
    for rec in &t.recent {
        encode_trace_record(w, rec);
    }
    w.u32(t.exemplars.len() as u32);
    for rec in &t.exemplars {
        encode_trace_record(w, rec);
    }
}

fn decode_trace_report(r: &mut WireReader<'_>) -> Result<TraceReport, WireError> {
    let version = r.u8()? as u16 | ((r.u8()? as u16) << 8);
    if !(7..=PROTO_VERSION).contains(&version) {
        return Err(bad("unsupported trace-dump version"));
    }
    let server_now_ns = r.u64()?;
    let slow_threshold_ns = r.u64()?;
    let n = r.u32()?;
    let mut recent = Vec::with_capacity(n.min(1024) as usize);
    for _ in 0..n {
        recent.push(decode_trace_record(r)?);
    }
    let n = r.u32()?;
    let mut exemplars = Vec::with_capacity(n.min(1024) as usize);
    for _ in 0..n {
        exemplars.push(decode_trace_record(r)?);
    }
    Ok(TraceReport {
        server_now_ns,
        slow_threshold_ns,
        recent,
        exemplars,
    })
}

impl Request {
    /// Encodes into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            Request::Ping => w.u8(0),
            Request::Submit(spec, ctx) => {
                w.u8(1);
                encode_spec(&mut w, spec);
                // v7 trace-context trailer, omitted when untraced so the
                // frame stays byte-identical to v6 (and old servers keep
                // accepting untraced submits from new clients).
                if *ctx != TraceCtx::default() {
                    w.u64(ctx.trace_id);
                    w.u64(ctx.origin_ns);
                }
            }
            Request::Poll(id) => {
                w.u8(2);
                w.u64(*id);
            }
            Request::Wait(id) => {
                w.u8(3);
                w.u64(*id);
            }
            Request::Stats => w.u8(4),
            Request::Shutdown => w.u8(5),
            Request::StatsExt => w.u8(6),
            Request::Health => w.u8(7),
            Request::Series(since) => {
                w.u8(8);
                // v8 cursor trailer, omitted for whole-window fetches so
                // the frame stays byte-identical to v7 (and old servers
                // keep accepting cursorless fetches from new clients).
                if let Some(seq) = since {
                    w.u64(*seq);
                }
            }
            Request::TraceDump => w.u8(9),
            Request::ProfileDump => w.u8(10),
            Request::AlertLog => w.u8(11),
            Request::Backends => w.u8(12),
        }
        w.finish()
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// [`WireError`] on malformed input (unknown tag, truncation,
    /// trailing bytes).
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut r = WireReader::new(payload);
        let req = match r.u8()? {
            0 => Request::Ping,
            1 => {
                let spec = decode_spec(&mut r)?;
                // v6 submits (and untraced v7 ones) end the frame here.
                let ctx = if r.remaining() >= 16 {
                    TraceCtx {
                        trace_id: r.u64()?,
                        origin_ns: r.u64()?,
                    }
                } else {
                    TraceCtx::default()
                };
                Request::Submit(spec, ctx)
            }
            2 => Request::Poll(r.u64()?),
            3 => Request::Wait(r.u64()?),
            4 => Request::Stats,
            5 => Request::Shutdown,
            6 => Request::StatsExt,
            7 => Request::Health,
            // v7 fetches (and cursorless v8 ones) end the frame at the
            // tag; a present trailer is the since-cursor.
            8 => Request::Series(if r.remaining() >= 8 {
                Some(r.u64()?)
            } else {
                None
            }),
            9 => Request::TraceDump,
            10 => Request::ProfileDump,
            11 => Request::AlertLog,
            12 => Request::Backends,
            _ => return Err(bad("bad request tag")),
        };
        r.expect_end()?;
        Ok(req)
    }
}

impl Response {
    /// Encodes into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            Response::Pong => w.u8(0),
            Response::Submitted(id) => {
                w.u8(1);
                w.u64(*id);
            }
            Response::Pending => w.u8(2),
            Response::Result(res) => {
                w.u8(3);
                encode_result(&mut w, res);
            }
            Response::Stats(s) => {
                w.u8(4);
                encode_stats(&mut w, s);
            }
            Response::Err(msg) => {
                w.u8(5);
                w.str(msg);
            }
            Response::Bye => w.u8(6),
            Response::StatsExt(s) => {
                w.u8(7);
                encode_stats_ext(&mut w, s);
            }
            Response::Health(h) => {
                w.u8(8);
                encode_health(&mut w, h);
            }
            Response::Series(s) => {
                w.u8(9);
                encode_series(&mut w, s);
            }
            Response::TraceDump(t) => {
                w.u8(10);
                encode_trace_report(&mut w, t);
            }
            Response::ProfileDump(p) => {
                w.u8(11);
                encode_profile_report(&mut w, p);
            }
            Response::AlertLog(a) => {
                w.u8(12);
                encode_alert_report(&mut w, a);
            }
            Response::Busy(retry_after_ms) => {
                w.u8(13);
                w.u32(*retry_after_ms);
            }
            Response::Backends(b) => {
                w.u8(14);
                encode_backends(&mut w, b);
            }
        }
        w.finish()
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// [`WireError`] on malformed input.
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut r = WireReader::new(payload);
        let resp = match r.u8()? {
            0 => Response::Pong,
            1 => Response::Submitted(r.u64()?),
            2 => Response::Pending,
            3 => Response::Result(decode_result(&mut r)?),
            4 => Response::Stats(decode_stats(&mut r)?),
            5 => Response::Err(r.str()?),
            6 => Response::Bye,
            7 => Response::StatsExt(Box::new(decode_stats_ext(&mut r)?)),
            8 => Response::Health(decode_health(&mut r)?),
            9 => Response::Series(decode_series(&mut r)?),
            10 => Response::TraceDump(decode_trace_report(&mut r)?),
            11 => Response::ProfileDump(decode_profile_report(&mut r)?),
            12 => Response::AlertLog(decode_alert_report(&mut r)?),
            13 => Response::Busy(r.u32()?),
            14 => Response::Backends(decode_backends(&mut r)?),
            _ => return Err(bad("bad response tag")),
        };
        r.expect_end()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wacc::OptLevel;

    fn sample_spec() -> JobSpec {
        JobSpec {
            benchmark: "crc32".into(),
            engine: EngineKind::Wasmer(engines::Backend::Llvm),
            level: OptLevel::O3,
            scale: Scale::Profile,
            mode: JobMode::ExecAot,
            warm: true,
        }
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Ping,
            Request::Submit(sample_spec(), TraceCtx::default()),
            Request::Submit(
                sample_spec(),
                TraceCtx {
                    trace_id: 0xfeed_f00d_dead_beef,
                    origin_ns: 123_456_789,
                },
            ),
            Request::Poll(42),
            Request::Wait(7),
            Request::Stats,
            Request::Shutdown,
            Request::StatsExt,
            Request::Health,
            Request::Series(None),
            Request::Series(Some(417)),
            Request::TraceDump,
            Request::ProfileDump,
            Request::AlertLog,
            Request::Backends,
        ] {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    /// Protocol v8: a cursorless `Series` fetch must be byte-identical
    /// to the v7 encoding (bare tag), so old servers accept new
    /// clients' whole-window fetches, and a v7 frame decodes to `None`.
    #[test]
    fn cursorless_series_is_byte_identical_to_v7() {
        let bare = Request::Series(None).encode();
        assert_eq!(bare, vec![8]);
        assert_eq!(Request::decode(&[8]).unwrap(), Request::Series(None));
        // A cursored fetch is exactly 8 bytes longer.
        assert_eq!(Request::Series(Some(7)).encode().len(), 9);
    }

    /// Protocol v7: an untraced submit must be byte-identical to the v6
    /// encoding (no trailer at all), so old servers accept new clients'
    /// untraced submits, and a v6 frame decodes to the default context.
    #[test]
    fn untraced_submit_is_byte_identical_to_v6() {
        let untraced = Request::Submit(sample_spec(), TraceCtx::default()).encode();
        let v6: Vec<u8> = {
            let mut w = WireWriter::new();
            w.u8(1);
            encode_spec(&mut w, &sample_spec());
            w.finish()
        };
        assert_eq!(untraced, v6);
        let decoded = Request::decode(&v6).expect("v6 submit decodes");
        assert_eq!(decoded, Request::Submit(sample_spec(), TraceCtx::default()));
        // A traced submit is exactly 16 bytes longer.
        let ctx = TraceCtx {
            trace_id: 1,
            origin_ns: 2,
        };
        assert_eq!(Request::Submit(sample_spec(), ctx).encode().len(), v6.len() + 16);
    }

    #[test]
    fn responses_round_trip() {
        let result = JobResult {
            id: 9,
            spec: sample_spec(),
            status: JobStatus::Panicked("checksum mismatch".into()),
            checksum: Some(-7),
            bytes_hash: 0xdead_beef,
            compile_s: 0.25,
            exec_s: 1.5,
            aot_compile_s: Some(0.125),
            counters: Some(archsim::Counters {
                instructions: 10,
                cycles: 20,
                ..Default::default()
            }),
            warm_artifact: true,
            wall_s: 2.0,
            recovery: Recovery {
                attempts: 3,
                compile_fallback: true,
                store_repairs: 1,
            },
            trace: TraceDigest {
                trace_id: 0xabcd,
                origin_ns: 10,
                enqueue_ns: 100,
                start_ns: 200,
                done_ns: 900,
            },
        };
        let stats = SvcStats {
            submitted: 3,
            completed: 3,
            ok: 2,
            panicked: 1,
            store: Some(StoreStats {
                hits: 5,
                misses: 2,
                ..Default::default()
            }),
            ..Default::default()
        };
        for resp in [
            Response::Pong,
            Response::Submitted(1),
            Response::Pending,
            Response::Result(result),
            Response::Stats(stats),
            Response::Err("nope".into()),
            Response::Bye,
            Response::Busy(250),
        ] {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    /// Protocol v9: the `Backends` reply round-trips, carries the
    /// version head, and rejects claimed pre-v9 versions.
    #[test]
    fn backends_report_round_trips() {
        let report = BackendsReport {
            watermark: 64,
            shed: 3,
            backends: vec![
                BackendStatus {
                    name: "shard0".into(),
                    socket: "/tmp/shard0.sock".into(),
                    healthy: true,
                    queue_depth: 4,
                    forwarded: 120,
                    failovers: 0,
                },
                BackendStatus {
                    name: "shard1".into(),
                    socket: "/tmp/shard1.sock".into(),
                    healthy: false,
                    queue_depth: 0,
                    forwarded: 80,
                    failovers: 2,
                },
            ],
        };
        let resp = Response::Backends(report);
        let payload = resp.encode();
        assert_eq!(payload[0], 14);
        assert_eq!(
            payload[1] as u16 | ((payload[2] as u16) << 8),
            PROTO_VERSION
        );
        assert_eq!(Response::decode(&payload).unwrap(), resp);
        // An empty report (router just started) survives too.
        let empty = Response::Backends(BackendsReport::default());
        assert_eq!(Response::decode(&empty.encode()).unwrap(), empty);
        // A frame claiming a pre-v9 version is malformed.
        let mut bad = empty.encode();
        bad[1] = 8;
        bad[2] = 0;
        assert!(Response::decode(&bad).is_err());
    }

    fn sample_stats_ext() -> SvcStatsExt {
        let mut queue_wait = HistogramSnapshot::default();
        queue_wait.buckets[3] = 4;
        queue_wait.buckets[17] = 1;
        queue_wait.count = 5;
        queue_wait.sum_ns = 123_456;
        let mut wall = HistogramSnapshot::default();
        wall.buckets[BUCKETS - 1] = 2;
        wall.count = 2;
        wall.sum_ns = u64::MAX / 2;
        wall.min_ns = 17;
        wall.max_ns = u64::MAX / 4;
        SvcStatsExt {
            base: SvcStats {
                submitted: 7,
                completed: 6,
                ok: 6,
                ..Default::default()
            },
            queue_depth: 1,
            workers: 4,
            uptime_s: 12.5,
            busy_s: 9.25,
            queue_wait,
            engine_wall: vec![(0, wall.clone()), (3, wall)],
            engine_counters: vec![(
                3,
                EngineCounters {
                    jobs: 2,
                    counters: archsim::Counters {
                        instructions: 1_000,
                        cycles: 2_500,
                        branches: 120,
                        branch_misses: 6,
                        ..Default::default()
                    },
                },
            )],
        }
    }

    #[test]
    fn stats_ext_round_trips() {
        let resp = Response::StatsExt(Box::new(sample_stats_ext()));
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        // Empty histograms (fresh scheduler) survive the sparse encoding.
        let empty = Response::StatsExt(Box::new(SvcStatsExt {
            base: SvcStats::default(),
            queue_depth: 0,
            workers: 1,
            uptime_s: 0.0,
            busy_s: 0.0,
            queue_wait: HistogramSnapshot::default(),
            engine_wall: Vec::new(),
            engine_counters: Vec::new(),
        }));
        assert_eq!(Response::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn stats_ext_reply_carries_protocol_version() {
        let payload = Response::StatsExt(Box::new(sample_stats_ext())).encode();
        // Tag byte, then the little-endian version.
        assert_eq!(payload[0], 7);
        assert_eq!(
            payload[1] as u16 | ((payload[2] as u16) << 8),
            PROTO_VERSION
        );
    }

    #[test]
    fn stats_ext_rejects_bad_bucket_index() {
        // Build a frame whose sparse histogram names a bucket index one
        // past the end; the decoder must refuse it rather than write
        // out of bounds or silently drop it.
        let mut w = WireWriter::new();
        w.u8(7);
        w.u8((PROTO_VERSION & 0xff) as u8);
        w.u8((PROTO_VERSION >> 8) as u8);
        encode_stats(&mut w, &SvcStats::default());
        w.u64(0); // queue_depth
        w.u64(1); // workers
        w.f64(0.0);
        w.f64(0.0);
        // queue_wait histogram with an out-of-range bucket index.
        w.u64(1); // count
        w.u64(1); // sum_ns
        w.u64(1); // min_ns (v3)
        w.u64(1); // max_ns (v3)
        w.u32(1);
        w.u8(BUCKETS as u8); // one past the last valid index
        w.u64(1);
        w.u32(0); // no engine histograms
        w.u32(0); // no engine counters
        assert!(Response::decode(&w.finish()).is_err());
    }

    /// A v2 server's `StatsExt` frame (no histogram extremes, no
    /// engine-counter trailer) must still decode; the v3-only fields
    /// come back zeroed/empty.
    #[test]
    fn stats_ext_decodes_legacy_v2_frames() {
        let mut w = WireWriter::new();
        w.u8(7);
        w.u8(2); // version 2, little-endian
        w.u8(0);
        encode_stats(&mut w, &SvcStats::default());
        w.u64(3); // queue_depth
        w.u64(2); // workers
        w.f64(1.5);
        w.f64(0.75);
        // v2 queue_wait histogram: count, sum, sparse pairs — no extremes.
        w.u64(4);
        w.u64(900);
        w.u32(1);
        w.u8(5);
        w.u64(4);
        // One engine histogram, also v2-shaped.
        w.u32(1);
        w.u8(2);
        w.u64(1);
        w.u64(250);
        w.u32(1);
        w.u8(9);
        w.u64(1);
        // No engine-counter trailer in v2.
        let resp = Response::decode(&w.finish()).expect("legacy v2 frame decodes");
        let Response::StatsExt(ext) = resp else {
            panic!("expected StatsExt");
        };
        assert_eq!(ext.queue_depth, 3);
        assert_eq!(ext.queue_wait.count, 4);
        assert_eq!(ext.queue_wait.min_ns, 0);
        assert_eq!(ext.queue_wait.max_ns, 0);
        assert_eq!(ext.engine_wall.len(), 1);
        assert!(ext.engine_counters.is_empty());
    }

    /// The v1 `Stats` message must stay byte-identical so old clients
    /// keep decoding new servers' replies (and vice versa).
    #[test]
    fn v1_stats_encoding_is_byte_stable() {
        let stats = SvcStats {
            submitted: 2,
            completed: 1,
            ok: 1,
            cold_compiles: 1,
            cold_compile_s: 0.5,
            ..Default::default()
        };
        let payload = Response::Stats(stats).encode();
        let expected: Vec<u8> = {
            let mut w = WireWriter::new();
            w.u8(4);
            w.u64(2); // submitted
            w.u64(1); // completed
            w.u64(1); // ok
            w.u64(0); // failed
            w.u64(0); // panicked
            w.u64(0); // timed_out
            w.u64(1); // cold_compiles
            w.u64(0); // warm_loads
            w.f64(0.5); // cold_compile_s
            w.f64(0.0); // warm_load_s
            w.bool(false); // no store stats
            w.finish()
        };
        assert_eq!(payload, expected);
    }

    fn sample_health() -> HealthReport {
        HealthReport {
            resilience: ResilienceStats {
                retries: 5,
                compile_fallbacks: 2,
                store_repairs: 3,
                breaker_fast_fails: 1,
            },
            breakers: vec![
                (
                    0,
                    BreakerSnapshot {
                        state: BreakerState::Closed,
                        consecutive_failures: 0,
                        trips: 0,
                    },
                ),
                (
                    4,
                    BreakerSnapshot {
                        state: BreakerState::Open,
                        consecutive_failures: 9,
                        trips: 2,
                    },
                ),
            ],
            faults: vec![(0, 0.05, 12), (3, 0.05, 7)],
            queue_depth: 6,
            peak_queue_depth: 31,
        }
    }

    /// Protocol v4: the `Health` reply round-trips, carries the version
    /// at its head, and rejects unknown breaker states.
    #[test]
    fn health_round_trips() {
        let resp = Response::Health(sample_health());
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        // An empty report (fresh scheduler, no plan) round-trips too.
        let empty = Response::Health(HealthReport::default());
        assert_eq!(Response::decode(&empty.encode()).unwrap(), empty);
        let payload = resp.encode();
        assert_eq!(payload[0], 8);
        assert_eq!(
            payload[1] as u16 | ((payload[2] as u16) << 8),
            PROTO_VERSION
        );
        // Corrupt the first breaker's state byte to an unknown value:
        // tag + version(2) + resilience(4×8) + count(4) + code(1) = 40.
        let mut bad_state = payload.clone();
        bad_state[40] = 9;
        assert!(Response::decode(&bad_state).is_err());
    }

    /// A v5 peer's `Health` frame has no queue-depth trailer; it must
    /// still decode, with both depths defaulting to zero. A v6 frame
    /// truncated before the trailer must be rejected, not zero-filled.
    #[test]
    fn health_decodes_legacy_v5_frames_without_queue_trailer() {
        let mut payload = Response::Health(sample_health()).encode();
        // Rewrite the version head to 5 and drop the 16-byte trailer.
        payload[1] = 5;
        payload[2] = 0;
        payload.truncate(payload.len() - 16);
        let Response::Health(h) = Response::decode(&payload).expect("v5 health decodes") else {
            panic!("expected Health");
        };
        assert_eq!(h.resilience, sample_health().resilience);
        assert_eq!(h.breakers, sample_health().breakers);
        assert_eq!((h.queue_depth, h.peak_queue_depth), (0, 0));

        let mut truncated = Response::Health(sample_health()).encode();
        truncated.truncate(truncated.len() - 16);
        assert!(
            Response::decode(&truncated).is_err(),
            "v6 frame without its trailer must not decode"
        );
    }

    /// A v3 peer's `Result` frame ends without the v4 recovery trailer;
    /// it must still decode, with a default (clean) recovery.
    #[test]
    fn result_decodes_legacy_v3_frames_without_recovery_trailer() {
        let result = JobResult {
            id: 4,
            spec: sample_spec(),
            status: JobStatus::Ok,
            checksum: Some(11),
            bytes_hash: 99,
            compile_s: 0.5,
            exec_s: 0.25,
            aot_compile_s: None,
            counters: None,
            warm_artifact: false,
            wall_s: 1.0,
            recovery: Recovery::default(),
            trace: TraceDigest::default(),
        };
        let full = Response::Result(result.clone()).encode();
        // Frame-final trailers, newest last: the v7 span digest is 40
        // bytes, the v5 checks_skipped 8, the v4 recovery 9 (u32 + bool
        // + u32). Peeling them off the v7 encoding reproduces each
        // older peer's frame exactly.
        let v4 = &full[..full.len() - 48];
        assert_eq!(
            Response::decode(v4).expect("v4 result decodes"),
            Response::Result(result.clone())
        );
        let legacy = &full[..full.len() - 57];
        let decoded = Response::decode(legacy).expect("legacy v3 result decodes");
        assert_eq!(decoded, Response::Result(result));
        // And a result that actually recovered survives its own trip.
        let mut recovered = match decoded {
            Response::Result(r) => r,
            _ => unreachable!(),
        };
        recovered.recovery = Recovery {
            attempts: 2,
            compile_fallback: false,
            store_repairs: 1,
        };
        let resp = Response::Result(recovered);
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    /// Protocol v5: `checks_skipped` survives a profiled result's round
    /// trip, and a v4 frame (no trailer) decodes it as zero instead of
    /// misparsing the counter block.
    #[test]
    fn result_checks_skipped_round_trips_and_defaults_for_v4_frames() {
        let counters = archsim::Counters {
            instructions: 1000,
            checks_skipped: 42,
            ..Default::default()
        };
        let mut result = JobResult {
            id: 4,
            spec: sample_spec(),
            status: JobStatus::Ok,
            checksum: Some(11),
            bytes_hash: 99,
            compile_s: 0.5,
            exec_s: 0.25,
            aot_compile_s: None,
            counters: Some(counters),
            warm_artifact: false,
            wall_s: 1.0,
            recovery: Recovery::default(),
            trace: TraceDigest::default(),
        };
        let resp = Response::Result(result.clone());
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);

        let full = resp.encode();
        // A v4 frame lacks both the v5 (8B) and v7 (40B) trailers.
        let v4 = &full[..full.len() - 48];
        result.counters.as_mut().unwrap().checks_skipped = 0;
        assert_eq!(
            Response::decode(v4).expect("v4 profiled result decodes"),
            Response::Result(result)
        );
    }

    /// Protocol v7: the span digest survives a result's round trip, and
    /// a v6 frame (no digest trailer) decodes to the all-zero digest.
    #[test]
    fn result_trace_digest_round_trips_and_defaults_for_v6_frames() {
        let mut result = JobResult {
            id: 4,
            spec: sample_spec(),
            status: JobStatus::Ok,
            checksum: Some(11),
            bytes_hash: 99,
            compile_s: 0.5,
            exec_s: 0.25,
            aot_compile_s: None,
            counters: None,
            warm_artifact: false,
            wall_s: 1.0,
            recovery: Recovery::default(),
            trace: TraceDigest {
                trace_id: 0x1234_5678_9abc_def0,
                origin_ns: 7,
                enqueue_ns: 1_000,
                start_ns: 5_000,
                done_ns: 42_000,
            },
        };
        let resp = Response::Result(result.clone());
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        let decoded = match Response::decode(&resp.encode()).unwrap() {
            Response::Result(r) => r,
            _ => unreachable!(),
        };
        assert_eq!(decoded.trace.queue_ns(), 4_000);

        let full = resp.encode();
        let v6 = &full[..full.len() - 40];
        result.trace = TraceDigest::default();
        assert_eq!(
            Response::decode(v6).expect("v6 result decodes"),
            Response::Result(result)
        );
    }

    /// Protocol v7: the `Series` reply round-trips (empty and
    /// populated), carries the version head, and rejects versions the
    /// decoder does not know.
    #[test]
    fn series_round_trips() {
        let empty = Response::Series(SeriesReport::default());
        assert_eq!(Response::decode(&empty.encode()).unwrap(), empty);

        let report = SeriesReport {
            server_now_ns: 1_000_000,
            interval_ns: 500_000_000,
            points: vec![
                SeriesPoint {
                    seq: 3,
                    t_ns: 900_000,
                    interval_ns: 499_000_000,
                    completed: 12,
                    ok: 11,
                    failed: 1,
                    queue_depth: 4,
                    busy_workers: 2,
                    lat: obs::series::HistDelta {
                        count: 12,
                        sum_ns: 36_000_000,
                        p50_ns: 2_500_000,
                        p99_ns: 9_000_000,
                        buckets: vec![(13, 10), (17, 2)],
                    },
                    engines: vec![(0, 7), (5, 5)],
                    breakers: vec![(4, 1)],
                },
                SeriesPoint::default(),
            ],
        };
        let resp = Response::Series(report);
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);

        let payload = resp.encode();
        assert_eq!(payload[0], 9);
        assert_eq!(
            payload[1] as u16 | ((payload[2] as u16) << 8),
            PROTO_VERSION
        );
        // A v6 version head must be refused: Series did not exist then.
        let mut old = payload.clone();
        old[1] = 6;
        old[2] = 0;
        assert!(Response::decode(&old).is_err());
        // An out-of-range bucket index must be refused.
        let mut report = SeriesReport::default();
        report.points.push(SeriesPoint {
            lat: obs::series::HistDelta {
                buckets: vec![(BUCKETS as u8, 1)],
                ..obs::series::HistDelta::default()
            },
            ..SeriesPoint::default()
        });
        let bad = Response::Series(report).encode();
        assert!(Response::decode(&bad).is_err());
    }

    /// A v7 peer's `Series` frame carries no per-point bucket trailer;
    /// it must still decode, with empty buckets.
    #[test]
    fn series_decodes_legacy_v7_frames_without_bucket_trailer() {
        let mut w = WireWriter::new();
        w.u8(9);
        w.u8(7); // version 7, little-endian
        w.u8(0);
        w.u64(1_000); // server_now_ns
        w.u64(500_000_000); // interval_ns
        w.u32(1); // one point
        for v in [3u64, 900, 499, 12, 11, 1, 4, 2, 12, 36_000, 2_500, 9_000] {
            w.u64(v);
        }
        w.u32(0); // no engines
        w.u32(0); // no breakers
        // No bucket trailer in v7.
        let resp = Response::decode(&w.finish()).expect("legacy v7 series decodes");
        let Response::Series(s) = resp else {
            panic!("expected Series");
        };
        assert_eq!(s.points.len(), 1);
        assert_eq!(s.points[0].lat.count, 12);
        assert!(s.points[0].lat.buckets.is_empty());
    }

    /// Protocol v8: the `ProfileDump` reply round-trips (off, empty,
    /// and populated), carries the version head, and refuses a v7 head.
    #[test]
    fn profile_dump_round_trips() {
        let off = Response::ProfileDump(ProfileReport::default());
        assert_eq!(Response::decode(&off.encode()).unwrap(), off);

        let mut win = obs::contprof::ProfileWindow {
            seq: 2,
            start_ns: 20_000_000,
            end_ns: 30_000_000,
            phases: Default::default(),
        };
        win.phases.insert(
            "wasm3;exec".to_string(),
            obs::contprof::PhaseStat {
                count: 5,
                self_ns: 9_000_000,
                instructions: 1_000_000,
                cycles: 2_000_000,
            },
        );
        win.phases.insert(
            "wasm3;compile".to_string(),
            obs::contprof::PhaseStat {
                count: 5,
                self_ns: 1_000_000,
                instructions: 0,
                cycles: 0,
            },
        );
        let resp = Response::ProfileDump(ProfileReport {
            server_now_ns: 31_000_000,
            window_ns: 10_000_000,
            windows: vec![win],
        });
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        let payload = resp.encode();
        assert_eq!(payload[0], 11);
        assert_eq!(
            payload[1] as u16 | ((payload[2] as u16) << 8),
            PROTO_VERSION
        );
        let mut old = payload.clone();
        old[1] = 7;
        old[2] = 0;
        assert!(Response::decode(&old).is_err());
    }

    /// Protocol v8: the `AlertLog` reply round-trips (disarmed, armed +
    /// firing), carries the version head, and rejects unknown
    /// transition bytes.
    #[test]
    fn alert_log_round_trips() {
        let disarmed = Response::AlertLog(AlertReport::default());
        assert_eq!(Response::decode(&disarmed.encode()).unwrap(), disarmed);

        let resp = Response::AlertLog(AlertReport {
            server_now_ns: 5_000,
            armed: true,
            firing: vec![obs::alert::FiringAlert {
                rule: "p99".to_string(),
                since_ns: 4_000,
                value: 21_000_000.0,
                threshold: 5_000_000.0,
                detail: "p99 21.0ms over 1s".to_string(),
            }],
            events: vec![
                obs::alert::AlertEvent {
                    seq: 0,
                    t_ns: 3_000,
                    rule: "p99".to_string(),
                    transition: obs::alert::Transition::Pending,
                    value: 20_000_000.0,
                    threshold: 5_000_000.0,
                    detail: String::new(),
                },
                obs::alert::AlertEvent {
                    seq: 1,
                    t_ns: 4_000,
                    rule: "p99".to_string(),
                    transition: obs::alert::Transition::Firing,
                    value: 21_000_000.0,
                    threshold: 5_000_000.0,
                    detail: "held".to_string(),
                },
            ],
        });
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        let payload = resp.encode();
        assert_eq!(payload[0], 12);
        assert_eq!(
            payload[1] as u16 | ((payload[2] as u16) << 8),
            PROTO_VERSION
        );
        // Corrupt the first event's transition byte: tag + version(2) +
        // now(8) + armed(1) + firing count(4) + one firing entry, then
        // event count(4) + seq(8) + t_ns(8) = offset of the byte.
        let firing_len = 4 + "p99".len() + 8 + 8 + 8 + 4 + "p99 21.0ms over 1s".len();
        let off = 1 + 2 + 8 + 1 + 4 + firing_len + 4 + 8 + 8;
        let mut bad_transition = payload.clone();
        assert_eq!(bad_transition[off], 0, "expected the Pending byte");
        bad_transition[off] = 9;
        assert!(Response::decode(&bad_transition).is_err());
    }

    /// Protocol v7: the `TraceDump` reply round-trips with both record
    /// lists and carries the version head.
    #[test]
    fn trace_dump_round_trips() {
        let rec = |id: u64, ok: bool| TraceRecord {
            label: format!("crc32 on Wasm3 at -O1 ({id})"),
            ok,
            phases: obs::stitch::ServerPhases {
                trace_id: id,
                enqueue_ns: 1_000,
                start_ns: 2_000,
                done_ns: 9_000,
                compile_ns: 3_000,
                exec_ns: 3_500,
                attempts: 2,
                compile_fallback: ok,
                store_repairs: 1,
            },
        };
        let report = TraceReport {
            server_now_ns: 77_000,
            slow_threshold_ns: 250_000_000,
            recent: vec![rec(1, true), rec(2, false)],
            exemplars: vec![rec(1, true)],
        };
        let resp = Response::TraceDump(report);
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        let empty = Response::TraceDump(TraceReport::default());
        assert_eq!(Response::decode(&empty.encode()).unwrap(), empty);
        let payload = resp.encode();
        assert_eq!(payload[0], 10);
        assert_eq!(
            payload[1] as u16 | ((payload[2] as u16) << 8),
            PROTO_VERSION
        );
    }

    #[test]
    fn malformed_payloads_error() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[99]).is_err());
        // Trailing garbage is rejected.
        let mut buf = Request::Ping.encode();
        buf.push(0);
        assert!(Request::decode(&buf).is_err());
        // Truncated submit.
        let buf = Request::Submit(sample_spec(), TraceCtx::default()).encode();
        assert!(Request::decode(&buf[..buf.len() - 2]).is_err());
        // A traced submit with a truncated context trailer must error,
        // not silently decode as untraced with trailing bytes.
        let ctx = TraceCtx {
            trace_id: 5,
            origin_ns: 6,
        };
        let buf = Request::Submit(sample_spec(), ctx).encode();
        assert!(Request::decode(&buf[..buf.len() - 1]).is_err());
    }
}
