//! The `wabench-served` request/response protocol.
//!
//! Messages travel as length-prefixed frames ([`crate::wire`]); the
//! payload is a tag byte plus the message body. Decoding treats every
//! payload as untrusted and must consume it exactly.

use engines::EngineKind;
use serde::{Deserialize, Serialize};

use crate::job::{JobMode, JobResult, JobSpec, JobStatus, Scale};
use crate::scheduler::SvcStats;
use crate::store::StoreStats;
use crate::wire::{level_byte, level_from_byte, WireError, WireReader, WireWriter};

/// Client → server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Enqueue a job; answered with `Submitted(id)`.
    Submit(JobSpec),
    /// Non-blocking result query; `Pending` or `Result`.
    Poll(u64),
    /// Blocking result query; answered with `Result`.
    Wait(u64),
    /// Service statistics.
    Stats,
    /// Stop the server (drains queued jobs first).
    Shutdown,
}

/// Server → client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// `Ping` reply.
    Pong,
    /// Job accepted under this id.
    Submitted(u64),
    /// Job not finished yet.
    Pending,
    /// A completed job's record.
    Result(JobResult),
    /// Statistics snapshot.
    Stats(SvcStats),
    /// The request could not be served.
    Err(String),
    /// Acknowledges `Shutdown`.
    Bye,
}

fn bad(msg: &str) -> WireError {
    WireError(msg.to_string())
}

fn encode_spec(w: &mut WireWriter, spec: &JobSpec) {
    w.str(&spec.benchmark);
    w.u8(spec.engine.code());
    w.u8(level_byte(spec.level));
    w.u8(spec.scale.byte());
    w.u8(spec.mode.byte());
    w.bool(spec.warm);
}

fn decode_spec(r: &mut WireReader<'_>) -> Result<JobSpec, WireError> {
    let benchmark = r.str()?;
    let engine = EngineKind::from_code(r.u8()?).ok_or_else(|| bad("bad engine"))?;
    let level = level_from_byte(r.u8()?).ok_or_else(|| bad("bad level"))?;
    let scale = Scale::from_byte(r.u8()?).ok_or_else(|| bad("bad scale"))?;
    let mode = JobMode::from_byte(r.u8()?).ok_or_else(|| bad("bad mode"))?;
    let warm = r.bool()?;
    Ok(JobSpec {
        benchmark,
        engine,
        level,
        scale,
        mode,
        warm,
    })
}

fn encode_status(w: &mut WireWriter, status: &JobStatus) {
    match status {
        JobStatus::Ok => w.u8(0),
        JobStatus::Failed(msg) => {
            w.u8(1);
            w.str(msg);
        }
        JobStatus::Panicked(msg) => {
            w.u8(2);
            w.str(msg);
        }
        JobStatus::TimedOut => w.u8(3),
    }
}

fn decode_status(r: &mut WireReader<'_>) -> Result<JobStatus, WireError> {
    Ok(match r.u8()? {
        0 => JobStatus::Ok,
        1 => JobStatus::Failed(r.str()?),
        2 => JobStatus::Panicked(r.str()?),
        3 => JobStatus::TimedOut,
        _ => return Err(bad("bad status tag")),
    })
}

fn encode_counters(w: &mut WireWriter, c: &archsim::Counters) {
    for v in [
        c.instructions,
        c.cycles,
        c.branches,
        c.branch_misses,
        c.cache_references,
        c.cache_misses,
        c.l1d_accesses,
        c.l1d_misses,
        c.l1i_accesses,
        c.l1i_misses,
    ] {
        w.u64(v);
    }
}

fn decode_counters(r: &mut WireReader<'_>) -> Result<archsim::Counters, WireError> {
    Ok(archsim::Counters {
        instructions: r.u64()?,
        cycles: r.u64()?,
        branches: r.u64()?,
        branch_misses: r.u64()?,
        cache_references: r.u64()?,
        cache_misses: r.u64()?,
        l1d_accesses: r.u64()?,
        l1d_misses: r.u64()?,
        l1i_accesses: r.u64()?,
        l1i_misses: r.u64()?,
    })
}

fn encode_result(w: &mut WireWriter, res: &JobResult) {
    w.u64(res.id);
    encode_spec(w, &res.spec);
    encode_status(w, &res.status);
    match res.checksum {
        Some(v) => {
            w.bool(true);
            w.i32(v);
        }
        None => w.bool(false),
    }
    w.u64(res.bytes_hash);
    w.f64(res.compile_s);
    w.f64(res.exec_s);
    match res.aot_compile_s {
        Some(v) => {
            w.bool(true);
            w.f64(v);
        }
        None => w.bool(false),
    }
    match &res.counters {
        Some(c) => {
            w.bool(true);
            encode_counters(w, c);
        }
        None => w.bool(false),
    }
    w.bool(res.warm_artifact);
    w.f64(res.wall_s);
}

fn decode_result(r: &mut WireReader<'_>) -> Result<JobResult, WireError> {
    let id = r.u64()?;
    let spec = decode_spec(r)?;
    let status = decode_status(r)?;
    let checksum = if r.bool()? { Some(r.i32()?) } else { None };
    let bytes_hash = r.u64()?;
    let compile_s = r.f64()?;
    let exec_s = r.f64()?;
    let aot_compile_s = if r.bool()? { Some(r.f64()?) } else { None };
    let counters = if r.bool()? {
        Some(decode_counters(r)?)
    } else {
        None
    };
    let warm_artifact = r.bool()?;
    let wall_s = r.f64()?;
    Ok(JobResult {
        id,
        spec,
        status,
        checksum,
        bytes_hash,
        compile_s,
        exec_s,
        aot_compile_s,
        counters,
        warm_artifact,
        wall_s,
    })
}

fn encode_stats(w: &mut WireWriter, s: &SvcStats) {
    for v in [
        s.submitted,
        s.completed,
        s.ok,
        s.failed,
        s.panicked,
        s.timed_out,
        s.cold_compiles,
        s.warm_loads,
    ] {
        w.u64(v);
    }
    w.f64(s.cold_compile_s);
    w.f64(s.warm_load_s);
    match &s.store {
        Some(st) => {
            w.bool(true);
            for v in [st.hits, st.misses, st.puts, st.evictions, st.corrupt_rejected] {
                w.u64(v);
            }
        }
        None => w.bool(false),
    }
}

fn decode_stats(r: &mut WireReader<'_>) -> Result<SvcStats, WireError> {
    let submitted = r.u64()?;
    let completed = r.u64()?;
    let ok = r.u64()?;
    let failed = r.u64()?;
    let panicked = r.u64()?;
    let timed_out = r.u64()?;
    let cold_compiles = r.u64()?;
    let warm_loads = r.u64()?;
    let cold_compile_s = r.f64()?;
    let warm_load_s = r.f64()?;
    let store = if r.bool()? {
        Some(StoreStats {
            hits: r.u64()?,
            misses: r.u64()?,
            puts: r.u64()?,
            evictions: r.u64()?,
            corrupt_rejected: r.u64()?,
        })
    } else {
        None
    };
    Ok(SvcStats {
        submitted,
        completed,
        ok,
        failed,
        panicked,
        timed_out,
        cold_compiles,
        cold_compile_s,
        warm_loads,
        warm_load_s,
        store,
    })
}

impl Request {
    /// Encodes into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            Request::Ping => w.u8(0),
            Request::Submit(spec) => {
                w.u8(1);
                encode_spec(&mut w, spec);
            }
            Request::Poll(id) => {
                w.u8(2);
                w.u64(*id);
            }
            Request::Wait(id) => {
                w.u8(3);
                w.u64(*id);
            }
            Request::Stats => w.u8(4),
            Request::Shutdown => w.u8(5),
        }
        w.finish()
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// [`WireError`] on malformed input (unknown tag, truncation,
    /// trailing bytes).
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut r = WireReader::new(payload);
        let req = match r.u8()? {
            0 => Request::Ping,
            1 => Request::Submit(decode_spec(&mut r)?),
            2 => Request::Poll(r.u64()?),
            3 => Request::Wait(r.u64()?),
            4 => Request::Stats,
            5 => Request::Shutdown,
            _ => return Err(bad("bad request tag")),
        };
        r.expect_end()?;
        Ok(req)
    }
}

impl Response {
    /// Encodes into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            Response::Pong => w.u8(0),
            Response::Submitted(id) => {
                w.u8(1);
                w.u64(*id);
            }
            Response::Pending => w.u8(2),
            Response::Result(res) => {
                w.u8(3);
                encode_result(&mut w, res);
            }
            Response::Stats(s) => {
                w.u8(4);
                encode_stats(&mut w, s);
            }
            Response::Err(msg) => {
                w.u8(5);
                w.str(msg);
            }
            Response::Bye => w.u8(6),
        }
        w.finish()
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// [`WireError`] on malformed input.
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut r = WireReader::new(payload);
        let resp = match r.u8()? {
            0 => Response::Pong,
            1 => Response::Submitted(r.u64()?),
            2 => Response::Pending,
            3 => Response::Result(decode_result(&mut r)?),
            4 => Response::Stats(decode_stats(&mut r)?),
            5 => Response::Err(r.str()?),
            6 => Response::Bye,
            _ => return Err(bad("bad response tag")),
        };
        r.expect_end()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wacc::OptLevel;

    fn sample_spec() -> JobSpec {
        JobSpec {
            benchmark: "crc32".into(),
            engine: EngineKind::Wasmer(engines::Backend::Llvm),
            level: OptLevel::O3,
            scale: Scale::Profile,
            mode: JobMode::ExecAot,
            warm: true,
        }
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Ping,
            Request::Submit(sample_spec()),
            Request::Poll(42),
            Request::Wait(7),
            Request::Stats,
            Request::Shutdown,
        ] {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let result = JobResult {
            id: 9,
            spec: sample_spec(),
            status: JobStatus::Panicked("checksum mismatch".into()),
            checksum: Some(-7),
            bytes_hash: 0xdead_beef,
            compile_s: 0.25,
            exec_s: 1.5,
            aot_compile_s: Some(0.125),
            counters: Some(archsim::Counters {
                instructions: 10,
                cycles: 20,
                ..Default::default()
            }),
            warm_artifact: true,
            wall_s: 2.0,
        };
        let stats = SvcStats {
            submitted: 3,
            completed: 3,
            ok: 2,
            panicked: 1,
            store: Some(StoreStats {
                hits: 5,
                misses: 2,
                ..Default::default()
            }),
            ..Default::default()
        };
        for resp in [
            Response::Pong,
            Response::Submitted(1),
            Response::Pending,
            Response::Result(result),
            Response::Stats(stats),
            Response::Err("nope".into()),
            Response::Bye,
        ] {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn malformed_payloads_error() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[99]).is_err());
        // Trailing garbage is rejected.
        let mut buf = Request::Ping.encode();
        buf.push(0);
        assert!(Request::decode(&buf).is_err());
        // Truncated submit.
        let buf = Request::Submit(sample_spec()).encode();
        assert!(Request::decode(&buf[..buf.len() - 2]).is_err());
    }
}
