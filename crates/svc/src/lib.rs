//! # svc — the wabench execution service
//!
//! The paper treats standalone Wasm runtimes as *server-side*
//! infrastructure; this crate is the workspace's serving layer. It turns
//! the (benchmark × engine × opt-level) measurement matrix, which the
//! harness otherwise walks strictly serially, into schedulable **jobs**
//! executed by a worker pool, backed by a **content-addressed on-disk
//! artifact store** so repeated service traffic skips compilation.
//!
//! Three pieces:
//!
//! - [`store::ArtifactStore`] — an on-disk cache keyed by
//!   `(content hash, opt level, engine)` holding both compiled `.wasm`
//!   bytes from WaCC and engine AOT artifacts. Entries carry versioned
//!   headers and payload checksums; anything corrupt is rejected and
//!   dropped (AOT payloads additionally pass through the engines crate's
//!   untrusted `RegCode::try_new` path). The store is size-capped with
//!   LRU eviction.
//! - [`scheduler::Scheduler`] — a work queue plus worker pool. Engine
//!   state is `Rc`-based and deliberately **not** `Send`, so every job
//!   builds its engine instances on the thread that executes it; only
//!   `Send` data (wasm bytes, artifacts, results) crosses threads. Jobs
//!   get a hard per-job timeout and panic isolation: a checksum-mismatch
//!   panic fails that job's [`job::JobResult`], never the fleet.
//! - [`server`] — `wabench-served`, a Unix-domain-socket daemon speaking
//!   the length-prefixed binary protocol of [`proto`]
//!   (submit / poll / wait / stats / health), plus a blocking client.
//!
//! Since protocol v4 the service also carries a **resilience layer**
//! (see `docs/OPERATIONS.md`): the scheduler retries failed jobs with
//! exponential backoff under a per-job deadline, trips a per-engine
//! circuit breaker after repeated failures, falls back from a failing
//! JIT compile to the interpreter tier (surfaced as a *degraded*
//! result), and repairs corrupt artifact-store entries in place. The
//! whole layer is exercised deterministically through `wabench-fault`'s
//! seeded fault-injection plans (`WABENCH_FAULTS`).
//!
//! Since protocol v7 the service is also observable *live* (see
//! [`telemetry`]): submits carry a client-originated trace id, every
//! result returns a per-job span digest ([`job::TraceDigest`]), and the
//! `Series` / `TraceDump` requests serve a bounded time-series window
//! and recent/slow-request span trees that `wabench-top` and the
//! client-side trace stitcher consume.
//!
//! The harness's `--jobs N` flag drives the fig1/fig4/fig7 measurement
//! matrices through the scheduler; assembly of the output tables stays
//! serial and ordered, so tables are independent of job completion
//! order.

#![warn(missing_docs)]

pub mod exec;
pub mod hash;
pub mod job;
pub mod proto;
#[cfg(unix)]
pub mod reactor;
pub mod scheduler;
#[cfg(unix)]
pub mod server;
pub mod store;
pub mod telemetry;
pub mod wire;

pub use job::{JobMode, JobResult, JobSpec, JobStatus, Outcome, Recovery, Scale, TraceCtx, TraceDigest};
pub use scheduler::{
    Config, HealthReport, ResilienceStats, RetryPolicy, Scheduler, SvcStats, SvcStatsExt,
};
pub use store::{ArtifactKey, ArtifactStore, GetOutcome, StoreStats};
pub use telemetry::{SeriesReport, TelemetryConfig, TraceRecord, TraceReport};
