//! Length-prefixed binary wire format.
//!
//! Frames are `u32` little-endian payload length + payload. Payloads are
//! encoded with the explicit writer/reader below — the workspace
//! deliberately carries no serialization framework (the vendored `serde`
//! is a derive-only stub), so protocol types hand-roll their encoding
//! the same way the AOT artifact codec does. All decode paths treat
//! input as untrusted: lengths are bounds-checked against what the
//! remaining bytes could possibly hold, and a malformed frame is an
//! error, never a panic.

use std::io::{self, Read, Write};

use engines::EngineKind;
use wacc::OptLevel;

/// Hard cap on a single frame, far above any legitimate message.
pub const MAX_FRAME: u32 = 16 << 20;

/// A malformed wire payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire: {}", self.0)
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for io::Error {
    fn from(e: WireError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

fn bad(msg: &str) -> WireError {
    WireError(msg.to_string())
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|l| *l <= MAX_FRAME)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF before the
/// length prefix (the peer hung up between messages).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame too large"));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Payload writer: plain little-endian primitives.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Creates an empty writer.
    pub fn new() -> WireWriter {
        WireWriter::default()
    }

    /// Finishes and returns the payload bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i32`.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` by bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes length-prefixed raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }
}

/// Payload reader over untrusted bytes.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wraps a payload.
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless the payload was consumed exactly.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(bad("trailing bytes"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(bad("truncated payload"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `i32`.
    pub fn i32(&mut self) -> Result<i32, WireError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool byte (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(bad("bad bool")),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| bad("invalid utf-8"))
    }

    /// Reads length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }
}

/// Stable byte for an [`OptLevel`] (wire + store headers).
pub fn level_byte(level: OptLevel) -> u8 {
    match level {
        OptLevel::O0 => 0,
        OptLevel::O1 => 1,
        OptLevel::O2 => 2,
        OptLevel::O3 => 3,
    }
}

/// Decodes a [`level_byte`].
pub fn level_from_byte(b: u8) -> Option<OptLevel> {
    Some(match b {
        0 => OptLevel::O0,
        1 => OptLevel::O1,
        2 => OptLevel::O2,
        3 => OptLevel::O3,
        _ => return None,
    })
}

/// Stable byte for an engine selector; `0xff` means "no engine" (a
/// plain compiled-wasm store entry).
pub fn engine_byte(e: Option<EngineKind>) -> u8 {
    match e {
        None => 0xff,
        Some(kind) => kind.code(),
    }
}

/// Decodes an [`engine_byte`].
pub fn engine_from_byte(b: u8) -> Result<Option<EngineKind>, WireError> {
    if b == 0xff {
        return Ok(None);
    }
    EngineKind::from_code(b)
        .map(Some)
        .ok_or_else(|| bad("unknown engine code"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = WireWriter::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX);
        w.i32(-42);
        w.f64(1.5);
        w.bool(true);
        w.str("crc32");
        w.bytes(&[1, 2, 3]);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i32().unwrap(), -42);
        assert_eq!(r.f64().unwrap(), 1.5);
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "crc32");
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncated_and_oversized_inputs_error() {
        let mut r = WireReader::new(&[1, 2]);
        assert!(r.u32().is_err());
        // A declared length far past the buffer must not allocate/panic.
        let mut w = WireWriter::new();
        w.u32(u32::MAX);
        let buf = w.finish();
        assert!(WireReader::new(&buf).bytes().is_err());
        assert!(WireReader::new(&[2]).bool().is_err());
    }

    #[test]
    fn frames_round_trip() {
        let mut pipe: Vec<u8> = Vec::new();
        write_frame(&mut pipe, b"hello").unwrap();
        write_frame(&mut pipe, b"").unwrap();
        let mut r = io::Cursor::new(pipe);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut pipe = Vec::new();
        pipe.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert!(read_frame(&mut io::Cursor::new(pipe)).is_err());
    }

    #[test]
    fn level_and_engine_bytes_round_trip() {
        for level in OptLevel::all() {
            assert_eq!(level_from_byte(level_byte(level)), Some(level));
        }
        assert_eq!(level_from_byte(9), None);
        assert_eq!(engine_from_byte(engine_byte(None)).unwrap(), None);
        for kind in EngineKind::all() {
            assert_eq!(engine_from_byte(engine_byte(Some(kind))).unwrap(), Some(kind));
        }
        assert!(engine_from_byte(99).is_err());
    }
}
