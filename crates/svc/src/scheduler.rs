//! The concurrent job scheduler: a work queue plus a worker pool.
//!
//! Submission assigns monotonically increasing ids; `drain_sorted`
//! returns results ordered by id, so downstream consumers see results
//! in submission order no matter how jobs interleaved across workers —
//! the property that keeps `--jobs N` harness tables identical in
//! structure to serial runs.
//!
//! Isolation: each job runs on its own execution thread under
//! `catch_unwind`. A panicking job (the deliberate checksum-mismatch
//! panic included) produces a `Panicked` result; a job that outlives
//! the per-job timeout produces `TimedOut` and its thread is abandoned
//! (it finishes in the background and its late result is discarded —
//! safe Rust cannot preempt a running computation). Workers themselves
//! never die.

use std::collections::{HashMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use obs::metrics::{Histogram, HistogramSnapshot};

use crate::exec::{self, ExecEnv};
use crate::job::{JobResult, JobSpec, JobStatus};
use crate::store::{ArtifactStore, StoreStats};

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Worker threads.
    pub workers: usize,
    /// Hard per-job timeout.
    pub timeout: Duration,
    /// Artifact-store directory (`None` = no on-disk store).
    pub store_dir: Option<PathBuf>,
    /// Artifact-store size cap in bytes.
    pub store_cap_bytes: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            workers: 4,
            timeout: Duration::from_secs(120),
            store_dir: None,
            store_cap_bytes: 256 << 20,
        }
    }
}

/// Aggregate service statistics (scheduler + artifact store).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SvcStats {
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs completed (any status).
    pub completed: u64,
    /// ... of which succeeded.
    pub ok: u64,
    /// ... failed cleanly.
    pub failed: u64,
    /// ... panicked (isolated).
    pub panicked: u64,
    /// ... hit the per-job timeout.
    pub timed_out: u64,
    /// Cold compiles measured by `Exec` jobs.
    pub cold_compiles: u64,
    /// Total seconds across cold compiles.
    pub cold_compile_s: f64,
    /// Warm artifact loads measured by `Exec` jobs.
    pub warm_loads: u64,
    /// Total seconds across warm artifact loads.
    pub warm_load_s: f64,
    /// Artifact-store counters, when a store is attached.
    pub store: Option<StoreStats>,
}

impl SvcStats {
    /// Mean cold compile seconds (0 if none).
    pub fn cold_compile_avg_s(&self) -> f64 {
        if self.cold_compiles == 0 {
            0.0
        } else {
            self.cold_compile_s / self.cold_compiles as f64
        }
    }

    /// Mean warm artifact-load seconds (0 if none).
    pub fn warm_load_avg_s(&self) -> f64 {
        if self.warm_loads == 0 {
            0.0
        } else {
            self.warm_load_s / self.warm_loads as f64
        }
    }
}

/// Summed simulated counters from an engine's successful profiled jobs.
///
/// IPC/MPKI figures derive from the summed [`archsim::Counters`], so a
/// daemon can report per-engine architectural behavior live (`stats-ext`)
/// without retaining per-job results.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineCounters {
    /// Profiled jobs folded in.
    pub jobs: u64,
    /// Field-wise sums of those jobs' counters.
    pub counters: archsim::Counters,
}

/// Extended statistics: everything in [`SvcStats`] plus queue and
/// latency observability. Served over the wire by the `StatsExt`
/// protocol message (protocol v2; v3 adds exact histogram extremes and
/// the per-engine counter aggregates); the base `Stats` reply is
/// unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct SvcStatsExt {
    /// The classic counters (wire-compatible with protocol v1).
    pub base: SvcStats,
    /// Jobs queued but not yet picked up by a worker.
    pub queue_depth: u64,
    /// Worker threads in the pool.
    pub workers: u64,
    /// Seconds since the scheduler started.
    pub uptime_s: f64,
    /// Summed seconds workers spent running jobs (≤ uptime × workers).
    pub busy_s: f64,
    /// Submit-to-dequeue latency distribution.
    pub queue_wait: HistogramSnapshot,
    /// Per-engine job wall-time distributions, keyed by
    /// [`engines::EngineKind::code`], sorted by code.
    pub engine_wall: Vec<(u8, HistogramSnapshot)>,
    /// Per-engine simulated counter aggregates from profiled jobs,
    /// keyed by [`engines::EngineKind::code`], sorted by code. Empty
    /// until a `Profiled` job succeeds (and when talking to a v2 peer).
    pub engine_counters: Vec<(u8, EngineCounters)>,
}

impl SvcStatsExt {
    /// Worker-pool utilization in `[0, 1]` (0 when no time has passed).
    pub fn utilization(&self) -> f64 {
        let capacity = self.uptime_s * self.workers as f64;
        if capacity <= 0.0 {
            0.0
        } else {
            (self.busy_s / capacity).clamp(0.0, 1.0)
        }
    }
}

struct Inner {
    timeout: Duration,
    queue: Mutex<VecDeque<(u64, JobSpec, Instant)>>,
    queue_cv: Condvar,
    results: Mutex<HashMap<u64, JobResult>>,
    done_cv: Condvar,
    outstanding: AtomicU64,
    shutdown: AtomicBool,
    next_id: AtomicU64,
    env: ExecEnv,
    stats: Mutex<SvcStats>,
    workers_n: usize,
    started: Instant,
    busy_ns: AtomicU64,
    queue_wait: Histogram,
    engine_wall: Mutex<HashMap<u8, Arc<Histogram>>>,
    engine_counters: Mutex<HashMap<u8, EngineCounters>>,
}

/// The running scheduler: submit jobs, poll/wait for results.
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl Scheduler {
    /// Starts `cfg.workers` workers (opening the artifact store first,
    /// if configured).
    ///
    /// # Errors
    ///
    /// I/O errors opening the artifact store.
    pub fn start(cfg: Config) -> std::io::Result<Scheduler> {
        let store = match &cfg.store_dir {
            Some(dir) => Some(ArtifactStore::open(dir, cfg.store_cap_bytes)?),
            None => None,
        };
        let inner = Arc::new(Inner {
            timeout: cfg.timeout,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            results: Mutex::new(HashMap::new()),
            done_cv: Condvar::new(),
            outstanding: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
            env: ExecEnv::new(store),
            stats: Mutex::new(SvcStats::default()),
            workers_n: cfg.workers.max(1),
            started: Instant::now(),
            busy_ns: AtomicU64::new(0),
            queue_wait: Histogram::default(),
            engine_wall: Mutex::new(HashMap::new()),
            engine_counters: Mutex::new(HashMap::new()),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("wabench-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        Ok(Scheduler { inner, workers })
    }

    /// Enqueues a job; returns its id.
    pub fn submit(&self, spec: JobSpec) -> u64 {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        self.inner.outstanding.fetch_add(1, Ordering::SeqCst);
        self.inner
            .queue
            .lock()
            .expect("queue lock")
            .push_back((id, spec, Instant::now()));
        self.inner.queue_cv.notify_one();
        {
            let mut stats = self.inner.stats.lock().expect("stats lock");
            stats.submitted += 1;
        }
        id
    }

    /// Non-blocking result lookup (result stays claimable by `wait`).
    pub fn poll(&self, id: u64) -> Option<JobResult> {
        self.inner
            .results
            .lock()
            .expect("results lock")
            .get(&id)
            .cloned()
    }

    /// Blocks until job `id` completes; removes and returns its result.
    pub fn wait(&self, id: u64) -> JobResult {
        let mut results = self.inner.results.lock().expect("results lock");
        loop {
            if let Some(res) = results.remove(&id) {
                return res;
            }
            results = self.inner.done_cv.wait(results).expect("results lock");
        }
    }

    /// Blocks until every submitted job has completed.
    pub fn wait_idle(&self) {
        let mut results = self.inner.results.lock().expect("results lock");
        while self.inner.outstanding.load(Ordering::SeqCst) != 0 {
            results = self.inner.done_cv.wait(results).expect("results lock");
        }
    }

    /// Waits for idle, then removes and returns all results sorted by
    /// id (= submission order).
    pub fn drain_sorted(&self) -> Vec<JobResult> {
        self.wait_idle();
        let mut out: Vec<JobResult> = self
            .inner
            .results
            .lock()
            .expect("results lock")
            .drain()
            .map(|(_, r)| r)
            .collect();
        out.sort_by_key(|r| r.id);
        out
    }

    /// Statistics snapshot (store counters folded in).
    pub fn stats(&self) -> SvcStats {
        let mut stats = *self.inner.stats.lock().expect("stats lock");
        if let Some(store) = &self.inner.env.store {
            stats.store = Some(store.lock().expect("store lock").stats());
        }
        stats
    }

    /// Extended statistics snapshot: the base counters plus queue depth,
    /// worker utilization, and latency histograms.
    pub fn stats_ext(&self) -> SvcStatsExt {
        let base = self.stats();
        let queue_depth = self.inner.queue.lock().expect("queue lock").len() as u64;
        let mut engine_wall: Vec<(u8, HistogramSnapshot)> = self
            .inner
            .engine_wall
            .lock()
            .expect("engine wall lock")
            .iter()
            .map(|(code, h)| (*code, h.snapshot()))
            .collect();
        engine_wall.sort_by_key(|(code, _)| *code);
        let mut engine_counters: Vec<(u8, EngineCounters)> = self
            .inner
            .engine_counters
            .lock()
            .expect("engine counters lock")
            .iter()
            .map(|(code, agg)| (*code, *agg))
            .collect();
        engine_counters.sort_by_key(|(code, _)| *code);
        SvcStatsExt {
            base,
            queue_depth,
            workers: self.inner.workers_n as u64,
            uptime_s: self.inner.started.elapsed().as_secs_f64(),
            busy_s: self.inner.busy_ns.load(Ordering::Relaxed) as f64 / 1e9,
            queue_wait: self.inner.queue_wait.snapshot(),
            engine_wall,
            engine_counters,
        }
    }

    /// Snapshot of the shared compiled-wasm cache.
    pub fn bytes_snapshot(&self) -> Vec<(String, wacc::OptLevel, Arc<[u8]>)> {
        self.inner.env.bytes_snapshot()
    }

    /// Stops accepting work, drains queued jobs, joins the workers.
    pub fn shutdown(mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let job = {
            // The span covers this worker's own blocking wait — a real,
            // non-overlapping region on its timeline. The *per-job* wait
            // (submit to dequeue, which may span a previous job on this
            // worker) goes into the queue_wait histogram instead.
            let _wait = obs::span!("svc.queue.wait");
            let mut queue = inner.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = inner.queue_cv.wait(queue).expect("queue lock");
            }
        };
        let Some((id, spec, enqueued)) = job else { return };
        inner
            .queue_wait
            .observe_ns(enqueued.elapsed().as_nanos() as u64);
        let _run = obs::span!(
            "svc.job.run",
            id = id,
            bench = spec.benchmark,
            engine = spec.engine.name(),
            level = spec.level
        );
        let t_run = Instant::now();
        let mut result = run_isolated(inner, &spec);
        result.id = id;
        inner
            .busy_ns
            .fetch_add(t_run.elapsed().as_nanos() as u64, Ordering::Relaxed);
        inner
            .engine_wall
            .lock()
            .expect("engine wall lock")
            .entry(spec.engine.code())
            .or_default()
            .observe_ns((result.wall_s * 1e9) as u64);
        if result.ok() {
            if let Some(c) = &result.counters {
                let mut aggs = inner.engine_counters.lock().expect("engine counters lock");
                let agg = aggs.entry(spec.engine.code()).or_default();
                agg.jobs += 1;
                agg.counters.accumulate(c);
            }
        }
        {
            let mut stats = inner.stats.lock().expect("stats lock");
            stats.completed += 1;
            match &result.status {
                JobStatus::Ok => stats.ok += 1,
                JobStatus::Failed(_) => stats.failed += 1,
                JobStatus::Panicked(_) => stats.panicked += 1,
                JobStatus::TimedOut => stats.timed_out += 1,
            }
            if result.ok() && matches!(result.spec.mode, crate::job::JobMode::Exec) {
                if result.warm_artifact {
                    stats.warm_loads += 1;
                    stats.warm_load_s += result.compile_s;
                } else {
                    stats.cold_compiles += 1;
                    stats.cold_compile_s += result.compile_s;
                }
            }
        }
        {
            // Insert and decrement under the results lock: waiters check
            // `outstanding` while holding it, so publishing both under
            // the lock rules out a lost wakeup.
            let mut results = inner.results.lock().expect("results lock");
            results.insert(id, result);
            inner.outstanding.fetch_sub(1, Ordering::SeqCst);
        }
        inner.done_cv.notify_all();
    }
}

/// Runs one job on a dedicated thread with panic isolation and the hard
/// timeout. The engine instances the job builds are `Rc`-based and live
/// entirely on that thread.
fn run_isolated(inner: &Arc<Inner>, spec: &JobSpec) -> JobResult {
    let (tx, rx) = mpsc::channel();
    let job_inner = Arc::clone(inner);
    let job_spec = spec.clone();
    let handle = std::thread::Builder::new()
        .name("wabench-job".to_string())
        .spawn(move || {
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                exec::execute(&job_spec, &job_inner.env)
            }));
            let _ = tx.send(outcome);
        })
        .expect("spawn job thread");
    let failed = |status: JobStatus| JobResult {
        id: 0,
        spec: spec.clone(),
        status,
        checksum: None,
        bytes_hash: 0,
        compile_s: 0.0,
        exec_s: 0.0,
        aot_compile_s: None,
        counters: None,
        warm_artifact: false,
        wall_s: 0.0,
    };
    match rx.recv_timeout(inner.timeout) {
        Ok(Ok(result)) => {
            let _ = handle.join();
            result
        }
        Ok(Err(payload)) => {
            let _ = handle.join();
            // `&*payload`, not `&payload`: the latter would unsize the
            // Box itself into `dyn Any` and every downcast would miss.
            failed(JobStatus::Panicked(panic_message(&*payload)))
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            // Abandon the thread; its late send goes nowhere.
            failed(JobStatus::TimedOut)
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            let _ = handle.join();
            failed(JobStatus::Panicked("job thread died".to_string()))
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobMode, Scale};
    use engines::EngineKind;
    use wacc::OptLevel;

    /// Regression test: every derived statistic on a freshly started
    /// (zero-job) scheduler must be a finite number, never NaN from a
    /// zero division.
    #[test]
    fn zero_job_stats_have_no_nan() {
        let sched = Scheduler::start(Config {
            workers: 2,
            ..Config::default()
        })
        .unwrap();
        let stats = sched.stats();
        assert_eq!(stats.cold_compile_avg_s(), 0.0);
        assert_eq!(stats.warm_load_avg_s(), 0.0);
        let ext = sched.stats_ext();
        assert_eq!(ext.queue_depth, 0);
        assert_eq!(ext.workers, 2);
        assert!(ext.utilization().is_finite());
        assert!((0.0..=1.0).contains(&ext.utilization()));
        assert_eq!(ext.queue_wait.count, 0);
        assert_eq!(ext.queue_wait.quantile_ns(0.99), 0);
        assert_eq!(ext.queue_wait.mean_ns(), 0.0);
        assert!(ext.engine_wall.is_empty());
        assert!(ext.engine_counters.is_empty());
        sched.shutdown();
    }

    /// Profiled jobs fold their simulated counters into per-engine
    /// aggregates; plain exec jobs do not contribute.
    #[test]
    fn profiled_jobs_aggregate_engine_counters() {
        let sched = Scheduler::start(Config {
            workers: 2,
            ..Config::default()
        })
        .unwrap();
        let profiled = |_| JobSpec {
            mode: JobMode::Profiled,
            ..JobSpec::exec("crc32", EngineKind::Wamr, OptLevel::O1, Scale::Test)
        };
        sched.submit(profiled(0));
        sched.submit(profiled(1));
        sched.submit(JobSpec::exec(
            "crc32",
            EngineKind::Wasm3,
            OptLevel::O1,
            Scale::Test,
        ));
        let results = sched.drain_sorted();
        assert!(results.iter().all(JobResult::ok));
        let per_job = results[0].counters.expect("profiled job has counters");
        let ext = sched.stats_ext();
        assert_eq!(ext.engine_counters.len(), 1, "exec job must not appear");
        let (code, agg) = ext.engine_counters[0];
        assert_eq!(code, EngineKind::Wamr.code());
        assert_eq!(agg.jobs, 2);
        // Same spec twice on a deterministic simulator: the sum is
        // exactly twice one job's counters.
        assert_eq!(agg.counters.instructions, 2 * per_job.instructions);
        assert!(agg.counters.ipc() > 0.0);
        sched.shutdown();
    }

    /// `stats_ext` on a scheduler that has run real jobs reports queue
    /// and per-engine latency distributions.
    #[test]
    fn stats_ext_tracks_real_jobs() {
        let sched = Scheduler::start(Config {
            workers: 2,
            ..Config::default()
        })
        .unwrap();
        for _ in 0..3 {
            sched.submit(JobSpec::exec(
                "crc32",
                EngineKind::Wasm3,
                OptLevel::O1,
                Scale::Test,
            ));
        }
        let results = sched.drain_sorted();
        assert!(results.iter().all(JobResult::ok));
        let ext = sched.stats_ext();
        assert_eq!(ext.base.completed, 3);
        assert_eq!(ext.queue_depth, 0);
        assert_eq!(ext.queue_wait.count, 3);
        assert!(ext.busy_s > 0.0);
        assert!(ext.uptime_s >= ext.busy_s / ext.workers as f64);
        let (code, wall) = &ext.engine_wall[0];
        assert_eq!(*code, EngineKind::Wasm3.code());
        assert_eq!(wall.count, 3);
        assert!(wall.mean_ns() > 0.0);
        sched.shutdown();
    }

    #[test]
    fn results_drain_in_submission_order() {
        let sched = Scheduler::start(Config {
            workers: 3,
            ..Config::default()
        })
        .unwrap();
        for kind in EngineKind::all() {
            sched.submit(JobSpec::exec("crc32", kind, OptLevel::O1, Scale::Test));
        }
        let results = sched.drain_sorted();
        assert_eq!(results.len(), 5);
        let ids: Vec<u64> = results.iter().map(|r| r.id).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert!(results.iter().all(JobResult::ok));
        sched.shutdown();
    }

    #[test]
    fn timeout_is_enforced() {
        let sched = Scheduler::start(Config {
            workers: 1,
            timeout: Duration::from_millis(100),
            ..Config::default()
        })
        .unwrap();
        let hang = JobSpec {
            mode: JobMode::SelfTestHang,
            ..JobSpec::exec("crc32", EngineKind::Wasm3, OptLevel::O0, Scale::Test)
        };
        let id = sched.submit(hang);
        let res = sched.wait(id);
        assert_eq!(res.status, JobStatus::TimedOut);
        sched.shutdown();
    }
}
