//! The concurrent job scheduler: a work queue plus a worker pool.
//!
//! Submission assigns monotonically increasing ids; `drain_sorted`
//! returns results ordered by id, so downstream consumers see results
//! in submission order no matter how jobs interleaved across workers —
//! the property that keeps `--jobs N` harness tables identical in
//! structure to serial runs.
//!
//! Isolation: each job runs on its own execution thread under
//! `catch_unwind`. A panicking job (the deliberate checksum-mismatch
//! panic included) produces a `Panicked` result; a job that outlives
//! the per-job timeout produces `TimedOut` and its thread is abandoned
//! (it finishes in the background and its late result is discarded —
//! safe Rust cannot preempt a running computation). Workers themselves
//! never die.

use std::collections::{HashMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fault::{Breaker, BreakerConfig, BreakerEvent, BreakerSnapshot, FaultPlan};
use obs::alert::{AlertEngine, AlertEvent, AlertSpec, Observation, Transition};
use obs::contprof::ContProf;
use obs::metrics::{Histogram, HistogramSnapshot};

use crate::exec::{self, ExecEnv};
use crate::job::{JobResult, JobSpec, JobStatus, TraceCtx, TraceDigest};
use crate::store::{ArtifactStore, StoreStats};
use crate::telemetry::{
    AlertReport, JobMetrics, ProfileReport, SeriesPoint, SeriesReport, Telemetry, TelemetryConfig,
    TraceRecord, TraceReport,
};

/// Sealed profile windows retained by the continuous profiler.
const PROFILE_WINDOW_CAP: usize = 64;

/// Series points embedded in a postmortem bundle (most recent first in
/// time, oldest first in the array).
const POSTMORTEM_SERIES_TAIL: usize = 64;

/// Trace-log records embedded in a postmortem bundle.
const POSTMORTEM_TRACE_TAIL: usize = 16;

/// Retry tuning: exponential backoff with deterministic jitter.
///
/// Attempt `k` (1-based) sleeps `backoff_base × 2^(k-1)` plus a jitter
/// in `[0, backoff/2)` derived from `fault::mix64(job id ^ attempt)` —
/// deterministic for a given job, decorrelated across jobs — capped at
/// `backoff_cap` and always bounded by the job's remaining deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per job (1 = never retry).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub backoff_base: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
        }
    }
}

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Worker threads.
    pub workers: usize,
    /// Hard per-job deadline, measured from the moment a worker starts
    /// the job and spanning every retry attempt and backoff sleep.
    pub timeout: Duration,
    /// Artifact-store directory (`None` = no on-disk store).
    pub store_dir: Option<PathBuf>,
    /// Artifact-store size cap in bytes.
    pub store_cap_bytes: u64,
    /// Retry policy for failed/panicked attempts.
    pub retry: RetryPolicy,
    /// Per-engine circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Optional deterministic fault-injection plan, threaded through
    /// job execution and the artifact store.
    pub faults: Option<Arc<FaultPlan>>,
    /// Live-telemetry tuning (protocol v7). The default starts no
    /// sampler thread; trace digests and the recent-request log are
    /// always maintained (cheap, bounded) so `TraceDump` works even on
    /// a sampler-less scheduler.
    pub telemetry: TelemetryConfig,
    /// SLO alert rules (protocol v8). `None` (the default) arms no
    /// engine: nothing is evaluated, `AlertLog` reports disarmed, and
    /// no postmortem is ever written.
    pub alerts: Option<AlertSpec>,
    /// Where firing alerts snapshot postmortem bundles. `None` disables
    /// the flight recorder even when alerts are armed.
    pub postmortem_dir: Option<PathBuf>,
    /// Continuous-profiler window span (protocol v8). `None` (the
    /// default) aggregates nothing and `ProfileDump` reports the
    /// profiler off.
    pub profile_window: Option<Duration>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            workers: 4,
            timeout: Duration::from_secs(120),
            store_dir: None,
            store_cap_bytes: 256 << 20,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            faults: None,
            telemetry: TelemetryConfig::default(),
            alerts: None,
            postmortem_dir: None,
            profile_window: None,
        }
    }
}

/// The alert engine plus its pump cursor and flight-recorder target.
struct AlertRuntime {
    engine: AlertEngine,
    /// Highest series seq already fed to the engine; the pump only
    /// feeds newer points, so re-pumping is idempotent.
    last_seq: Option<u64>,
    postmortem_dir: Option<PathBuf>,
}

/// Aggregate counters from the resilience layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Retry attempts beyond each job's first.
    pub retries: u64,
    /// Jobs that degraded to the interpreter tier after a JIT compile
    /// failure.
    pub compile_fallbacks: u64,
    /// Corrupt store entries recompiled and written back in place.
    pub store_repairs: u64,
    /// Jobs rejected without running because their engine's circuit
    /// breaker was open.
    pub breaker_fast_fails: u64,
}

/// What the protocol v4 `Health` request reports: breaker states,
/// resilience counters, and (when a fault plan is active) per-site
/// injected-fault tallies.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthReport {
    /// Aggregate resilience counters.
    pub resilience: ResilienceStats,
    /// Per-engine breaker snapshots, keyed by
    /// [`engines::EngineKind::code`], sorted by code. Engines appear
    /// once they have completed at least one job.
    pub breakers: Vec<(u8, BreakerSnapshot)>,
    /// Per-site `(site code, configured rate, injected count)` from the
    /// active fault plan; empty when no plan is installed.
    pub faults: Vec<(u8, f64, u64)>,
    /// Jobs queued but not yet picked up by a worker, at snapshot time.
    /// Protocol v6; zero when talking to a v4/v5 peer.
    pub queue_depth: u64,
    /// High-water mark of the queue depth since the scheduler started —
    /// a saturation signal for open-loop load generators: a peak well
    /// above the worker count means arrivals outran service capacity.
    /// Protocol v6; zero when talking to a v4/v5 peer.
    pub peak_queue_depth: u64,
}

/// Aggregate service statistics (scheduler + artifact store).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SvcStats {
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs completed (any status).
    pub completed: u64,
    /// ... of which succeeded.
    pub ok: u64,
    /// ... failed cleanly.
    pub failed: u64,
    /// ... panicked (isolated).
    pub panicked: u64,
    /// ... hit the per-job timeout.
    pub timed_out: u64,
    /// Cold compiles measured by `Exec` jobs.
    pub cold_compiles: u64,
    /// Total seconds across cold compiles.
    pub cold_compile_s: f64,
    /// Warm artifact loads measured by `Exec` jobs.
    pub warm_loads: u64,
    /// Total seconds across warm artifact loads.
    pub warm_load_s: f64,
    /// Artifact-store counters, when a store is attached.
    pub store: Option<StoreStats>,
}

impl SvcStats {
    /// Mean cold compile seconds (0 if none).
    pub fn cold_compile_avg_s(&self) -> f64 {
        if self.cold_compiles == 0 {
            0.0
        } else {
            self.cold_compile_s / self.cold_compiles as f64
        }
    }

    /// Mean warm artifact-load seconds (0 if none).
    pub fn warm_load_avg_s(&self) -> f64 {
        if self.warm_loads == 0 {
            0.0
        } else {
            self.warm_load_s / self.warm_loads as f64
        }
    }
}

/// Summed simulated counters from an engine's successful profiled jobs.
///
/// IPC/MPKI figures derive from the summed [`archsim::Counters`], so a
/// daemon can report per-engine architectural behavior live (`stats-ext`)
/// without retaining per-job results.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineCounters {
    /// Profiled jobs folded in.
    pub jobs: u64,
    /// Field-wise sums of those jobs' counters.
    pub counters: archsim::Counters,
}

/// Extended statistics: everything in [`SvcStats`] plus queue and
/// latency observability. Served over the wire by the `StatsExt`
/// protocol message (protocol v2; v3 adds exact histogram extremes and
/// the per-engine counter aggregates); the base `Stats` reply is
/// unchanged.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SvcStatsExt {
    /// The classic counters (wire-compatible with protocol v1).
    pub base: SvcStats,
    /// Jobs queued but not yet picked up by a worker.
    pub queue_depth: u64,
    /// Worker threads in the pool.
    pub workers: u64,
    /// Seconds since the scheduler started.
    pub uptime_s: f64,
    /// Summed seconds workers spent running jobs (≤ uptime × workers).
    pub busy_s: f64,
    /// Submit-to-dequeue latency distribution.
    pub queue_wait: HistogramSnapshot,
    /// Per-engine job wall-time distributions, keyed by
    /// [`engines::EngineKind::code`], sorted by code.
    pub engine_wall: Vec<(u8, HistogramSnapshot)>,
    /// Per-engine simulated counter aggregates from profiled jobs,
    /// keyed by [`engines::EngineKind::code`], sorted by code. Empty
    /// until a `Profiled` job succeeds (and when talking to a v2 peer).
    pub engine_counters: Vec<(u8, EngineCounters)>,
}

impl SvcStatsExt {
    /// Worker-pool utilization in `[0, 1]` (0 when no time has passed).
    pub fn utilization(&self) -> f64 {
        let capacity = self.uptime_s * self.workers as f64;
        if capacity <= 0.0 {
            0.0
        } else {
            (self.busy_s / capacity).clamp(0.0, 1.0)
        }
    }
}

/// One queued job, with everything the worker needs to stamp its span
/// digest.
struct Queued {
    id: u64,
    spec: JobSpec,
    enqueued: Instant,
    ctx: TraceCtx,
    /// Server trace clock at submit time ([`obs::trace::now_ns`]).
    enqueue_ns: u64,
}

struct Inner {
    timeout: Duration,
    retry: RetryPolicy,
    queue: Mutex<VecDeque<Queued>>,
    queue_cv: Condvar,
    results: Mutex<HashMap<u64, JobResult>>,
    done_cv: Condvar,
    outstanding: AtomicU64,
    shutdown: AtomicBool,
    next_id: AtomicU64,
    env: ExecEnv,
    stats: Mutex<SvcStats>,
    workers_n: usize,
    started: Instant,
    busy_ns: AtomicU64,
    peak_queue: AtomicU64,
    queue_wait: Histogram,
    engine_wall: Mutex<HashMap<u8, Arc<Histogram>>>,
    engine_counters: Mutex<HashMap<u8, EngineCounters>>,
    breaker_cfg: BreakerConfig,
    breakers: Mutex<HashMap<u8, Breaker>>,
    resilience: Mutex<ResilienceStats>,
    metrics: JobMetrics,
    telemetry: Telemetry,
    contprof: Mutex<Option<ContProf>>,
    alerts: Mutex<Option<AlertRuntime>>,
}

/// The running scheduler: submit jobs, poll/wait for results.
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl Scheduler {
    /// Starts `cfg.workers` workers (opening the artifact store first,
    /// if configured).
    ///
    /// # Errors
    ///
    /// I/O errors opening the artifact store.
    pub fn start(cfg: Config) -> std::io::Result<Scheduler> {
        let store = match &cfg.store_dir {
            Some(dir) => Some(ArtifactStore::open(dir, cfg.store_cap_bytes)?),
            None => None,
        };
        let inner = Arc::new(Inner {
            timeout: cfg.timeout,
            retry: cfg.retry,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            results: Mutex::new(HashMap::new()),
            done_cv: Condvar::new(),
            outstanding: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
            env: ExecEnv::with_faults(store, cfg.faults),
            stats: Mutex::new(SvcStats::default()),
            workers_n: cfg.workers.max(1),
            started: Instant::now(),
            busy_ns: AtomicU64::new(0),
            peak_queue: AtomicU64::new(0),
            queue_wait: Histogram::default(),
            engine_wall: Mutex::new(HashMap::new()),
            engine_counters: Mutex::new(HashMap::new()),
            breaker_cfg: cfg.breaker,
            breakers: Mutex::new(HashMap::new()),
            resilience: Mutex::new(ResilienceStats::default()),
            metrics: JobMetrics::resolve(),
            telemetry: Telemetry::new(&cfg.telemetry),
            contprof: Mutex::new(
                cfg.profile_window
                    .map(|w| ContProf::new(w, PROFILE_WINDOW_CAP)),
            ),
            alerts: Mutex::new(cfg.alerts.map(|spec| AlertRuntime {
                engine: AlertEngine::new(spec),
                last_seq: None,
                postmortem_dir: cfg.postmortem_dir.clone(),
            })),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("wabench-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        Ok(Scheduler { inner, workers })
    }

    /// Enqueues an untraced job; returns its id.
    pub fn submit(&self, spec: JobSpec) -> u64 {
        self.submit_traced(spec, TraceCtx::default())
    }

    /// Enqueues a job carrying a client trace context (protocol v7);
    /// returns its id. The context is echoed on the result's span
    /// digest so client spans can be stitched to server spans.
    pub fn submit_traced(&self, spec: JobSpec, ctx: TraceCtx) -> u64 {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        self.inner.outstanding.fetch_add(1, Ordering::SeqCst);
        {
            let mut queue = self.inner.queue.lock().expect("queue lock");
            queue.push_back(Queued {
                id,
                spec,
                enqueued: Instant::now(),
                ctx,
                enqueue_ns: obs::trace::now_ns(),
            });
            let depth = queue.len() as u64;
            self.inner.peak_queue.fetch_max(depth, Ordering::Relaxed);
            self.inner.metrics.queue_depth.set(depth);
        }
        self.inner.queue_cv.notify_one();
        {
            let mut stats = self.inner.stats.lock().expect("stats lock");
            stats.submitted += 1;
        }
        id
    }

    /// Non-blocking result lookup (result stays claimable by `wait`).
    pub fn poll(&self, id: u64) -> Option<JobResult> {
        self.inner
            .results
            .lock()
            .expect("results lock")
            .get(&id)
            .cloned()
    }

    /// Non-blocking result claim: removes and returns the result if the
    /// job has completed. The reactor front-end resolves parked `Wait`
    /// requests with this from its tick, so results don't accumulate
    /// the way repeated [`Scheduler::poll`] clones would let them.
    pub fn try_take(&self, id: u64) -> Option<JobResult> {
        self.inner
            .results
            .lock()
            .expect("results lock")
            .remove(&id)
    }

    /// Blocks until job `id` completes; removes and returns its result.
    pub fn wait(&self, id: u64) -> JobResult {
        let mut results = self.inner.results.lock().expect("results lock");
        loop {
            if let Some(res) = results.remove(&id) {
                return res;
            }
            results = self.inner.done_cv.wait(results).expect("results lock");
        }
    }

    /// Whether every submitted job has completed — the non-blocking
    /// counterpart of [`Scheduler::wait_idle`], polled by the reactor
    /// while draining for shutdown.
    pub fn idle(&self) -> bool {
        self.inner.outstanding.load(Ordering::SeqCst) == 0
    }

    /// Blocks until every submitted job has completed.
    pub fn wait_idle(&self) {
        let mut results = self.inner.results.lock().expect("results lock");
        while self.inner.outstanding.load(Ordering::SeqCst) != 0 {
            results = self.inner.done_cv.wait(results).expect("results lock");
        }
    }

    /// Waits for idle, then removes and returns all results sorted by
    /// id (= submission order).
    pub fn drain_sorted(&self) -> Vec<JobResult> {
        self.wait_idle();
        let mut out: Vec<JobResult> = self
            .inner
            .results
            .lock()
            .expect("results lock")
            .drain()
            .map(|(_, r)| r)
            .collect();
        out.sort_by_key(|r| r.id);
        out
    }

    /// Statistics snapshot (store counters folded in).
    pub fn stats(&self) -> SvcStats {
        let mut stats = *self.inner.stats.lock().expect("stats lock");
        if let Some(store) = &self.inner.env.store {
            stats.store = Some(store.lock().expect("store lock").stats());
        }
        stats
    }

    /// Extended statistics snapshot: the base counters plus queue depth,
    /// worker utilization, and latency histograms.
    pub fn stats_ext(&self) -> SvcStatsExt {
        let base = self.stats();
        let queue_depth = self.inner.queue.lock().expect("queue lock").len() as u64;
        let mut engine_wall: Vec<(u8, HistogramSnapshot)> = self
            .inner
            .engine_wall
            .lock()
            .expect("engine wall lock")
            .iter()
            .map(|(code, h)| (*code, h.snapshot()))
            .collect();
        engine_wall.sort_by_key(|(code, _)| *code);
        let mut engine_counters: Vec<(u8, EngineCounters)> = self
            .inner
            .engine_counters
            .lock()
            .expect("engine counters lock")
            .iter()
            .map(|(code, agg)| (*code, *agg))
            .collect();
        engine_counters.sort_by_key(|(code, _)| *code);
        SvcStatsExt {
            base,
            queue_depth,
            workers: self.inner.workers_n as u64,
            uptime_s: self.inner.started.elapsed().as_secs_f64(),
            busy_s: self.inner.busy_ns.load(Ordering::Relaxed) as f64 / 1e9,
            queue_wait: self.inner.queue_wait.snapshot(),
            engine_wall,
            engine_counters,
        }
    }

    /// Resilience counters (retries, fallbacks, repairs, fast-fails).
    pub fn resilience(&self) -> ResilienceStats {
        *self.inner.resilience.lock().expect("resilience lock")
    }

    /// Health snapshot: resilience counters, per-engine breaker states,
    /// and injected-fault tallies from the active plan (if any). Served
    /// over the wire by the protocol v4 `Health` request. Also pumps
    /// the alert engine, so health polls advance alert state.
    pub fn health(&self) -> HealthReport {
        pump_alerts(&self.inner);
        health_of(&self.inner)
    }

    /// Snapshot of the shared compiled-wasm cache.
    pub fn bytes_snapshot(&self) -> Vec<(String, wacc::OptLevel, Arc<[u8]>)> {
        self.inner.env.bytes_snapshot()
    }

    /// Live telemetry sample window (protocol v7 `Series`): empty but
    /// well-formed when the scheduler was started without a sampler.
    pub fn series(&self) -> SeriesReport {
        self.series_since(None)
    }

    /// Like [`Scheduler::series`], but with points at or below the
    /// `since` cursor filtered out (protocol v8): a watcher passes the
    /// last seq it saw and receives only the gap. Also pumps the alert
    /// engine, so watching a server advances alert state.
    pub fn series_since(&self, since: Option<u64>) -> SeriesReport {
        pump_alerts(&self.inner);
        let mut report = self.inner.telemetry.series();
        if let Some(seq) = since {
            report.points.retain(|p| p.seq > seq);
        }
        report
    }

    /// Recent and slow-request span digests (protocol v7 `TraceDump`).
    pub fn trace_dump(&self) -> TraceReport {
        self.inner.telemetry.trace_dump()
    }

    /// The continuous profiler's retained windows (protocol v8
    /// `ProfileDump`): `window_ns == 0` and no windows when the
    /// profiler is off.
    pub fn profile_dump(&self) -> ProfileReport {
        let prof = self.inner.contprof.lock().expect("contprof lock");
        ProfileReport {
            server_now_ns: obs::trace::now_ns(),
            window_ns: prof.as_ref().map_or(0, ContProf::window_ns),
            windows: prof.as_ref().map(ContProf::windows).unwrap_or_default(),
        }
    }

    /// The alert engine's firing set and transition log (protocol v8
    /// `AlertLog`), after pumping any unseen series points through the
    /// rules. Disarmed schedulers report `armed: false` and empty
    /// lists.
    pub fn alert_log(&self) -> AlertReport {
        pump_alerts(&self.inner);
        let slot = self.inner.alerts.lock().expect("alerts lock");
        match slot.as_ref() {
            Some(rt) => AlertReport {
                server_now_ns: obs::trace::now_ns(),
                armed: true,
                firing: rt.engine.firing(),
                events: rt.engine.log(),
            },
            None => AlertReport {
                server_now_ns: obs::trace::now_ns(),
                armed: false,
                firing: Vec::new(),
                events: Vec::new(),
            },
        }
    }

    /// Stops accepting work, drains queued jobs, joins the workers.
    pub fn shutdown(mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.inner.telemetry.stop();
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.inner.telemetry.stop();
    }
}

/// Assembles the health report from the shared scheduler state (used by
/// both the `Health` handler and the flight recorder).
fn health_of(inner: &Inner) -> HealthReport {
    let mut breakers: Vec<(u8, BreakerSnapshot)> = inner
        .breakers
        .lock()
        .expect("breakers lock")
        .iter()
        .map(|(code, b)| (*code, b.snapshot()))
        .collect();
    breakers.sort_by_key(|(code, _)| *code);
    let faults = match &inner.env.faults {
        Some(plan) => plan
            .injected()
            .into_iter()
            .map(|(site, n)| (site.code(), plan.rate(site), n))
            .collect(),
        None => Vec::new(),
    };
    HealthReport {
        resilience: *inner.resilience.lock().expect("resilience lock"),
        breakers,
        faults,
        queue_depth: inner.queue.lock().expect("queue lock").len() as u64,
        peak_queue_depth: inner.peak_queue.load(Ordering::Relaxed),
    }
}

/// Feeds any series points the alert engine has not seen through the
/// rules, and snapshots a postmortem bundle on each transition to
/// firing. A no-op (one uncontended lock) when alerts are disarmed.
///
/// Evaluation is pull-based: workers pump on job completion and the
/// server pumps on `Health`/`Series`/`AlertLog` requests, so alert
/// state advances deterministically with the observation stream rather
/// than on its own thread.
fn pump_alerts(inner: &Inner) {
    let mut slot = inner.alerts.lock().expect("alerts lock");
    let Some(rt) = slot.as_mut() else {
        return;
    };
    let report = inner.telemetry.series();
    for p in &report.points {
        if rt.last_seq.is_some_and(|seen| p.seq <= seen) {
            continue;
        }
        rt.last_seq = Some(p.seq);
        let phase_shares = inner
            .contprof
            .lock()
            .expect("contprof lock")
            .as_ref()
            .map(ContProf::current_shares)
            .unwrap_or_default();
        let observation = Observation {
            t_ns: p.t_ns,
            interval_ns: p.interval_ns,
            completed: p.completed,
            failed: p.failed,
            lat_count: p.lat.count,
            p99_ns: p.lat.p99_ns,
            lat_buckets: p.lat.buckets.clone(),
            queue_depth: p.queue_depth,
            breakers_open: p.breakers.iter().filter(|(_, s)| *s == 1).count() as u32,
            phase_shares,
        };
        for event in rt.engine.observe(observation) {
            match event.transition {
                Transition::Pending => obs::debug!(
                    "alert {} pending: {} (threshold {})",
                    event.rule,
                    event.value,
                    event.threshold
                ),
                Transition::Firing => {
                    obs::warn!(
                        "alert {} firing: {} (threshold {}) {}",
                        event.rule,
                        event.value,
                        event.threshold,
                        event.detail
                    );
                    if let Some(dir) = rt.postmortem_dir.clone() {
                        let firing = rt.engine.firing();
                        if let Err(e) =
                            write_postmortem(inner, &dir, &event, &firing, &report.points)
                        {
                            obs::error!("postmortem write failed: {e}");
                        }
                    }
                }
                Transition::Resolved => {
                    obs::info!("alert {} resolved", event.rule);
                }
            }
        }
    }
}

/// JSON string literal (quoted + escaped).
fn jstr(s: &str) -> String {
    format!("\"{}\"", obs::json::escape(s))
}

/// Snapshots the flight-recorder postmortem bundle for a firing alert:
/// the triggering rule and values, the recent series tail, slow-request
/// exemplars, the trace-log tail, the current profile window, and the
/// health report. Versioned JSON, one file per firing transition, named
/// by event seq + rule so simulated-clock reruns are byte-stable.
fn write_postmortem(
    inner: &Inner,
    dir: &Path,
    event: &AlertEvent,
    firing: &[obs::alert::FiringAlert],
    series_tail: &[SeriesPoint],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\"schema\":\"wabench-postmortem\",\"version\":1,");
    out.push_str(&format!(
        "\"alert\":{{\"seq\":{},\"t_ns\":{},\"rule\":{},\"value\":{},\"threshold\":{},\"detail\":{}}},",
        event.seq,
        event.t_ns,
        jstr(&event.rule),
        event.value,
        event.threshold,
        jstr(&event.detail)
    ));
    out.push_str("\"firing\":[");
    for (i, f) in firing.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"since_ns\":{},\"value\":{},\"threshold\":{},\"detail\":{}}}",
            jstr(&f.rule),
            f.since_ns,
            f.value,
            f.threshold,
            jstr(&f.detail)
        ));
    }
    out.push_str("],\"series\":[");
    let skip = series_tail.len().saturating_sub(POSTMORTEM_SERIES_TAIL);
    for (i, p) in series_tail.iter().skip(skip).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"seq\":{},\"t_ns\":{},\"interval_ns\":{},\"completed\":{},\"ok\":{},\"failed\":{},\"queue_depth\":{},\"busy_workers\":{},\"p50_ns\":{},\"p99_ns\":{}}}",
            p.seq,
            p.t_ns,
            p.interval_ns,
            p.completed,
            p.ok,
            p.failed,
            p.queue_depth,
            p.busy_workers,
            p.lat.p50_ns,
            p.lat.p99_ns
        ));
    }
    out.push_str("],");
    let dump = inner.telemetry.trace_dump();
    out.push_str("\"exemplars\":[");
    for (i, rec) in dump.exemplars.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"label\":{},\"total_ns\":{},\"attempts\":{},\"compile_fallback\":{}}}",
            jstr(&rec.label),
            rec.phases.done_ns.saturating_sub(rec.phases.enqueue_ns),
            rec.phases.attempts,
            rec.phases.compile_fallback
        ));
    }
    out.push_str("],\"trace_tail\":[");
    let skip = dump.recent.len().saturating_sub(POSTMORTEM_TRACE_TAIL);
    for (i, rec) in dump.recent.iter().skip(skip).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"label\":{},\"ok\":{},\"total_ns\":{}}}",
            jstr(&rec.label),
            rec.ok,
            rec.phases.done_ns.saturating_sub(rec.phases.enqueue_ns)
        ));
    }
    out.push_str("],");
    {
        let prof = inner.contprof.lock().expect("contprof lock");
        match prof.as_ref().and_then(|p| p.windows().into_iter().last()) {
            Some(w) => out.push_str(&format!(
                "\"profile\":{{\"window_ns\":{},\"seq\":{},\"folded\":{}}},",
                prof.as_ref().map_or(0, ContProf::window_ns),
                w.seq,
                jstr(&w.folded())
            )),
            None => out.push_str("\"profile\":null,"),
        }
    }
    let health = health_of(inner);
    out.push_str(&format!(
        "\"health\":{{\"retries\":{},\"compile_fallbacks\":{},\"store_repairs\":{},\"breaker_fast_fails\":{},\"queue_depth\":{},\"peak_queue_depth\":{},",
        health.resilience.retries,
        health.resilience.compile_fallbacks,
        health.resilience.store_repairs,
        health.resilience.breaker_fast_fails,
        health.queue_depth,
        health.peak_queue_depth
    ));
    out.push_str("\"breakers\":[");
    for (i, (code, b)) in health.breakers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"engine\":{},\"state\":{},\"trips\":{}}}",
            code,
            jstr(b.state.name()),
            b.trips
        ));
    }
    out.push_str("],\"faults\":[");
    for (i, (code, rate, injected)) in health.faults.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let site = fault::Site::from_code(*code).map_or("unknown", fault::Site::key);
        out.push_str(&format!(
            "{{\"site\":{},\"rate\":{},\"injected\":{}}}",
            jstr(site),
            rate,
            injected
        ));
    }
    out.push_str("]}}");
    std::fs::create_dir_all(dir)?;
    let name = format!("postmortem-{}-{}.json", event.seq, event.rule);
    std::fs::write(dir.join(name), out)
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let job = {
            // The span covers this worker's own blocking wait — a real,
            // non-overlapping region on its timeline. The *per-job* wait
            // (submit to dequeue, which may span a previous job on this
            // worker) goes into the queue_wait histogram instead.
            let _wait = obs::span!("svc.queue.wait");
            let mut queue = inner.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    inner.metrics.queue_depth.set(queue.len() as u64);
                    break Some(job);
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = inner.queue_cv.wait(queue).expect("queue lock");
            }
        };
        let Some(Queued {
            id,
            spec,
            enqueued,
            ctx,
            enqueue_ns,
        }) = job
        else {
            return;
        };
        inner
            .queue_wait
            .observe_ns(enqueued.elapsed().as_nanos() as u64);
        let _run = obs::span!(
            "svc.job.run",
            id = id,
            bench = spec.benchmark,
            engine = spec.engine.name(),
            level = spec.level
        );
        // Injected scheduling delay: sleeps before the job's deadline
        // clock starts, so it models queue pressure, not job slowness.
        if let Some(plan) = &inner.env.faults {
            // Backend-kill chaos: a `crash` site takes the whole daemon
            // down the moment a worker picks up a job. Unlike
            // `worker_panic` (caught and retried in-process) nothing
            // recovers here — the site exists so multi-node failover
            // can be exercised by arming one shard to die mid-load.
            if plan.transient(fault::Site::Crash) {
                eprintln!("wabench-served: injected crash (fault site `crash`); aborting");
                std::process::abort();
            }
            if let Some(delay) = plan.job_delay() {
                std::thread::sleep(delay);
            }
        }
        let t_run = Instant::now();
        let start_ns = obs::trace::now_ns();
        inner.metrics.busy.add(1);
        let mut result = run_with_retries(inner, id, &spec, t_run);
        inner.metrics.busy.sub(1);
        let done_ns = obs::trace::now_ns();
        result.id = id;
        result.trace = TraceDigest {
            trace_id: ctx.trace_id,
            origin_ns: ctx.origin_ns,
            enqueue_ns,
            start_ns,
            done_ns,
        };
        inner
            .busy_ns
            .fetch_add(t_run.elapsed().as_nanos() as u64, Ordering::Relaxed);
        inner
            .engine_wall
            .lock()
            .expect("engine wall lock")
            .entry(spec.engine.code())
            .or_default()
            .observe_ns((result.wall_s * 1e9) as u64);
        if result.ok() {
            if let Some(c) = &result.counters {
                let mut aggs = inner.engine_counters.lock().expect("engine counters lock");
                let agg = aggs.entry(spec.engine.code()).or_default();
                agg.jobs += 1;
                agg.counters.accumulate(c);
            }
        }
        {
            let mut stats = inner.stats.lock().expect("stats lock");
            stats.completed += 1;
            match &result.status {
                JobStatus::Ok => stats.ok += 1,
                JobStatus::Failed(_) => stats.failed += 1,
                JobStatus::Panicked(_) => stats.panicked += 1,
                JobStatus::TimedOut => stats.timed_out += 1,
            }
            if result.ok() && matches!(result.spec.mode, crate::job::JobMode::Exec) {
                if result.warm_artifact {
                    stats.warm_loads += 1;
                    stats.warm_load_s += result.compile_s;
                } else {
                    stats.cold_compiles += 1;
                    stats.cold_compile_s += result.compile_s;
                }
            }
        }
        {
            let mut res = inner.resilience.lock().expect("resilience lock");
            res.retries += result.recovery.retries() as u64;
            res.compile_fallbacks += result.recovery.compile_fallback as u64;
            res.store_repairs += result.recovery.store_repairs as u64;
        }
        // Registry metrics + trace log for the live-telemetry surface
        // (protocol v7 Series/TraceDump). The wall histogram measures
        // enqueue→done: the latency a waiting client actually observed.
        inner.metrics.completed.inc();
        if result.ok() {
            inner.metrics.ok.inc();
        } else {
            inner.metrics.failed.inc();
        }
        if let Some(c) = inner.metrics.engines.get(spec.engine.code() as usize) {
            c.inc();
        }
        inner
            .metrics
            .wall
            .observe_ns(done_ns.saturating_sub(enqueue_ns));
        inner.telemetry.record(TraceRecord {
            label: spec.to_string(),
            ok: result.ok(),
            phases: obs::stitch::ServerPhases {
                trace_id: ctx.trace_id,
                enqueue_ns,
                start_ns,
                done_ns,
                compile_ns: (result.compile_s.max(0.0) * 1e9) as u64,
                exec_ns: (result.exec_s.max(0.0) * 1e9) as u64,
                attempts: result.recovery.attempts,
                compile_fallback: result.recovery.compile_fallback,
                store_repairs: result.recovery.store_repairs,
            },
        });
        // Continuous profiler: fold the job's phase costs into the
        // current window (engine × phase wall self-time, plus simulated
        // counters when the job was profiled). Off by default.
        {
            let mut prof = inner.contprof.lock().expect("contprof lock");
            if let Some(prof) = prof.as_mut() {
                let engine = spec.engine.name();
                let compile_ns = (result.compile_s.max(0.0) * 1e9) as u64;
                let exec_ns = (result.exec_s.max(0.0) * 1e9) as u64;
                let (instructions, cycles) = result
                    .counters
                    .map_or((0, 0), |c| (c.instructions, c.cycles));
                if compile_ns > 0 {
                    prof.record(done_ns, engine, "compile", compile_ns, 0, 0);
                }
                if exec_ns > 0 || instructions > 0 {
                    prof.record(done_ns, engine, "exec", exec_ns, instructions, cycles);
                }
            }
        }
        {
            // Insert and decrement under the results lock: waiters check
            // `outstanding` while holding it, so publishing both under
            // the lock rules out a lost wakeup.
            let mut results = inner.results.lock().expect("results lock");
            results.insert(id, result);
            inner.outstanding.fetch_sub(1, Ordering::SeqCst);
        }
        inner.done_cv.notify_all();
        // Evaluate alert rules against any new telemetry samples (no-op
        // when disarmed). After the result is published, so a firing
        // alert's postmortem sees the job that tripped it.
        pump_alerts(inner);
    }
}

/// A zeroed failure result for a spec.
fn failed_result(spec: &JobSpec, status: JobStatus) -> JobResult {
    JobResult {
        id: 0,
        spec: spec.clone(),
        status,
        checksum: None,
        bytes_hash: 0,
        compile_s: 0.0,
        exec_s: 0.0,
        aot_compile_s: None,
        counters: None,
        warm_artifact: false,
        wall_s: 0.0,
        recovery: crate::job::Recovery::default(),
        trace: TraceDigest::default(),
    }
}

/// Drives one job to a final result: circuit-breaker admission, then up
/// to `retry.max_attempts` isolated attempts under one shared deadline
/// (`t_run + timeout`), with exponential backoff + deterministic jitter
/// between attempts. Failed and panicked attempts retry; a timeout is
/// final (the deadline is already spent).
fn run_with_retries(inner: &Arc<Inner>, id: u64, spec: &JobSpec, t_run: Instant) -> JobResult {
    let code = spec.engine.code();
    let admitted = {
        let mut breakers = inner.breakers.lock().expect("breakers lock");
        let b = breakers
            .entry(code)
            .or_insert_with(|| Breaker::new(inner.breaker_cfg));
        let admitted = b.admit();
        // Mirror the state into the telemetry gauge (admission may have
        // moved an open breaker to half-open).
        if let Some(g) = inner.metrics.breakers.get(code as usize) {
            g.set(b.snapshot().state.byte() as u64);
        }
        admitted
    };
    if !admitted {
        inner
            .resilience
            .lock()
            .expect("resilience lock")
            .breaker_fast_fails += 1;
        obs::metrics::counter("svc.breaker.fast_fail").inc();
        return failed_result(
            spec,
            JobStatus::Failed(format!(
                "circuit breaker open for {} (cooling down)",
                spec.engine.name()
            )),
        );
    }
    let deadline = t_run + inner.timeout;
    let mut attempt = 1u32;
    let mut result = loop {
        let result = run_isolated(inner, spec, attempt, deadline);
        if result.ok()
            || result.status == JobStatus::TimedOut
            || attempt >= inner.retry.max_attempts
        {
            break result;
        }
        // Exponential backoff with deterministic jitter, bounded by the
        // cap and by what's left of the deadline.
        let base = inner.retry.backoff_base.saturating_mul(1 << (attempt - 1));
        let base = base.min(inner.retry.backoff_cap);
        let jitter_ns = if base.is_zero() {
            0
        } else {
            fault::mix64(id ^ ((attempt as u64) << 48)) % (base.as_nanos() as u64 / 2 + 1)
        };
        let backoff = base + Duration::from_nanos(jitter_ns);
        let remaining = deadline.saturating_duration_since(Instant::now());
        if backoff >= remaining {
            break result;
        }
        obs::metrics::counter("svc.retry").inc();
        obs::debug!(
            "job {id} attempt {attempt} {}: retrying in {backoff:?}",
            match &result.status {
                JobStatus::Failed(m) | JobStatus::Panicked(m) => m.as_str(),
                _ => "failed",
            }
        );
        std::thread::sleep(backoff);
        attempt += 1;
    };
    result.recovery.attempts = attempt;
    let event = {
        let mut breakers = inner.breakers.lock().expect("breakers lock");
        let b = breakers.get_mut(&code).expect("breaker inserted above");
        let event = b.record(result.ok());
        if let Some(g) = inner.metrics.breakers.get(code as usize) {
            g.set(b.snapshot().state.byte() as u64);
        }
        event
    };
    if let Some(event) = event {
        let (counter, what) = match event {
            BreakerEvent::Opened => ("svc.breaker.open", "tripped open"),
            BreakerEvent::Reopened => ("svc.breaker.reopen", "re-opened (probe failed)"),
            BreakerEvent::Closed => ("svc.breaker.close", "closed (healed)"),
        };
        obs::metrics::counter(counter).inc();
        obs::warn!("circuit breaker for {} {what}", spec.engine.name());
    }
    result
}

/// Runs one attempt on a dedicated thread with panic isolation, bounded
/// by the job's remaining deadline. The engine instances the job builds
/// are `Rc`-based and live entirely on that thread.
fn run_isolated(inner: &Arc<Inner>, spec: &JobSpec, attempt: u32, deadline: Instant) -> JobResult {
    let (tx, rx) = mpsc::channel();
    let job_inner = Arc::clone(inner);
    let job_spec = spec.clone();
    let handle = std::thread::Builder::new()
        .name("wabench-job".to_string())
        .spawn(move || {
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                exec::execute_attempt(&job_spec, &job_inner.env, attempt)
            }));
            let _ = tx.send(outcome);
        })
        .expect("spawn job thread");
    let remaining = deadline.saturating_duration_since(Instant::now());
    match rx.recv_timeout(remaining) {
        Ok(Ok(result)) => {
            let _ = handle.join();
            result
        }
        Ok(Err(payload)) => {
            let _ = handle.join();
            // `&*payload`, not `&payload`: the latter would unsize the
            // Box itself into `dyn Any` and every downcast would miss.
            failed_result(spec, JobStatus::Panicked(panic_message(&*payload)))
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            // Abandon the thread; its late send goes nowhere.
            failed_result(spec, JobStatus::TimedOut)
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            let _ = handle.join();
            failed_result(spec, JobStatus::Panicked("job thread died".to_string()))
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobMode, Scale};
    use engines::EngineKind;
    use wacc::OptLevel;

    /// Regression test: every derived statistic on a freshly started
    /// (zero-job) scheduler must be a finite number, never NaN from a
    /// zero division.
    #[test]
    fn zero_job_stats_have_no_nan() {
        let sched = Scheduler::start(Config {
            workers: 2,
            ..Config::default()
        })
        .unwrap();
        let stats = sched.stats();
        assert_eq!(stats.cold_compile_avg_s(), 0.0);
        assert_eq!(stats.warm_load_avg_s(), 0.0);
        let ext = sched.stats_ext();
        assert_eq!(ext.queue_depth, 0);
        assert_eq!(ext.workers, 2);
        assert!(ext.utilization().is_finite());
        assert!((0.0..=1.0).contains(&ext.utilization()));
        assert_eq!(ext.queue_wait.count, 0);
        assert_eq!(ext.queue_wait.quantile_ns(0.99), 0);
        assert_eq!(ext.queue_wait.mean_ns(), 0.0);
        assert!(ext.engine_wall.is_empty());
        assert!(ext.engine_counters.is_empty());
        sched.shutdown();
    }

    /// Profiled jobs fold their simulated counters into per-engine
    /// aggregates; plain exec jobs do not contribute.
    #[test]
    fn profiled_jobs_aggregate_engine_counters() {
        let sched = Scheduler::start(Config {
            workers: 2,
            ..Config::default()
        })
        .unwrap();
        let profiled = |_| JobSpec {
            mode: JobMode::Profiled,
            ..JobSpec::exec("crc32", EngineKind::Wamr, OptLevel::O1, Scale::Test)
        };
        sched.submit(profiled(0));
        sched.submit(profiled(1));
        sched.submit(JobSpec::exec(
            "crc32",
            EngineKind::Wasm3,
            OptLevel::O1,
            Scale::Test,
        ));
        let results = sched.drain_sorted();
        assert!(results.iter().all(JobResult::ok));
        let per_job = results[0].counters.expect("profiled job has counters");
        let ext = sched.stats_ext();
        assert_eq!(ext.engine_counters.len(), 1, "exec job must not appear");
        let (code, agg) = ext.engine_counters[0];
        assert_eq!(code, EngineKind::Wamr.code());
        assert_eq!(agg.jobs, 2);
        // Same spec twice on a deterministic simulator: the sum is
        // exactly twice one job's counters.
        assert_eq!(agg.counters.instructions, 2 * per_job.instructions);
        assert!(agg.counters.ipc() > 0.0);
        sched.shutdown();
    }

    /// `stats_ext` on a scheduler that has run real jobs reports queue
    /// and per-engine latency distributions.
    #[test]
    fn stats_ext_tracks_real_jobs() {
        let sched = Scheduler::start(Config {
            workers: 2,
            ..Config::default()
        })
        .unwrap();
        for _ in 0..3 {
            sched.submit(JobSpec::exec(
                "crc32",
                EngineKind::Wasm3,
                OptLevel::O1,
                Scale::Test,
            ));
        }
        let results = sched.drain_sorted();
        assert!(results.iter().all(JobResult::ok));
        let ext = sched.stats_ext();
        assert_eq!(ext.base.completed, 3);
        assert_eq!(ext.queue_depth, 0);
        assert_eq!(ext.queue_wait.count, 3);
        assert!(ext.busy_s > 0.0);
        assert!(ext.uptime_s >= ext.busy_s / ext.workers as f64);
        let (code, wall) = &ext.engine_wall[0];
        assert_eq!(*code, EngineKind::Wasm3.code());
        assert_eq!(wall.count, 3);
        assert!(wall.mean_ns() > 0.0);
        sched.shutdown();
    }

    #[test]
    fn results_drain_in_submission_order() {
        let sched = Scheduler::start(Config {
            workers: 3,
            ..Config::default()
        })
        .unwrap();
        for kind in EngineKind::all() {
            sched.submit(JobSpec::exec("crc32", kind, OptLevel::O1, Scale::Test));
        }
        let results = sched.drain_sorted();
        assert_eq!(results.len(), 5);
        let ids: Vec<u64> = results.iter().map(|r| r.id).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert!(results.iter().all(JobResult::ok));
        sched.shutdown();
    }

    #[test]
    fn timeout_is_enforced() {
        let sched = Scheduler::start(Config {
            workers: 1,
            timeout: Duration::from_millis(100),
            ..Config::default()
        })
        .unwrap();
        let hang = JobSpec {
            mode: JobMode::SelfTestHang,
            ..JobSpec::exec("crc32", EngineKind::Wasm3, OptLevel::O0, Scale::Test)
        };
        let id = sched.submit(hang);
        let res = sched.wait(id);
        assert_eq!(res.status, JobStatus::TimedOut);
        sched.shutdown();
    }
}
