//! Unix-domain-socket front end for the scheduler, plus a blocking
//! client.
//!
//! [`serve`] runs the nonblocking [`crate::reactor`]: one thread
//! multiplexes every connection, `Wait` requests park instead of
//! pinning a thread, and pipelined frames are first-class. The old
//! thread-per-connection path survives as [`serve_threaded`] — it is
//! the QPS baseline the reactor is measured against in
//! `scripts/verify.sh`, and a fallback while the reactor soaks.
//! A `Shutdown` request drains the scheduler and stops either loop.

use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::job::{JobSpec, TraceCtx};
use crate::proto::{BackendsReport, Request, Response};
use crate::reactor::{Action, Handler, Resolution, Token};
use crate::scheduler::{HealthReport, Scheduler, SvcStats, SvcStatsExt};
use crate::telemetry::{AlertReport, ProfileReport, SeriesReport, TraceReport};
use crate::wire::{read_frame, write_frame};
use crate::JobResult;

/// Removes the socket file when the server exits, on *every* path out
/// of [`serve`] — normal shutdown, accept errors, panics. Before this
/// guard existed a crashed server left a stale socket behind, and the
/// next start papered over it by unconditionally unlinking (which would
/// also tear the socket out from under a *live* server).
///
/// Public so other daemons speaking this protocol (`wabench-router`)
/// get identical socket hygiene.
pub struct SocketGuard(PathBuf);

impl SocketGuard {
    /// Guards `path`: it is unlinked when the guard drops.
    pub fn new(path: &Path) -> SocketGuard {
        SocketGuard(PathBuf::from(path))
    }
}

impl Drop for SocketGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Binds a listener at `path`, handling leftover socket files safely:
/// if a file is already there, probe it with a connect — a live server
/// answers and we refuse to usurp it (`AddrInUse`); a dead one (stale
/// socket from a crashed server) gets unlinked and the bind retried.
///
/// # Errors
///
/// I/O errors binding, including `AddrInUse` for a live socket.
pub fn bind_socket(path: &Path) -> io::Result<UnixListener> {
    match UnixListener::bind(path) {
        Ok(l) => Ok(l),
        Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
            if UnixStream::connect(path).is_ok() {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("a server is already listening on {}", path.display()),
                ));
            }
            std::fs::remove_file(path)?;
            UnixListener::bind(path)
        }
        Err(e) => Err(e),
    }
}

/// Serves `sched` on a Unix socket at `path` until a client sends
/// `Shutdown`, multiplexing every connection on one thread with the
/// nonblocking [`crate::reactor`]. A stale socket file at `path` (no
/// listener behind it) is replaced; a live one makes the bind fail with
/// `AddrInUse`. The socket file is removed on every exit path,
/// including errors.
///
/// # Errors
///
/// I/O errors binding or polling the socket, including `AddrInUse`
/// when another server already owns `path`.
pub fn serve(path: &Path, sched: Arc<Scheduler>) -> io::Result<()> {
    let listener = bind_socket(path)?;
    let _guard = SocketGuard(PathBuf::from(path));
    let mut handler = SchedHandler {
        sched,
        waits: Vec::new(),
        shutdowns: Vec::new(),
        parked: obs::metrics::gauge("svc.wait.parked"),
    };
    crate::reactor::run(&listener, &mut handler)
}

/// Adapts the [`Scheduler`] to the reactor's [`Handler`] contract.
///
/// Everything except `Wait` and `Shutdown` answers synchronously (the
/// scheduler's query paths are lock-bounded, never job-bounded).
/// `Wait` parks until the job's result is claimable; `Shutdown` parks
/// until the scheduler drains, then resolves to `Bye` and stops the
/// reactor.
struct SchedHandler {
    sched: Arc<Scheduler>,
    /// Parked `Wait`s: (response slot, job id).
    waits: Vec<(Token, u64)>,
    /// Parked `Shutdown`s, resolved together once the scheduler is
    /// idle. More than one is possible (two clients racing to stop the
    /// server); each gets its `Bye`.
    shutdowns: Vec<Token>,
    /// Gauge `svc.wait.parked`: currently parked `Wait` requests.
    parked: Arc<obs::metrics::Gauge>,
}

impl SchedHandler {
    fn dispatch(&mut self, token: Token, payload: &[u8]) -> Action {
        let sched = &self.sched;
        let response = match Request::decode(payload) {
            Err(e) => Response::Err(e.to_string()),
            Ok(Request::Ping) => Response::Pong,
            Ok(Request::Submit(spec, ctx)) => Response::Submitted(sched.submit_traced(spec, ctx)),
            Ok(Request::Poll(id)) => match sched.poll(id) {
                Some(res) => Response::Result(res),
                None => Response::Pending,
            },
            Ok(Request::Wait(id)) => match sched.try_take(id) {
                Some(res) => Response::Result(res),
                None => {
                    self.waits.push((token, id));
                    self.parked.set(self.waits.len() as u64);
                    return Action::Park;
                }
            },
            Ok(Request::Stats) => Response::Stats(sched.stats()),
            Ok(Request::StatsExt) => Response::StatsExt(Box::new(sched.stats_ext())),
            Ok(Request::Health) => Response::Health(sched.health()),
            Ok(Request::Series(since)) => Response::Series(sched.series_since(since)),
            Ok(Request::TraceDump) => Response::TraceDump(sched.trace_dump()),
            Ok(Request::ProfileDump) => Response::ProfileDump(sched.profile_dump()),
            Ok(Request::AlertLog) => Response::AlertLog(sched.alert_log()),
            Ok(Request::Backends) => Response::Err(
                "backends: this server is a single shard, not a router; \
                 see docs/DEPLOYMENT.md"
                    .to_string(),
            ),
            Ok(Request::Shutdown) => {
                if sched.idle() {
                    return Action::Bye(Response::Bye.encode());
                }
                self.shutdowns.push(token);
                return Action::Park;
            }
        };
        Action::Respond(response.encode())
    }
}

impl Handler for SchedHandler {
    fn handle(&mut self, token: Token, payload: &[u8]) -> Action {
        self.dispatch(token, payload)
    }

    fn tick(&mut self, done: &mut Vec<(Token, Resolution)>) {
        let sched = &self.sched;
        self.waits.retain(|(token, id)| match sched.try_take(*id) {
            Some(res) => {
                done.push((*token, Resolution::Respond(Response::Result(res).encode())));
                false
            }
            None => true,
        });
        self.parked.set(self.waits.len() as u64);
        if !self.shutdowns.is_empty() && sched.idle() {
            for token in self.shutdowns.drain(..) {
                done.push((token, Resolution::Bye(Response::Bye.encode())));
            }
        }
    }

    fn conn_closed(&mut self, conn: u64) {
        self.waits.retain(|(token, _)| token.conn != conn);
        self.shutdowns.retain(|token| token.conn != conn);
    }

    fn parked(&self) -> bool {
        !self.waits.is_empty() || !self.shutdowns.is_empty()
    }
}

/// Serves `sched` with the pre-reactor thread-per-connection loop
/// (`wabench-served serve --threaded`). Kept as the measured baseline
/// for the reactor's QPS acceptance gate and as an escape hatch;
/// protocol behavior is identical except that parked `Wait`s each pin
/// a thread.
///
/// # Errors
///
/// I/O errors binding or accepting on the socket, including `AddrInUse`
/// when another server already owns `path`.
pub fn serve_threaded(path: &Path, sched: Arc<Scheduler>) -> io::Result<()> {
    let listener = bind_socket(path)?;
    let _guard = SocketGuard(PathBuf::from(path));
    let stop = Arc::new(AtomicBool::new(false));
    // Each connection is (handle, done-flag). The flag lets the accept
    // loop reap *completed* handler threads without blocking on live
    // ones — before this, every connection's JoinHandle (and thread
    // stack) accumulated until shutdown, an unbounded leak under
    // long-lived servers taking many short connections.
    let mut conns: Vec<(std::thread::JoinHandle<()>, Arc<AtomicBool>)> = Vec::new();
    let reaped = obs::metrics::counter("svc.conn.reaped");
    let serve_loop = |conns: &mut Vec<(std::thread::JoinHandle<()>, Arc<AtomicBool>)>| -> io::Result<()> {
        for stream in listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            let mut i = 0;
            while i < conns.len() {
                if conns[i].1.load(Ordering::Acquire) {
                    let (handle, _) = conns.swap_remove(i);
                    let _ = handle.join();
                    reaped.inc();
                } else {
                    i += 1;
                }
            }
            let sched = Arc::clone(&sched);
            let conn_stop = Arc::clone(&stop);
            let sock = PathBuf::from(path);
            let done = Arc::new(AtomicBool::new(false));
            let conn_done = Arc::clone(&done);
            conns.push((
                std::thread::spawn(move || {
                    let _ = handle_conn(stream, &sched, &conn_stop, &sock);
                    conn_done.store(true, Ordering::Release);
                }),
                done,
            ));
            if stop.load(Ordering::SeqCst) {
                break;
            }
        }
        Ok(())
    };
    let outcome = serve_loop(&mut conns);
    for (c, _) in conns {
        let _ = c.join();
    }
    outcome
}

fn handle_conn(
    mut stream: UnixStream,
    sched: &Scheduler,
    stop: &AtomicBool,
    sock: &Path,
) -> io::Result<()> {
    while let Some(payload) = read_frame(&mut stream)? {
        let response = match Request::decode(&payload) {
            Err(e) => Response::Err(e.to_string()),
            Ok(Request::Ping) => Response::Pong,
            Ok(Request::Submit(spec, ctx)) => Response::Submitted(sched.submit_traced(spec, ctx)),
            Ok(Request::Poll(id)) => match sched.poll(id) {
                Some(res) => Response::Result(res),
                None => Response::Pending,
            },
            Ok(Request::Wait(id)) => Response::Result(sched.wait(id)),
            Ok(Request::Stats) => Response::Stats(sched.stats()),
            Ok(Request::StatsExt) => Response::StatsExt(Box::new(sched.stats_ext())),
            Ok(Request::Health) => Response::Health(sched.health()),
            Ok(Request::Series(since)) => Response::Series(sched.series_since(since)),
            Ok(Request::TraceDump) => Response::TraceDump(sched.trace_dump()),
            Ok(Request::ProfileDump) => Response::ProfileDump(sched.profile_dump()),
            Ok(Request::AlertLog) => Response::AlertLog(sched.alert_log()),
            Ok(Request::Backends) => Response::Err(
                "backends: this server is a single shard, not a router; \
                 see docs/DEPLOYMENT.md"
                    .to_string(),
            ),
            Ok(Request::Shutdown) => {
                sched.wait_idle();
                stop.store(true, Ordering::SeqCst);
                write_frame(&mut stream, &Response::Bye.encode())?;
                // Unblock the accept loop with a throwaway connection.
                let _ = UnixStream::connect(sock);
                return Ok(());
            }
        };
        write_frame(&mut stream, &response.encode())?;
    }
    Ok(())
}

/// Outcome of a submit against a server that may shed load
/// (protocol v9): a router under admission control answers `Busy`
/// instead of accepting the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submission {
    /// The job was accepted; carry this id to `wait`/`poll`.
    Accepted(u64),
    /// The server shed the job; retry no sooner than the hinted
    /// backoff.
    Busy {
        /// Server's suggested retry delay, milliseconds.
        retry_after_ms: u32,
    },
}

/// A blocking protocol client.
#[derive(Debug)]
pub struct Client {
    stream: UnixStream,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// I/O errors connecting to the socket.
    pub fn connect(path: &Path) -> io::Result<Client> {
        Ok(Client {
            stream: UnixStream::connect(path)?,
        })
    }

    /// Sends one request, reads one response.
    ///
    /// # Errors
    ///
    /// I/O errors, a malformed response, or server-side `Err`.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &req.encode())?;
        let payload = read_frame(&mut self.stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server hung up"))?;
        let resp = Response::decode(&payload)?;
        if let Response::Err(msg) = &resp {
            return Err(io::Error::other(format!("server error: {msg}")));
        }
        Ok(resp)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// I/O or protocol errors.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Submits an untraced job, returning its id.
    ///
    /// # Errors
    ///
    /// I/O or protocol errors.
    pub fn submit(&mut self, spec: JobSpec) -> io::Result<u64> {
        self.submit_traced(spec, TraceCtx::default())
    }

    /// Submits a job carrying a client trace context (protocol v7),
    /// returning its id. An untraced (default) context encodes exactly
    /// like a v6 submit, so this also works against older servers.
    ///
    /// # Errors
    ///
    /// I/O or protocol errors.
    pub fn submit_traced(&mut self, spec: JobSpec, ctx: TraceCtx) -> io::Result<u64> {
        match self.request(&Request::Submit(spec, ctx))? {
            Response::Submitted(id) => Ok(id),
            other => Err(unexpected(&other)),
        }
    }

    /// Submits a traced job against a server that may shed load
    /// (protocol v9). A `Busy` answer is a *successful* exchange — the
    /// job was refused, not lost in transit — so it comes back as
    /// [`Submission::Busy`] rather than an error. Single-shard servers
    /// never answer `Busy`.
    ///
    /// # Errors
    ///
    /// I/O or protocol errors.
    pub fn try_submit_traced(&mut self, spec: JobSpec, ctx: TraceCtx) -> io::Result<Submission> {
        match self.request(&Request::Submit(spec, ctx))? {
            Response::Submitted(id) => Ok(Submission::Accepted(id)),
            Response::Busy(retry_after_ms) => Ok(Submission::Busy { retry_after_ms }),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the router's per-backend routing table (protocol v9).
    ///
    /// # Errors
    ///
    /// I/O or protocol errors; single-shard servers answer `Err`.
    pub fn backends(&mut self) -> io::Result<BackendsReport> {
        match self.request(&Request::Backends)? {
            Response::Backends(b) => Ok(b),
            other => Err(unexpected(&other)),
        }
    }

    /// Blocks until job `id` finishes; returns its result.
    ///
    /// # Errors
    ///
    /// I/O or protocol errors.
    pub fn wait(&mut self, id: u64) -> io::Result<JobResult> {
        match self.request(&Request::Wait(id))? {
            Response::Result(res) => Ok(res),
            other => Err(unexpected(&other)),
        }
    }

    /// Non-blocking result query.
    ///
    /// # Errors
    ///
    /// I/O or protocol errors.
    pub fn poll(&mut self, id: u64) -> io::Result<Option<JobResult>> {
        match self.request(&Request::Poll(id))? {
            Response::Result(res) => Ok(Some(res)),
            Response::Pending => Ok(None),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches service statistics.
    ///
    /// # Errors
    ///
    /// I/O or protocol errors.
    pub fn stats(&mut self) -> io::Result<SvcStats> {
        match self.request(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches extended statistics (protocol v2: queue depth, worker
    /// utilization, latency histograms).
    ///
    /// # Errors
    ///
    /// I/O or protocol errors; pre-v2 servers answer `Err`.
    pub fn stats_ext(&mut self) -> io::Result<SvcStatsExt> {
        match self.request(&Request::StatsExt)? {
            Response::StatsExt(s) => Ok(*s),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the resilience health report (protocol v4: retry /
    /// fallback / repair counters, circuit-breaker states, active
    /// fault-injection sites).
    ///
    /// # Errors
    ///
    /// I/O or protocol errors; pre-v4 servers answer `Err`.
    pub fn health(&mut self) -> io::Result<HealthReport> {
        match self.request(&Request::Health)? {
            Response::Health(h) => Ok(h),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the live telemetry sample window (protocol v7). Empty
    /// when the server runs without a sampler.
    ///
    /// # Errors
    ///
    /// I/O or protocol errors; pre-v7 servers answer `Err`.
    pub fn series(&mut self) -> io::Result<SeriesReport> {
        self.series_since(None)
    }

    /// Fetches the sample window after the `since` cursor (protocol
    /// v8): only points with a greater seq come back. `None` fetches
    /// the whole window and encodes exactly like a v7 request, so it
    /// also works against v7 servers (which ignore no cursor — a
    /// cursored request to a v7 server fails to decode there).
    ///
    /// # Errors
    ///
    /// I/O or protocol errors; pre-v7 servers answer `Err`.
    pub fn series_since(&mut self, since: Option<u64>) -> io::Result<SeriesReport> {
        match self.request(&Request::Series(since))? {
            Response::Series(s) => Ok(s),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the continuous profiler's retained windows (protocol
    /// v8). `window_ns == 0` means the profiler is off.
    ///
    /// # Errors
    ///
    /// I/O or protocol errors; pre-v8 servers answer `Err`.
    pub fn profile_dump(&mut self) -> io::Result<ProfileReport> {
        match self.request(&Request::ProfileDump)? {
            Response::ProfileDump(p) => Ok(p),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the alert engine's firing set and transition log
    /// (protocol v8), pumping pending observations through the rules
    /// server-side first.
    ///
    /// # Errors
    ///
    /// I/O or protocol errors; pre-v8 servers answer `Err`.
    pub fn alert_log(&mut self) -> io::Result<AlertReport> {
        match self.request(&Request::AlertLog)? {
            Response::AlertLog(a) => Ok(a),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches recent and slow-request server span digests for
    /// client-side stitching (protocol v7).
    ///
    /// # Errors
    ///
    /// I/O or protocol errors; pre-v7 servers answer `Err`.
    pub fn trace_dump(&mut self) -> io::Result<TraceReport> {
        match self.request(&Request::TraceDump)? {
            Response::TraceDump(t) => Ok(t),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to drain and stop.
    ///
    /// # Errors
    ///
    /// I/O or protocol errors.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.request(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response {resp:?}"),
    )
}
