//! Content hashing for artifact-store keys.
//!
//! FNV-1a over the full byte content: cheap, dependency-free, and stable
//! across builds (the store's on-disk names must not change between
//! compiler versions, which rules out `DefaultHasher`). This is an
//! integrity/cache hash, not a cryptographic one — the store also
//! checksums payloads and re-validates AOT artifacts through the
//! untrusted decode path, so a colliding or tampered entry degrades to a
//! cache miss, never to wrong code.

/// 64-bit FNV-1a of `bytes`.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fixed-width lowercase hex of a 64-bit hash (file-name friendly).
pub fn hex16(h: u64) -> String {
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv64(b"ab"), fnv64(b"ba"));
    }

    #[test]
    fn hex_is_fixed_width() {
        assert_eq!(hex16(0), "0000000000000000");
        assert_eq!(hex16(0xdead_beef), "00000000deadbeef");
        assert_eq!(hex16(u64::MAX).len(), 16);
    }
}
