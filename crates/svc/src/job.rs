//! Job and result types: the unit of work the service schedules.

use engines::EngineKind;
use serde::{Deserialize, Serialize};
use suite::Benchmark;
use wacc::OptLevel;

/// Workload scale, mirroring the harness's measurement contexts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// Tiny (CI / smoke).
    Test,
    /// Medium (the harness default).
    Profile,
    /// Large (timing runs).
    Timing,
}

impl Scale {
    /// The benchmark's scale argument at this scale.
    pub fn arg(self, b: &Benchmark) -> i32 {
        match self {
            Scale::Test => b.sizes.test,
            Scale::Profile => b.sizes.profile,
            Scale::Timing => b.sizes.timing,
        }
    }

    /// Stable wire byte.
    pub fn byte(self) -> u8 {
        match self {
            Scale::Test => 0,
            Scale::Profile => 1,
            Scale::Timing => 2,
        }
    }

    /// Decodes a wire byte.
    pub fn from_byte(b: u8) -> Option<Scale> {
        Some(match b {
            0 => Scale::Test,
            1 => Scale::Profile,
            2 => Scale::Timing,
            _ => return None,
        })
    }

    /// Parses a CLI spelling.
    pub fn parse(s: &str) -> Option<Scale> {
        Some(match s {
            "test" => Scale::Test,
            "profile" => Scale::Profile,
            "timing" => Scale::Timing,
            _ => return None,
        })
    }
}

/// What measurement a job takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobMode {
    /// Compile + instantiate + run, wall-clock split (fig1/fig2/fig4
    /// semantics — always a fresh compile, mirroring the serial runner).
    Exec,
    /// AOT: precompile (timed), load artifact (timed), run (fig3).
    ExecAot,
    /// Compile + run under the architectural simulator (fig6–fig9);
    /// fully deterministic counters.
    Profiled,
    /// The native-baseline simulated run (best-code tier, no compile
    /// events), as `runner::run_native_profiled`.
    ProfiledNative,
    /// Test-only: panics inside the job ("injected checksum mismatch").
    SelfTestPanic,
    /// Test-only: sleeps ~2s to exercise the per-job timeout.
    SelfTestHang,
    /// Test-only: panics on the first attempt, succeeds on any retry —
    /// exercises the scheduler's retry policy end to end.
    SelfTestFlaky,
}

impl JobMode {
    /// Stable wire byte.
    pub fn byte(self) -> u8 {
        match self {
            JobMode::Exec => 0,
            JobMode::ExecAot => 1,
            JobMode::Profiled => 2,
            JobMode::ProfiledNative => 3,
            JobMode::SelfTestPanic => 4,
            JobMode::SelfTestHang => 5,
            JobMode::SelfTestFlaky => 6,
        }
    }

    /// Decodes a wire byte.
    pub fn from_byte(b: u8) -> Option<JobMode> {
        Some(match b {
            0 => JobMode::Exec,
            1 => JobMode::ExecAot,
            2 => JobMode::Profiled,
            3 => JobMode::ProfiledNative,
            4 => JobMode::SelfTestPanic,
            5 => JobMode::SelfTestHang,
            6 => JobMode::SelfTestFlaky,
            _ => return None,
        })
    }
}

/// One schedulable unit: which benchmark, on which engine, compiled how,
/// at what scale, measured how.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Registered benchmark name (`suite::by_name`).
    pub benchmark: String,
    /// Engine to run on (ignored by `ProfiledNative`).
    pub engine: EngineKind,
    /// WaCC optimization level.
    pub level: OptLevel,
    /// Workload scale.
    pub scale: Scale,
    /// Measurement mode.
    pub mode: JobMode,
    /// Service mode: consult the artifact store for AOT artifacts in
    /// `Exec` jobs (warm hits load instead of compiling). Off for
    /// measurement-fidelity runs, where compiles must be fresh.
    pub warm: bool,
}

impl JobSpec {
    /// A fresh-compile `Exec` job (the measurement-fidelity default).
    pub fn exec(benchmark: &str, engine: EngineKind, level: OptLevel, scale: Scale) -> JobSpec {
        JobSpec {
            benchmark: benchmark.to_string(),
            engine,
            level,
            scale,
            mode: JobMode::Exec,
            warm: false,
        }
    }
}

impl std::fmt::Display for JobSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} on {} at {} ({:?}, {:?}{})",
            self.benchmark,
            self.engine.name(),
            self.level,
            self.scale,
            self.mode,
            if self.warm { ", warm" } else { "" }
        )
    }
}

/// Client-originated trace context carried alongside a submit.
///
/// `trace_id == 0` means "untraced" (legacy v6 clients, or callers that
/// do not stitch); the scheduler still records a digest, it just cannot
/// be joined against client spans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceCtx {
    /// 64-bit trace id minted by the client (the stitch join key).
    pub trace_id: u64,
    /// The request's intended-arrival time on the client's trace clock
    /// (`obs::trace::now_ns`), for client-side bookkeeping. The server
    /// echoes it untouched; it is meaningless on the server clock.
    pub origin_ns: u64,
}

/// The compact per-job span digest the scheduler stamps on every
/// [`JobResult`]: where the request's wall time went, on the *server's*
/// trace clock ([`obs::trace::now_ns`] in the server process), plus the
/// echoed client context. Together with a clock-offset estimate this is
/// enough to place queue-wait/compile/execute spans on the client's
/// timeline (`obs::stitch`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceDigest {
    /// Echoed client trace id (0 = untraced submit).
    pub trace_id: u64,
    /// Echoed client origin timestamp.
    pub origin_ns: u64,
    /// Server trace clock when the job entered the queue.
    pub enqueue_ns: u64,
    /// Server trace clock when a worker picked the job up.
    pub start_ns: u64,
    /// Server trace clock when the job finished.
    pub done_ns: u64,
}

impl TraceDigest {
    /// Nanoseconds the job waited in queue.
    pub fn queue_ns(&self) -> u64 {
        self.start_ns.saturating_sub(self.enqueue_ns)
    }
}

/// How a job ended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobStatus {
    /// Completed with a verified checksum.
    Ok,
    /// Failed cleanly (unknown benchmark, compile error, trap, ...).
    Failed(String),
    /// The job panicked (e.g. checksum mismatch); the panic was caught
    /// at the job boundary and the fleet kept running.
    Panicked(String),
    /// The job exceeded the scheduler's per-job timeout.
    TimedOut,
}

/// What the resilience layer did to get a job to completion. Attached
/// to every [`JobResult`]; a default value means "clean first-attempt
/// run, nothing recovered".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Recovery {
    /// Attempts the scheduler made (1 = no retries).
    pub attempts: u32,
    /// The JIT compile failed and the job fell back to the interpreter
    /// tier — the result is correct but its timings measure the wrong
    /// tier, so callers must treat the cell as degraded.
    pub compile_fallback: bool,
    /// Corrupt store entries this job detected, recompiled, and wrote
    /// back in place.
    pub store_repairs: u32,
}

impl Default for Recovery {
    fn default() -> Recovery {
        Recovery {
            attempts: 1,
            compile_fallback: false,
            store_repairs: 0,
        }
    }
}

impl Recovery {
    /// Retries beyond the first attempt.
    pub fn retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }
}

/// The three-way verdict callers branch on: a job is either clean,
/// correct-but-degraded, or failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Succeeded with full measurement fidelity (retries and store
    /// repairs reproduce identical values, so they stay clean).
    Clean,
    /// Succeeded, but through a fallback that changes what the timings
    /// measure; the checksum is still verified.
    Degraded,
    /// Did not produce a usable result.
    Failed,
}

/// The structured record a completed job produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// Scheduler-assigned id (submission order; results sorted by id
    /// reproduce serial order).
    pub id: u64,
    /// The spec that ran.
    pub spec: JobSpec,
    /// Outcome.
    pub status: JobStatus,
    /// The i32 checksum the run produced (matches the native mirror).
    pub checksum: Option<i32>,
    /// FNV-1a of the compiled wasm bytes the job ran (0 if it never got
    /// that far). Lets callers key caches without re-hashing.
    pub bytes_hash: u64,
    /// Seconds in decode+validate+compile/translate (or artifact load
    /// when `warm_artifact`).
    pub compile_s: f64,
    /// Seconds executing (instantiate + run).
    pub exec_s: f64,
    /// AOT precompilation seconds (`ExecAot` only).
    pub aot_compile_s: Option<f64>,
    /// Simulated counters (`Profiled` / `ProfiledNative` only).
    pub counters: Option<archsim::Counters>,
    /// Whether `compile_s` measured a warm artifact-store load rather
    /// than a cold compile.
    pub warm_artifact: bool,
    /// End-to-end wall seconds inside the job.
    pub wall_s: f64,
    /// What the resilience layer did (retries, fallbacks, repairs).
    pub recovery: Recovery,
    /// Span digest: phase timestamps on the server trace clock plus the
    /// echoed client trace context (all-zero for legacy v6 frames).
    pub trace: TraceDigest,
}

impl JobResult {
    /// Whether the job completed successfully.
    pub fn ok(&self) -> bool {
        self.status == JobStatus::Ok
    }

    /// Whether the result is correct but measured through a degradation
    /// path (currently: interpreter fallback after a JIT compile
    /// failure).
    pub fn degraded(&self) -> bool {
        self.ok() && self.recovery.compile_fallback
    }

    /// The clean/degraded/failed verdict.
    pub fn outcome(&self) -> Outcome {
        if !self.ok() {
            Outcome::Failed
        } else if self.degraded() {
            Outcome::Degraded
        } else {
            Outcome::Clean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_and_mode_bytes_round_trip() {
        for s in [Scale::Test, Scale::Profile, Scale::Timing] {
            assert_eq!(Scale::from_byte(s.byte()), Some(s));
        }
        assert_eq!(Scale::from_byte(7), None);
        for m in [
            JobMode::Exec,
            JobMode::ExecAot,
            JobMode::Profiled,
            JobMode::ProfiledNative,
            JobMode::SelfTestPanic,
            JobMode::SelfTestHang,
            JobMode::SelfTestFlaky,
        ] {
            assert_eq!(JobMode::from_byte(m.byte()), Some(m));
        }
        assert_eq!(JobMode::from_byte(99), None);
    }

    #[test]
    fn spec_displays_readably() {
        let spec = JobSpec::exec("crc32", EngineKind::Wasmtime, OptLevel::O2, Scale::Test);
        let s = format!("{spec}");
        assert!(s.contains("crc32") && s.contains("Wasmtime") && s.contains("-O2"));
    }
}
