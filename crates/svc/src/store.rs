//! Content-addressed, on-disk artifact store.
//!
//! Entries are keyed by `(content hash, opt level, engine)` and hold
//! either compiled `.wasm` bytes from WaCC (`engine: None` — shared by
//! every runtime) or an engine AOT artifact produced by
//! `Engine::precompile` (`engine: Some(kind)` — the tier is implied by
//! the engine). Each entry is one file with a versioned header and an
//! FNV-1a payload checksum:
//!
//! ```text
//! magic "WSVA" | version u32 | content_hash u64 | level u8 | engine u8
//! | payload_len u64 | payload_fnv u64 | payload bytes
//! ```
//!
//! Anything that fails the header or checksum check is rejected and the
//! file removed — a corrupt entry is a cache miss, never bad data. AOT
//! payloads get a second, semantic line of defense at the consumer:
//! `jit::aot::from_bytes` re-validates the decoded code through the
//! untrusted `RegCode::try_new` path, so even a checksum-valid but
//! hand-tampered artifact cannot reach execution.
//!
//! The store is size-capped: inserts evict least-recently-used entries
//! (hits refresh recency) until the total payload fits. A single entry
//! larger than the cap is kept — the cap bounds steady-state disk use,
//! not the largest artifact.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Read};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::SystemTime;

use engines::EngineKind;
use fault::{FaultPlan, Site};
use wacc::OptLevel;

use crate::hash::{fnv64, hex16};
use crate::wire::{engine_byte, engine_from_byte, level_byte, level_from_byte};

const MAGIC: &[u8; 4] = b"WSVA";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 4 + 4 + 8 + 1 + 1 + 8 + 8;

/// A store key: what content, compiled how, for which engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArtifactKey {
    /// FNV-1a of the input content: WaCC source for wasm entries, wasm
    /// binary bytes for AOT entries.
    pub content_hash: u64,
    /// WaCC optimization level the content was compiled at.
    pub level: OptLevel,
    /// `None` for compiled wasm bytes; `Some` for an engine AOT
    /// artifact (the engine implies backend and tier).
    pub engine: Option<EngineKind>,
}

impl ArtifactKey {
    /// Key for WaCC-compiled wasm bytes of a source.
    pub fn wasm(source: &str, level: OptLevel) -> ArtifactKey {
        ArtifactKey {
            content_hash: fnv64(source.as_bytes()),
            level,
            engine: None,
        }
    }

    /// Key for an engine AOT artifact of a wasm module.
    pub fn aot(wasm_bytes: &[u8], level: OptLevel, engine: EngineKind) -> ArtifactKey {
        ArtifactKey {
            content_hash: fnv64(wasm_bytes),
            level,
            engine: Some(engine),
        }
    }

    /// The on-disk file stem: hex of the hash over the key encoding.
    /// The entry file for this key lives at `<root>/<stem>.art`.
    pub fn file_stem(&self) -> String {
        let mut enc = [0u8; 10];
        enc[..8].copy_from_slice(&self.content_hash.to_le_bytes());
        enc[8] = level_byte(self.level);
        enc[9] = engine_byte(self.engine);
        hex16(fnv64(&enc))
    }

    /// The 64-bit stream a fault plan keys corruption decisions on: the
    /// full key, so level/engine siblings corrupt independently.
    fn fault_stream(&self) -> u64 {
        self.content_hash
            ^ ((level_byte(self.level) as u64) << 56)
            ^ ((engine_byte(self.engine) as u64) << 48)
    }
}

/// What a [`ArtifactStore::get_outcome`] lookup found. Distinguishing
/// `Corrupt` from `Miss` is what lets callers *repair* an entry (recompile
/// and put back) instead of merely recompiling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GetOutcome {
    /// Verified payload.
    Hit(Vec<u8>),
    /// No entry under this key.
    Miss,
    /// An entry existed but failed verification; it has been removed
    /// and the key is now free for a repair `put`.
    Corrupt,
}

/// Store hit/miss/eviction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Successful `get`s.
    pub hits: u64,
    /// `get`s that found nothing usable.
    pub misses: u64,
    /// Entries written.
    pub puts: u64,
    /// Entries evicted by the size cap.
    pub evictions: u64,
    /// Entries rejected as corrupt (bad header or checksum) and removed.
    pub corrupt_rejected: u64,
}

#[derive(Debug)]
struct Entry {
    path: PathBuf,
    file_len: u64,
    seq: u64,
}

/// The content-addressed artifact store.
#[derive(Debug)]
pub struct ArtifactStore {
    root: PathBuf,
    cap_bytes: u64,
    entries: HashMap<ArtifactKey, Entry>,
    total_bytes: u64,
    seq: u64,
    stats: StoreStats,
    faults: Option<Arc<FaultPlan>>,
}

impl ArtifactStore {
    /// Opens (creating if needed) a store rooted at `root`, capped at
    /// `cap_bytes` of on-disk artifact data. Existing entries are
    /// re-indexed; unreadable or corrupt-headered files are removed.
    ///
    /// # Errors
    ///
    /// I/O errors creating or scanning the root directory.
    pub fn open(root: impl Into<PathBuf>, cap_bytes: u64) -> io::Result<ArtifactStore> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        let mut store = ArtifactStore {
            root: root.clone(),
            cap_bytes,
            entries: HashMap::new(),
            total_bytes: 0,
            seq: 0,
            stats: StoreStats::default(),
            faults: None,
        };
        // Re-index survivors, oldest-modified first so their recency
        // order survives a restart.
        let mut found: Vec<(ArtifactKey, PathBuf, u64, SystemTime)> = Vec::new();
        for dirent in fs::read_dir(&root)? {
            let dirent = dirent?;
            let path = dirent.path();
            if path.extension().and_then(|e| e.to_str()) != Some("art") {
                continue;
            }
            let meta = dirent.metadata()?;
            match read_header(&path) {
                Ok(key) if key.file_stem() == stem_of(&path) => {
                    let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                    found.push((key, path, meta.len(), mtime));
                }
                _ => {
                    store.stats.corrupt_rejected += 1;
                    let _ = fs::remove_file(&path);
                }
            }
        }
        found.sort_by_key(|(_, _, _, mtime)| *mtime);
        for (key, path, file_len, _) in found {
            store.seq += 1;
            store.total_bytes += file_len;
            store.entries.insert(
                key,
                Entry {
                    path,
                    file_len,
                    seq: store.seq,
                },
            );
        }
        store.evict_to_cap(None);
        Ok(store)
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total on-disk bytes of live entries (headers included).
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Attaches (or clears) a fault-injection plan. With a plan set,
    /// lookups can report spurious misses ([`Site::CacheMiss`]) or
    /// keyed corruption ([`Site::StoreRead`]), and writes can flip a
    /// payload byte on the way to disk ([`Site::StoreWrite`]).
    pub fn set_faults(&mut self, faults: Option<Arc<FaultPlan>>) {
        self.faults = faults;
    }

    /// Looks up a payload. A hit refreshes LRU recency; a corrupt or
    /// mismatched file is removed and reported as a miss.
    pub fn get(&mut self, key: &ArtifactKey) -> Option<Vec<u8>> {
        match self.get_outcome(key) {
            GetOutcome::Hit(payload) => Some(payload),
            GetOutcome::Miss | GetOutcome::Corrupt => None,
        }
    }

    /// Like [`get`](Self::get), but tells `Miss` and `Corrupt` apart so
    /// callers can repair a corrupt entry in place (recompile + `put`).
    pub fn get_outcome(&mut self, key: &ArtifactKey) -> GetOutcome {
        let _span = obs::span!("svc.store.get");
        let Some(entry) = self.entries.get_mut(key) else {
            self.stats.misses += 1;
            obs::metrics::counter("svc.store.miss").inc();
            return GetOutcome::Miss;
        };
        // Injected spurious miss: the entry stays intact on disk, the
        // caller just doesn't see it this time (transient, so a retry
        // or the next job sees it again).
        if let Some(plan) = &self.faults {
            if plan.transient(Site::CacheMiss) {
                self.stats.misses += 1;
                obs::metrics::counter("svc.store.miss").inc();
                return GetOutcome::Miss;
            }
        }
        // Injected read corruption is keyed: this artifact reads corrupt
        // on every lookup under this plan, exactly like a bad sector.
        let injected_corrupt = self
            .faults
            .as_ref()
            .is_some_and(|plan| plan.keyed(Site::StoreRead, key.fault_stream()));
        match read_verified(&entry.path, key) {
            Ok(payload) if !injected_corrupt => {
                self.seq += 1;
                entry.seq = self.seq;
                self.stats.hits += 1;
                obs::metrics::counter("svc.store.hit").inc();
                GetOutcome::Hit(payload)
            }
            _ => {
                let entry = self.entries.remove(key).expect("checked above");
                self.total_bytes -= entry.file_len;
                let _ = fs::remove_file(&entry.path);
                self.stats.corrupt_rejected += 1;
                self.stats.misses += 1;
                obs::metrics::counter("svc.store.corrupt").inc();
                obs::metrics::counter("svc.store.miss").inc();
                GetOutcome::Corrupt
            }
        }
    }

    /// Inserts (or replaces) a payload, then evicts LRU entries until
    /// the store fits its cap again.
    ///
    /// # Errors
    ///
    /// I/O errors writing the entry file.
    pub fn put(&mut self, key: ArtifactKey, payload: &[u8]) -> io::Result<()> {
        let _span = obs::span!("svc.store.put", bytes = payload.len());
        let path = self.root.join(format!("{}.art", key.file_stem()));
        let mut file = encode_header(&key, payload);
        file.extend_from_slice(payload);
        // Injected write corruption (keyed): flip one payload byte after
        // the checksum was computed, so the entry lands on disk corrupt
        // and the next read detects it.
        if let Some(plan) = &self.faults {
            if !payload.is_empty() && plan.keyed(Site::StoreWrite, key.fault_stream()) {
                let last = file.len() - 1;
                file[last] ^= 0x01;
            }
        }
        // Write-then-rename so a crash mid-write never leaves a
        // half-entry under a live name.
        let tmp = self.root.join(format!(
            ".tmp-{}-{}",
            key.file_stem(),
            std::process::id()
        ));
        fs::write(&tmp, &file)?;
        fs::rename(&tmp, &path)?;
        if let Some(old) = self.entries.remove(&key) {
            self.total_bytes -= old.file_len;
        }
        self.seq += 1;
        self.total_bytes += file.len() as u64;
        self.entries.insert(
            key,
            Entry {
                path,
                file_len: file.len() as u64,
                seq: self.seq,
            },
        );
        self.stats.puts += 1;
        obs::metrics::counter("svc.store.put").inc();
        self.evict_to_cap(Some(&key));
        Ok(())
    }

    /// Evicts least-recently-used entries until under the cap. `keep`
    /// (the entry just inserted) is never evicted — the cap bounds
    /// steady-state use, not the largest single artifact.
    fn evict_to_cap(&mut self, keep: Option<&ArtifactKey>) {
        while self.total_bytes > self.cap_bytes {
            let victim = self
                .entries
                .iter()
                .filter(|(k, _)| Some(*k) != keep)
                .min_by_key(|(_, e)| e.seq)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            let entry = self.entries.remove(&victim).expect("victim exists");
            self.total_bytes -= entry.file_len;
            let _ = fs::remove_file(&entry.path);
            self.stats.evictions += 1;
            obs::metrics::counter("svc.store.evict").inc();
        }
    }
}

fn stem_of(path: &Path) -> String {
    path.file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or_default()
        .to_string()
}

fn encode_header(key: &ArtifactKey, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&key.content_hash.to_le_bytes());
    out.push(level_byte(key.level));
    out.push(engine_byte(key.engine));
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv64(payload).to_le_bytes());
    out
}

fn parse_header(bytes: &[u8]) -> Option<(ArtifactKey, u64, u64)> {
    if bytes.len() < HEADER_LEN || &bytes[..4] != MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != VERSION {
        return None;
    }
    let content_hash = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let level = level_from_byte(bytes[16])?;
    let engine = engine_from_byte(bytes[17]).ok()?;
    let payload_len = u64::from_le_bytes(bytes[18..26].try_into().unwrap());
    let payload_fnv = u64::from_le_bytes(bytes[26..34].try_into().unwrap());
    Some((
        ArtifactKey {
            content_hash,
            level,
            engine,
        },
        payload_len,
        payload_fnv,
    ))
}

/// Reads just the header of an entry file (used when re-indexing).
fn read_header(path: &Path) -> io::Result<ArtifactKey> {
    let mut header = [0u8; HEADER_LEN];
    let mut f = fs::File::open(path)?;
    f.read_exact(&mut header)?;
    let (key, payload_len, _) = parse_header(&header)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad header"))?;
    let expected = HEADER_LEN as u64 + payload_len;
    if f.metadata()?.len() != expected {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad length"));
    }
    Ok(key)
}

/// Reads and fully verifies an entry file against its key.
fn read_verified(path: &Path, key: &ArtifactKey) -> io::Result<Vec<u8>> {
    let bytes = fs::read(path)?;
    let corrupt = || io::Error::new(io::ErrorKind::InvalidData, "corrupt entry");
    let (stored_key, payload_len, payload_fnv) = parse_header(&bytes).ok_or_else(corrupt)?;
    if stored_key != *key || bytes.len() as u64 != HEADER_LEN as u64 + payload_len {
        return Err(corrupt());
    }
    let payload = &bytes[HEADER_LEN..];
    if fnv64(payload) != payload_fnv {
        return Err(corrupt());
    }
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wabench-store-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key(n: u8) -> ArtifactKey {
        ArtifactKey {
            content_hash: n as u64,
            level: OptLevel::O2,
            engine: None,
        }
    }

    #[test]
    fn round_trip_and_reopen() {
        let root = tmp_root("roundtrip");
        let mut s = ArtifactStore::open(&root, 1 << 20).unwrap();
        assert!(s.get(&key(1)).is_none());
        s.put(key(1), b"payload-one").unwrap();
        assert_eq!(s.get(&key(1)).unwrap(), b"payload-one");
        drop(s);
        // Entries persist across open.
        let mut s = ArtifactStore::open(&root, 1 << 20).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(&key(1)).unwrap(), b"payload-one");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn lru_eviction_respects_recency() {
        let root = tmp_root("lru");
        // Cap fits two ~100-byte entries, not three.
        let cap = 2 * (HEADER_LEN as u64 + 100) + 10;
        let mut s = ArtifactStore::open(&root, cap).unwrap();
        s.put(key(1), &[1u8; 100]).unwrap();
        s.put(key(2), &[2u8; 100]).unwrap();
        // Touch 1 so 2 becomes the LRU victim.
        assert!(s.get(&key(1)).is_some());
        s.put(key(3), &[3u8; 100]).unwrap();
        assert_eq!(s.stats().evictions, 1);
        assert!(s.get(&key(2)).is_none(), "LRU entry evicted");
        assert!(s.get(&key(1)).is_some());
        assert!(s.get(&key(3)).is_some());
        assert!(s.total_bytes() <= cap);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn oversize_entry_is_kept() {
        let root = tmp_root("oversize");
        let mut s = ArtifactStore::open(&root, 64).unwrap();
        s.put(key(1), &[0u8; 500]).unwrap();
        assert!(s.get(&key(1)).is_some(), "sole oversize entry survives");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupt_payload_rejected_and_removed() {
        let root = tmp_root("corrupt");
        let mut s = ArtifactStore::open(&root, 1 << 20).unwrap();
        s.put(key(7), b"precious bytes").unwrap();
        // Flip one payload byte on disk.
        let path = root.join(format!("{}.art", key(7).file_stem()));
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(s.get(&key(7)).is_none(), "corrupt entry is a miss");
        assert_eq!(s.stats().corrupt_rejected, 1);
        assert!(!path.exists(), "corrupt file removed");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn reopen_skips_truncated_files() {
        let root = tmp_root("trunc");
        let mut s = ArtifactStore::open(&root, 1 << 20).unwrap();
        s.put(key(9), &[9u8; 64]).unwrap();
        let path = root.join(format!("{}.art", key(9).file_stem()));
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..HEADER_LEN + 3]).unwrap();
        let s = ArtifactStore::open(&root, 1 << 20).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.stats().corrupt_rejected, 1);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn keys_distinguish_level_and_engine() {
        let a = ArtifactKey::wasm("fn f() {}", OptLevel::O0);
        let b = ArtifactKey::wasm("fn f() {}", OptLevel::O2);
        assert_ne!(a.file_stem(), b.file_stem());
        let c = ArtifactKey::aot(b"\0asm", OptLevel::O2, EngineKind::Wasmtime);
        let d = ArtifactKey::aot(b"\0asm", OptLevel::O2, EngineKind::Wavm);
        assert_ne!(c.file_stem(), d.file_stem());
    }
}
